# Convenience targets; all tests run with the src layout on PYTHONPATH.
PYTHONPATH := src
export PYTHONPATH

.PHONY: test chaos serving-chaos incremental recovery-chaos bench bench-obs bench-serving bench-freshness bench-throughput bench-lint bench-recovery lint lint-report

test: lint
	python -m pytest -x -q

# Deterministic fault-injection suite only (seeded chaos schedules).
chaos:
	python -m pytest -q -m chaos

# Resilient serving-layer suite: deadline propagation, load shedding,
# circuit breakers, hedged reads, and seeded end-to-end chaos runs.
serving-chaos:
	python -m pytest -q -m serving

# Incremental indexing suite: delta batches, segment snapshots,
# compaction, and the batch-vs-one-pass equivalence property.
incremental:
	python -m pytest -q -m incremental

# Durable-recovery suite: crash-restart schedules, WAL replay,
# anti-entropy catch-up, re-replication, and the healed-equals-unchaosed
# determinism gate.
recovery-chaos:
	python -m pytest -q -m recovery

bench: bench-obs bench-serving bench-freshness bench-throughput bench-lint bench-recovery
	cd benchmarks && PYTHONPATH=../src python -m pytest -q

# Instrumentation overhead guard: tracing on vs. off on the same corpus
# mine; writes BENCH_obs_overhead.json and fails if overhead >= 10%.
bench-obs:
	cd benchmarks && PYTHONPATH=../src python -m pytest -q bench_obs_overhead.py

# Serving availability under a seeded chaos plan (one dead index node,
# ≥5% service faults): writes BENCH_serving_availability.json and fails
# below 99% availability or on any late/malformed response.
bench-serving:
	cd benchmarks && PYTHONPATH=../src python -m pytest -q bench_serving.py

# Index freshness of the incremental path: per-batch ingest-to-queryable
# lag and sustained docs/sim-sec under concurrent serving load; writes
# BENCH_freshness.json and fails on a lag-ceiling/throughput-floor
# breach or if the batched build stops being byte-identical to the
# one-pass build (with and without chaos).
bench-freshness:
	cd benchmarks && PYTHONPATH=../src python -m pytest -q bench_freshness.py

# Hot-path throughput gate: the optimized pipeline (Aho-Corasick
# spotting, split/tag/parse memos, batched stages) vs. the naive
# reference on a syndication-heavy corpus.  Writes BENCH_throughput.json
# and fails if the median speedup drops below 2x or the batched path's
# docs/sim-sec falls below its floor.  Output must stay byte-identical.
bench-throughput:
	cd benchmarks && PYTHONPATH=../src python -m pytest -q bench_throughput.py

# Lint cache gate: cold vs warm-cache lint over src/.  Writes
# BENCH_lint.json and fails if a warm run re-analyzes any file or costs
# more than half the cold wall time.
bench-lint:
	cd benchmarks && PYTHONPATH=../src python -m pytest -q bench_lint.py

# Recovery gate: crash-restart runs across several chaos seeds must hold
# ≥99% availability while the RecoveryManager re-replicates and catches
# the rejoined node up, settle completely, and keep p95 restore duration
# under its ceiling.  Writes BENCH_recovery.json; same-seed runs must be
# byte-identical.
bench-recovery:
	cd benchmarks && PYTHONPATH=../src python -m pytest -q bench_recovery.py

# Byte-compile everything, then run the static-analysis rule set
# (determinism, layering, obs discipline, pattern-DB/lexicon invariants).
# Fails on any unsuppressed error-severity finding.
lint:
	python -m compileall -q src
	python -m repro lint --severity error

# Full findings (all severities, including suppressed) as JSON, for CI
# artifacts and dashboards.  Never fails the build.
lint-report:
	-python -m repro lint --json --out lint-report.json
	@echo "wrote lint-report.json"
