# Convenience targets; all tests run with the src layout on PYTHONPATH.
PYTHONPATH := src
export PYTHONPATH

.PHONY: test chaos bench bench-obs lint lint-report

test: lint
	python -m pytest -x -q

# Deterministic fault-injection suite only (seeded chaos schedules).
chaos:
	python -m pytest -q -m chaos

bench: bench-obs
	cd benchmarks && PYTHONPATH=../src python -m pytest -q

# Instrumentation overhead guard: tracing on vs. off on the same corpus
# mine; writes BENCH_obs_overhead.json and fails if overhead >= 10%.
bench-obs:
	cd benchmarks && PYTHONPATH=../src python -m pytest -q bench_obs_overhead.py

# Byte-compile everything, then run the static-analysis rule set
# (determinism, layering, obs discipline, pattern-DB/lexicon invariants).
# Fails on any unsuppressed error-severity finding.
lint:
	python -m compileall -q src
	python -m repro lint --severity error

# Full findings (all severities, including suppressed) as JSON, for CI
# artifacts and dashboards.  Never fails the build.
lint-report:
	-python -m repro lint --json --out lint-report.json
	@echo "wrote lint-report.json"
