# Convenience targets; all tests run with the src layout on PYTHONPATH.
PYTHONPATH := src
export PYTHONPATH

.PHONY: test chaos bench lint

test:
	python -m pytest -x -q

# Deterministic fault-injection suite only (seeded chaos schedules).
chaos:
	python -m pytest -q -m chaos

bench:
	cd benchmarks && PYTHONPATH=../src python -m pytest -q

lint:
	python -m compileall -q src
