# Convenience targets; all tests run with the src layout on PYTHONPATH.
PYTHONPATH := src
export PYTHONPATH

.PHONY: test chaos bench bench-obs lint

test:
	python -m pytest -x -q

# Deterministic fault-injection suite only (seeded chaos schedules).
chaos:
	python -m pytest -q -m chaos

bench: bench-obs
	cd benchmarks && PYTHONPATH=../src python -m pytest -q

# Instrumentation overhead guard: tracing on vs. off on the same corpus
# mine; writes BENCH_obs_overhead.json and fails if overhead >= 10%.
bench-obs:
	cd benchmarks && PYTHONPATH=../src python -m pytest -q bench_obs_overhead.py

lint:
	python -m compileall -q src
