"""Shared benchmark configuration.

Every table/figure benchmark runs its experiment once (rounds=1) — the
experiments are deterministic end-to-end runs, not microbenchmarks — and
prints the reproduced table to the real stdout so it survives pytest's
capture.  ``REPRO_BENCH_SCALE`` (default 0.15) scales dataset sizes;
1.0 reproduces the paper's document counts.
"""

import os
import sys

import pytest

DEFAULT_SCALE = 0.15


@pytest.fixture(scope="session")
def scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))


@pytest.fixture(scope="session")
def seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", 2005))


def emit(text: str) -> None:
    """Print to the unbuffered real stdout, bypassing pytest capture."""
    sys.__stdout__.write("\n" + text + "\n")
    sys.__stdout__.flush()


@pytest.fixture()
def report():
    return emit


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
