"""Benchmark: serving availability under a seeded chaos plan.

Drives the resilient mode-B serving layer with the closed-loop load
generator in two regimes and writes ``BENCH_serving_availability.json``:

* **chaos** — a seeded fault plan kills one index node outright and
  schedules service faults on every surviving node endpoint (≥5% of the
  request count).  The contract under test: ≥99% of requests still get
  a well-formed (possibly ``degraded``) response inside their deadline,
  nothing is ever served after its deadline, and two runs with the same
  seed produce byte-identical reports.
* **overload** — no faults, but request bursts larger than the admission
  queue, to exercise load shedding: the shed rate must be non-zero and
  every shed request must get an explicit 503-style envelope.
"""

import json
import os

from conftest import emit, run_once

from repro.eval.reporting import format_table
from repro.platform.serving import LoadProfile, build_scenario

CHAOS_SEED = 7
SEED = 2005
DOCS = 24
REQUESTS = 300
FAULT_FRACTION = 0.08
#: Acceptance thresholds.
MIN_AVAILABILITY = 0.99
MIN_FAULT_RATE = 0.05

OUT_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_serving_availability.json"
)

#: Overload regime: bursts far above the queue limit force shedding.
OVERLOAD_QUEUE_LIMIT = 12
OVERLOAD_PROFILE = LoadProfile(
    requests=REQUESTS, burst_min=16, burst_max=40
)


def _chaos_report() -> dict:
    scenario = build_scenario(
        seed=SEED,
        docs=DOCS,
        chaos_seed=CHAOS_SEED,
        fault_fraction=FAULT_FRACTION,
        profile=LoadProfile(requests=REQUESTS),
    )
    return scenario.run()


def _overload_report() -> dict:
    scenario = build_scenario(
        seed=SEED,
        docs=DOCS,
        chaos_seed=None,
        profile=OVERLOAD_PROFILE,
        queue_limit=OVERLOAD_QUEUE_LIMIT,
    )
    return scenario.run()


def _bench() -> dict:
    first = _chaos_report()
    second = _chaos_report()
    overload = _overload_report()
    return {"chaos": first, "chaos_repeat": second, "overload": overload}


def test_bench_serving_availability(benchmark, report):
    results = run_once(benchmark, _bench)
    chaos, repeat, overload = (
        results["chaos"],
        results["chaos_repeat"],
        results["overload"],
    )

    # Determinism: the identical seed must reproduce the identical report.
    assert json.dumps(chaos, sort_keys=True) == json.dumps(repeat, sort_keys=True)

    # Fault pressure is real: one dead node, ≥5% injected service faults.
    assert chaos["dead_nodes"], "the chaos plan must kill an index node"
    assert chaos["faults_injected"] >= MIN_FAULT_RATE * chaos["requests"]

    # The availability contract.
    assert chaos["requests"] == REQUESTS
    assert chaos["malformed_responses"] == 0
    assert chaos["late_responses"] == 0, "nothing is ever served past its deadline"
    assert chaos["availability"] >= MIN_AVAILABILITY
    assert chaos["degraded"] > 0, "losing a node must surface degraded responses"

    # Overload regime: shedding engages and stays explicit.
    assert overload["shed_rate"] > 0.0
    assert overload["malformed_responses"] == 0
    assert overload["late_responses"] == 0

    payload = {
        "availability": chaos["availability"],
        "p50_latency": chaos["p50_latency"],
        "p99_latency": chaos["p99_latency"],
        "shed_rate": overload["shed_rate"],
        "hedge_wins": chaos["hedge_wins"],
        "chaos": chaos,
        "overload": overload,
        "deterministic": True,
        "requests": REQUESTS,
        "chaos_seed": CHAOS_SEED,
    }
    with open(OUT_PATH, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=2, sort_keys=True)
        stream.write("\n")

    rows = [
        ["availability", f"{chaos['availability']:.4f}", f"{overload['availability']:.4f}"],
        ["p50 latency", f"{chaos['p50_latency']:.3f}", f"{overload['p50_latency']:.3f}"],
        ["p99 latency", f"{chaos['p99_latency']:.3f}", f"{overload['p99_latency']:.3f}"],
        ["shed rate", f"{chaos['shed_rate']:.4f}", f"{overload['shed_rate']:.4f}"],
        ["degraded", chaos["degraded"], overload["degraded"]],
        ["expired", chaos["expired"], overload["expired"]],
        ["hedge wins", chaos["hedge_wins"], overload["hedge_wins"]],
        ["faults injected", chaos["faults_injected"], overload["faults_injected"]],
    ]
    report(
        format_table(
            ["metric", "chaos", "overload"],
            rows,
            title=f"serving availability ({REQUESTS} requests, chaos seed {CHAOS_SEED})",
        )
    )
