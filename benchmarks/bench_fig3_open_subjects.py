"""Benchmark + reproduction of Figure 3: open-subject mining.

Mode B: named-entity spotting discovers the subjects, sentiment-bearing
sentences are analyzed offline, and a sentiment index serves arbitrary
subject queries at interactive speed.

The second benchmark quantifies the paper's motivation for the offline
pass: "this runtime execution of sentiment analysis is too slow for most
users expecting real time response" — querying the prebuilt sentiment
index is orders of magnitude faster than analyzing matching documents at
query time.
"""

import time

from conftest import emit, run_once

from repro.core import SentimentMiner, Subject
from repro.core.model import Polarity
from repro.corpora import PHARMACEUTICAL, pharmaceutical_web
from repro.eval import figure3_open_subjects, format_table
from repro.platform import DataStore, Entity, InvertedIndex, SentimentIndex


def test_figure3_open_subject_mining(benchmark, scale, seed, report):
    result = run_once(benchmark, figure3_open_subjects, seed=seed, scale=scale)
    report(result.render())

    assert result.indexed_judgments > 0
    assert result.subjects_discovered >= 5
    # Every pre-seeded company should have been discovered without any
    # subject list being provided.
    assert len(result.query_results) == 3
    assert any(
        counts["positive"] + counts["negative"] > 0
        for counts in result.query_results.values()
    )


def test_figure3_offline_index_vs_runtime_analysis(benchmark, scale, seed, report):
    dataset = pharmaceutical_web(seed=seed, scale=scale)
    subject = PHARMACEUTICAL.products[0]

    # Shared substrate: stored entities + text index.
    store = DataStore(num_partitions=8)
    text_index = InvertedIndex()
    for document in dataset.dplus:
        entity = Entity(entity_id=document.doc_id, content=document.text)
        store.store(entity)
        text_index.add_entity(entity)

    # Offline pass (done once, amortised): mine everything, build the
    # sentiment index.
    open_miner = SentimentMiner()
    sentiment_index = SentimentIndex()
    for document in dataset.dplus:
        sentiment_index.add_all(
            open_miner.mine_open_document(document.text, document.doc_id).judgments
        )

    def runtime_query():
        """The rejected design: analyze matching documents per query."""
        miner = SentimentMiner(subjects=[Subject(subject)])
        counts = {Polarity.POSITIVE: 0, Polarity.NEGATIVE: 0}
        for entity_id in text_index.search(f'"{subject}"'):
            entity = store.get(entity_id)
            for judgment in miner.mine_document(entity.content, entity_id).polar_judgments():
                counts[judgment.polarity] += 1
        return counts

    def indexed_query():
        return sentiment_index.counts(subject)

    start = time.perf_counter()
    runtime_counts = runtime_query()
    runtime_seconds = time.perf_counter() - start
    indexed_counts = benchmark(indexed_query)
    start = time.perf_counter()
    for _ in range(100):
        indexed_query()
    indexed_seconds = (time.perf_counter() - start) / 100

    speedup = runtime_seconds / max(indexed_seconds, 1e-9)
    report(
        format_table(
            ["query path", "latency (ms)", "positive", "negative"],
            [
                [
                    "runtime analysis",
                    f"{1000 * runtime_seconds:.2f}",
                    runtime_counts[Polarity.POSITIVE],
                    runtime_counts[Polarity.NEGATIVE],
                ],
                [
                    "sentiment index",
                    f"{1000 * indexed_seconds:.4f}",
                    indexed_counts[Polarity.POSITIVE],
                    indexed_counts[Polarity.NEGATIVE],
                ],
            ],
            title=f"Figure 3 motivation: query latency for {subject!r} (speedup {speedup:,.0f}x)",
        )
    )
    assert speedup > 100  # the offline pass pays for itself immediately
