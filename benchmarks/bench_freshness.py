"""Benchmark: freshness of the incremental crawl→analyze→index→serve loop.

Drives the same seeded corpus through the serving stack two ways — one
offline pass and N incremental delta batches — and measures, in
simulated time, how fresh the incremental path keeps the index while
the router serves concurrent load:

* **freshness lag** — sim time from a batch entering the indexer to its
  segment being queryable on every shard (p50/p95 over batches);
* **sustained throughput** — documents indexed per unit of simulated
  time across the whole incremental run;
* **the equivalence gate** — the batched build must serve a
  byte-identical end-state report to the one-pass build, with and
  without chaos (one index node killed, ≥5% service faults).

Writes ``BENCH_freshness.json``; fails when the freshness-lag ceiling
or docs/sec floor is breached, or when byte-identity breaks.
"""

import json
import os

from conftest import emit, run_once

from repro.core import SentimentMiner, Subject
from repro.corpora import DOMAINS, ReviewGenerator
from repro.eval.reporting import format_table
from repro.obs import Obs
from repro.platform.datastore import DataStore
from repro.platform.entity import Entity
from repro.platform.ingestion import DELTA_ADD, DocumentDelta
from repro.platform.segments import CompactionPolicy, DeltaIndexer, LiveIndexer
from repro.platform.serving import (
    LoadProfile,
    ReplicatedIndex,
    ServingRouter,
    build_scenario,
)
from repro.platform.serving.loadgen import percentile
from repro.platform.vinci import VinciBus

SEED = 2005
CHAOS_SEED = 7
DOCS = 24
REQUESTS = 200
BATCHES = 6
FAULT_FRACTION = 0.08

#: Acceptance thresholds (simulated units).  Mining charges ~0.5 sim
#: units per document, so a 4-document batch is queryable in ~2 units;
#: the ceiling/floor trip on regressions, not normal variance.
MAX_P95_FRESHNESS_LAG = 2.5
MIN_DOCS_PER_SIM_SEC = 1.5

OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_freshness.json")


def _run(*, batches, chaos_seed, obs=None):
    scenario = build_scenario(
        seed=SEED,
        docs=DOCS,
        chaos_seed=chaos_seed,
        fault_fraction=FAULT_FRACTION,
        profile=LoadProfile(requests=REQUESTS),
        obs=obs,
        batches=batches,
    )
    return scenario.run()


def _freshness_stats() -> dict:
    """Instrumented incremental run with concurrent serving load.

    Batches stream through the :class:`LiveIndexer` while the router
    answers reads between absorbs — the live loop, not an offline bulk
    build.  Freshness lag is ingest-to-queryable per batch, in simulated
    time; throughput is documents per unit of simulated indexing time.
    """
    obs = Obs.default()
    started = obs.clock.now
    vocab = DOMAINS["digital_camera"]
    documents = ReviewGenerator(vocab, seed=SEED).generate_dplus(DOCS)
    subjects = [Subject(p) for p in vocab.products] + [
        Subject(f) for f in vocab.features
    ]
    miner = SentimentMiner(subjects=subjects, obs=obs)
    store = DataStore()
    store.store_all(Entity(entity_id=d.doc_id, content=d.text) for d in documents)
    index = ReplicatedIndex(8, 4, replication=2)
    live = LiveIndexer(
        index,
        DeltaIndexer(miner, obs=obs),
        obs=obs,
        policy=CompactionPolicy(),
    )
    bus = VinciBus(obs=obs)
    router = ServingRouter(index, store, bus, obs=obs, latency_seed=SEED)

    deltas = [
        DocumentDelta(
            kind=DELTA_ADD,
            entity_id=d.doc_id,
            entity=Entity(entity_id=d.doc_id, content=d.text),
        )
        for d in documents
    ]
    size = max(1, -(-len(deltas) // BATCHES))  # ceil division
    lags = []
    reads = 0
    for start in range(0, len(deltas), size):
        stats = live.apply_batch(deltas[start : start + size])
        lags.append(stats["freshness_lag"])
        # Concurrent serving load: reads land between every absorb.
        for subject in (vocab.products[0], vocab.features[0]):
            envelope = router.serve("counts", {"subject": subject})
            assert envelope["meta"]["status"] == "ok"
            reads += 1
        envelope = router.serve("search", {"q": vocab.features[0]})
        assert envelope["meta"]["status"] == "ok"
        reads += 1
    indexing_time = sum(lags)
    docs = live.documents_indexed
    return {
        "batches": len(lags),
        "documents_indexed": docs,
        "interleaved_reads": reads,
        "lag_p50": percentile(lags, 0.50),
        "lag_p95": percentile(lags, 0.95),
        "lag_max": max(lags),
        "indexing_sim_time": indexing_time,
        "docs_per_sim_sec": (docs / indexing_time) if indexing_time else 0.0,
        "compactions": int(obs.metrics.counter("segments.compactions").value),
        "total_sim_time": obs.clock.now - started,
    }


def _bench() -> dict:
    return {
        "freshness": _freshness_stats(),
        "one_pass": _run(batches=None, chaos_seed=None),
        "batched": _run(batches=BATCHES, chaos_seed=None),
        "one_pass_chaos": _run(batches=None, chaos_seed=CHAOS_SEED),
        "batched_chaos": _run(batches=BATCHES, chaos_seed=CHAOS_SEED),
    }


def test_bench_freshness(benchmark, report):
    results = run_once(benchmark, _bench)
    fresh = results["freshness"]

    # The equivalence gate: byte-identical end-state reports, one-pass
    # vs N batches, without and with serving chaos.
    assert json.dumps(results["batched"], sort_keys=True) == json.dumps(
        results["one_pass"], sort_keys=True
    ), "incremental build must serve a byte-identical report"
    assert json.dumps(results["batched_chaos"], sort_keys=True) == json.dumps(
        results["one_pass_chaos"], sort_keys=True
    ), "byte-identity must hold under serving chaos"

    # Chaos pressure is real in the gated pair.
    chaos = results["batched_chaos"]
    assert chaos["dead_nodes"], "the chaos plan must kill an index node"
    assert chaos["faults_injected"] >= 0.05 * REQUESTS

    # Freshness contract: every batch becomes queryable quickly, and the
    # loop sustains real indexing throughput in simulated time.
    assert fresh["batches"] == BATCHES
    assert fresh["documents_indexed"] == DOCS
    assert fresh["lag_p95"] <= MAX_P95_FRESHNESS_LAG, (
        f"p95 freshness lag {fresh['lag_p95']:.3f} exceeds "
        f"{MAX_P95_FRESHNESS_LAG}"
    )
    assert fresh["docs_per_sim_sec"] >= MIN_DOCS_PER_SIM_SEC, (
        f"sustained {fresh['docs_per_sim_sec']:.2f} docs/sim-sec below "
        f"floor {MIN_DOCS_PER_SIM_SEC}"
    )

    payload = {
        "freshness": fresh,
        "byte_identical": True,
        "byte_identical_under_chaos": True,
        "availability_batched_chaos": chaos["availability"],
        "thresholds": {
            "max_p95_freshness_lag": MAX_P95_FRESHNESS_LAG,
            "min_docs_per_sim_sec": MIN_DOCS_PER_SIM_SEC,
        },
        "seed": SEED,
        "chaos_seed": CHAOS_SEED,
        "batches": BATCHES,
        "docs": DOCS,
        "requests": REQUESTS,
    }
    with open(OUT_PATH, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=2, sort_keys=True)
        stream.write("\n")

    rows = [
        ["batches", fresh["batches"]],
        ["documents indexed", fresh["documents_indexed"]],
        ["freshness lag p50", f"{fresh['lag_p50']:.4f}"],
        ["freshness lag p95", f"{fresh['lag_p95']:.4f}"],
        ["freshness lag max", f"{fresh['lag_max']:.4f}"],
        ["docs / sim-sec", f"{fresh['docs_per_sim_sec']:.2f}"],
        ["compactions", fresh["compactions"]],
        ["byte-identical (plain)", "yes"],
        ["byte-identical (chaos)", "yes"],
        ["availability under chaos", f"{chaos['availability']:.4f}"],
    ]
    report(
        format_table(
            ["metric", "value"],
            rows,
            title=f"index freshness ({DOCS} docs in {BATCHES} batches, seed {SEED})",
        )
    )
