"""Benchmark + reproduction of Table 4: the review-dataset comparison.

Paper Table 4::

    SM           precision 87%   recall 56%   accuracy 85.6%
    Collocation  precision 18%   recall 70%
    ReviewSeer                                accuracy 88.4%

The reproduced *shape*: the miner's precision dwarfs collocation's;
collocation recalls more (it fires on any lexicon word); ReviewSeer is
competitive at its native document-level task.
"""

from conftest import run_once

from repro.eval import table4


def test_table4_review_comparison(benchmark, scale, seed, report):
    result = run_once(benchmark, table4, seed=seed, scale=scale)
    report(result.render())

    # SM row: high precision, moderate recall, accuracy above precision-
    # driving error rate thanks to correct neutrals.
    assert 0.80 <= result.sm.precision <= 0.97
    assert 0.45 <= result.sm.recall <= 0.70
    assert 0.75 <= result.sm.accuracy <= 0.95

    # Collocation: precision collapses, recall exceeds the miner's.
    assert result.collocation.precision < result.sm.precision / 2
    assert result.collocation.recall > result.sm.recall

    # ReviewSeer: competitive on reviews (its home turf).
    assert result.reviewseer_accuracy >= 0.7
