"""Benchmark + reproduction of Figure 1: the WebFountain platform.

The paper's architecture figure shows multi-source ingestion feeding a
shared-nothing cluster of miners over a partitioned store.  Absolute
numbers are meaningless on a simulator; the reproduced *shape* is the
near-linear scaling regime of per-entity mining as nodes grow.
"""

from conftest import run_once

from repro.eval import figure1_scaling


def test_figure1_platform_scaling(benchmark, scale, seed, report):
    result = run_once(benchmark, figure1_scaling, seed=seed, scale=scale)
    report(result.render())

    assert set(result.ingestion_per_source) == {"newsfeed", "bboard", "customer"}
    speedups = [s for _, _, s in result.scaling]
    makespans = [m for _, m, _ in result.scaling]
    assert speedups == sorted(speedups)  # monotone improvement
    assert makespans == sorted(makespans, reverse=True)
    assert speedups[-1] > 3.0  # 8 nodes: well into the parallel regime
