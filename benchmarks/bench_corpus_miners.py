"""Benchmarks for the other WebFountain miners the paper names.

"Examples of [corpus]-level miners are computing aggregate statistics,
duplicate detection, trending, and clustering" — plus the entity-level
examples: geographic context and template detection, and the page-ranking
miner.  Each runs through the simulated cluster's map/reduce path.
"""

from conftest import run_once

from repro.corpora import DIGITAL_CAMERA, MUSIC, ReviewGenerator
from repro.eval import format_table
from repro.miners import (
    AggregateStatisticsMiner,
    ClusteringMiner,
    DuplicateDetectionMiner,
    TemplateDetectionMiner,
)
from repro.platform import Cluster, CrawlPage, DataStore, Entity, WebCrawler, rank_entities


def _review_store(scale: float, seed: int, duplicate_fraction: float = 0.1) -> DataStore:
    store = DataStore(num_partitions=8)
    camera = ReviewGenerator(DIGITAL_CAMERA, seed=seed).generate_dplus(max(10, int(120 * scale)))
    music = ReviewGenerator(MUSIC, seed=seed + 1).generate_dplus(max(10, int(80 * scale)))
    documents = camera + music
    for document in documents:
        store.store(Entity(entity_id=document.doc_id, content=document.text))
    # Mirror a slice of pages: the crawl picked them up twice.
    for document in documents[: int(len(documents) * duplicate_fraction)]:
        store.store(Entity(entity_id=document.doc_id + ":mirror", content=document.text))
    return store


def test_duplicate_detection_cluster(benchmark, scale, seed, report):
    store = _review_store(scale, seed)
    miner = DuplicateDetectionMiner(threshold=0.9)

    def run():
        merged, _ = Cluster(store, num_nodes=4).run_corpus_miner(miner)
        return miner.pairs(merged)

    pairs = run_once(benchmark, run)
    mirrors = [p for p in pairs if p.second.endswith(":mirror")]
    report(
        format_table(
            ["metric", "value"],
            [["documents", len(store)], ["duplicate pairs", len(pairs)], ["mirror pairs found", len(mirrors)]],
            title="Duplicate detection (MinHash + LSH) over the cluster",
        )
    )
    expected_mirrors = sum(1 for e in store.scan() if e.entity_id.endswith(":mirror"))
    assert len(mirrors) == expected_mirrors  # every planted mirror found
    assert all(p.similarity == 1.0 for p in mirrors)


def test_clustering_separates_domains(benchmark, scale, seed, report):
    store = _review_store(scale, seed, duplicate_fraction=0.0)
    miner = ClusteringMiner(k=2, seed=seed)

    def run():
        merged, _ = Cluster(store, num_nodes=4).run_corpus_miner(miner)
        return miner.cluster(merged)

    result = run_once(benchmark, run)
    camera_ids = [e for e in result.assignments if e.startswith("digital_camera")]
    music_ids = [e for e in result.assignments if e.startswith("music")]
    camera_majority = max(
        (sum(1 for e in camera_ids if result.assignments[e] == c), c) for c in range(2)
    )
    music_majority = max(
        (sum(1 for e in music_ids if result.assignments[e] == c), c) for c in range(2)
    )
    purity = (camera_majority[0] + music_majority[0]) / len(result.assignments)
    report(
        format_table(
            ["cluster", "top terms", "members"],
            [
                [c, ", ".join(result.top_terms[c]), len(result.members(c))]
                for c in range(result.num_clusters)
            ],
            title=f"TF-IDF k-means clustering (purity {purity:.0%})",
        )
    )
    assert purity >= 0.9
    assert camera_majority[1] != music_majority[1]


def test_aggregate_statistics(benchmark, scale, seed, report):
    store = _review_store(scale, seed, duplicate_fraction=0.0)

    def run():
        merged, _ = Cluster(store, num_nodes=4).run_corpus_miner(AggregateStatisticsMiner())
        return merged

    stats = run_once(benchmark, run)
    report(
        format_table(
            ["metric", "value"],
            [
                ["documents", stats.documents],
                ["tokens", stats.tokens],
                ["vocabulary", stats.vocabulary_size],
                ["mean tokens/doc", f"{stats.mean_tokens_per_document:.1f}"],
                ["top terms", ", ".join(t for t, _ in stats.top_terms(5))],
            ],
            title="Aggregate corpus statistics",
        )
    )
    assert stats.documents == len(store)
    assert stats.vocabulary_size > 100


def test_template_detection_and_pagerank(benchmark, scale, seed, report):
    # A synthetic site: hub + article pages sharing navigation boilerplate.
    boiler = "Welcome to the review portal navigation bar."
    pages = {"http://portal/hub": CrawlPage("http://portal/hub", f"{boiler} Start here.", links=tuple(f"http://portal/p{i}" for i in range(6)))}
    for i in range(6):
        pages[f"http://portal/p{i}"] = CrawlPage(
            f"http://portal/p{i}",
            f"{boiler} Unique article number {i} about cameras.",
            links=("http://portal/hub",),
        )
    entities = list(WebCrawler(pages, ["http://portal/hub"]).fetch())
    store = DataStore(num_partitions=4)
    store.store_all(entities)
    miner = TemplateDetectionMiner(min_pages=3, min_fraction=0.5)

    def run():
        merged, _ = Cluster(store, num_nodes=2).run_corpus_miner(miner)
        marked = miner.annotate_corpus(list(store.scan()), merged)
        ranked = rank_entities(store.scan())
        return marked, ranked

    marked, ranked = run_once(benchmark, run)
    report(
        format_table(
            ["metric", "value"],
            [
                ["boilerplate sentences marked", marked],
                ["top-ranked page", ranked[0][0]],
                ["top score", f"{ranked[0][1]:.3f}"],
            ],
            title="Template detection + page ranking over a crawled site",
        )
    )
    assert marked == 7  # the shared navigation line on each page
    assert ranked[0][0] == "http://portal/hub"  # the hub collects the rank
