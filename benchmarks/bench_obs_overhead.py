"""Benchmark: instrumentation overhead, tracing on vs. off.

Runs the same mode-A corpus mine twice — once with the zero-cost default
observability context (no-op tracer/audit, live metrics) and once fully
enabled (spans + audit trail) — and asserts the enabled run stays within
``MAX_OVERHEAD`` of the disabled one.  Results are written to
``BENCH_obs_overhead.json`` so CI can track the ratio over time.

The guarantee under test is the design's central claim: observability is
cheap enough to leave compiled in, and free when switched off.
"""

import json
import os
import time

from conftest import emit

from repro.core import SentimentMiner, Subject
from repro.corpora import DIGITAL_CAMERA, ReviewGenerator
from repro.eval.reporting import format_table
from repro.obs import Obs

DOCS = 30
#: Interleaved rounds per mode; the minimum is compared, so more rounds
#: means more chances for each mode to hit an uncontended time slice.
ROUNDS = 9
#: Enabled-mode overhead budget (fraction of the disabled-mode best time).
MAX_OVERHEAD = 0.10
OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_obs_overhead.json")


def _corpus():
    docs = ReviewGenerator(DIGITAL_CAMERA, seed=1).generate_dplus(DOCS)
    return [(d.doc_id, d.text) for d in docs]


def _subjects():
    return [Subject(p) for p in DIGITAL_CAMERA.products] + [
        Subject(f) for f in DIGITAL_CAMERA.features
    ]


def _one_run(obs_factory, documents, subjects) -> tuple[float, object]:
    miner = SentimentMiner(subjects=subjects, obs=obs_factory())
    start = time.perf_counter()
    result = miner.mine_corpus(iter(documents))
    return time.perf_counter() - start, result


def test_bench_obs_overhead():
    documents = _corpus()
    subjects = _subjects()

    # Warm-up, then interleaved off/on pairs: a noisy neighbour slows
    # both halves of a pair roughly equally, so the per-pair on/off ratio
    # is far more stable than either absolute time.  The overhead under
    # test is the median paired ratio.
    _one_run(Obs.default, documents, subjects)
    _one_run(Obs.enabled, documents, subjects)
    off_time = on_time = float("inf")
    off_result = on_result = None
    ratios = []
    for _ in range(ROUNDS):
        off_elapsed, off_result = _one_run(Obs.default, documents, subjects)
        on_elapsed, on_result = _one_run(Obs.enabled, documents, subjects)
        off_time = min(off_time, off_elapsed)
        on_time = min(on_time, on_elapsed)
        ratios.append(on_elapsed / off_elapsed)
    ratios.sort()
    median_ratio = ratios[len(ratios) // 2]

    # Same pipeline either way: identical judgments, only extra telemetry.
    assert [j.as_pair() for j in on_result.judgments] == [
        j.as_pair() for j in off_result.judgments
    ]
    assert off_result.audit == []
    assert len(on_result.audit) >= len(on_result.judgments)

    overhead = median_ratio - 1.0
    payload = {
        "documents": DOCS,
        "rounds": ROUNDS,
        "tracing_off_best_seconds": off_time,
        "tracing_on_best_seconds": on_time,
        "paired_ratios": ratios,
        "overhead_fraction": overhead,
        "max_overhead_fraction": MAX_OVERHEAD,
        "judgments": len(on_result.judgments),
        "audit_entries": len(on_result.audit),
    }
    with open(OUT_PATH, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=2, sort_keys=True)
        stream.write("\n")

    emit(
        format_table(
            ["mode", "best seconds"],
            [
                ["tracing off", f"{off_time:.4f}"],
                ["tracing on", f"{on_time:.4f}"],
                ["overhead", f"{overhead:+.1%}"],
            ],
            title=f"observability overhead ({DOCS} docs, best of {ROUNDS})",
        )
    )
    assert overhead < MAX_OVERHEAD, (
        f"instrumentation overhead {overhead:.1%} exceeds {MAX_OVERHEAD:.0%}"
    )
