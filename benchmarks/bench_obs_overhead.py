"""Benchmark: instrumentation overhead, tracing on vs. off.

Two gates, both asserting the design's central claim — observability is
cheap enough to leave compiled in, and free when switched off:

* **mine** — the mode-A corpus mine run with the zero-cost default
  observability context (no-op tracer/audit, live metrics) vs. fully
  enabled (spans + audit trail);
* **serving** — the end-to-end mode-B scenario under a seeded chaos
  plan: corpus mining and segment ingest (background root traces)
  followed by the served load, where every request opens a span tree
  (request → shard reads → bus attempts, plus hedge/fastfail spans) and
  the SLO monitor classifies every response into its burn windows.  The
  gate covers the whole scenario; the serve-loop-only ratio is recorded
  ungated — the simulated loop does ~15 spans of bookkeeping per request
  against almost no request work, so its ratio is an upper bound no real
  deployment would see.

Each gate interleaves off/on rounds, compares the median paired ratio
against ``MAX_OVERHEAD``, and checks the on/off outputs are identical —
telemetry must never change results.  Both sections are written to
``BENCH_obs_overhead.json`` so CI can track the ratios over time.
"""

import json
import os
import time

from conftest import emit

from repro.core import SentimentMiner, Subject
from repro.corpora import DIGITAL_CAMERA, ReviewGenerator
from repro.eval.reporting import format_table
from repro.obs import Obs, SLOMonitor, default_serving_slos
from repro.platform.serving import LoadProfile, build_scenario

DOCS = 30
#: Interleaved rounds per mode; the gate compares the *median* paired
#: on/off ratio, so more rounds shrink the median's noise floor.
ROUNDS = 15
#: Enabled-mode overhead budget (fraction of the disabled-mode time).
MAX_OVERHEAD = 0.10
OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_obs_overhead.json")

SERVING_DOCS = 24
SERVING_REQUESTS = 150
SERVING_CHAOS_SEED = 7


def _write_section(name: str, payload: dict) -> None:
    """Merge one gate's results into the shared artifact."""
    merged: dict = {}
    if os.path.exists(OUT_PATH):
        with open(OUT_PATH, encoding="utf-8") as stream:
            merged = json.load(stream)
    merged[name] = payload
    with open(OUT_PATH, "w", encoding="utf-8") as stream:
        json.dump(merged, stream, indent=2, sort_keys=True)
        stream.write("\n")


def _paired_rounds(run_off, run_on):
    """Warm up, then interleave off/on rounds; return timings + results.

    Each closure times its own hot section and returns ``(elapsed,
    result)`` — setup (corpus generation, index build) stays off the
    stopwatch.  A noisy neighbour slows both halves of a pair roughly
    equally, so the per-pair on/off ratio is far more stable than either
    absolute time.  The overhead under test is the median paired ratio.
    """
    run_off()
    run_on()
    off_time = on_time = float("inf")
    off_result = on_result = None
    ratios = []
    for _ in range(ROUNDS):
        off_elapsed, off_result = run_off()
        on_elapsed, on_result = run_on()
        off_time = min(off_time, off_elapsed)
        on_time = min(on_time, on_elapsed)
        ratios.append(on_elapsed / off_elapsed)
    ratios.sort()
    return off_time, on_time, ratios, off_result, on_result


def _emit_and_gate(title: str, off_time: float, on_time: float, ratios):
    overhead = ratios[len(ratios) // 2] - 1.0
    emit(
        format_table(
            ["mode", "best seconds"],
            [
                ["tracing off", f"{off_time:.4f}"],
                ["tracing on", f"{on_time:.4f}"],
                ["overhead", f"{overhead:+.1%}"],
            ],
            title=title,
        )
    )
    assert overhead < MAX_OVERHEAD, (
        f"instrumentation overhead {overhead:.1%} exceeds {MAX_OVERHEAD:.0%}"
    )
    return overhead


def test_bench_obs_overhead_mine():
    docs = ReviewGenerator(DIGITAL_CAMERA, seed=1).generate_dplus(DOCS)
    documents = [(d.doc_id, d.text) for d in docs]
    subjects = [Subject(p) for p in DIGITAL_CAMERA.products] + [
        Subject(f) for f in DIGITAL_CAMERA.features
    ]

    def run(obs_factory):
        miner = SentimentMiner(subjects=subjects, obs=obs_factory())
        start = time.perf_counter()
        result = miner.mine_corpus(iter(documents))
        return time.perf_counter() - start, result

    off_time, on_time, ratios, off_result, on_result = _paired_rounds(
        lambda: run(Obs.default), lambda: run(Obs.enabled)
    )

    # Same pipeline either way: identical judgments, only extra telemetry.
    assert [j.as_pair() for j in on_result.judgments] == [
        j.as_pair() for j in off_result.judgments
    ]
    assert off_result.audit == []
    assert len(on_result.audit) >= len(on_result.judgments)

    overhead = _emit_and_gate(
        f"observability overhead: mine ({DOCS} docs, best of {ROUNDS})",
        off_time,
        on_time,
        ratios,
    )
    _write_section(
        "mine",
        {
            "documents": DOCS,
            "rounds": ROUNDS,
            "tracing_off_best_seconds": off_time,
            "tracing_on_best_seconds": on_time,
            "paired_ratios": ratios,
            "overhead_fraction": overhead,
            "max_overhead_fraction": MAX_OVERHEAD,
            "judgments": len(on_result.judgments),
            "audit_entries": len(on_result.audit),
        },
    )


def test_bench_obs_overhead_serving():
    serve_times: dict[bool, list] = {False: [], True: []}

    def run(enabled: bool):
        obs = Obs.enabled() if enabled else Obs.default()
        slo = SLOMonitor(obs, default_serving_slos()) if enabled else None
        start = time.perf_counter()
        scenario = build_scenario(
            obs=obs,
            docs=SERVING_DOCS,
            batches=3,
            chaos_seed=SERVING_CHAOS_SEED,
            profile=LoadProfile(requests=SERVING_REQUESTS),
            slo=slo,
        )
        served_from = time.perf_counter()
        report = scenario.run()
        end = time.perf_counter()
        serve_times[enabled].append(end - served_from)
        return end - start, report

    off_time, on_time, ratios, off_report, on_report = _paired_rounds(
        lambda: run(False), lambda: run(True)
    )
    serve_ratios = sorted(
        on / off for on, off in zip(serve_times[True], serve_times[False])
    )
    serve_only_overhead = serve_ratios[len(serve_ratios) // 2] - 1.0

    # Telemetry must not change a single response.  Latency percentiles
    # may drift by whole-span clock ticks (each span advances the sim
    # clock by TICK to order simultaneous events); everything else —
    # statuses, availability, hedges, failovers, breakers — must match
    # exactly, with the slo section (absent when off) set aside.
    ticky = ("p50_latency", "p99_latency")
    on_core = {k: v for k, v in on_report.items() if k != "slo" and k not in ticky}
    off_core = {k: v for k, v in off_report.items() if k not in ticky}
    assert on_core == off_core
    for key in ticky:
        assert abs(on_report[key] - off_report[key]) < 1e-2
    assert on_report["slo"]["slos"], "SLO monitor saw no traffic"

    overhead = _emit_and_gate(
        "observability overhead: serving scenario "
        f"({SERVING_DOCS} docs + {SERVING_REQUESTS} requests, "
        f"chaos seed {SERVING_CHAOS_SEED}, best of {ROUNDS})",
        off_time,
        on_time,
        ratios,
    )
    _write_section(
        "serving",
        {
            "documents": SERVING_DOCS,
            "requests": SERVING_REQUESTS,
            "chaos_seed": SERVING_CHAOS_SEED,
            "rounds": ROUNDS,
            "tracing_off_best_seconds": off_time,
            "tracing_on_best_seconds": on_time,
            "paired_ratios": ratios,
            "overhead_fraction": overhead,
            "max_overhead_fraction": MAX_OVERHEAD,
            # Ungated: the serve loop alone, where ~15 spans/request meet
            # near-zero per-request work.  Tracked for trend, not gated.
            "serve_only_overhead_fraction": serve_only_overhead,
            "availability": on_report["availability"],
            "hedges": on_report["hedges"],
            "failovers": on_report["failovers"],
        },
    )
