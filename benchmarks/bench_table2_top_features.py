"""Benchmark + reproduction of Table 2: top-20 feature terms per domain.

Paper Table 2 lists the 20 highest-ranked bBNP-L feature terms for the
digital camera and music review datasets.  The vocabulary is seeded with
the paper's published lists, so the reproduced ranking should overlap
heavily — the mechanism under test is the likelihood-ratio rank order.
"""

from conftest import run_once

from repro.eval import table2


def test_table2_top_feature_terms(benchmark, scale, seed, report):
    result = run_once(benchmark, table2, seed=seed, scale=scale)
    report(result.render())
    assert len(result.camera_terms) == 20
    assert len(result.music_terms) == 20
    assert result.camera_overlap >= 0.6
    assert result.music_overlap >= 0.5
