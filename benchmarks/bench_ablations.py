"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation disables one mechanism and re-runs the Table-4-style
evaluation on the camera reviews, demonstrating *why* the design choice
exists:

* pattern DB off (lexicon-only)   → precision collapses toward the
  collocation baseline;
* negation handling off           → negated sentences flip to errors;
* bBNP vs all-bNP candidates      → candidate precision drops;
* likelihood-ratio vs frequency   → background-frequent words intrude.
"""

from conftest import emit, run_once

from repro.core import FeatureExtractionConfig, FeatureExtractor, SentimentAnalyzer
from repro.corpora import DIGITAL_CAMERA, camera_reviews
from repro.eval import FeatureJudgePanel, evaluate_system, format_percent, format_table


def _counts(dataset, analyzer):
    return evaluate_system(dataset, "sm", analyzer=analyzer)


def test_ablation_pattern_db(benchmark, scale, seed, report):
    dataset = camera_reviews(seed=seed, scale=min(scale, 0.1))

    def run():
        full = _counts(dataset, SentimentAnalyzer())
        no_patterns = _counts(dataset, SentimentAnalyzer(use_patterns=False))
        return full, no_patterns

    full, no_patterns = run_once(benchmark, run)
    report(
        format_table(
            ["variant", "precision", "recall", "accuracy"],
            [
                ["full miner", format_percent(full.precision), format_percent(full.recall), format_percent(full.accuracy)],
                ["lexicon-only (no patterns)", format_percent(no_patterns.precision), format_percent(no_patterns.recall), format_percent(no_patterns.accuracy)],
            ],
            title="Ablation: sentiment pattern database",
        )
    )
    assert full.precision > no_patterns.precision + 0.15
    assert full.accuracy > no_patterns.accuracy


def test_ablation_negation(benchmark, scale, seed, report):
    dataset = camera_reviews(seed=seed, scale=min(scale, 0.1))

    def run():
        full = _counts(dataset, SentimentAnalyzer())
        no_negation = _counts(dataset, SentimentAnalyzer(handle_negation=False))
        return full, no_negation

    full, no_negation = run_once(benchmark, run)
    report(
        format_table(
            ["variant", "precision", "recall", "accuracy"],
            [
                ["with negation handling", format_percent(full.precision), format_percent(full.recall), format_percent(full.accuracy)],
                ["negation off", format_percent(no_negation.precision), format_percent(no_negation.recall), format_percent(no_negation.accuracy)],
            ],
            title="Ablation: verb-phrase negation handling",
        )
    )
    assert full.precision > no_negation.precision


def test_ablation_context_window(benchmark, scale, seed, report):
    """Window width sweep: the paper's sentiment context window rule.

    A wider window recovers anaphoric cases ("I tested the zoom.  It is
    superb.") that a single-sentence context must leave neutral.
    """
    from repro.core import ContextWindowRule

    dataset = camera_reviews(seed=seed, scale=min(scale, 0.1))

    def run():
        out = []
        for after in (0, 1, 2):
            rule = ContextWindowRule(sentences_before=0, sentences_after=after)
            counts = evaluate_system(dataset, "sm", context_rule=rule)
            out.append((after, counts))
        return out

    results = run_once(benchmark, run)
    report(
        format_table(
            ["window (sentences after)", "precision", "recall", "accuracy"],
            [
                [after, format_percent(c.precision), format_percent(c.recall), format_percent(c.accuracy)]
                for after, c in results
            ],
            title="Ablation: sentiment context window width",
        )
    )
    recalls = [c.recall for _, c in results]
    assert recalls[1] > recalls[0]  # window 1 recovers anaphora
    precisions = [c.precision for _, c in results]
    assert all(p >= 0.8 for p in precisions)


def test_ablation_candidate_heuristic(benchmark, scale, seed, report):
    dataset = camera_reviews(seed=seed, scale=min(scale, 0.1))
    panel = FeatureJudgePanel(DIGITAL_CAMERA, seed=seed)

    def run():
        out = {}
        for heuristic in ("bbnp", "dbnp", "bnp"):
            extractor = FeatureExtractor(
                FeatureExtractionConfig(heuristic=heuristic, min_support=3, top_n=30)
            )
            features = extractor.extract(dataset.dplus_texts(), dataset.dminus_texts())
            out[heuristic] = panel.precision([f.term for f in features])
        return out

    precisions = run_once(benchmark, run)
    report(
        format_table(
            ["candidate heuristic", "judged precision"],
            [[name, format_percent(p)] for name, p in precisions.items()],
            title="Ablation: bBNP vs dBNP vs all base NPs",
        )
    )
    assert precisions["bbnp"] >= precisions["bnp"]


def test_ablation_disambiguator(benchmark, scale, seed, report):
    """Disambiguator on/off over an ambiguous-subject corpus.

    Without the two-resolution filter, every "Apex" occurrence — company
    or mountain trail — is analyzed; with it, off-topic spots are
    discarded before the sentiment stage.
    """
    from repro.core import Disambiguator, SentimentMiner, Subject
    from repro.corpora.ambiguous import generate_ambiguous_corpus

    corpus = generate_ambiguous_corpus(seed=seed)

    def spot_purity(disambiguator):
        miner = SentimentMiner(
            subjects=[Subject(corpus.subject)], disambiguator=disambiguator
        )
        kept_on = kept_off = 0
        for document in corpus.documents:
            result = miner.mine_document(document.text, document.doc_id)
            if document.on_topic:
                kept_on += result.stats.spots_on_topic
            else:
                kept_off += result.stats.spots_on_topic
        return kept_on, kept_off

    def run():
        baseline = spot_purity(None)
        gated = spot_purity(Disambiguator(corpus.term_set))
        return baseline, gated

    (base_on, base_off), (gated_on, gated_off) = run_once(benchmark, run)
    report(
        format_table(
            ["variant", "on-topic spots kept", "off-topic spots kept"],
            [
                ["no disambiguator", base_on, base_off],
                ["with disambiguator", gated_on, gated_off],
            ],
            title="Ablation: two-resolution disambiguation",
        )
    )
    assert base_off > 0  # ambiguity is real
    assert gated_off == 0  # the filter removes the off-topic reading
    assert gated_on >= 0.9 * base_on  # while keeping the true spots


def test_ablation_ranker(benchmark, scale, seed, report):
    dataset = camera_reviews(seed=seed, scale=min(scale, 0.1))
    panel = FeatureJudgePanel(DIGITAL_CAMERA, seed=seed)

    def run():
        out = {}
        for ranker in ("likelihood", "frequency"):
            extractor = FeatureExtractor(
                FeatureExtractionConfig(ranker=ranker, min_support=2, top_n=30)
            )
            features = extractor.extract(dataset.dplus_texts(), dataset.dminus_texts())
            out[ranker] = panel.precision([f.term for f in features])
        return out

    precisions = run_once(benchmark, run)
    report(
        format_table(
            ["ranking", "judged precision"],
            [[name, format_percent(p)] for name, p in precisions.items()],
            title="Ablation: likelihood ratio vs raw frequency",
        )
    )
    assert precisions["likelihood"] >= precisions["frequency"] - 0.05
