"""Extension benchmark: per-template-kind error analysis.

Verifies the corpus design end to end: each gold kind fails (or
succeeds) for exactly its designed reason — direct sentences are judged
correctly, traps produce wrong-polar output, slang/anaphora are missed,
neutral and stray mentions stay neutral.
"""

from conftest import run_once

from repro.eval import error_analysis


def test_error_analysis_by_kind(benchmark, scale, seed, report):
    result = run_once(benchmark, error_analysis, seed=seed, scale=min(scale, 0.15))
    report(result.render())

    assert result.rate("direct", "correct") >= 0.95
    assert result.rate("trap", "wrong_polar") >= 0.85
    assert result.rate("slang", "missed") >= 0.95
    assert result.rate("anaphora", "missed") >= 0.95
    assert result.rate("neutral", "neutral_ok") >= 0.99
    assert result.rate("stray", "neutral_ok") >= 0.95
    assert result.rate("mixed", "correct") >= 0.6
