"""Benchmark: makespan inflation vs. injected failure rate.

The paper's platform treats node loss as routine; the cost of surviving
it is extra work on the replica owners plus retry backoff.  This
benchmark sweeps the chaos failure rate and reports, per rate, the mean
simulated makespan, coverage, failovers, and retries across a fixed set
of seeds — the recovery-cost curve the fault-injection subsystem is
designed to expose.
"""

from conftest import run_once

from repro.corpora import DIGITAL_CAMERA, ReviewGenerator
from repro.eval.reporting import format_table
from repro.miners import AggregateStatisticsMiner
from repro.platform import Cluster, DataStore, Entity, FaultPlan, RetryPolicy

NODES = 4
PARTITIONS = 8
DOCS = 48
SEEDS = range(100, 106)
RATES = (0.0, 0.1, 0.25, 0.5)


def _store() -> DataStore:
    docs = ReviewGenerator(DIGITAL_CAMERA, seed=2005).generate_dplus(DOCS)
    store = DataStore(num_partitions=PARTITIONS)
    store.store_all(Entity(entity_id=d.doc_id, content=d.text) for d in docs)
    return store


def _run(rate: float, seed: int):
    store = _store()
    plan = (
        FaultPlan.scheduled(
            seed,
            services=("cluster.coordinator",),
            num_nodes=NODES,
            num_partitions=PARTITIONS,
            service_failure_rate=rate,
            node_death_rate=rate,
        )
        if rate > 0
        else None
    )
    cluster = Cluster(
        store,
        num_nodes=NODES,
        replication=2,
        fault_plan=plan,
        retry_policy=RetryPolicy(max_attempts=4, base_backoff=0.1),
    )
    _, report = cluster.run_corpus_miner(AggregateStatisticsMiner())
    return report


def _sweep():
    rows = []
    baseline = None
    for rate in RATES:
        reports = [_run(rate, seed) for seed in SEEDS]
        makespan = sum(r.makespan for r in reports) / len(reports)
        if baseline is None:
            baseline = makespan
        rows.append(
            [
                f"{rate:.2f}",
                f"{makespan:.2f}",
                f"{makespan / baseline:.3f}x",
                f"{sum(r.coverage for r in reports) / len(reports):.3f}",
                sum(r.failovers for r in reports),
                sum(r.retries for r in reports),
                sum(len(r.dead_nodes) for r in reports),
            ]
        )
    return rows


def test_fault_recovery_makespan_inflation(benchmark, report):
    rows = run_once(benchmark, _sweep)
    report(
        format_table(
            ["rate", "makespan", "inflation", "coverage", "failovers", "retries", "deaths"],
            rows,
            title=f"fault recovery (R=2, {NODES} nodes, {len(SEEDS)} seeds/rate)",
        )
    )
    # Fault-free runs are complete; rising failure rates only erode
    # coverage (R=2 guarantees single-node loss, not correlated loss).
    coverages = [float(row[3]) for row in rows]
    assert coverages[0] == 1.0
    assert coverages == sorted(coverages, reverse=True)
    # Faults cost work: the faultiest sweep is no cheaper than fault-free.
    inflations = [float(row[2].rstrip("x")) for row in rows]
    assert inflations[0] == 1.0
    assert inflations[-1] >= 1.0 - 1e-9
