"""Benchmark + reproduction of Table 5: general web documents and news.

Paper Table 5::

    SM (Petroleum, Web)        precision 86%  accuracy 90%
    SM (Pharmaceutical, Web)   precision 91%  accuracy 93%
    SM (Petroleum, News)       precision 88%  accuracy 91%
    ReviewSeer (Web)                          accuracy 38%  (68% w/o I class)

The headline claim: the NLP miner keeps ~90% accuracy on I-class-heavy
general web text while sentence-level statistical classification
collapses — "the results on general web documents are significantly
better than those of the state of the art algorithms by a wide margin".
"""

from conftest import run_once

from repro.eval import table5


def test_table5_general_web(benchmark, scale, seed, report):
    result = run_once(benchmark, table5, seed=seed, scale=scale)
    report(result.render())

    for row in result.rows:
        assert row.sm_precision >= 0.75
        assert row.sm_accuracy >= 0.80
        # the wide-margin claim
        assert row.sm_accuracy > result.reviewseer_accuracy + 0.25

    assert result.reviewseer_accuracy < 0.6
    assert result.reviewseer_accuracy_no_i > result.reviewseer_accuracy
    assert 0.6 <= result.i_class_fraction <= 0.9  # paper: 60-90%
