"""Benchmark + reproduction: feature extraction precision (Section 4.1).

Paper: bBNP-L precision 97% (digital cameras) and 100% (music), judged
by two human subjects whose agreed labels define a hit.
"""

from conftest import run_once

from repro.eval import feature_precision


def test_feature_precision_camera(benchmark, scale, seed, report):
    result = run_once(benchmark, feature_precision, "digital_camera", seed=seed, scale=scale)
    report(result.render())
    assert result.precision >= 0.85


def test_feature_precision_music(benchmark, scale, seed, report):
    result = run_once(benchmark, feature_precision, "music", seed=seed, scale=scale)
    report(result.render())
    assert result.precision >= 0.85
