"""Benchmark + reproduction of Figure 2: predefined-subject mining.

Covers both halves of the figure: the pipeline (spotter → disambiguator
→ context → analyzer) timed end to end, and the inset "Digital Camera
Customer Satisfaction" chart (% positive sentiment per product and
feature).
"""

from conftest import run_once

from repro.eval import figure2_satisfaction


def test_figure2_customer_satisfaction(benchmark, scale, seed, report):
    result = run_once(benchmark, figure2_satisfaction, seed=seed, scale=scale)
    report(result.render())

    assert result.features == ["picture quality", "battery", "flash"]
    assert len(result.satisfaction) >= 3
    for by_feature in result.satisfaction.values():
        for value in by_feature.values():
            assert 0.0 <= value <= 1.0
