"""Benchmark: availability and restore latency through crash-restart recovery.

Runs the restart-enabled serving scenario across several chaos seeds and
writes ``BENCH_recovery.json``.  Each seeded run kills an index node
mid-run, restarts it inside the run, and lets the
:class:`~repro.platform.recovery.RecoveryManager` re-replicate, catch the
rejoined node up by anti-entropy, and re-admit it through breaker probes.
The contract under test:

* ≥99% of requests are answered well-formed and in-deadline *while*
  recovery is happening (availability gate);
* nothing is ever served after its deadline;
* the cluster settles — replication factor restored, WAL drained, no
  divergent replicas — before the run report is cut;
* the p95 restore duration (death to RF restored, in sim time) stays
  under a fixed ceiling across all seeds;
* the same seed reproduces the identical report byte-for-byte.
"""

import json
import os

from conftest import run_once

from repro.eval.reporting import format_table
from repro.obs import Obs, SLOMonitor, default_serving_slos
from repro.platform.serving import LoadProfile, build_scenario

SEED = 2005
DOCS = 24
REQUESTS = 200
CHAOS_SEEDS = (3, 5, 7, 11, 13)
#: Gentler service-fault pressure than bench_serving: this bench isolates
#: the cost of node loss + recovery, not request-level fault soak.
FAULT_FRACTION = 0.02
#: Acceptance thresholds.
MIN_AVAILABILITY = 0.99
MAX_P95_RESTORE = 40.0  # sim-time units, death → RF restored

OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_recovery.json")


def _run(chaos_seed: int) -> dict:
    obs = Obs.enabled()
    scenario = build_scenario(
        seed=SEED,
        docs=DOCS,
        chaos_seed=chaos_seed,
        fault_fraction=FAULT_FRACTION,
        profile=LoadProfile(requests=REQUESTS),
        obs=obs,
        slo=SLOMonitor(obs, default_serving_slos()),
        restarts=True,
    )
    return scenario.run()


def _percentile(values, q):
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _bench() -> dict:
    reports = {seed: _run(seed) for seed in CHAOS_SEEDS}
    repeat = _run(CHAOS_SEEDS[0])
    return {"reports": reports, "repeat": repeat}


def test_bench_recovery(benchmark, report):
    results = run_once(benchmark, _bench)
    reports, repeat = results["reports"], results["repeat"]

    # Determinism: same seed, byte-identical report — including every
    # recovery event, transfer count, and restore duration.
    assert json.dumps(reports[CHAOS_SEEDS[0]], sort_keys=True) == json.dumps(
        repeat, sort_keys=True
    )

    restore_durations = []
    for seed, run in reports.items():
        recovery = run["recovery"]
        # The full lifecycle ran: a death, a rejoin, and re-admission.
        assert recovery["deaths"] >= 1, f"seed {seed}: no node death"
        assert recovery["rejoins"] >= 1, f"seed {seed}: node never rejoined"
        assert recovery["transfers"] >= 1, f"seed {seed}: nothing re-replicated"
        # The cluster healed completely before the report was cut.
        assert recovery["settled"] is True, f"seed {seed}: did not settle"
        assert recovery["under_replicated"] == []
        # Availability during recovery.
        assert run["malformed_responses"] == 0
        assert run["late_responses"] == 0, "nothing is served past its deadline"
        assert run["availability"] >= MIN_AVAILABILITY, (
            f"seed {seed}: availability {run['availability']:.4f}"
        )
        restore_durations.extend(recovery["restore_durations"])

    assert restore_durations, "no restore durations were recorded"
    p95_restore = _percentile(restore_durations, 0.95)
    assert p95_restore <= MAX_P95_RESTORE

    availabilities = [run["availability"] for run in reports.values()]
    payload = {
        "chaos_seeds": list(CHAOS_SEEDS),
        "requests": REQUESTS,
        "fault_fraction": FAULT_FRACTION,
        "min_availability": min(availabilities),
        "p95_restore_duration": p95_restore,
        "restore_durations": restore_durations,
        "deterministic": True,
        "runs": {
            str(seed): {
                "availability": run["availability"],
                "p99_latency": run["p99_latency"],
                "recovery": run["recovery"],
            }
            for seed, run in reports.items()
        },
    }
    with open(OUT_PATH, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=2, sort_keys=True)
        stream.write("\n")

    rows = [
        [
            seed,
            f"{run['availability']:.4f}",
            run["recovery"]["transfers"],
            run["recovery"]["docs_shipped"],
            f"{max(run['recovery']['restore_durations'], default=0.0):.2f}",
            run["recovery"]["probes_admitted"],
        ]
        for seed, run in reports.items()
    ]
    report(
        format_table(
            ["chaos seed", "availability", "transfers", "docs", "restore", "probes"],
            rows,
            title=(
                f"recovery under crash-restart ({REQUESTS} requests/seed, "
                f"p95 restore {p95_restore:.2f})"
            ),
        )
    )
