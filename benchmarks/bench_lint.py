"""Benchmark: cold vs. warm-cache `repro lint` over the shipped source.

The whole-program pass (import graph, call graph, CFG summaries) made
lint a per-commit tool, so it must stay fast: the content-hash cache
has to turn the expensive half of the run — parsing and per-file rule
checks — into a lookup.  The gate asserts a warm run over an unchanged
tree (a) re-analyzes zero files and (b) takes at most
``MAX_WARM_FRACTION`` of the cold wall time, and that cold and warm
runs produce identical findings.  Results go to ``BENCH_lint.json``
for CI trend tracking.
"""

import json
import os
import time

from conftest import emit

from repro.analysis import (
    Linter,
    SuppressionConfig,
    default_code_rules,
    default_program_rules,
)
from repro.eval.reporting import format_table

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
SRC = os.path.join(REPO_ROOT, "src", "repro")
CONFIG = os.path.join(REPO_ROOT, "lint-suppressions.json")
OUT_PATH = os.path.join(REPO_ROOT, "BENCH_lint.json")

ROUNDS = 3
#: Warm-cache wall-time budget as a fraction of the cold run.
MAX_WARM_FRACTION = 0.5


def make_linter(cache_path):
    return Linter(
        code_rules=default_code_rules(),
        program_rules=default_program_rules(
            reference_roots=(
                os.path.join(REPO_ROOT, "tests"),
                os.path.join(REPO_ROOT, "benchmarks"),
            )
        ),
        suppressions=SuppressionConfig.load(CONFIG),
        cache_path=cache_path,
    )


def timed_lint(cache_path):
    linter = make_linter(cache_path)
    start = time.perf_counter()
    report = linter.lint([SRC])
    return time.perf_counter() - start, report


def test_bench_lint_warm_cache(tmp_path):
    cache_path = tmp_path / "lint-cache.json"

    cold_best = warm_best = float("inf")
    cold_report = warm_report = None
    for _ in range(ROUNDS):
        cache_path.unlink(missing_ok=True)
        cold_elapsed, cold_report = timed_lint(cache_path)
        warm_elapsed, warm_report = timed_lint(cache_path)
        cold_best = min(cold_best, cold_elapsed)
        warm_best = min(warm_best, warm_elapsed)

    # The cache must be semantically invisible ...
    assert [f.to_dict() for f in warm_report.findings] == [
        f.to_dict() for f in cold_report.findings
    ]
    assert cold_report.files_checked == warm_report.files_checked > 80
    # ... do all per-file work exactly once ...
    assert cold_report.files_reanalyzed == cold_report.files_checked
    assert warm_report.files_reanalyzed == 0
    # ... and pay for it: warm runs keep only the program/data passes.
    fraction = warm_best / cold_best
    emit(
        format_table(
            ["run", "best seconds", "files re-analyzed"],
            [
                ["cold cache", f"{cold_best:.4f}", str(cold_report.files_reanalyzed)],
                ["warm cache", f"{warm_best:.4f}", str(warm_report.files_reanalyzed)],
                ["warm/cold", f"{fraction:.2f}x", ""],
            ],
            title=f"lint cache: src tree, best of {ROUNDS}",
        )
    )
    assert fraction <= MAX_WARM_FRACTION, (
        f"warm lint took {fraction:.2f}x of the cold run "
        f"(budget {MAX_WARM_FRACTION:.2f}x)"
    )

    with open(OUT_PATH, "w", encoding="utf-8") as stream:
        json.dump(
            {
                "rounds": ROUNDS,
                "files_checked": cold_report.files_checked,
                "cold_best_seconds": cold_best,
                "warm_best_seconds": warm_best,
                "warm_fraction": fraction,
                "max_warm_fraction": MAX_WARM_FRACTION,
                "cold_files_reanalyzed": cold_report.files_reanalyzed,
                "warm_files_reanalyzed": warm_report.files_reanalyzed,
                "unsuppressed_errors": len(
                    [f for f in cold_report.unsuppressed() if int(f.severity) == 2]
                ),
            },
            stream,
            indent=2,
            sort_keys=True,
        )
        stream.write("\n")
