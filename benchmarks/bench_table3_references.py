"""Benchmark + reproduction of Table 3: product vs feature references.

Paper: in the camera D+ collection, 15 products drew 2,474 references
while 55 feature terms drew 30,616 — features are referenced ~12.4x more
often, "a rough indicator of the frequency of sentiment expressions
involving the feature terms."
"""

from conftest import run_once

from repro.eval import table3


def test_table3_reference_counts(benchmark, scale, seed, report):
    result = run_once(benchmark, table3, seed=seed, scale=scale)
    report(result.render())
    assert result.total_feature_refs > result.total_product_refs
    assert result.ratio > 5  # paper: ~12.4x
    assert result.total_products >= 7
