"""Benchmark + reproduction of Figures 4-5: the reputation GUI views.

Figure 4 lists per-product sentiment with masked names ("Product A" ...);
Figure 5 lists sentiment-bearing sentences for one product.  Both views
are served through the hosted Vinci services, timed end to end from
ingest to render.
"""

from conftest import run_once

from repro.apps import ReputationManager
from repro.core import Subject
from repro.corpora import PHARMACEUTICAL, pharmaceutical_web


def _build_and_render(scale: float, seed: int):
    dataset = pharmaceutical_web(seed=seed, scale=scale)
    manager = ReputationManager(
        [Subject(p) for p in PHARMACEUTICAL.products], num_partitions=8, num_nodes=4
    )
    manager.load_documents((d.doc_id, d.text) for d in dataset.dplus)
    manager.build()
    summary_view = manager.render_product_summary(mask_names=True)
    top = manager.summaries()[0]
    sentence_view = manager.render_sentences(top.subject, limit=5)
    return manager, summary_view, sentence_view


def test_figures_4_and_5_reputation_views(benchmark, scale, seed, report):
    manager, summary_view, sentence_view = run_once(benchmark, _build_and_render, scale, seed)
    report(summary_view + "\n\n" + sentence_view)

    # Figure 4: masked names, all tracked products listed.
    assert "Product A" in summary_view
    assert all(p not in summary_view for p in PHARMACEUTICAL.products)
    # Figure 5: evidence sentences with polarities.
    assert "Figure 5" in sentence_view
    # Services stay live for follow-up queries.
    counts = manager.bus.request(
        "sentiment.counts", {"subject": PHARMACEUTICAL.products[0]}
    )
    assert counts["ok"] is True and counts["api_version"] == "v1"
    assert set(counts["data"]) == {"subject", "positive", "negative"}
