"""Platform microbenchmarks: throughput of the substrate components.

These are true pytest-benchmark microbenchmarks (multiple rounds) for
the pieces whose speed limits corpus-scale runs: the analyzer, the
tokenizer/tagger, the data store, and the inverted index.
"""

import pytest

from repro.core import SentimentAnalyzer, Subject
from repro.corpora import DIGITAL_CAMERA, ReviewGenerator
from repro.nlp import default_tagger, split_sentences, tokenize
from repro.platform import DataStore, Entity, InvertedIndex

TEXT = (
    "The camera takes excellent pictures in daylight, but the battery "
    "life is disappointing and the flash never works indoors."
)


@pytest.fixture(scope="module")
def review_docs():
    return [d.text for d in ReviewGenerator(DIGITAL_CAMERA, seed=1).generate_dplus(30)]


def test_bench_tokenizer(benchmark):
    tokens = benchmark(tokenize, TEXT)
    assert len(tokens) > 15


def test_bench_tagger(benchmark):
    tagger = default_tagger()
    (sentence,) = split_sentences(TEXT.replace("pictures in daylight, but the", "pictures, and the"))

    result = benchmark(tagger.tag, sentence)
    assert len(result) == len(sentence)


def test_bench_analyzer_sentence(benchmark):
    analyzer = SentimentAnalyzer()
    subjects = [Subject("camera"), Subject("battery life"), Subject("flash")]

    judgments = benchmark(analyzer.analyze_text, TEXT, subjects)
    assert len(judgments) == 3


def test_bench_datastore_store_get(benchmark):
    store = DataStore(num_partitions=8)
    entity = Entity(entity_id="bench", content=TEXT)

    def op():
        store.store(entity)
        return store.get("bench")

    assert benchmark(op) is not None


def test_bench_index_build(benchmark, review_docs):
    def build():
        index = InvertedIndex()
        for i, text in enumerate(review_docs):
            index.add_entity(Entity(entity_id=f"d{i}", content=text))
        return index

    index = benchmark(build)
    assert index.document_count == len(review_docs)


def test_bench_boolean_query(benchmark, review_docs):
    index = InvertedIndex()
    for i, text in enumerate(review_docs):
        index.add_entity(Entity(entity_id=f"d{i}", content=text))

    hits = benchmark(index.search, '"battery life" OR (flash AND NOT zoom)')
    assert isinstance(hits, set)
