"""Benchmark: hot-path throughput, optimized pipeline vs. naive reference.

Mines a syndication-heavy corpus (each base review republished under
several document ids, the shape that motivated the hot path) two ways:

* **reference** — the naive implementations kept alive for the
  differential harness: n-gram window spotter, no split/tag/parse
  memoisation, one full pipeline pass per document (``mine_corpus``);
* **optimized** — the production path: Aho–Corasick spotter, bounded
  split/tag/parse memos, batched stage loops (``mine_batch``).

Both runs must produce byte-identical judgments and stats — speed is
the *only* permitted difference.  The gate fails if the median paired
wall-clock speedup drops below ``MIN_SPEEDUP`` or the batched path's
simulated throughput falls below ``DOCS_PER_SIM_SEC_FLOOR`` (stage cost
is charged per batch, not per document, so the sim-clock series is
deterministic).  Results go to ``BENCH_throughput.json`` so CI can
track both ratios over time.
"""

import json
import os
import sys
import time

from conftest import emit

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
if REPO_ROOT not in sys.path:
    sys.path.insert(0, REPO_ROOT)

from repro.core import SentimentMiner, Subject
from repro.corpora import DIGITAL_CAMERA, ReviewGenerator
from repro.eval.reporting import format_table
from repro.obs import Obs

from tests.support.reference import reference_miner

#: Distinct base reviews, and how many syndicated copies of each.
BASE_DOCS = 10
SYNDICATION = 8
#: Interleaved reference/optimized rounds; the gate uses the median
#: paired ratio, so a noisy neighbour slowing one round hits both sides.
ROUNDS = 7
#: The optimized path must stay at least this much faster (wall-clock).
MIN_SPEEDUP = 2.0
#: Simulated throughput floor for the batched path (docs per sim-sec).
#: Deterministic: mine_batch charges STAGE_COST per stage per *batch*,
#: so regressing to per-document stage cost trips this immediately.
DOCS_PER_SIM_SEC_FLOOR = 50.0
OUT_PATH = os.path.join(REPO_ROOT, "BENCH_throughput.json")


def _corpus() -> list[tuple[str, str]]:
    base = ReviewGenerator(DIGITAL_CAMERA, seed=42).generate_dplus(BASE_DOCS)
    return [
        (f"{doc.doc_id}~syn{copy}", doc.text)
        for doc in base
        for copy in range(SYNDICATION)
    ]


def _subjects() -> list[Subject]:
    return [Subject(p) for p in DIGITAL_CAMERA.products] + [
        Subject(f) for f in DIGITAL_CAMERA.features
    ]


def _reference_run(documents, subjects):
    obs = Obs.default()
    miner = reference_miner(subjects, obs=obs)
    start = time.perf_counter()
    result = miner.mine_corpus(documents)
    return time.perf_counter() - start, obs.clock.now, result


def _optimized_run(documents, subjects):
    obs = Obs.default()
    miner = SentimentMiner(subjects=subjects, obs=obs)
    start = time.perf_counter()
    result = miner.mine_batch(documents)
    return time.perf_counter() - start, obs.clock.now, result


def test_bench_throughput():
    documents = _corpus()
    subjects = _subjects()

    _reference_run(documents, subjects)
    _optimized_run(documents, subjects)
    ref_best = opt_best = float("inf")
    ref_result = opt_result = None
    ratios = []
    ref_sim = opt_sim = 0.0
    for _ in range(ROUNDS):
        ref_elapsed, ref_sim, ref_result = _reference_run(documents, subjects)
        opt_elapsed, opt_sim, opt_result = _optimized_run(documents, subjects)
        ref_best = min(ref_best, ref_elapsed)
        opt_best = min(opt_best, opt_elapsed)
        ratios.append(ref_elapsed / opt_elapsed)
    ratios.sort()
    speedup = ratios[len(ratios) // 2]

    # The optimization contract: identical output, only faster.
    assert opt_result.judgments == ref_result.judgments
    assert opt_result.stats == ref_result.stats

    docs = len(documents)
    opt_docs_per_sim_sec = docs / opt_sim if opt_sim else float("inf")
    ref_docs_per_sim_sec = docs / ref_sim if ref_sim else float("inf")

    payload = {
        "base_docs": BASE_DOCS,
        "syndication": SYNDICATION,
        "documents": docs,
        "rounds": ROUNDS,
        "judgments": len(opt_result.judgments),
        "reference_best_seconds": ref_best,
        "optimized_best_seconds": opt_best,
        "paired_ratios": ratios,
        "speedup_vs_reference": speedup,
        "min_speedup": MIN_SPEEDUP,
        "reference_docs_per_sim_sec": ref_docs_per_sim_sec,
        "optimized_docs_per_sim_sec": opt_docs_per_sim_sec,
        "docs_per_sim_sec_floor": DOCS_PER_SIM_SEC_FLOOR,
    }
    with open(OUT_PATH, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=2, sort_keys=True)
        stream.write("\n")

    emit(
        format_table(
            ["path", "best seconds", "docs/sim-sec"],
            [
                ["reference (naive)", f"{ref_best:.4f}", f"{ref_docs_per_sim_sec:.1f}"],
                ["optimized (AC+memo+batch)", f"{opt_best:.4f}", f"{opt_docs_per_sim_sec:.1f}"],
                ["median speedup", f"{speedup:.2f}x", ""],
            ],
            title=f"hot-path throughput ({docs} docs, {ROUNDS} paired rounds)",
        )
    )
    assert speedup >= MIN_SPEEDUP, (
        f"median speedup {speedup:.2f}x fell below the {MIN_SPEEDUP:.1f}x gate"
    )
    assert opt_docs_per_sim_sec >= DOCS_PER_SIM_SEC_FLOOR, (
        f"batched throughput {opt_docs_per_sim_sec:.1f} docs/sim-sec "
        f"below floor {DOCS_PER_SIM_SEC_FLOOR:.1f}"
    )
