#!/usr/bin/env python3
"""Market trend tracking: the paper's reputation-over-time use case.

Run:  python examples/trend_tracking.py

A six-month synthetic news stream is mined document by document; the
trend tracker buckets the polar judgments by month and reports which
companies are moving.
"""

from repro.apps.trends import TrendTracker
from repro.core import SentimentMiner, Subject
from repro.corpora.trending import TrendingNewsGenerator, TrendScenario, default_scenario
from repro.corpora.vocab import PETROLEUM


def main() -> None:
    base = default_scenario()
    scenario = TrendScenario(
        declining=base.declining,
        improving=base.improving,
        months=6,
        documents_per_month=25,
    )
    stream = TrendingNewsGenerator(seed=42).generate(scenario)
    print(f"mining {len(stream)} dated news documents "
          f"({scenario.months} months x {scenario.documents_per_month}/month)\n")

    miner = SentimentMiner(subjects=[Subject(p) for p in PETROLEUM.products])
    tracker = TrendTracker()
    for document, date in stream:
        for judgment in miner.mine_document(document.text, document.doc_id).polar_judgments():
            tracker.add(judgment, date)

    for subject, direction in tracker.movers():
        print(f"*** {subject} is {direction} ***")
    print()
    print(tracker.series(scenario.declining).render())
    print()
    print(tracker.series(scenario.improving).render())


if __name__ == "__main__":
    main()
