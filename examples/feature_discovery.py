#!/usr/bin/env python3
"""Feature term discovery with the bBNP + likelihood-ratio algorithm.

Run:  python examples/feature_discovery.py

Section 4.1 of the paper: candidate feature terms are definite base noun
phrases opening a sentence ("The battery lasts ..."), scored by Dunning's
likelihood-ratio test against an off-topic background collection.
"""

from repro.core import FeatureExtractionConfig, FeatureExtractor
from repro.corpora import camera_reviews, music_reviews
from repro.eval import FeatureJudgePanel, format_table
from repro.corpora import DIGITAL_CAMERA, MUSIC


def discover(name, dataset, vocab):
    extractor = FeatureExtractor(FeatureExtractionConfig(min_support=3, top_n=20))
    features = extractor.extract(dataset.dplus_texts(), dataset.dminus_texts())
    panel = FeatureJudgePanel(vocab)
    precision = panel.precision([f.term for f in features])
    rows = [
        [i + 1, f.term, f"{f.score:.1f}", f.dplus_count, f.dminus_count]
        for i, f in enumerate(features)
    ]
    print(
        format_table(
            ["rank", "feature term", "-2 log λ", "C11 (D+)", "C12 (D-)"],
            rows,
            title=f"{name}: top feature terms (judged precision {precision:.0%})",
        )
    )
    print()


def main() -> None:
    discover("Digital cameras", camera_reviews(scale=0.1), DIGITAL_CAMERA)
    discover("Music albums", music_reviews(scale=0.1), MUSIC)


if __name__ == "__main__":
    main()
