#!/usr/bin/env python3
"""Quickstart: target-level sentiment analysis in a few lines.

Run:  python examples/quickstart.py

The paper's key idea: instead of classifying a whole document, assign a
polarity to *each subject occurrence* via sentence parsing, a sentiment
lexicon and the predicate pattern database.
"""

from repro import SentimentAnalyzer, Subject

# Sentences from (or modelled on) the paper's own examples.
TEXT = """
I am impressed by the picture quality. This camera takes excellent
pictures, but the battery life is disappointing. The company offers
high quality products. Unlike the more recent T series CLIEs, the NR70
offers superb MP3 playback. The colors are vibrant. The flash fails to
impress.
"""

SUBJECTS = [
    Subject("picture quality"),
    Subject("camera", synonyms=("cam",)),
    Subject("battery life"),
    Subject("company"),
    Subject("NR70", synonyms=("NR70 series",)),
    Subject("T series CLIEs"),
    Subject("colors", synonyms=("color",)),
    Subject("flash"),
]


def main() -> None:
    analyzer = SentimentAnalyzer()
    judgments = analyzer.analyze_text(TEXT, SUBJECTS)
    print(f"{'subject':<18} {'polarity':<8} explanation")
    print("-" * 64)
    for judgment in judgments:
        subject, polarity = judgment.as_pair()
        print(f"{subject:<18} {polarity:<8} {judgment.provenance.describe()}")


if __name__ == "__main__":
    main()
