#!/usr/bin/env python3
"""Reputation management over the full simulated WebFountain platform.

Run:  python examples/reputation_dashboard.py

Reproduces the paper's proof-of-concept application end to end:
synthetic camera reviews are ingested into the partitioned data store,
the Figure-2 miner pipeline (tokenizer → tagger → spotter → sentiment
miner) runs on the simulated cluster, indices are built, and the
Figure-4/Figure-5 views render — including the masked product names the
paper's screenshots show.
"""

from repro.apps import ReputationManager
from repro.core import Subject
from repro.corpora import DIGITAL_CAMERA, camera_reviews


def main() -> None:
    dataset = camera_reviews(scale=0.06)
    print(f"generated {len(dataset.dplus)} synthetic camera reviews\n")

    subjects = [Subject(name) for name in DIGITAL_CAMERA.products]
    manager = ReputationManager(subjects, num_partitions=8, num_nodes=4)
    manager.load_documents((d.doc_id, d.text) for d in dataset.dplus)
    manager.build()

    print(manager.render_product_summary(mask_names=True))
    print()

    # Pick the most-discussed product and list its evidence (Figure 5).
    top = manager.summaries()[0]
    print(manager.render_sentences(top.subject, limit=5))
    print()

    print(manager.render_satisfaction_chart([s.canonical for s in subjects[:5]]))
    print()

    # Hosted services remain queryable over the Vinci bus.
    hits = manager.bus.request("search.query", {"q": '"battery life" AND disappointing'})
    print(f'pages matching \'"battery life" AND disappointing\': {hits["data"]["total"]}')


if __name__ == "__main__":
    main()
