#!/usr/bin/env python3
"""Mode B: sentiment about subjects nobody pre-registered.

Run:  python examples/open_subject_queries.py

Figure 3's pipeline: named entities are discovered by the capitalized-
noun-phrase spotter, sentiment-bearing sentences are analyzed offline,
and the results land in a sentiment index that answers arbitrary subject
queries at interactive speed.
"""

from repro.core import Polarity, SentimentMiner
from repro.corpora import PHARMACEUTICAL, pharmaceutical_web
from repro.eval import format_table
from repro.platform import SentimentIndex


def main() -> None:
    dataset = pharmaceutical_web(scale=0.12)
    print(f"mining {len(dataset.dplus)} general web pages (pharma domain)...")

    miner = SentimentMiner()  # no subjects: open mode
    index = SentimentIndex()
    for document in dataset.dplus:
        result = miner.mine_open_document(document.text, document.doc_id)
        index.add_all(result.judgments)
    print(f"sentiment index: {len(index)} polar judgments, "
          f"{len(index.subjects())} subjects discovered\n")

    rows = []
    for subject in index.subjects()[:10]:
        counts = index.counts(subject)
        rows.append([subject, counts[Polarity.POSITIVE], counts[Polarity.NEGATIVE]])
    print(format_table(["discovered subject", "positive", "negative"], rows))
    print()

    # Query-time lookups for subjects the user names ad hoc.
    for company in PHARMACEUTICAL.products[:3]:
        entries = index.query(company)
        print(f"{company}: {len(entries)} indexed sentiments")
        for entry in entries[:2]:
            print(f"  [{entry.polarity.value}] in {entry.entity_id}")


if __name__ == "__main__":
    main()
