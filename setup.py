"""Setup shim.

The execution environment has no network access and no ``wheel`` package,
so PEP 517 editable installs (which need ``bdist_wheel``) fail.  This shim
lets ``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``python setup.py develop``) work offline.  Metadata mirrors pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Sentiment Mining in WebFountain' (Yi & Niblack, "
        "ICDE 2005)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
