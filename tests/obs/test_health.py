"""The ops health surface: snapshot assembly and text rendering."""

import json

import pytest

from repro.obs import (
    Obs,
    SLOMonitor,
    default_serving_slos,
    health_snapshot,
    render_health,
)


@pytest.fixture(scope="module")
def scenario():
    from repro.platform.serving import LoadProfile, build_scenario

    obs = Obs.enabled()
    slo = SLOMonitor(obs, default_serving_slos())
    built = build_scenario(
        obs=obs,
        docs=12,
        batches=3,
        chaos_seed=7,
        profile=LoadProfile(requests=60),
        slo=slo,
    )
    built.run()
    return built, obs, slo


@pytest.fixture(scope="module")
def snapshot(scenario):
    built, obs, slo = scenario
    return health_snapshot(
        obs, router=built.router, live_indexer=built.live_indexer, slo=slo
    )


class TestSnapshot:
    def test_minimal_snapshot_needs_only_obs(self):
        snap = health_snapshot(Obs.enabled())
        assert set(snap) == {"sim_time", "memos", "stage_latency"}
        assert set(snap["memos"]) == {"split", "tag", "parse"}

    def test_serving_section(self, snapshot):
        serving = snapshot["serving"]
        assert serving["queue_depth"] == 0
        assert sum(serving["responses"].values()) == 60
        assert len(serving["breakers"]) == 4
        for breaker in serving["breakers"]:
            assert breaker["state"] in ("closed", "open", "half-open")

    def test_index_section_lists_every_replica(self, snapshot):
        index = snapshot["index"]
        assert len(index["replicas"]) == 16  # 8 shards x replication 2
        assert index["current_version"] >= 1
        assert index["compaction_backlog"] >= 0
        assert index["max_segment_count"] >= 1

    def test_ingest_section_mirrors_live_indexer(self, scenario, snapshot):
        built, _, _ = scenario
        ingest = snapshot["ingest"]
        assert ingest["batches_applied"] == built.live_indexer.batches_applied == 3
        assert (
            ingest["documents_indexed"] == built.live_indexer.documents_indexed
        )
        # The per-source ingest.docs series is fed by IngestionManager;
        # this scenario feeds deltas straight to the live indexer.
        assert ingest["docs"] == {}

    def test_memo_rates_populated_by_mining(self, snapshot):
        memos = snapshot["memos"]
        assert memos["tag"]["misses"] > 0
        assert memos["parse"]["misses"] > 0
        for stats in memos.values():
            lookups = stats["hits"] + stats["misses"]
            if lookups:
                assert stats["hit_rate"] == pytest.approx(
                    stats["hits"] / lookups, abs=1e-4
                )

    def test_stage_latency_carries_exemplar_traces(self, snapshot):
        stages = snapshot["stage_latency"]
        assert {"queue_wait", "read", "total", "ingest_lag"} <= set(stages)
        for summary in stages.values():
            assert summary["count"] > 0
            assert summary["p95_le"] >= summary["p50_le"] >= 0
        # With tracing on, the request-latency histogram's p95 bucket
        # names a real trace an operator can pull from the dump.
        assert stages["total"]["p95_exemplar_trace"] > 0

    def test_slo_section_present(self, snapshot):
        slos = {s["slo"] for s in snapshot["slo"]["slos"]}
        assert slos == {"availability", "latency_p95", "freshness_p95"}

    def test_snapshot_is_json_safe(self, snapshot):
        parsed = json.loads(json.dumps(snapshot))
        assert parsed["serving"]["queue_depth"] == 0


class TestRender:
    def test_render_names_every_section(self, snapshot):
        text = render_health(snapshot)
        for heading in ("serving", "index", "ingest", "memos",
                        "stage latency", "slo"):
            assert heading in text
        assert "breaker serving.node0" in text
        assert "hit_rate=" in text

    def test_render_minimal_snapshot(self):
        text = render_health(health_snapshot(Obs.enabled()))
        assert text.startswith("health @ sim_time=")
        assert "memos" in text
        assert "serving" not in text
