"""Unit tests for JSONL export and console rendering."""

import json

from repro.obs import Obs
from repro.obs.audit import KEPT, AuditTrail
from repro.obs.export import (
    read_trace,
    render_audit,
    render_dump,
    render_metric_records,
    render_span_tree,
    write_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


def make_populated_obs() -> Obs:
    obs = Obs.enabled()
    with obs.tracer.span("root", kind="test"):
        obs.clock.advance(1.0)
        with obs.tracer.span("child"):
            obs.clock.advance(0.5)
    obs.metrics.counter("requests", service="svc").inc(3)
    obs.metrics.histogram("latency", buckets=(1.0,)).observe(0.2)
    obs.audit.record_spot("camera", KEPT, "global-pass", global_score=2.0)
    return obs


class TestJsonlRoundtrip:
    def test_write_and_read_trace(self, tmp_path):
        obs = make_populated_obs()
        path = str(tmp_path / "trace.jsonl")
        count = obs.write(path)
        with open(path, encoding="utf-8") as stream:
            lines = [json.loads(line) for line in stream if line.strip()]
        assert count == len(lines)
        assert {line["type"] for line in lines} == {"span", "metric", "audit"}

        dump = read_trace(path)
        assert [s.name for s in dump.spans] == ["root", "child"]
        assert dump.spans[0].attributes == {"kind": "test"}
        assert {r["name"] for r in dump.metrics} == {"requests", "latency"}
        assert dump.audit[0].subject == "camera"
        assert not dump.empty

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "span", "name": "s", "span_id": 1}\n\n')
        dump = read_trace(str(path))
        assert len(dump.spans) == 1


class TestRendering:
    def test_span_tree_shows_hierarchy_and_durations(self):
        obs = make_populated_obs()
        text = render_span_tree(obs.tracer.spans())
        lines = text.splitlines()
        assert lines[0].startswith("root (1.500u)")
        assert "kind=test" in lines[0]
        assert lines[1].startswith("└─ child (0.500u)")

    def test_span_tree_empty(self):
        assert render_span_tree([]) == "(no spans)"

    def test_error_status_visible(self):
        tracer = Tracer()
        try:
            with tracer.span("bad"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert "!error" in render_span_tree(tracer.spans())

    def test_metric_records_match_registry_render(self):
        registry = MetricsRegistry()
        registry.counter("c", k="v").inc(2)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        assert render_metric_records(registry.to_records()) == registry.render()

    def test_audit_rendering_and_limit(self):
        trail = AuditTrail()
        for i in range(5):
            trail.record_sentiment(
                f"s{i}", "+", "pattern-match", pattern="be CP SP",
                lexicon_entries=("great",), negated=(i == 0),
            )
        text = render_audit(trail.entries, limit=2)
        assert "pattern[be CP SP]" in text
        assert "words[great]" in text
        assert "negated" in text
        assert "... 3 more" in text

    def test_render_dump_sections(self, tmp_path):
        obs = make_populated_obs()
        path = str(tmp_path / "t.jsonl")
        obs.write(path)
        text = render_dump(read_trace(path))
        assert "spans (2):" in text
        assert "audit (1):" in text
        assert "metrics (2):" in text


class TestObsFacade:
    def test_default_is_zero_cost_on_trace_and_audit(self):
        obs = Obs.default()
        assert not obs.tracing
        assert not obs.auditing
        with obs.tracer.span("x"):
            pass
        assert obs.records() == []

    def test_enabled_shares_one_clock(self):
        obs = Obs.enabled()
        assert obs.tracer.clock is obs.clock
        assert obs.tracing and obs.auditing
