"""SLO burn-rate alerting: deterministic breach firing, silent baseline."""

import pytest

from repro.obs import AlertEvent, BurnWindow, Obs, SLOMonitor, SLOSpec
from repro.obs.slo import (
    AUDIT_KIND_SLO,
    AVAILABILITY,
    FIRING,
    FRESHNESS,
    LATENCY,
    RESOLVED,
    default_serving_slos,
)

#: A tight two-window availability SLO for scripted scenarios.
AVAIL = SLOSpec(
    name="availability",
    kind=AVAILABILITY,
    objective=0.9,
    windows=(BurnWindow(length=50.0, max_burn_rate=2.0),
             BurnWindow(length=10.0, max_burn_rate=2.0)),
)


def monitor(*specs):
    obs = Obs.enabled()
    return obs, SLOMonitor(obs, specs or (AVAIL,))


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind="throughput", objective=0.9)

    @pytest.mark.parametrize("objective", [0.0, 1.0, -0.5, 1.5])
    def test_objective_must_be_a_proper_fraction(self, objective):
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind=AVAILABILITY, objective=objective)

    def test_windows_required(self):
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind=AVAILABILITY, objective=0.9, windows=())

    def test_bad_window_parameters_rejected(self):
        with pytest.raises(ValueError):
            BurnWindow(length=0.0, max_burn_rate=1.0)
        with pytest.raises(ValueError):
            BurnWindow(length=1.0, max_burn_rate=0.0)

    def test_duplicate_spec_rejected(self):
        obs = Obs.enabled()
        with pytest.raises(ValueError):
            SLOMonitor(obs, (AVAIL, AVAIL))

    def test_error_budget_is_objective_complement(self):
        assert AVAIL.error_budget == pytest.approx(0.1)


class TestScriptedScenarios:
    def test_healthy_baseline_stays_silent(self):
        obs, slo = monitor()
        for _ in range(200):
            obs.clock.advance(0.5)
            slo.record_request("ok", 0.1)
            slo.evaluate()
        assert slo.alerts == []
        assert obs.metrics.value("slo.alerts", state=FIRING) == 0
        (status,) = slo.evaluate()
        assert status["firing"] is False

    def test_availability_breach_fires_deterministically(self):
        """The same scripted breach produces the same alert timeline twice."""

        def run():
            obs, slo = monitor()
            for _ in range(40):  # healthy warm-up
                obs.clock.advance(0.5)
                slo.record_request("ok", 0.1)
                slo.evaluate()
            for _ in range(30):  # sustained outage: everything sheds
                obs.clock.advance(0.5)
                slo.record_request("shed", 0.0)
                slo.evaluate()
            for _ in range(60):  # recovery
                obs.clock.advance(0.5)
                slo.record_request("ok", 0.1)
                slo.evaluate()
            return [(e.slo, e.state, e.at) for e in slo.alerts]

        first, second = run(), run()
        assert first == second
        assert [state for _, state, _ in first] == [FIRING, RESOLVED]

    def test_short_blip_does_not_page(self):
        """One bad burst inside a healthy long window never fires."""
        obs, slo = monitor()
        for _ in range(100):
            obs.clock.advance(0.5)
            slo.record_request("ok", 0.1)
            slo.evaluate()
        for _ in range(3):
            obs.clock.advance(0.5)
            slo.record_request("error", 0.1)
            slo.evaluate()
        for _ in range(20):
            obs.clock.advance(0.5)
            slo.record_request("ok", 0.1)
            slo.evaluate()
        assert slo.alerts == []

    def test_latency_and_freshness_classify_by_threshold(self):
        latency = SLOSpec(
            name="lat", kind=LATENCY, objective=0.5, threshold=1.0,
            windows=(BurnWindow(10.0, 1.5),),
        )
        fresh = SLOSpec(
            name="fresh", kind=FRESHNESS, objective=0.5, threshold=5.0,
            windows=(BurnWindow(10.0, 1.5),),
        )
        obs, slo = monitor(latency, fresh)
        obs.clock.advance(1.0)
        slo.record_request("ok", 2.0)   # over threshold: bad for lat
        slo.record_request("ok", 0.5)   # under: good
        slo.record_freshness(10.0)      # over: bad for fresh
        statuses = {s["slo"]: s for s in slo.evaluate()}
        assert statuses["lat"]["bad"] == 1
        assert statuses["lat"]["events"] == 2
        assert statuses["fresh"]["bad"] == 1
        assert statuses["fresh"]["events"] == 1


class TestAlertPlumbing:
    def breach(self):
        obs, slo = monitor()
        for _ in range(20):
            obs.clock.advance(0.5)
            slo.record_request("error", 0.1)
            slo.evaluate()
        return obs, slo

    def test_alert_mirrored_into_metrics_and_audit(self):
        obs, slo = self.breach()
        assert [e.state for e in slo.alerts] == [FIRING]
        assert obs.metrics.value("slo.alerts", state=FIRING) == 1
        assert obs.metrics.value("slo.burning", slo="availability") == 1.0
        assert obs.metrics.value("slo.burn_rate", slo="availability") > 2.0
        (entry,) = [e for e in obs.audit.entries if e.kind == AUDIT_KIND_SLO]
        assert entry.subject == "availability"
        assert entry.decision == FIRING
        assert dict(entry.detail)["at"] == slo.alerts[0].at

    def test_alert_event_record_shape(self):
        _, slo = self.breach()
        record = slo.alerts[0].to_record()
        assert record["type"] == "slo_alert"
        assert record["slo"] == "availability"
        assert record["state"] == FIRING
        assert all(len(pair) == 2 for pair in record["burn_rates"])

    def test_status_snapshot_bundles_statuses_and_alerts(self):
        _, slo = self.breach()
        snap = slo.status_snapshot()
        assert [s["slo"] for s in snap["slos"]] == ["availability"]
        assert snap["alerts"] == [e.to_record() for e in slo.alerts]

    def test_alerts_ride_the_export_stream(self, tmp_path):
        from repro.obs import read_trace

        obs, slo = self.breach()
        path = str(tmp_path / "slo.jsonl")
        obs.write(path)
        dump = read_trace(path)
        slo_entries = [e for e in dump.audit if e.kind == AUDIT_KIND_SLO]
        assert len(slo_entries) == 1
        assert slo_entries[0].decision == FIRING


class TestDefaults:
    def test_default_serving_slos_cover_the_three_kinds(self):
        kinds = {spec.kind for spec in default_serving_slos()}
        assert kinds == {AVAILABILITY, LATENCY, FRESHNESS}

    def test_alert_event_is_immutable(self):
        event = AlertEvent("x", FIRING, 1.0, ((10.0, 3.0),))
        with pytest.raises(AttributeError):
            event.state = RESOLVED
