"""Unit tests for the metrics registry."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_series,
)


class TestInstruments:
    def test_counter_only_goes_up(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.0)
        assert counter.value == 3.0
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_counter_set_for_view_adapters(self):
        counter = Counter()
        counter.set(7)
        assert counter.value == 7.0

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(5.0)
        gauge.inc(-2.0)
        assert gauge.value == 3.0

    def test_histogram_buckets_cumulative(self):
        hist = Histogram(buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == 55.5
        assert snap["le_1"] == 1
        assert snap["le_10"] == 2
        assert snap["le_inf"] == 3
        assert hist.mean == pytest.approx(18.5)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(5.0, 1.0))


class TestMetricsRegistry:
    def test_same_name_and_labels_is_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("req", service="x")
        b = registry.counter("req", service="x")
        assert a is b

    def test_labels_separate_series(self):
        registry = MetricsRegistry()
        registry.counter("req", service="x").inc()
        registry.counter("req", service="y").inc(2)
        assert registry.value("req", service="x") == 1.0
        assert registry.value("req", service="y") == 2.0
        assert len(list(registry.series("req"))) == 2

    def test_missing_series_reads_zero(self):
        assert MetricsRegistry().value("nope") == 0.0

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_snapshot_uses_formatted_keys(self):
        registry = MetricsRegistry()
        registry.counter("req", service="x").inc()
        registry.gauge("load").set(0.5)
        snap = registry.snapshot()
        assert snap["req{service=x}"] == 1.0
        assert snap["load"] == 0.5

    def test_to_records_roundtrips_types(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        records = {r["name"]: r for r in registry.to_records()}
        assert records["c"]["type"] == "metric"
        assert records["c"]["kind"] == "counter"
        assert records["h"]["kind"] == "histogram"
        assert records["h"]["count"] == 1

    def test_merge_sums_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b.histogram("h", buckets=(1.0,)).observe(2.0)
        b.gauge("g").set(9)
        a.merge(b)
        assert a.value("c") == 3.0
        hist = a.histogram("h", buckets=(1.0,))
        assert hist.count == 2
        assert a.value("g") == 9.0

    def test_render_one_line_per_series(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("b", k="v").inc(2)
        lines = registry.render().splitlines()
        assert lines == ["a  1", "b{k=v}  2"]

    def test_format_series(self):
        assert format_series("x", ()) == "x"
        assert format_series("x", (("a", "1"), ("b", "2"))) == "x{a=1,b=2}"
