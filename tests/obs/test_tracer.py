"""Unit tests for hierarchical spans over the simulated clock."""

import pytest

from repro.obs.clock import SimClock
from repro.obs.tracer import NULL_SPAN, NULL_TRACER, Span, Tracer, walk


class TestTracer:
    def test_nesting_links_parent_ids(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("sibling"):
                pass
        root, child, grandchild, sibling = tracer.spans()
        assert root.parent_id is None
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        assert sibling.parent_id == root.span_id

    def test_duration_is_simulated_cost(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("work"):
            clock.advance(2.5)
        (span,) = tracer.spans()
        assert span.duration == pytest.approx(2.5)
        assert span.finished

    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("kapow")
        (span,) = tracer.spans()
        assert span.status == "error"
        assert "kapow" in span.error
        assert tracer.current is None

    def test_exception_unwinds_abandoned_children(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                tracer.span("abandoned")  # entered on the stack, never exited
                raise RuntimeError
        assert tracer.current is None
        with tracer.span("next"):
            pass
        assert tracer.find("next")[0].parent_id is None

    def test_attributes_at_open_and_during(self):
        tracer = Tracer()
        with tracer.span("s", a=1) as span:
            span.set_attribute("b", 2)
        assert tracer.spans()[0].attributes == {"a": 1, "b": 2}

    def test_record_roundtrip(self):
        tracer = Tracer()
        with tracer.span("s", key="value"):
            pass
        original = tracer.spans()[0]
        clone = Span.from_record(original.to_record())
        assert clone == original

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        tracer.clear()
        assert tracer.spans() == []


class TestNullTracer:
    def test_span_returns_shared_inert_object(self):
        a = NULL_TRACER.span("x", k=1)
        b = NULL_TRACER.span("y")
        assert a is b is NULL_SPAN

    def test_null_span_accepts_span_surface(self):
        with NULL_TRACER.span("x") as span:
            span.set_attribute("k", "v")
        assert span.attributes == {}
        assert NULL_TRACER.spans() == []
        assert not NULL_TRACER.enabled

    def test_null_span_does_not_swallow_exceptions(self):
        with pytest.raises(ValueError):
            with NULL_TRACER.span("x"):
                raise ValueError


class TestWalk:
    def test_depth_first_with_depths(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        names = [(s.name, d) for s, d in walk(tracer.spans())]
        assert names == [("root", 0), ("a", 1), ("b", 1)]

    def test_orphans_promoted_to_roots(self):
        orphan = Span(name="orphan", span_id=5, parent_id=99, start=0.0, end=1.0)
        names = [(s.name, d) for s, d in walk([orphan])]
        assert names == [("orphan", 0)]
