"""Unit tests for the simulated clock."""

import pytest

from repro.obs.clock import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == 2.0

    def test_negative_advance_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_tick_is_monotonic_but_tiny(self):
        clock = SimClock()
        before = clock.now
        clock.tick()
        assert 0 < clock.now - before < 1e-3

    def test_reset(self):
        clock = SimClock()
        clock.advance(10.0)
        clock.reset()
        assert clock.now == 0.0
