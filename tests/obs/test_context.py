"""TraceContext wire form, payload injection, and tracer parenting."""

import pytest

from repro.obs import (
    ROOT,
    TRACE_KEY,
    NullTracer,
    Obs,
    TraceContext,
    extract_context,
    with_trace,
)


class TestWireForm:
    def test_round_trip(self):
        ctx = TraceContext(trace_id=7, span_id=12)
        assert TraceContext.from_wire(ctx.to_wire()) == ctx

    @pytest.mark.parametrize(
        "record",
        [
            None,
            42,
            "trace",
            [],
            {},
            {"trace_id": 1},
            {"span_id": 1},
            {"trace_id": "1", "span_id": 1},
            {"trace_id": 1, "span_id": None},
            {"trace_id": 0, "span_id": 1},
            {"trace_id": 1, "span_id": -3},
        ],
    )
    def test_malformed_records_parse_to_none(self, record):
        assert TraceContext.from_wire(record) is None


class TestPayloadInjection:
    def test_with_trace_injects_and_extract_recovers(self):
        ctx = TraceContext(trace_id=3, span_id=9)
        payload = with_trace({"op": "counts"}, ctx)
        assert payload["op"] == "counts"
        assert payload[TRACE_KEY] == {"trace_id": 3, "span_id": 9}
        assert extract_context(payload) == ctx

    def test_with_trace_copies_rather_than_mutates(self):
        original = {"op": "counts"}
        with_trace(original, TraceContext(1, 1))
        assert TRACE_KEY not in original

    def test_none_context_strips_the_key(self):
        stale = {"op": "counts", TRACE_KEY: {"trace_id": 9, "span_id": 9}}
        assert TRACE_KEY not in with_trace(stale, None)

    def test_root_sentinel_strips_the_key(self):
        assert TRACE_KEY not in with_trace({"op": "x"}, ROOT)

    def test_extract_from_unkeyed_payload_is_none(self):
        assert extract_context({"op": "counts"}) is None
        assert extract_context("not a mapping") is None


class TestTracerParenting:
    def test_stack_nesting_inherits_trace_id(self):
        obs = Obs.enabled()
        with obs.tracer.span("outer") as outer:
            with obs.tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id

    def test_empty_stack_starts_a_new_trace(self):
        obs = Obs.enabled()
        with obs.tracer.span("a") as a:
            pass
        with obs.tracer.span("b") as b:
            pass
        assert a.trace_id != b.trace_id
        assert a.parent_id is None and b.parent_id is None

    def test_explicit_context_joins_the_remote_trace(self):
        obs = Obs.enabled()
        with obs.tracer.span("caller") as caller:
            ctx = caller.context
        with obs.tracer.span("remote", parent=ctx) as remote:
            assert remote.trace_id == caller.trace_id
            assert remote.parent_id == caller.span_id

    def test_root_sentinel_forces_new_root_despite_open_spans(self):
        obs = Obs.enabled()
        with obs.tracer.span("request") as request:
            with obs.tracer.span("background", parent=ROOT) as background:
                assert background.parent_id is None
                assert background.trace_id != request.trace_id

    def test_current_context_matches_stack_top(self):
        obs = Obs.enabled()
        assert obs.tracer.current_context is None
        with obs.tracer.span("work") as span:
            assert obs.tracer.current_context == span.context
        assert obs.tracer.current_context is None

    def test_clear_resets_trace_ids(self):
        obs = Obs.enabled()
        with obs.tracer.span("a") as a:
            pass
        obs.tracer.clear()
        with obs.tracer.span("b") as b:
            pass
        assert b.trace_id == a.trace_id == 1

    def test_span_records_round_trip_trace_id(self):
        from repro.obs import Span

        obs = Obs.enabled()
        with obs.tracer.span("work", parent=ROOT):
            pass
        (span,) = obs.tracer.spans()
        assert Span.from_record(span.to_record()).trace_id == span.trace_id


class TestNullTracer:
    def test_null_tracer_accepts_parent_and_reports_no_context(self):
        tracer = NullTracer()
        with tracer.span("x", parent=TraceContext(5, 5)) as span:
            assert span.trace_id == 0
            assert span.context is ROOT
        assert tracer.current_context is None

    def test_with_trace_degrades_to_untraced_payload(self):
        tracer = NullTracer()
        payload = with_trace({"op": "x"}, tracer.current_context)
        assert TRACE_KEY not in payload
