"""Unit tests for the decision audit trail."""

from repro.obs.audit import (
    FILTERED,
    KEPT,
    NULL_AUDIT,
    PATTERN_MATCH,
    SENTIMENT,
    SPOT,
    AuditEntry,
    AuditTrail,
)


class TestAuditTrail:
    def test_record_spot_and_views(self):
        trail = AuditTrail()
        trail.record_spot("camera", KEPT, "global-pass", global_score=3.0)
        trail.record_spot("camera", FILTERED, "combined-fail", combined_score=0.5)
        trail.record_sentiment("camera", "+", PATTERN_MATCH, pattern="be CP SP")
        assert len(trail) == 3
        assert [e.decision for e in trail.spots()] == [KEPT, FILTERED]
        assert trail.sentiments()[0].kind == SENTIMENT
        assert len(trail.for_subject("camera")) == 3

    def test_detail_lookup(self):
        trail = AuditTrail()
        trail.record_spot("x", KEPT, "global-pass", global_score=2.5)
        entry = trail.entries[0]
        assert entry.get("global_score") == 2.5
        assert entry.get("missing", "fallback") == "fallback"

    def test_mark_and_since_slice_per_document(self):
        trail = AuditTrail()
        trail.record_spot("a", KEPT, "global-pass")
        mark = trail.mark()
        trail.record_spot("b", KEPT, "global-pass")
        assert [e.subject for e in trail.since(mark)] == ["b"]

    def test_record_roundtrip(self):
        entry = AuditEntry(
            kind=SPOT,
            subject="zoom",
            decision=KEPT,
            reason="combined-pass",
            document_id="d1",
            sentence_index=2,
            lexicon_entries=("great",),
            negated=True,
            detail=(("score", 1.5),),
        )
        assert AuditEntry.from_record(entry.to_record()) == entry
        assert entry.to_record()["type"] == "audit"

    def test_merge(self):
        a, b = AuditTrail(), AuditTrail()
        a.record_spot("x", KEPT, "global-pass")
        b.record_spot("y", FILTERED, "combined-fail")
        a.merge(b)
        assert [e.subject for e in a] == ["x", "y"]


class TestNullAuditTrail:
    def test_records_nothing(self):
        NULL_AUDIT.record_spot("x", KEPT, "global-pass")
        NULL_AUDIT.record_sentiment("x", "+", PATTERN_MATCH)
        assert len(NULL_AUDIT) == 0
        assert NULL_AUDIT.entries == []
        assert NULL_AUDIT.since(NULL_AUDIT.mark()) == []
        assert not NULL_AUDIT.enabled
