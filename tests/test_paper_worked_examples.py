"""The paper's own worked examples, executed end to end.

Each test quotes a sentence (or output) that appears verbatim in the
paper and asserts this reproduction produces the documented behaviour.
Where the reproduction intentionally diverges, the test documents how.
"""

import pytest

from repro.core import SentimentAnalyzer, Subject
from repro.core.model import Polarity

ANALYZER = SentimentAnalyzer()


def judge(text, *names):
    subjects = [Subject(n) for n in names]
    return {j.subject_name: j.polarity for j in ANALYZER.analyze_text(text, subjects)}


class TestSection12NR70Examples:
    """The three NR70 sentences from Section 1.2."""

    def test_sentence_two_output(self):
        # Paper output: "2. T series CLIEs - negative / NR70 - positive"
        # (we simplify the MP3 clause to one our pattern DB covers).
        text = (
            "Unlike the more recent T series CLIEs, the NR70 offers "
            "superb MP3 playback."
        )
        out = judge(text, "NR70", "T series CLIEs")
        assert out["NR70"] is Polarity.POSITIVE
        assert out["T series CLIEs"] is Polarity.NEGATIVE

    def test_sentence_three_primary_phrase(self):
        # Paper output for sentence 3 includes "NR70 - positive" from the
        # primary phrase "The Memory Stick support in the NR70 series is
        # well implemented and functional".
        text = "The Memory Stick support in the NR70 series is well implemented and functional."
        out = judge(text, "NR70 series")
        assert out["NR70 series"] is Polarity.POSITIVE

    def test_sentence_three_negative_aspect_divergence(self):
        # The paper also derives "NR70 - negative" from "there is still a
        # lack of non-memory Memory Sticks" — an associative step our
        # clause-local analyzer intentionally does not take (DESIGN.md §6).
        text = "There is still a lack of non-memory Memory Sticks."
        out = judge(text, "Memory Sticks")
        assert out["Memory Sticks"] in (Polarity.NEGATIVE, Polarity.NEUTRAL)


class TestSection42LexiconExamples:
    def test_excellent_entry(self):
        # '"excellent" JJ +' is the paper's example lexicon entry.
        assert ANALYZER.lexicon.polarity("excellent", "JJ") is Polarity.POSITIVE

    def test_picture_is_flawless(self):
        # "Sentiment that expresses a desirable state (e.g., 'The picture
        # is flawless.') has positive polarity"
        assert judge("The picture is flawless.", "picture")["picture"] is Polarity.POSITIVE

    def test_product_fails_expectations(self):
        # "...while one representing an undesirable state (e.g., 'The
        # product fails to meet our quality expectations.') has negative"
        text = "The product fails to meet our quality expectations."
        assert judge(text, "product")["product"] is Polarity.NEGATIVE


class TestSection42PatternExamples:
    def test_impressed_by_picture_quality(self):
        # Pattern "impress + PP(by;with)": "I am impressed by the picture
        # quality."
        out = judge("I am impressed by the picture quality.", "picture quality")
        assert out["picture quality"] is Polarity.POSITIVE

    def test_colors_are_vibrant(self):
        # Pattern "be CP SP": "The colors are vibrant."
        assert judge("The colors are vibrant.", "colors")["colors"] is Polarity.POSITIVE

    def test_offer_both_polarities(self):
        # Pattern "offer OP SP" with both example sentences.
        positive = judge("The company offers high quality products.", "company")
        negative = judge("The company offers mediocre services.", "company")
        assert positive["company"] is Polarity.POSITIVE
        assert negative["company"] is Polarity.NEGATIVE

    def test_impressed_by_flash_capabilities(self):
        # Worked example: "I am impressed by the flash capabilities."
        # → (flash capability, +)
        out = judge("I am impressed by the flash capabilities.", "flash capabilities")
        assert out["flash capabilities"] is Polarity.POSITIVE

    def test_camera_takes_excellent_pictures(self):
        # Worked example: <"take" OP SP> → (camera, +).
        out = judge("This camera takes excellent pictures.", "camera")
        assert out["camera"] is Polarity.POSITIVE


class TestSection3SunDisambiguation:
    def test_sun_microsystems_vs_sunday(self):
        # "The disambiguator determines if an occurrence of text token SUN
        # refers to the subject (on topic), or something else like Sunday."
        from repro.core import Disambiguator, SentimentMiner, TopicTermSet

        terms = TopicTermSet.build(
            on_topic=["server", "java", "workstation"],
            off_topic=["sunday", "weather", "beach"],
        )
        miner = SentimentMiner(
            subjects=[Subject("SUN")], disambiguator=Disambiguator(terms)
        )
        on_topic = "SUN shipped a java server for the workstation market."
        off_topic = "The SUN shone brightly last sunday at the beach."
        assert miner.mine_document(on_topic).stats.spots_on_topic == 1
        assert miner.mine_document(off_topic).stats.spots_on_topic == 0


class TestAuditTrailOnWorkedExamples:
    """The audit trail explains each worked-example judgment.

    Every entry must name the sentiment pattern that fired and the
    lexicon entries that gave it polarity; negation reversals are
    recorded explicitly.
    """

    @staticmethod
    def mine(text, *names, **miner_kwargs):
        from repro.core import SentimentMiner
        from repro.obs import Obs

        obs = Obs.enabled()
        miner = SentimentMiner(
            subjects=[Subject(n) for n in names], obs=obs, **miner_kwargs
        )
        return miner.mine_document(text, "worked-example"), obs

    def test_pattern_and_lexicon_entry_named(self):
        # "The colors are vibrant." fires <be CP SP> via lexicon "vibrant".
        result, _ = self.mine("The colors are vibrant.", "colors")
        (entry,) = [e for e in result.audit if e.kind == "sentiment"]
        assert entry.subject == "colors"
        assert entry.decision == "+"
        assert entry.reason == "pattern-match"
        assert entry.pattern == "be CP SP"
        assert "vibrant" in entry.lexicon_entries
        assert not entry.negated

    def test_impressed_by_names_pp_pattern(self):
        # "I am impressed by the picture quality." → impress + PP(by;with).
        result, _ = self.mine(
            "I am impressed by the picture quality.", "picture quality"
        )
        (entry,) = [e for e in result.audit if e.kind == "sentiment"]
        assert entry.pattern == "impress + PP(by;with)"
        assert "impress" in entry.lexicon_entries

    def test_negation_reversal_recorded(self):
        # Negated copula: polarity flips and the audit entry says so.
        result, _ = self.mine("The zoom is not good.", "zoom")
        (entry,) = [e for e in result.audit if e.kind == "sentiment"]
        assert entry.decision == "-"
        assert entry.negated
        assert entry.pattern

    def test_disambiguator_keep_and_filter_reasons(self):
        # SUN worked example: each spot decision carries its resolution.
        from repro.core import Disambiguator, TopicTermSet

        terms = TopicTermSet.build(
            on_topic=["server", "java", "workstation"],
            off_topic=["sunday", "weather", "beach"],
        )
        result, _ = self.mine(
            "SUN shipped a java server for the workstation market.",
            "SUN",
            disambiguator=Disambiguator(terms),
        )
        (spot_entry,) = [e for e in result.audit if e.kind == "spot"]
        assert spot_entry.decision == "kept"
        assert spot_entry.reason == "global-pass"
        assert spot_entry.get("global_score") >= 2.0

        result, _ = self.mine(
            "The SUN shone brightly last sunday at the beach.",
            "SUN",
            disambiguator=Disambiguator(terms),
        )
        (spot_entry,) = [e for e in result.audit if e.kind == "spot"]
        assert spot_entry.decision == "filtered"
        assert spot_entry.reason == "combined-fail"
        assert spot_entry.get("combined_score") < 1.0

    def test_no_match_recorded_for_neutral(self):
        # A mention no pattern covers is still explained: reason no-match.
        result, _ = self.mine("The camera sat on the table.", "camera")
        (entry,) = [e for e in result.audit if e.kind == "sentiment"]
        assert entry.decision == "0"
        assert entry.reason == "no-match"
        assert entry.pattern == ""

    def test_context_window_inheritance_recorded(self):
        # "I tested the zoom. It is superb." — the zoom inherits polarity
        # from the window sentence; the audit says context-window.
        from repro.core.context import ContextWindowRule

        result, _ = self.mine(
            "I tested the zoom. It is superb.",
            "zoom",
            context_rule=ContextWindowRule(sentences_before=0, sentences_after=1),
        )
        entries = [e for e in result.audit if e.kind == "sentiment"]
        assert any(
            e.reason == "context-window" and e.decision == "+" for e in entries
        )

    def test_audit_empty_by_default(self):
        from repro.core import SentimentMiner

        miner = SentimentMiner(subjects=[Subject("colors")])
        result = miner.mine_document("The colors are vibrant.", "d")
        assert result.audit == []
        assert result.stats.judgments_polar == 1


class TestSection3NamedEntityExample:
    def test_prof_wilson_split(self):
        # "Prof. Wilson of American University is split into two different
        # named entities Prof. Wilson and American University."
        from repro.core import NamedEntitySpotter
        from repro.nlp import split_sentences

        (sentence,) = split_sentences("We met Prof. Wilson of American University.")
        spots = NamedEntitySpotter().spot_sentence(ANALYZER.tag(sentence))
        names = {s.term for s in spots}
        assert "Prof. Wilson" in names
        assert "American University" in names
        assert "Prof. Wilson of American University" not in names
