"""The paper's own worked examples, executed end to end.

Each test quotes a sentence (or output) that appears verbatim in the
paper and asserts this reproduction produces the documented behaviour.
Where the reproduction intentionally diverges, the test documents how.
"""

import pytest

from repro.core import SentimentAnalyzer, Subject
from repro.core.model import Polarity

ANALYZER = SentimentAnalyzer()


def judge(text, *names):
    subjects = [Subject(n) for n in names]
    return {j.subject_name: j.polarity for j in ANALYZER.analyze_text(text, subjects)}


class TestSection12NR70Examples:
    """The three NR70 sentences from Section 1.2."""

    def test_sentence_two_output(self):
        # Paper output: "2. T series CLIEs - negative / NR70 - positive"
        # (we simplify the MP3 clause to one our pattern DB covers).
        text = (
            "Unlike the more recent T series CLIEs, the NR70 offers "
            "superb MP3 playback."
        )
        out = judge(text, "NR70", "T series CLIEs")
        assert out["NR70"] is Polarity.POSITIVE
        assert out["T series CLIEs"] is Polarity.NEGATIVE

    def test_sentence_three_primary_phrase(self):
        # Paper output for sentence 3 includes "NR70 - positive" from the
        # primary phrase "The Memory Stick support in the NR70 series is
        # well implemented and functional".
        text = "The Memory Stick support in the NR70 series is well implemented and functional."
        out = judge(text, "NR70 series")
        assert out["NR70 series"] is Polarity.POSITIVE

    def test_sentence_three_negative_aspect_divergence(self):
        # The paper also derives "NR70 - negative" from "there is still a
        # lack of non-memory Memory Sticks" — an associative step our
        # clause-local analyzer intentionally does not take (DESIGN.md §6).
        text = "There is still a lack of non-memory Memory Sticks."
        out = judge(text, "Memory Sticks")
        assert out["Memory Sticks"] in (Polarity.NEGATIVE, Polarity.NEUTRAL)


class TestSection42LexiconExamples:
    def test_excellent_entry(self):
        # '"excellent" JJ +' is the paper's example lexicon entry.
        assert ANALYZER.lexicon.polarity("excellent", "JJ") is Polarity.POSITIVE

    def test_picture_is_flawless(self):
        # "Sentiment that expresses a desirable state (e.g., 'The picture
        # is flawless.') has positive polarity"
        assert judge("The picture is flawless.", "picture")["picture"] is Polarity.POSITIVE

    def test_product_fails_expectations(self):
        # "...while one representing an undesirable state (e.g., 'The
        # product fails to meet our quality expectations.') has negative"
        text = "The product fails to meet our quality expectations."
        assert judge(text, "product")["product"] is Polarity.NEGATIVE


class TestSection42PatternExamples:
    def test_impressed_by_picture_quality(self):
        # Pattern "impress + PP(by;with)": "I am impressed by the picture
        # quality."
        out = judge("I am impressed by the picture quality.", "picture quality")
        assert out["picture quality"] is Polarity.POSITIVE

    def test_colors_are_vibrant(self):
        # Pattern "be CP SP": "The colors are vibrant."
        assert judge("The colors are vibrant.", "colors")["colors"] is Polarity.POSITIVE

    def test_offer_both_polarities(self):
        # Pattern "offer OP SP" with both example sentences.
        positive = judge("The company offers high quality products.", "company")
        negative = judge("The company offers mediocre services.", "company")
        assert positive["company"] is Polarity.POSITIVE
        assert negative["company"] is Polarity.NEGATIVE

    def test_impressed_by_flash_capabilities(self):
        # Worked example: "I am impressed by the flash capabilities."
        # → (flash capability, +)
        out = judge("I am impressed by the flash capabilities.", "flash capabilities")
        assert out["flash capabilities"] is Polarity.POSITIVE

    def test_camera_takes_excellent_pictures(self):
        # Worked example: <"take" OP SP> → (camera, +).
        out = judge("This camera takes excellent pictures.", "camera")
        assert out["camera"] is Polarity.POSITIVE


class TestSection3SunDisambiguation:
    def test_sun_microsystems_vs_sunday(self):
        # "The disambiguator determines if an occurrence of text token SUN
        # refers to the subject (on topic), or something else like Sunday."
        from repro.core import Disambiguator, SentimentMiner, TopicTermSet

        terms = TopicTermSet.build(
            on_topic=["server", "java", "workstation"],
            off_topic=["sunday", "weather", "beach"],
        )
        miner = SentimentMiner(
            subjects=[Subject("SUN")], disambiguator=Disambiguator(terms)
        )
        on_topic = "SUN shipped a java server for the workstation market."
        off_topic = "The SUN shone brightly last sunday at the beach."
        assert miner.mine_document(on_topic).stats.spots_on_topic == 1
        assert miner.mine_document(off_topic).stats.spots_on_topic == 0


class TestSection3NamedEntityExample:
    def test_prof_wilson_split(self):
        # "Prof. Wilson of American University is split into two different
        # named entities Prof. Wilson and American University."
        from repro.core import NamedEntitySpotter
        from repro.nlp import split_sentences

        (sentence,) = split_sentences("We met Prof. Wilson of American University.")
        spots = NamedEntitySpotter().spot_sentence(ANALYZER.tag(sentence))
        names = {s.term for s in spots}
        assert "Prof. Wilson" in names
        assert "American University" in names
        assert "Prof. Wilson of American University" not in names
