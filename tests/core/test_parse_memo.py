"""Parse-memo correctness: equivalence, bounds, and no state leaks.

The memo (:mod:`repro.nlp.parse_cache`) may only ever change *speed*,
never output.  These tests pin the three properties that make that
true: a memo hit materialises a parse identical to a fresh parse, the
LRU bound actually bounds the cache, and nothing cached carries
document identity — the same sentence mined under different document
ids, sentence indices, or character offsets yields judgments that each
carry their *own* identity.
"""

from repro.core.analyzer import SentimentAnalyzer
from repro.core.miner import SentimentMiner
from repro.core.model import Subject
from repro.nlp.parse_cache import ParseMemo, sentence_signature
from repro.nlp.parser import ShallowParser
from repro.nlp.postagger import PosTagger
from repro.nlp.sentences import SentenceSplitter
from repro.nlp.tokenizer import Tokenizer
from repro.nlp.tokens import TaggedSentence


def tag_text(text: str) -> list[TaggedSentence]:
    tagger = PosTagger()
    splitter = SentenceSplitter(Tokenizer())
    return [tagger.tag(s) for s in splitter.split_text(text)]


class TestMemoEquivalence:
    def test_hit_materialises_identical_parse(self):
        parser = ShallowParser()
        memo = ParseMemo(parser, maxsize=8)
        [tagged] = tag_text("The camera produces excellent pictures.")

        first, cached_first = memo.parse_with_status(tagged)
        second, cached_second = memo.parse_with_status(tagged)

        assert not cached_first and cached_second
        assert first == parser.parse(tagged)
        assert second == first

    def test_shift_invariance_across_offsets(self):
        # The same sentence text at two different character positions:
        # one signature, one parse slot, and the materialised hit carries
        # the *caller's* offsets, not the first occurrence's.
        parser = ShallowParser()
        memo = ParseMemo(parser, maxsize=8)
        sentence = "The zoom works great."
        [shifted_a] = tag_text(sentence)
        prefix, shifted_b = tag_text("I bought it. " + sentence)

        assert sentence_signature(shifted_a) == sentence_signature(shifted_b)
        assert shifted_a.tokens[0].start != shifted_b.tokens[0].start

        memo.parse(shifted_a)
        parse_b, cached = memo.parse_with_status(shifted_b)
        assert cached
        assert parse_b == parser.parse(shifted_b)
        # Offsets in the materialised parse belong to shifted_b.
        assert parse_b.clauses[0].predicate.tokens[0].start > prefix.tokens[0].start

    def test_disabled_memo_never_caches(self):
        parser = ShallowParser()
        memo = ParseMemo(parser, maxsize=0)
        [tagged] = tag_text("The battery died quickly.")
        for _ in range(3):
            parse, cached = memo.parse_with_status(tagged)
            assert not cached
            assert parse == parser.parse(tagged)
        assert len(memo) == 0
        assert memo.hits == 0 and memo.misses == 0


class TestMemoBounds:
    def test_lru_bound_respected(self):
        memo = ParseMemo(ShallowParser(), maxsize=4)
        sentences = [
            tag_text(f"The camera model number {i} works well.")[0] for i in range(10)
        ]
        for tagged in sentences:
            memo.parse(tagged)
            assert len(memo) <= 4
        assert memo.misses == 10 and memo.hits == 0

    def test_least_recently_used_is_evicted(self):
        memo = ParseMemo(ShallowParser(), maxsize=2)
        a, b, c = (
            tag_text("The camera is great.")[0],
            tag_text("The battery is bad.")[0],
            tag_text("The zoom is fine.")[0],
        )
        memo.parse(a)
        memo.parse(b)
        memo.parse(a)  # refresh a; b is now LRU
        memo.parse(c)  # evicts b
        _, cached_a = memo.parse_with_status(a)
        _, cached_b = memo.parse_with_status(b)
        assert cached_a
        assert not cached_b

    def test_clear_empties_cache(self):
        memo = ParseMemo(ShallowParser(), maxsize=8)
        memo.parse(tag_text("The camera is great.")[0])
        assert len(memo) == 1
        memo.clear()
        assert len(memo) == 0
        _, cached = memo.parse_with_status(tag_text("The camera is great.")[0])
        assert not cached


class TestNoStateLeaks:
    def test_document_identity_never_leaks_across_hits(self):
        # Mine the same text under three different document ids.  Docs 2
        # and 3 are served from the memo; every judgment must still carry
        # its own document_id and sentence_index.
        text = "The camera is excellent. I love the zoom."
        subjects = [Subject("camera"), Subject("zoom")]
        miner = SentimentMiner(subjects=subjects)
        memo = miner.analyzer.parse_memo

        results = [miner.mine_document(text, f"doc-{i}") for i in range(3)]

        assert memo.hits > 0  # the fast path actually engaged
        reference = results[0]
        for i, result in enumerate(results):
            assert len(result.judgments) == len(reference.judgments) > 0
            for judgment, expected in zip(result.judgments, reference.judgments):
                assert judgment.spot.document_id == f"doc-{i}"
                assert judgment.spot.sentence_index == expected.spot.sentence_index
                assert judgment.polarity == expected.polarity
                assert judgment.provenance == expected.provenance

    def test_memoised_judgments_equal_memo_free_judgments(self):
        text = (
            "The camera produces excellent pictures. "
            "The camera produces excellent pictures. "
            "I hate the battery."
        )
        subjects = [Subject("camera"), Subject("battery")]
        fast = SentimentAnalyzer().analyze_text(text, subjects, "d1")
        slow = SentimentAnalyzer(parse_memo_size=0).analyze_text(text, subjects, "d1")
        assert fast == slow

    def test_hits_are_read_only_with_respect_to_cache(self):
        # A caller mutating the returned parse must not poison later hits.
        parser = ShallowParser()
        memo = ParseMemo(parser, maxsize=8)
        [tagged] = tag_text("The camera is great.")
        first = memo.parse(tagged)
        first.clauses.clear()
        second, cached = memo.parse_with_status(tagged)
        assert cached
        assert second == parser.parse(tagged)


class TestAnalyzerWiring:
    def test_analyzer_exposes_memo_and_counts(self):
        analyzer = SentimentAnalyzer(parse_memo_size=16)
        assert analyzer.parse_memo.maxsize == 16
        subjects = [Subject("camera")]
        analyzer.analyze_text("The camera is great.", subjects, "d1")
        analyzer.analyze_text("The camera is great.", subjects, "d2")
        assert analyzer.parse_memo.hits >= 1

    def test_memo_disabled_via_constructor(self):
        analyzer = SentimentAnalyzer(parse_memo_size=0)
        subjects = [Subject("camera")]
        analyzer.analyze_text("The camera is great.", subjects, "d1")
        analyzer.analyze_text("The camera is great.", subjects, "d2")
        assert analyzer.parse_memo.hits == 0
        assert len(analyzer.parse_memo) == 0


class TestTagAndSplitMemos:
    """The sentence-tag and split-text memos obey the same contract as
    the parse memo: pure speed, fresh objects per call, caller offsets."""

    def test_tag_memo_matches_memo_free_tagger(self):
        memoised = PosTagger(memo_size=16)
        plain = PosTagger(memo_size=0)
        for text in ("The camera is great. I love it.", "The camera is great."):
            for sentence in SentenceSplitter(Tokenizer(), memo_size=0).split_text(text):
                assert memoised.tag(sentence) == plain.tag(sentence)

    def test_tag_memo_hit_carries_caller_offsets(self):
        tagger = PosTagger(memo_size=16)
        splitter = SentenceSplitter(Tokenizer(), memo_size=0)
        [first] = splitter.split_text("The camera is great.")
        _, second = splitter.split_text("Yes. The camera is great.")
        tagger.tag(first)
        tagged = tagger.tag(second)
        assert [t.tag for t in tagged] == [t.tag for t in tagger.tag(first)]
        assert tagged.tokens[0].start == second.tokens[0].start
        assert tagged.index == second.index

    def test_split_memo_returns_fresh_sentences(self):
        splitter = SentenceSplitter(Tokenizer(), memo_size=8)
        text = "The camera is great. The zoom is bad."
        first = splitter.split_text(text)
        first[0].tokens.clear()  # caller vandalism must not poison the memo
        second = splitter.split_text(text)
        assert second == SentenceSplitter(Tokenizer(), memo_size=0).split_text(text)
        assert [s.index for s in second] == [0, 1]

    def test_split_memo_matches_memo_free_splitter(self):
        memoised = SentenceSplitter(Tokenizer(), memo_size=8)
        plain = SentenceSplitter(Tokenizer(), memo_size=0)
        text = 'He said "wow!" twice. Really? Yes... and no. See fig. 3.'
        for _ in range(3):
            assert memoised.split_text(text) == plain.split_text(text)
