"""Unit tests for feature term extraction (bBNP + likelihood ratio)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.features import (
    CHI2_CRITICAL,
    FeatureExtractionConfig,
    FeatureExtractor,
    likelihood_ratio,
)


class TestLikelihoodRatio:
    def test_strong_association_scores_high(self):
        # Candidate in 40/50 D+ docs, 1/500 D- docs.
        assert likelihood_ratio(40, 1, 10, 499) > 100

    def test_no_association_scores_zero(self):
        # Same rate in both collections.
        assert likelihood_ratio(10, 100, 90, 900) == 0.0

    def test_negative_association_guarded(self):
        # More frequent in D- than D+: the r2 >= r1 guard zeroes it.
        assert likelihood_ratio(1, 400, 49, 100) == 0.0

    def test_zero_table(self):
        assert likelihood_ratio(0, 0, 0, 0) == 0.0

    def test_all_containing(self):
        assert likelihood_ratio(5, 5, 0, 0) == 0.0

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            likelihood_ratio(-1, 0, 0, 0)

    def test_monotone_in_dplus_count(self):
        scores = [likelihood_ratio(c, 2, 100 - c, 998) for c in (5, 20, 50)]
        assert scores == sorted(scores)

    def test_always_finite_and_nonnegative(self):
        for c11, c12, c21, c22 in [(1, 0, 0, 1), (0, 1, 1, 0), (3, 3, 3, 3), (100, 0, 0, 100)]:
            score = likelihood_ratio(c11, c12, c21, c22)
            assert score >= 0.0
            assert math.isfinite(score)

    @given(st.integers(0, 200), st.integers(0, 200), st.integers(0, 200), st.integers(0, 200))
    def test_property_nonnegative_finite(self, c11, c12, c21, c22):
        score = likelihood_ratio(c11, c12, c21, c22)
        assert score >= 0.0
        assert math.isfinite(score)


class TestConfigValidation:
    def test_defaults(self):
        config = FeatureExtractionConfig()
        assert config.heuristic == "bbnp"
        assert config.ranker == "likelihood"

    def test_bad_heuristic(self):
        with pytest.raises(ValueError):
            FeatureExtractionConfig(heuristic="magic")

    def test_bad_ranker(self):
        with pytest.raises(ValueError):
            FeatureExtractionConfig(ranker="random")

    def test_bad_confidence(self):
        with pytest.raises(ValueError):
            FeatureExtractionConfig(confidence=0.5)

    def test_bad_top_n(self):
        with pytest.raises(ValueError):
            FeatureExtractionConfig(top_n=0)

    def test_chi2_table_sane(self):
        assert CHI2_CRITICAL[0.95] == pytest.approx(3.841, abs=0.01)


# A miniature D+ corpus where "battery" and "picture quality" are recurring
# bBNP features and D- never mentions them.
DPLUS = [
    "The battery lasts all day. I love this camera.",
    "The battery drains fast. The picture quality impresses everyone.",
    "The picture quality amazes reviewers. The battery charges quickly.",
    "The battery works well. The zoom performs nicely.",
    "The picture quality shines outdoors. The battery holds a charge.",
]
DMINUS = [
    "The election results surprised analysts in the capital.",
    "The highway project continues despite the funding dispute.",
    "The orchestra performed a new symphony last night.",
    "The committee approved the annual budget yesterday.",
    "The museum opened a new exhibition about rivers.",
    "The bakery sells bread and pastries every morning.",
]


class TestFeatureExtractor:
    def test_bbnp_candidates_from_document(self):
        extractor = FeatureExtractor()
        phrases = extractor.candidate_phrases("The battery lasts all day. It is fine.")
        assert phrases == ["battery"]

    def test_candidate_normalisation_folds_plurals(self):
        extractor = FeatureExtractor()
        phrases = extractor.candidate_phrases("The batteries drain quickly.")
        assert phrases == ["battery"]

    def test_extract_finds_topic_features(self):
        extractor = FeatureExtractor(FeatureExtractionConfig(min_support=2))
        features = extractor.extract(DPLUS, DMINUS)
        terms = [f.term for f in features]
        assert "battery" in terms
        assert "picture quality" in terms

    def test_extract_scores_sorted_descending(self):
        extractor = FeatureExtractor(FeatureExtractionConfig(min_support=2))
        features = extractor.extract(DPLUS, DMINUS)
        scores = [f.score for f in features]
        assert scores == sorted(scores, reverse=True)

    def test_counts_are_document_frequencies(self):
        extractor = FeatureExtractor(FeatureExtractionConfig(min_support=2))
        features = {f.term: f for f in extractor.extract(DPLUS, DMINUS)}
        assert features["battery"].dplus_count == 5
        assert features["battery"].dminus_count == 0

    def test_top_n_selection(self):
        extractor = FeatureExtractor(FeatureExtractionConfig(min_support=1, top_n=1))
        features = extractor.extract(DPLUS, DMINUS)
        assert len(features) == 1

    def test_min_support_filters(self):
        extractor = FeatureExtractor(FeatureExtractionConfig(min_support=5))
        features = extractor.extract(DPLUS, DMINUS)
        assert all(f.dplus_count >= 5 for f in features)

    def test_frequency_ranker(self):
        extractor = FeatureExtractor(
            FeatureExtractionConfig(min_support=1, ranker="frequency")
        )
        features = extractor.extract(DPLUS, DMINUS)
        for feature in features:
            assert feature.score == feature.dplus_count

    def test_bnp_heuristic_catches_more_candidates(self):
        bbnp = FeatureExtractor(FeatureExtractionConfig(heuristic="bbnp"))
        bnp = FeatureExtractor(FeatureExtractionConfig(heuristic="bnp"))
        doc = "I like the sharp lens on this camera."
        assert len(bnp.candidate_phrases(doc)) > len(bbnp.candidate_phrases(doc))

    def test_empty_corpora(self):
        extractor = FeatureExtractor()
        assert extractor.extract([], []) == []
        assert extractor.extract([], DMINUS) == []

    def test_deterministic(self):
        extractor = FeatureExtractor(FeatureExtractionConfig(min_support=2))
        assert extractor.extract(DPLUS, DMINUS) == extractor.extract(DPLUS, DMINUS)
