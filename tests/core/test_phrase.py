"""Unit tests for phrase-level polarity with negation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.lexicon import default_lexicon
from repro.core.model import Polarity
from repro.core.phrase import PhraseScorer
from repro.nlp.tokens import Chunk, TaggedToken, Token


@pytest.fixture(scope="module")
def scorer():
    return PhraseScorer(default_lexicon())


def phrase(*pairs):
    """Build a token tuple from (word, tag) pairs."""
    tokens = []
    offset = 0
    for word, tag in pairs:
        tokens.append(TaggedToken(Token(word, offset, offset + len(word)), tag))
        offset += len(word) + 1
    return tuple(tokens)


class TestBasicPolarity:
    def test_paper_example_excellent_pictures(self, scorer):
        # "excellent pictures (JJ NN) is a positive sentiment phrase"
        result = scorer.score_tokens(phrase(("excellent", "JJ"), ("pictures", "NNS")))
        assert result.polarity is Polarity.POSITIVE
        assert "excellent" in result.sentiment_words

    def test_negative_adjective(self, scorer):
        result = scorer.score_tokens(phrase(("mediocre", "JJ"), ("services", "NNS")))
        assert result.polarity is Polarity.NEGATIVE

    def test_neutral_phrase(self, scorer):
        result = scorer.score_tokens(phrase(("the", "DT"), ("camera", "NN")))
        assert result.polarity is Polarity.NEUTRAL
        assert result.sentiment_words == ()

    def test_sentiment_noun(self, scorer):
        result = scorer.score_tokens(phrase(("a", "DT"), ("total", "JJ"), ("failure", "NN")))
        assert result.polarity is Polarity.NEGATIVE

    def test_mixed_majority_wins(self, scorer):
        result = scorer.score_tokens(
            phrase(("excellent", "JJ"), ("pictures", "NNS"), ("despite", "IN"),
                   ("annoying", "JJ"), ("noisy", "JJ"), ("software", "NN"))
        )
        assert result.polarity is Polarity.NEGATIVE  # 1 positive vs 2 negative

    def test_balanced_is_neutral(self, scorer):
        result = scorer.score_tokens(phrase(("good", "JJ"), ("bad", "JJ")))
        assert result.polarity is Polarity.NEUTRAL
        assert result.score == 0.0


class TestNegation:
    def test_not_reverses(self, scorer):
        result = scorer.score_tokens(phrase(("not", "RB"), ("excellent", "JJ")))
        assert result.polarity is Polarity.NEGATIVE
        assert result.negated

    def test_no_reverses(self, scorer):
        # "no problems" is a positive statement.
        result = scorer.score_tokens(phrase(("no", "DT"), ("problems", "NNS")))
        assert result.polarity is Polarity.POSITIVE

    def test_never_hardly_seldom(self, scorer):
        for negator in ("never", "hardly", "seldom"):
            result = scorer.score_tokens(phrase((negator, "RB"), ("reliable", "JJ")))
            assert result.polarity is Polarity.NEGATIVE, negator

    def test_little_as_quantifier(self, scorer):
        result = scorer.score_tokens(phrase(("little", "JJ"), ("support", "NN")))
        assert result.polarity is Polarity.NEGATIVE

    def test_negation_scope_is_suffix(self, scorer):
        # "excellent but not reliable" — "excellent" is outside the scope.
        result = scorer.score_tokens(
            phrase(("excellent", "JJ"), ("but", "CC"), ("not", "RB"), ("reliable", "JJ"))
        )
        # +1 then -1 -> neutral overall; negation seen.
        assert result.score == 0.0
        assert result.negated

    def test_double_sentiment_after_negator_both_flip(self, scorer):
        result = scorer.score_tokens(
            phrase(("no", "DT"), ("annoying", "JJ"), ("defects", "NNS"))
        )
        assert result.polarity is Polarity.POSITIVE
        assert result.score == 2.0


class TestWeightedMode:
    def test_intensifier_doubles(self):
        scorer = PhraseScorer(default_lexicon(), weighted=True)
        plain = scorer.score_tokens(phrase(("good", "JJ")))
        boosted = scorer.score_tokens(phrase(("very", "RB"), ("good", "JJ")))
        assert boosted.score == 2 * plain.score

    def test_diminisher_halves(self):
        scorer = PhraseScorer(default_lexicon(), weighted=True)
        result = scorer.score_tokens(phrase(("somewhat", "RB"), ("good", "JJ")))
        assert result.score == 0.5

    def test_unweighted_ignores_intensifiers(self, scorer):
        result = scorer.score_tokens(phrase(("very", "RB"), ("good", "JJ")))
        assert result.score == 1.0


class TestChunkScoring:
    def test_score_chunk(self, scorer):
        chunk = Chunk("NP", phrase(("excellent", "JJ"), ("pictures", "NNS")))
        assert scorer.score_chunk(chunk).polarity is Polarity.POSITIVE


class TestProperties:
    words = st.lists(
        st.sampled_from(
            [("excellent", "JJ"), ("terrible", "JJ"), ("camera", "NN"), ("not", "RB"),
             ("the", "DT"), ("failure", "NN"), ("superb", "JJ"), ("no", "DT")]
        ),
        min_size=1,
        max_size=8,
    )

    @given(words)
    def test_polarity_matches_score_sign(self, pairs):
        scorer = PhraseScorer(default_lexicon())
        result = scorer.score_tokens(phrase(*pairs))
        if result.score > 0:
            assert result.polarity is Polarity.POSITIVE
        elif result.score < 0:
            assert result.polarity is Polarity.NEGATIVE
        else:
            assert result.polarity is Polarity.NEUTRAL

    @given(words)
    def test_deterministic(self, pairs):
        scorer = PhraseScorer(default_lexicon())
        a = scorer.score_tokens(phrase(*pairs))
        b = scorer.score_tokens(phrase(*pairs))
        assert a == b
