"""Unit tests for the core data model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.model import (
    FeatureTerm,
    Polarity,
    Provenance,
    SentimentJudgment,
    Spot,
    Subject,
)
from repro.nlp.tokens import Span


class TestPolarity:
    def test_symbols(self):
        assert Polarity.POSITIVE.value == "+"
        assert Polarity.NEGATIVE.value == "-"
        assert Polarity.NEUTRAL.value == "0"

    def test_invert(self):
        assert Polarity.POSITIVE.invert() is Polarity.NEGATIVE
        assert Polarity.NEGATIVE.invert() is Polarity.POSITIVE
        assert Polarity.NEUTRAL.invert() is Polarity.NEUTRAL

    def test_double_invert_is_identity(self):
        for polarity in Polarity:
            assert polarity.invert().invert() is polarity

    def test_is_polar(self):
        assert Polarity.POSITIVE.is_polar
        assert Polarity.NEGATIVE.is_polar
        assert not Polarity.NEUTRAL.is_polar

    def test_from_symbol(self):
        assert Polarity.from_symbol("+") is Polarity.POSITIVE
        assert Polarity.from_symbol("-") is Polarity.NEGATIVE
        assert Polarity.from_symbol("0") is Polarity.NEUTRAL

    def test_from_symbol_rejects_garbage(self):
        with pytest.raises(ValueError):
            Polarity.from_symbol("positive")

    def test_str(self):
        assert str(Polarity.POSITIVE) == "+"


class TestSubject:
    def test_all_terms_includes_canonical_first(self):
        s = Subject("NR70", ("NR70 series", "the NR70"))
        assert s.all_terms[0] == "NR70"
        assert "NR70 series" in s.all_terms

    def test_all_terms_dedupes_case_insensitively(self):
        s = Subject("Sony", ("sony", "SONY", "Sony Corp"))
        assert len(s.all_terms) == 2

    def test_empty_canonical_rejected(self):
        with pytest.raises(ValueError):
            Subject("  ")

    def test_no_synonyms(self):
        assert Subject("camera").all_terms == ("camera",)


def make_spot(term="camera", start=0, subject=None):
    subject = subject or Subject(term)
    return Spot(subject=subject, term=term, span=Span(start, start + len(term)), sentence_index=0)


class TestSpot:
    def test_accessors(self):
        spot = make_spot("camera", start=4)
        assert spot.start == 4
        assert spot.end == 10
        assert spot.term == "camera"


class TestProvenance:
    def test_describe_with_pattern(self):
        p = Provenance(pattern="be CP SP", sentiment_words=("vibrant",))
        assert "be CP SP" in p.describe()
        assert "vibrant" in p.describe()

    def test_describe_negated(self):
        p = Provenance(pattern="take OP SP", negated=True)
        assert "negated" in p.describe()

    def test_describe_empty(self):
        assert Provenance().describe() == "lexicon"


class TestSentimentJudgment:
    def test_as_pair(self):
        j = SentimentJudgment(spot=make_spot("NR70"), polarity=Polarity.POSITIVE)
        assert j.as_pair() == ("NR70", "+")

    def test_subject_name_uses_canonical(self):
        subject = Subject("NR70", ("NR70 series",))
        spot = Spot(subject=subject, term="NR70 series", span=Span(0, 11), sentence_index=0)
        j = SentimentJudgment(spot=spot, polarity=Polarity.NEGATIVE)
        assert j.subject_name == "NR70"
        assert j.as_pair() == ("NR70", "-")


class TestFeatureTerm:
    def test_valid(self):
        f = FeatureTerm(term="battery life", score=42.0, dplus_count=10, dminus_count=1)
        assert f.term == "battery life"

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            FeatureTerm(term="x", score=0.0, dplus_count=-1, dminus_count=0)


class TestPolarityProperties:
    @given(st.sampled_from(list(Polarity)))
    def test_invert_preserves_polar_status(self, polarity):
        assert polarity.invert().is_polar == polarity.is_polar

    @given(st.sampled_from(list(Polarity)))
    def test_symbol_roundtrip(self, polarity):
        assert Polarity.from_symbol(polarity.value) is polarity
