"""Regression tests: the analyzer must survive chaos-corrupted documents.

Fault injection can hand the sentiment pipeline empty documents,
punctuation-only text, reversed text, and mid-token truncations (see
``repro.platform.faults``).  These tests pin two guarantees:

* the paper's worked examples for negation reversal and pattern
  matching keep their polarities (regression anchors);
* degenerate inputs — empty text, all-stopword sentences, sentences
  with no predicate — return judgments (possibly none), never raise.
"""

import pytest

from repro.core.analyzer import SentimentAnalyzer
from repro.core.model import Polarity, Subject
from repro.miners import (
    PosTaggerMiner,
    SentimentEntityMiner,
    SpotterMiner,
    TokenizerMiner,
)
from repro.platform import Entity, FaultPlan, MinerPipeline

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def analyzer():
    return SentimentAnalyzer()


def judge(analyzer, text, *names):
    subjects = [Subject(n) for n in names]
    return {j.subject_name: j.polarity for j in analyzer.analyze_text(text, subjects)}


class TestWorkedExampleAnchors:
    """The paper's examples, re-asserted as chaos-regression anchors."""

    def test_pattern_match_positive(self, analyzer):
        # Paper: "This camera takes excellent pictures." → (camera, +)
        out = judge(analyzer, "This camera takes excellent pictures.", "camera")
        assert out["camera"] is Polarity.POSITIVE

    def test_pattern_match_negative(self, analyzer):
        # Paper: "The product fails to meet our quality expectations." → −
        out = judge(
            analyzer, "The product fails to meet our quality expectations.", "product"
        )
        assert out["product"] is Polarity.NEGATIVE

    def test_negation_reversal(self, analyzer):
        out = judge(analyzer, "The camera does not take excellent pictures.", "camera")
        assert out["camera"] is Polarity.NEGATIVE

    def test_double_anchor_negation_of_negative(self, analyzer):
        out = judge(analyzer, "The camera never disappoints.", "camera")
        assert out["camera"] is Polarity.POSITIVE


class TestDegenerateInputs:
    """Tokenizer edge cases injected by document corruption."""

    @pytest.mark.parametrize(
        "text",
        [
            "",  # empty document
            "   \n\t  ",  # whitespace only
            "?! ... !! ??",  # punctuation only (the 'punctuation' mode)
            "the of and a an in on.",  # all-stopword sentence
            "the camera.",  # sentence with no predicate
            "camera",  # bare mention, no sentence structure
            "Is the camera good?",  # question (asserts nothing)
        ],
    )
    def test_never_raises(self, analyzer, text):
        judgments = analyzer.analyze_text(text, [Subject("camera")])
        for judgment in judgments:
            # No crash, and anything returned is a well-formed judgment.
            assert judgment.polarity in (
                Polarity.POSITIVE,
                Polarity.NEGATIVE,
                Polarity.NEUTRAL,
            )

    def test_no_predicate_sentence_is_neutral(self, analyzer):
        out = judge(analyzer, "the camera.", "camera")
        assert out.get("camera", Polarity.NEUTRAL) is Polarity.NEUTRAL

    def test_question_yields_no_polar_judgment(self, analyzer):
        out = judge(analyzer, "Is the camera excellent?", "camera")
        assert all(p is Polarity.NEUTRAL for p in out.values())

    def test_anchor_survives_surrounding_garbage(self, analyzer):
        text = "?!?! ... The camera takes excellent pictures. the of and a."
        out = judge(analyzer, text, "camera")
        assert out["camera"] is Polarity.POSITIVE


class TestCorruptedEntitiesThroughPipeline:
    """Every FaultPlan corruption mode flows through the full miner chain."""

    def _pipeline(self):
        return MinerPipeline(
            [
                TokenizerMiner(),
                PosTaggerMiner(),
                SpotterMiner([Subject("camera")]),
                SentimentEntityMiner(),
            ]
        )

    def test_all_corruption_modes_processable(self):
        plan = FaultPlan(seed=1)
        original = Entity(
            entity_id="doc", content="The camera takes excellent pictures."
        )
        pipeline = self._pipeline()
        for _ in range(4):  # one per corruption mode
            corrupted = plan.corrupt_entity(original)
            pipeline.process_entity(corrupted)  # must not raise
            assert corrupted.metadata["corrupted"] is True

    def test_reversed_text_yields_no_spurious_sentiment(self):
        plan = FaultPlan(seed=1)
        plan.corrupt_entity(Entity(entity_id="x", content="x"))  # consume 'empty'
        plan.corrupt_entity(Entity(entity_id="x", content="x"))  # consume 'punctuation'
        reversed_doc = plan.corrupt_entity(
            Entity(entity_id="doc", content="The camera takes excellent pictures.")
        )
        assert reversed_doc.metadata["corruption"] == "reversed"
        pipeline = self._pipeline()
        pipeline.process_entity(reversed_doc)
        assert not reversed_doc.has_layer("sentiment") or all(
            a.label == "0" for a in reversed_doc.layer("sentiment")
        )
