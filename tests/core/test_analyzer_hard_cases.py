"""Analyzer tests for the harder linguistic constructions."""

import pytest

from repro.core.analyzer import SentimentAnalyzer
from repro.core.model import Polarity, Subject


@pytest.fixture(scope="module")
def analyzer():
    return SentimentAnalyzer()


def judge(analyzer, text, *names):
    subjects = [Subject(n) for n in names]
    return {j.subject_name: j.polarity for j in analyzer.analyze_text(text, subjects)}


class TestComparatives:
    def test_better_than(self, analyzer):
        out = judge(analyzer, "The zoom is better than the flash.", "zoom", "flash")
        assert out["zoom"] is Polarity.POSITIVE
        assert out["flash"] is Polarity.NEGATIVE

    def test_worse_than(self, analyzer):
        out = judge(analyzer, "The zoom is worse than the flash.", "zoom", "flash")
        assert out["zoom"] is Polarity.NEGATIVE
        assert out["flash"] is Polarity.POSITIVE

    def test_regular_comparative(self, analyzer):
        out = judge(analyzer, "The zoom is sharper than the flash.", "zoom", "flash")
        assert out["zoom"] is Polarity.POSITIVE
        assert out["flash"] is Polarity.NEGATIVE

    def test_graded_lexicon_fallback(self, analyzer):
        assert analyzer.lexicon.polarity("better", "JJR") is Polarity.POSITIVE
        assert analyzer.lexicon.polarity("worst", "JJS") is Polarity.NEGATIVE
        assert analyzer.lexicon.polarity("sharpest", "JJS") is Polarity.POSITIVE

    def test_comparative_without_than_is_plain(self, analyzer):
        out = judge(analyzer, "The zoom is better.", "zoom")
        assert out["zoom"] is Polarity.POSITIVE


class TestQuestions:
    def test_polar_question_abstains(self, analyzer):
        out = judge(analyzer, "Is the zoom good?", "zoom")
        assert out["zoom"] is Polarity.NEUTRAL

    def test_wh_question_abstains(self, analyzer):
        out = judge(analyzer, "Why is the battery life so terrible?", "battery life")
        assert out["battery life"] is Polarity.NEUTRAL

    def test_statement_still_fires(self, analyzer):
        out = judge(analyzer, "The zoom is good.", "zoom")
        assert out["zoom"] is Polarity.POSITIVE


class TestConditionals:
    def test_if_clause_abstains(self, analyzer):
        out = judge(analyzer, "If the zoom were better, I would buy it.", "zoom")
        assert out["zoom"] is Polarity.NEUTRAL

    def test_unless_clause_abstains(self, analyzer):
        out = judge(analyzer, "Unless the battery improves, skip it.", "battery")
        assert out["battery"] is Polarity.NEUTRAL

    def test_main_clause_after_conditional_still_fires(self, analyzer):
        text = "If the weather holds, the zoom takes excellent pictures."
        out = judge(analyzer, text, "zoom")
        assert out["zoom"] is Polarity.POSITIVE


class TestVerblessConstructions:
    def test_exclamative_abstains(self, analyzer):
        out = judge(analyzer, "What a superb zoom!", "zoom")
        assert out["zoom"] is Polarity.NEUTRAL

    def test_fragment_abstains(self, analyzer):
        out = judge(analyzer, "The best camera ever.", "camera")
        assert out["camera"] is Polarity.NEUTRAL


class TestCoordinationAndScope:
    def test_both_conjuncts_assigned(self, analyzer):
        out = judge(analyzer, "The zoom is superb and works beautifully.", "zoom")
        assert out["zoom"] is Polarity.POSITIVE

    def test_but_clause_keeps_scopes_apart(self, analyzer):
        text = "The camera is excellent, but the price is outrageous."
        out = judge(analyzer, text, "camera", "price")
        assert out["camera"] is Polarity.POSITIVE
        assert out["price"] is Polarity.NEGATIVE

    def test_double_negation_style(self, analyzer):
        out = judge(analyzer, "The zoom never fails.", "zoom")
        assert out["zoom"] is Polarity.POSITIVE


class TestOpinionHolder:
    def test_third_person_holder(self, analyzer):
        (j,) = analyzer.analyze_text("Analysts criticized the merger.", [Subject("merger")])
        assert j.provenance.holder == "Analysts"

    def test_first_person_is_writer(self, analyzer):
        (j,) = analyzer.analyze_text("I love the zoom.", [Subject("zoom")])
        assert j.provenance.holder == "writer"

    def test_we_is_writer(self, analyzer):
        (j,) = analyzer.analyze_text("We recommend the camera.", [Subject("camera")])
        assert j.provenance.holder == "writer"

    def test_named_person_holder(self, analyzer):
        (j,) = analyzer.analyze_text(
            "Prof. Wilson recommends the camera.", [Subject("camera")]
        )
        assert j.provenance.holder == "Prof. Wilson"

    def test_copular_sentence_is_writer(self, analyzer):
        (j,) = analyzer.analyze_text("The colors are vibrant.", [Subject("colors")])
        assert j.provenance.holder == "writer"

    def test_holder_in_description(self, analyzer):
        (j,) = analyzer.analyze_text("Analysts criticized the merger.", [Subject("merger")])
        assert "holder[Analysts]" in j.provenance.describe()
