"""Unit tests for sentiment context window formation."""

import pytest

from repro.core.context import ContextBuilder, ContextWindowRule
from repro.core.model import Spot, Subject
from repro.nlp.sentences import split_sentences
from repro.nlp.tokens import Span

DOC = "First sentence here. The camera is great. Final words follow."


def camera_spot(document=DOC):
    start = document.index("camera")
    return Spot(
        subject=Subject("camera"),
        term="camera",
        span=Span(start, start + len("camera")),
        sentence_index=1,
    )


class TestContextWindowRule:
    def test_defaults_zero(self):
        rule = ContextWindowRule()
        assert rule.sentences_before == 0 and rule.sentences_after == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ContextWindowRule(sentences_before=-1)


class TestContextBuilder:
    def test_default_window_is_single_sentence(self):
        builder = ContextBuilder()
        ctx = builder.build(split_sentences(DOC), camera_spot())
        assert ctx.text_of(DOC) == "The camera is great."

    def test_focus_sentence(self):
        builder = ContextBuilder(ContextWindowRule(1, 1))
        ctx = builder.build(split_sentences(DOC), camera_spot())
        assert ctx.focus_sentence.index == 1

    def test_wider_window(self):
        builder = ContextBuilder(ContextWindowRule(1, 1))
        ctx = builder.build(split_sentences(DOC), camera_spot())
        assert ctx.text_of(DOC) == DOC
        assert len(ctx.sentences) == 3

    def test_window_clamped_at_document_edges(self):
        builder = ContextBuilder(ContextWindowRule(5, 5))
        ctx = builder.build(split_sentences(DOC), camera_spot())
        assert len(ctx.sentences) == 3

    def test_spot_outside_sentences_rejected(self):
        builder = ContextBuilder()
        bad = Spot(Subject("x"), "x", Span(5000, 5001), sentence_index=0)
        with pytest.raises(ValueError):
            builder.build(split_sentences(DOC), bad)

    def test_empty_document_rejected(self):
        with pytest.raises(ValueError):
            ContextBuilder().build([], camera_spot())


class TestMarkedText:
    def test_xml_tag_wraps_spot(self):
        builder = ContextBuilder()
        ctx = builder.build(split_sentences(DOC), camera_spot())
        marked = ctx.marked_text(DOC)
        assert marked == 'The <subject id="camera">camera</subject> is great.'

    def test_custom_tag_name(self):
        builder = ContextBuilder()
        ctx = builder.build(split_sentences(DOC), camera_spot())
        assert "<topic" in ctx.marked_text(DOC, tag="topic")
