"""Unit tests for the end-to-end SentimentMiner (modes A and B)."""

import pytest

from repro.core.context import ContextWindowRule
from repro.core.disambiguation import Disambiguator, TopicTermSet
from repro.core.miner import SentimentMiner
from repro.core.model import Polarity, Subject

SUBJECTS = [
    Subject("camera", ("cam",)),
    Subject("battery life",),
    Subject("zoom",),
]

REVIEW = (
    "I bought this camera last week. The camera takes excellent pictures. "
    "The battery life is disappointing. The zoom works really well."
)


@pytest.fixture(scope="module")
def miner():
    return SentimentMiner(subjects=SUBJECTS)


class TestModeA:
    def test_judgments_per_spot(self, miner):
        result = miner.mine_document(REVIEW, "doc1")
        by_subject = result.by_subject()
        polarities = {
            name: [j.polarity for j in judgments] for name, judgments in by_subject.items()
        }
        assert Polarity.POSITIVE in polarities["camera"]
        assert polarities["battery life"] == [Polarity.NEGATIVE]
        assert polarities["zoom"] == [Polarity.POSITIVE]

    def test_stats_counted(self, miner):
        result = miner.mine_document(REVIEW, "doc1")
        assert result.stats.documents == 1
        assert result.stats.sentences == 4
        assert result.stats.spots_found == 4
        assert result.stats.spots_on_topic == 4
        assert result.stats.judgments_polar >= 3

    def test_first_mention_neutral(self, miner):
        result = miner.mine_document(REVIEW, "doc1")
        camera = result.by_subject()["camera"]
        assert camera[0].polarity is Polarity.NEUTRAL  # "I bought this camera"

    def test_document_id_propagates(self, miner):
        result = miner.mine_document(REVIEW, "doc42")
        assert all(j.spot.document_id == "doc42" for j in result.judgments)

    def test_mode_a_requires_subjects(self):
        with pytest.raises(ValueError):
            SentimentMiner().mine_document("Anything.")

    def test_corpus_mining_merges(self, miner):
        result = miner.mine_corpus([("a", REVIEW), ("b", REVIEW)])
        assert result.stats.documents == 2
        assert len(result.judgments) == 2 * len(miner.mine_document(REVIEW).judgments)

    def test_polar_judgments_filter(self, miner):
        result = miner.mine_document(REVIEW)
        assert all(j.polarity.is_polar for j in result.polar_judgments())

    def test_disambiguator_filters_spots(self):
        terms = TopicTermSet.build(
            on_topic=["pictures", "photography"], off_topic=["weather", "beach"]
        )
        d = Disambiguator(terms)
        gated = SentimentMiner(subjects=[Subject("sun")], disambiguator=d)
        off_topic = "The sun is wonderful at the beach. The weather improved."
        result = gated.mine_document(off_topic)
        assert result.stats.spots_found == 1
        assert result.stats.spots_on_topic == 0
        assert result.judgments == []


class TestContexts:
    def test_contexts_yielded_per_spot(self, miner):
        contexts = list(miner.contexts(REVIEW, "doc1"))
        assert len(contexts) == 4

    def test_context_window_rule_respected(self):
        wide = SentimentMiner(subjects=SUBJECTS, context_rule=ContextWindowRule(1, 0))
        contexts = list(wide.contexts(REVIEW))
        # The second camera spot pulls in the preceding sentence.
        second = contexts[1]
        assert len(second.sentences) == 2


class TestModeB:
    def test_named_entities_judged(self):
        miner = SentimentMiner()
        text = "The Zorblax X100 takes excellent pictures. Flurbotek disappointed analysts."
        result = miner.mine_open_document(text)
        pairs = dict(j.as_pair() for j in result.judgments)
        assert pairs.get("Zorblax X100") == "+"
        assert pairs.get("Flurbotek") == "-"

    def test_non_sentiment_sentences_skipped(self):
        miner = SentimentMiner()
        text = "Flurbotek has offices in Omaha."
        result = miner.mine_open_document(text)
        assert result.judgments == []
        assert result.stats.spots_found >= 1
        assert result.stats.spots_on_topic == 0

    def test_open_corpus_merge(self):
        miner = SentimentMiner()
        docs = [("a", "Zorblax impressed reviewers."), ("b", "Zorblax failed badly.")]
        result = miner.mine_open_corpus(docs)
        assert result.stats.documents == 2
        polarities = [j.polarity for j in result.judgments if j.subject_name == "Zorblax"]
        assert Polarity.POSITIVE in polarities and Polarity.NEGATIVE in polarities


class TestContextWindowAttribution:
    TEXT = "I tested the zoom for a week. It is truly superb. The flash arrived Monday."

    def test_narrow_window_abstains_on_anaphora(self):
        miner = SentimentMiner(subjects=[Subject("zoom")])
        (j,) = miner.mine_document(self.TEXT).judgments
        assert j.polarity is Polarity.NEUTRAL

    def test_window_attributes_pronoun_sentiment(self):
        miner = SentimentMiner(
            subjects=[Subject("zoom")], context_rule=ContextWindowRule(0, 1)
        )
        (j,) = miner.mine_document(self.TEXT).judgments
        assert j.polarity is Polarity.POSITIVE

    def test_window_does_not_touch_polar_judgments(self):
        text = "The zoom is terrible. It is truly superb."
        miner = SentimentMiner(
            subjects=[Subject("zoom")], context_rule=ContextWindowRule(0, 1)
        )
        (j,) = miner.mine_document(text).judgments
        assert j.polarity is Polarity.NEGATIVE

    def test_unrelated_neighbor_does_not_leak(self):
        text = "The zoom arrived Monday. The colors are vibrant."
        miner = SentimentMiner(
            subjects=[Subject("zoom")], context_rule=ContextWindowRule(0, 1)
        )
        (j,) = miner.mine_document(text).judgments
        # Neighbor sentiment targets "the colors", not a pronoun: no leak.
        assert j.polarity is Polarity.NEUTRAL

    def test_negative_anaphora(self):
        text = "Let me say a word about the flash. It is dreadful."
        miner = SentimentMiner(
            subjects=[Subject("flash")], context_rule=ContextWindowRule(0, 1)
        )
        (j,) = miner.mine_document(text).judgments
        assert j.polarity is Polarity.NEGATIVE
