"""Unit tests for the two-resolution disambiguator."""

import pytest

from repro.core.disambiguation import (
    DisambiguationConfig,
    Disambiguator,
    TopicTermSet,
    idf_from_documents,
)
from repro.core.model import Spot, Subject
from repro.nlp.sentences import split_sentences
from repro.nlp.tokens import Span

SUN_TERMS = TopicTermSet.build(
    on_topic=["server", "java", "workstation", "software", "sun microsystems"],
    off_topic=["weather", "sky", "beach", "sunday", "sunshine"],
)


def spots_for(text, term="SUN"):
    out = []
    start = 0
    while True:
        idx = text.find(term, start)
        if idx < 0:
            break
        out.append(
            Spot(Subject("SUN Microsystems"), term, Span(idx, idx + len(term)), sentence_index=0)
        )
        start = idx + 1
    return out


class TestTopicTermSet:
    def test_build_lowercases(self):
        ts = TopicTermSet.build(["Java"], ["Beach"])
        assert "java" in ts.on_topic
        assert "beach" in ts.off_topic

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            TopicTermSet.build(["java"], ["java"])


class TestConfig:
    def test_bad_window(self):
        with pytest.raises(ValueError):
            DisambiguationConfig(local_window=0)


class TestDisambiguator:
    def test_on_topic_document_keeps_all_spots(self):
        # Paper's example: SUN the company vs. the sun/Sunday.
        text = (
            "SUN released a new server. The java workstation line grew. "
            "Their software business expanded. SUN gained share."
        )
        sentences = split_sentences(text)
        spots = spots_for(text)
        result = Disambiguator(SUN_TERMS).disambiguate(sentences, spots)
        assert len(result.on_topic) == 2
        assert result.off_topic == []

    def test_off_topic_document_drops_spots(self):
        text = (
            "The SUN rose over the beach. The weather was warm and the "
            "sky was clear. The sunshine lasted all sunday."
        )
        sentences = split_sentences(text)
        spots = spots_for(text)
        result = Disambiguator(SUN_TERMS).disambiguate(sentences, spots)
        assert result.on_topic == []
        assert len(result.off_topic) == 1

    def test_local_context_rescues_mixed_document(self):
        # Globally weak, but one spot sits next to strong evidence.
        text = (
            "The beach weather was mild. "
            "Meanwhile SUN shipped a java server to the workstation market. "
            "The sky cleared."
        )
        sentences = split_sentences(text)
        spots = spots_for(text)
        config = DisambiguationConfig(local_window=8, global_threshold=5.0, combined_threshold=1.0)
        result = Disambiguator(SUN_TERMS, config).disambiguate(sentences, spots)
        assert len(result.on_topic) == 1

    def test_global_score_exposed(self):
        text = "SUN sells java software for the server."
        result = Disambiguator(SUN_TERMS).disambiguate(split_sentences(text), spots_for(text))
        assert result.global_score > 0

    def test_lexical_affinity_counts_double(self):
        terms = TopicTermSet.build(on_topic=["sun microsystems"])
        text = "SUN Microsystems is a company."
        d = Disambiguator(terms)
        sentences = split_sentences(text)
        score = d._score([t for s in sentences for t in s.tokens])
        assert score == pytest.approx(2.0)

    def test_idf_weights_applied(self):
        terms = TopicTermSet.build(on_topic=["java"])
        text = "SUN ships java."
        sentences = split_sentences(text)
        unweighted = Disambiguator(terms)
        weighted = Disambiguator(terms, idf={"java": 3.0})
        tokens = [t for s in sentences for t in s.tokens]
        assert weighted._score(tokens) == 3 * unweighted._score(tokens)

    def test_empty_spot_list(self):
        result = Disambiguator(SUN_TERMS).disambiguate(split_sentences("Nothing."), [])
        assert result.total == 0


class TestIdf:
    def test_rare_terms_weigh_more(self):
        docs = [["java", "server"], ["server", "beach"], ["server"]]
        idf = idf_from_documents(docs)
        assert idf["java"] > idf["server"]

    def test_empty_corpus(self):
        assert idf_from_documents([]) == {}
