"""Differential property tests: Aho–Corasick spotter ≡ n-gram reference.

The production :class:`AhoCorasickSpotter` must produce *identical*
``Spot`` lists to the historical n-gram scanner
(:class:`tests.support.reference.ReferenceSubjectSpotter`) on any input:
same subjects, same terms, same spans, same order.  Hypothesis drives
the comparison over generated token streams and subject sets covering
the adversarial shapes called out in ISSUE 7 — overlapping terms,
shared prefixes ("Sony" vs "Sony PDA"), mixed case, multi-token
synonyms, and empty/degenerate subjects.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import Subject
from repro.core.spotting import AhoCorasickSpotter, compile_terms
from repro.nlp.tokens import Sentence, Token

from tests.support.reference import ReferenceSubjectSpotter

# A deliberately tiny, collision-prone vocabulary: single- and
# multi-token subject terms are all drawn from the same word pool the
# token streams use, so overlaps, shared prefixes, and nested terms are
# the common case rather than the rare one.
WORDS = ["sony", "pda", "zoom", "camera", "nr70", "series", "battery", "life", "x"]

word = st.sampled_from(WORDS)

#: Mixed-case variant of a vocabulary word ("Sony", "SONY", "sony").
cased_word = word.flatmap(
    lambda w: st.sampled_from([w, w.capitalize(), w.upper()])
)

#: A subject term: 1-3 vocabulary words, sometimes with doubled internal
#: whitespace (which ``compile_terms`` collapses) and mixed case.
term = st.lists(cased_word, min_size=1, max_size=3).flatmap(
    lambda ws: st.sampled_from(["  ", " "]).map(lambda sep: sep.join(ws))
)

#: Degenerate synonyms: empty and whitespace-only strings yield the
#: empty key and must be ignored by both implementations.
degenerate = st.sampled_from(["", " ", "   "])

subject = st.builds(
    lambda canonical, synonyms: Subject(canonical, tuple(synonyms)),
    term,
    st.lists(st.one_of(term, degenerate), max_size=3),
)

subjects = st.lists(subject, max_size=6)

#: A token stream: vocabulary words (mixed case) plus a few
#: out-of-vocabulary fillers, materialised as Sentence objects with
#: contiguous character offsets, split into 1-2 sentences.
token_texts = st.lists(
    st.one_of(cased_word, st.sampled_from(["the", "works", "badly", "Cameraman"])),
    min_size=1,
    max_size=12,
)


def build_sentences(texts: list[str], num_sentences: int) -> list[Sentence]:
    tokens = []
    offset = 0
    for text in texts:
        tokens.append(Token(text, offset, offset + len(text)))
        offset += len(text) + 1
    if num_sentences <= 1 or len(tokens) < 2:
        return [Sentence(tokens, index=0)]
    cut = max(1, len(tokens) // 2)
    return [
        Sentence(tokens[:cut], index=0),
        Sentence(tokens[cut:], index=1),
    ]


@settings(max_examples=200, deadline=None)
@given(subjects=subjects, texts=token_texts, num_sentences=st.integers(1, 2))
def test_spot_lists_identical(subjects, texts, num_sentences):
    sentences = build_sentences(texts, num_sentences)
    optimized = AhoCorasickSpotter(subjects).spot_document(sentences, "doc-1")
    reference = ReferenceSubjectSpotter(subjects).spot_document(sentences, "doc-1")
    assert optimized == reference


@settings(max_examples=100, deadline=None)
@given(subjects=subjects)
def test_collision_reports_identical(subjects):
    optimized = AhoCorasickSpotter(subjects)
    reference = ReferenceSubjectSpotter(subjects)
    assert optimized.collisions == reference.collisions
    # Both views agree with the shared table builder.
    _, collisions = compile_terms(subjects)
    assert optimized.collisions == collisions


@settings(max_examples=100, deadline=None)
@given(texts=token_texts)
def test_shared_prefix_longest_wins(texts):
    # The canonical paper example, run over arbitrary streams: wherever
    # "sony pda" matches, the nested "sony" must not fire at the same
    # start on either implementation.
    subs = [Subject("Sony"), Subject("Sony PDA"), Subject("pda")]
    sentences = build_sentences(texts, 1)
    optimized = AhoCorasickSpotter(subs).spot_document(sentences)
    reference = ReferenceSubjectSpotter(subs).spot_document(sentences)
    assert optimized == reference
    starts = [s.start for s in optimized]
    assert starts == sorted(starts)  # textual order
    for first, second in zip(optimized, optimized[1:]):
        assert first.end <= second.start  # non-overlapping


def test_empty_subject_list_spots_nothing():
    sentences = build_sentences(["sony", "pda"], 1)
    assert AhoCorasickSpotter([]).spot_document(sentences) == []
    assert ReferenceSubjectSpotter([]).spot_document(sentences) == []


def test_whitespace_only_synonyms_spot_nothing():
    subs = [Subject("x", ("  ", ""))]
    sentences = build_sentences(["the", "works"], 1)
    assert AhoCorasickSpotter(subs).spot_document(sentences) == []
    assert ReferenceSubjectSpotter(subs).spot_document(sentences) == []
