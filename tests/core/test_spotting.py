"""Unit tests for the subject spotter and named-entity spotter."""

import pytest

from repro.core.model import Subject
from repro.core.spotting import NamedEntitySpotter, SubjectSpotter
from repro.nlp.postagger import default_tagger
from repro.nlp.sentences import split_sentences


def spot_terms(text, subjects):
    spotter = SubjectSpotter(subjects)
    sentences = split_sentences(text)
    return [(s.term, s.subject.canonical) for s in spotter.spot_document(sentences)]


class TestSubjectSpotter:
    def test_single_term(self):
        out = spot_terms("The camera works.", [Subject("camera")])
        assert out == [("camera", "camera")]

    def test_case_insensitive(self):
        out = spot_terms("CAMERA and Camera.", [Subject("camera")])
        assert len(out) == 2

    def test_multiword_term(self):
        out = spot_terms("The battery life is short.", [Subject("battery life")])
        assert out == [("battery life", "battery life")]

    def test_longest_match_wins(self):
        subjects = [Subject("Sony"), Subject("Sony PDA")]
        out = spot_terms("Every Sony PDA sold.", subjects)
        assert out == [("Sony PDA", "Sony PDA")]

    def test_synonym_maps_to_canonical(self):
        subject = Subject("NR70", ("NR70 series",))
        out = spot_terms("The NR70 series shipped.", [subject])
        assert ("NR70 series", "NR70") in out

    def test_overlapping_synonyms_greedy_left_to_right(self):
        # Matching is greedy at each position; an earlier-starting synonym
        # wins over a longer one starting later — both map to the subject.
        subject = Subject("NR70", ("NR70 series", "the NR70"))
        out = spot_terms("The NR70 series shipped.", [subject])
        assert out == [("The NR70", "NR70")]

    def test_multiple_subjects_same_sentence(self):
        subjects = [Subject("zoom"), Subject("flash")]
        out = spot_terms("The zoom beats the flash.", subjects)
        assert {c for _, c in out} == {"zoom", "flash"}

    def test_no_partial_word_match(self):
        out = spot_terms("The cameraman left.", [Subject("camera")])
        assert out == []

    def test_spot_offsets_are_exact(self):
        text = "I love the camera."
        spotter = SubjectSpotter([Subject("camera")])
        (spot,) = spotter.spot_document(split_sentences(text))
        assert text[spot.start : spot.end] == "camera"

    def test_sentence_index_recorded(self):
        text = "Nothing here. The camera works."
        spotter = SubjectSpotter([Subject("camera")])
        (spot,) = spotter.spot_document(split_sentences(text))
        assert spot.sentence_index == 1

    def test_empty_subject_list(self):
        assert spot_terms("The camera works.", []) == []


def ne_names(text):
    spotter = NamedEntitySpotter()
    tagger = default_tagger()
    names = []
    for sentence in split_sentences(text):
        for spot in spotter.spot_sentence(tagger.tag(sentence)):
            names.append(spot.term)
    return names


class TestNamedEntitySpotter:
    def test_simple_entity(self):
        assert ne_names("We bought a Nikon yesterday.") == ["Nikon"]

    def test_multiword_entity(self):
        assert ne_names("We tested the Canon PowerShot today.") == ["Canon PowerShot"]

    def test_paper_split_example(self):
        # "Prof. Wilson of American University" splits into two entities.
        names = ne_names("We met Prof. Wilson of American University.")
        assert "Prof. Wilson" in names
        assert "American University" in names

    def test_conjunction_splits(self):
        names = ne_names("They compared Canon and Nikon yesterday.")
        assert "Canon" in names and "Nikon" in names
        assert all("and" not in n for n in names)

    def test_sentence_initial_common_word_not_entity(self):
        assert ne_names("The camera works.") == []
        assert ne_names("It works.") == []

    def test_sentence_initial_name_detected(self):
        names = ne_names("Nikon shipped a new camera.")
        assert "Nikon" in names

    def test_trailing_connector_dropped(self):
        names = ne_names("We prefer Sony and the rest.")
        assert names == ["Sony"]

    def test_model_number_entity(self):
        names = ne_names("We reviewed the NR70 today.")
        assert "NR70" in names

    def test_document_spotting_collects_all(self):
        spotter = NamedEntitySpotter()
        tagger = default_tagger()
        text = "Nikon excels. Canon struggles."
        sentences = [tagger.tag(s) for s in split_sentences(text)]
        spots = spotter.spot_document(sentences)
        assert {s.term for s in spots} == {"Nikon", "Canon"}


class TestTermCollisions:
    """Regression: terms differing only in internal whitespace collapse to
    one token key; the spotter must resolve that deterministically (first
    subject wins) and report the collision instead of silently letting the
    last writer overwrite the table."""

    def test_whitespace_variants_first_subject_wins(self):
        subjects = [Subject("Sony PDA"), Subject("Sony  PDA")]
        out = spot_terms("My Sony PDA broke.", subjects)
        assert out == [("Sony PDA", "Sony PDA")]

    def test_declaration_order_decides_not_write_order(self):
        # Reversed declaration order reverses the winner: the mapping is a
        # function of the subject list, not of dict insertion accidents.
        subjects = [Subject("Sony  PDA"), Subject("Sony PDA")]
        out = spot_terms("My Sony PDA broke.", subjects)
        assert out == [("Sony PDA", "Sony  PDA")]

    def test_collisions_reported(self):
        spotter = SubjectSpotter([Subject("Sony PDA"), Subject("Sony  PDA")])
        assert len(spotter.collisions) == 1
        collision = spotter.collisions[0]
        assert collision.key == ("sony", "pda")
        assert collision.kept.canonical == "Sony PDA"
        assert collision.ignored.canonical == "Sony  PDA"

    def test_cross_subject_synonym_collision(self):
        subjects = [Subject("camera", ("zoom lens",)), Subject("zoom  lens")]
        spotter = SubjectSpotter(subjects)
        out = spot_terms("The zoom lens is sharp.", subjects)
        assert out == [("zoom lens", "camera")]
        assert [c.key for c in spotter.collisions] == [("zoom", "lens")]

    def test_same_subject_duplicate_synonym_is_not_a_collision(self):
        spotter = SubjectSpotter([Subject("NR70", ("nr70", "NR70 "))])
        assert spotter.collisions == []

    def test_no_collision_for_distinct_terms(self):
        spotter = SubjectSpotter([Subject("Sony"), Subject("Sony PDA")])
        assert spotter.collisions == []
