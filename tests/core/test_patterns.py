"""Unit tests for the sentiment pattern database and its DSL."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.model import Polarity
from repro.core.patterns import (
    ComponentRef,
    SentimentPattern,
    SentimentPatternDB,
    default_pattern_db,
    parse_pattern_line,
)


class TestComponentRef:
    def test_parse_simple_role(self):
        ref = ComponentRef.parse("SP")
        assert ref.role == "SP"
        assert not ref.invert
        assert ref.prepositions == ()

    def test_parse_inverted(self):
        ref = ComponentRef.parse("~OP")
        assert ref.role == "OP"
        assert ref.invert

    def test_parse_pp_with_prepositions(self):
        ref = ComponentRef.parse("PP(by;with)")
        assert ref.role == "PP"
        assert ref.prepositions == ("by", "with")

    def test_pp_requires_prepositions(self):
        with pytest.raises(ValueError):
            ComponentRef.parse("PP")

    def test_non_pp_rejects_prepositions(self):
        with pytest.raises(ValueError):
            ComponentRef(role="SP", prepositions=("by",))

    def test_unknown_role_rejected(self):
        with pytest.raises(ValueError):
            ComponentRef.parse("XP")

    def test_format_roundtrip(self):
        for text in ["SP", "~OP", "PP(by;with)", "~PP(from)", "CP"]:
            assert ComponentRef.parse(text).format() == text


class TestParsePatternLine:
    def test_paper_example_impress(self):
        p = parse_pattern_line("impress + PP(by;with)")
        assert p.predicate == "impress"
        assert p.polarity is Polarity.POSITIVE
        assert p.source is None
        assert p.target.role == "PP"
        assert p.target.prepositions == ("by", "with")

    def test_paper_example_be(self):
        p = parse_pattern_line("be CP SP")
        assert p.predicate == "be"
        assert p.is_transfer
        assert p.source.role == "CP"
        assert p.target.role == "SP"

    def test_paper_example_offer(self):
        p = parse_pattern_line("offer OP SP")
        assert p.source.role == "OP"
        assert p.target.role == "SP"

    def test_inverted_source(self):
        p = parse_pattern_line("fix ~OP SP")
        assert p.source.invert

    def test_wrong_field_count(self):
        with pytest.raises(ValueError):
            parse_pattern_line("be CP")
        with pytest.raises(ValueError):
            parse_pattern_line("be CP SP extra")

    def test_format_roundtrip(self):
        for line in ["impress + PP(by;with)", "be CP SP", "offer OP SP", "fix ~OP SP", "hate - OP"]:
            assert parse_pattern_line(line).format() == line

    def test_predicate_lowercased(self):
        assert parse_pattern_line("Impress + SP").predicate == "impress"


class TestSentimentPatternValidation:
    def test_needs_exactly_one_category(self):
        target = ComponentRef.parse("SP")
        with pytest.raises(ValueError):
            SentimentPattern(predicate="be", target=target)
        with pytest.raises(ValueError):
            SentimentPattern(
                predicate="be",
                target=target,
                polarity=Polarity.POSITIVE,
                source=ComponentRef.parse("CP"),
            )

    def test_inverted_target_rejected(self):
        with pytest.raises(ValueError):
            SentimentPattern(
                predicate="be",
                target=ComponentRef(role="SP", invert=True),
                polarity=Polarity.POSITIVE,
            )


class TestSentimentPatternDB:
    def test_ordering_preserved(self):
        db = SentimentPatternDB()
        db.add_line("impress + PP(by;with)")
        db.add_line("impress + SP")
        rules = db.for_predicate("impress")
        assert [r.target.role for r in rules] == ["PP", "SP"]

    def test_unknown_predicate_empty(self):
        assert SentimentPatternDB().for_predicate("flurble") == []

    def test_contains_and_len(self):
        db = SentimentPatternDB()
        db.add_line("be CP SP")
        assert "be" in db
        assert "BE" in db
        assert len(db) == 1

    def test_iteration_sorted_by_predicate(self):
        db = SentimentPatternDB()
        db.add_line("offer OP SP")
        db.add_line("be CP SP")
        assert [p.predicate for p in db] == ["be", "offer"]


class TestDefaultDB:
    @pytest.fixture(scope="class")
    def db(self):
        return default_pattern_db()

    def test_paper_examples_present(self, db):
        impress = db.for_predicate("impress")
        assert any(
            p.polarity is Polarity.POSITIVE and p.target.role == "PP" and "by" in p.target.prepositions
            for p in impress
        )
        be = db.for_predicate("be")
        assert any(p.source and p.source.role == "CP" and p.target.role == "SP" for p in be)
        offer = db.for_predicate("offer")
        assert any(p.source and p.source.role == "OP" and p.target.role == "SP" for p in offer)

    def test_psych_verbs_prefer_passive_pp(self, db):
        rules = db.for_predicate("disappoint")
        assert rules[0].target.role == "PP"
        assert rules[0].polarity is Polarity.NEGATIVE

    def test_experiencer_verbs_prefer_object(self, db):
        rules = db.for_predicate("love")
        assert rules[0].target.role == "OP"
        assert rules[0].polarity is Polarity.POSITIVE

    def test_inverting_verbs(self, db):
        rules = db.for_predicate("fix")
        assert rules[0].source.invert

    def test_sentiment_verbs_have_fallback_sp(self, db):
        assert any(p.target.role == "SP" for p in db.for_predicate("fail"))

    def test_scale(self, db):
        assert len(db) > 300
        assert len(db.predicates) > 250


class TestDslProperty:
    roles = st.sampled_from(["SP", "OP", "CP", "PP(by)", "PP(by;with;from)", "~SP", "~OP"])
    targets = st.sampled_from(["SP", "OP", "PP(by)", "PP(with;of)"])
    categories = st.one_of(st.sampled_from(["+", "-"]), roles)
    predicates = st.text(alphabet="abcdefgh", min_size=2, max_size=10)

    @given(predicates, categories, targets)
    def test_parse_format_roundtrip(self, predicate, category, target):
        line = f"{predicate} {category} {target}"
        assert parse_pattern_line(line).format() == line


class TestFileFormat:
    def test_dump_load_roundtrip(self):
        import io

        db = SentimentPatternDB()
        for line in ["impress + PP(by;with)", "impress + SP", "be CP SP", "fix ~OP SP"]:
            db.add_line(line)
        buffer = io.StringIO()
        db.dump(buffer)
        buffer.seek(0)
        loaded = SentimentPatternDB.load(buffer)
        assert [p.format() for p in loaded] == [p.format() for p in db]
        # Priority order preserved within a predicate.
        assert [p.target.role for p in loaded.for_predicate("impress")] == ["PP", "SP"]

    def test_load_skips_comments(self):
        import io

        loaded = SentimentPatternDB.load(io.StringIO("# rules\n\nbe CP SP\n"))
        assert len(loaded) == 1

    def test_load_reports_line_number(self):
        import io

        with pytest.raises(ValueError, match="line 2"):
            SentimentPatternDB.load(io.StringIO("be CP SP\nbroken line here extra\n"))

    def test_default_db_roundtrips(self):
        import io

        db = default_pattern_db()
        buffer = io.StringIO()
        db.dump(buffer)
        buffer.seek(0)
        loaded = SentimentPatternDB.load(buffer)
        assert len(loaded) == len(db)
        assert loaded.predicates == db.predicates
