"""Unit tests for the sentiment lexicon."""

import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.lexicon import LexiconEntry, SentimentLexicon, coarse_pos, default_lexicon
from repro.core.model import Polarity


@pytest.fixture(scope="module")
def lexicon():
    return default_lexicon()


class TestCoarsePos:
    def test_adjectives(self):
        assert coarse_pos("JJ") == "JJ"
        assert coarse_pos("JJR") == "JJ"
        assert coarse_pos("JJS") == "JJ"

    def test_participles_count_as_adjectives(self):
        assert coarse_pos("VBN") == "JJ"
        assert coarse_pos("VBG") == "JJ"

    def test_nouns_verbs_adverbs(self):
        assert coarse_pos("NNS") == "NN"
        assert coarse_pos("VBZ") == "VB"
        assert coarse_pos("RBR") == "RB"

    def test_non_sentiment_tags(self):
        assert coarse_pos("DT") is None
        assert coarse_pos("IN") is None
        assert coarse_pos(".") is None


class TestLookups:
    def test_paper_example_entry(self, lexicon):
        # The paper's worked example: "excellent" JJ +
        assert lexicon.polarity("excellent", "JJ") is Polarity.POSITIVE

    def test_negative_adjective(self, lexicon):
        assert lexicon.polarity("mediocre", "JJ") is Polarity.NEGATIVE

    def test_unknown_word_is_neutral(self, lexicon):
        assert lexicon.polarity("chartreuse", "JJ") is Polarity.NEUTRAL

    def test_case_insensitive(self, lexicon):
        assert lexicon.polarity("Excellent", "JJ") is Polarity.POSITIVE

    def test_noun_plural_falls_back_to_lemma(self, lexicon):
        assert lexicon.polarity("defects", "NNS") is Polarity.NEGATIVE

    def test_verb_inflection_falls_back_to_lemma(self, lexicon):
        assert lexicon.polarity("impresses", "VBZ") is Polarity.POSITIVE
        assert lexicon.polarity("disappointed", "VBD") is Polarity.NEGATIVE

    def test_participial_adjectives_derived(self, lexicon):
        assert lexicon.polarity("disappointing", "JJ") is Polarity.NEGATIVE
        assert lexicon.polarity("disappointing", "VBG") is Polarity.NEGATIVE

    def test_adverbs(self, lexicon):
        assert lexicon.polarity("poorly", "RB") is Polarity.NEGATIVE
        assert lexicon.polarity("beautifully", "RB") is Polarity.POSITIVE

    def test_wrong_pos_misses(self, lexicon):
        # "excellent" is only a JJ entry; a (hypothetical) noun reading misses.
        assert lexicon.polarity("excellent", "DT") is Polarity.NEUTRAL


class TestMutation:
    def test_add_and_lookup(self):
        lex = SentimentLexicon()
        lex.add_term("snazzy", "JJ", "+")
        assert lex.polarity("snazzy", "JJ") is Polarity.POSITIVE

    def test_add_overwrites(self):
        lex = SentimentLexicon()
        lex.add_term("sick", "JJ", "-")
        lex.add_term("sick", "JJ", "+")  # slang flip
        assert lex.polarity("sick", "JJ") is Polarity.POSITIVE
        assert len(lex) == 1

    def test_invalid_pos_rejected(self):
        lex = SentimentLexicon()
        with pytest.raises(ValueError):
            lex.add(LexiconEntry("blorp", "DT", Polarity.POSITIVE))

    def test_merge(self):
        a = SentimentLexicon()
        a.add_term("alpha", "JJ", "+")
        b = SentimentLexicon()
        b.add_term("beta", "JJ", "-")
        a.merge(b)
        assert a.polarity("beta", "JJ") is Polarity.NEGATIVE
        assert len(a) == 2

    def test_contains(self):
        lex = SentimentLexicon()
        lex.add_term("fine", "JJ", "+")
        assert lex.contains("FINE", "JJ")
        assert not lex.contains("fine", "NN")


class TestScale:
    def test_roughly_paper_scale(self, lexicon):
        # "about 3000 sentiment term entries including about 2500 adjectives"
        counts = lexicon.counts_by_pos()
        assert 2000 <= len(lexicon) <= 4000
        assert counts["JJ"] >= 1500
        assert counts["JJ"] > counts["NN"] > 0

    def test_iteration_sorted_and_complete(self, lexicon):
        entries = list(lexicon)
        assert len(entries) == len(lexicon)
        keys = [(e.term, e.pos) for e in entries]
        assert keys == sorted(keys)


class TestFileFormat:
    def test_entry_format_matches_paper(self):
        entry = LexiconEntry("excellent", "JJ", Polarity.POSITIVE)
        assert entry.format() == '"excellent" JJ +'

    def test_dump_load_roundtrip(self):
        lex = SentimentLexicon()
        lex.add_term("excellent", "JJ", "+")
        lex.add_term("battery drain", "NN", "-")
        buffer = io.StringIO()
        lex.dump(buffer)
        buffer.seek(0)
        loaded = SentimentLexicon.load(buffer)
        assert loaded.polarity("excellent", "JJ") is Polarity.POSITIVE
        assert loaded.polarity("battery drain", "NN") is Polarity.NEGATIVE
        assert len(loaded) == len(lex)

    def test_load_skips_comments_and_blanks(self):
        text = '# comment\n\n"fine" JJ +\n'
        loaded = SentimentLexicon.load(io.StringIO(text))
        assert len(loaded) == 1

    def test_load_rejects_malformed(self):
        with pytest.raises(ValueError):
            SentimentLexicon.load(io.StringIO("not a lexicon line\n"))

    @given(
        st.lists(
            st.tuples(
                st.text(alphabet="abcdefghij", min_size=1, max_size=8),
                st.sampled_from(["JJ", "NN", "VB", "RB"]),
                st.sampled_from(["+", "-"]),
            ),
            max_size=30,
        )
    )
    def test_roundtrip_property(self, rows):
        lex = SentimentLexicon()
        for term, pos, symbol in rows:
            lex.add_term(term, pos, symbol)
        buffer = io.StringIO()
        lex.dump(buffer)
        buffer.seek(0)
        loaded = SentimentLexicon.load(buffer)
        assert list(loaded) == list(lex)


class TestTaggerEntries:
    def test_single_words_only(self, lexicon):
        entries = lexicon.tagger_entries()
        assert all(" " not in word for word in entries)

    def test_known_adjective_present(self, lexicon):
        assert lexicon.tagger_entries()["excellent"] == "JJ"
