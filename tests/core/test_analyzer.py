"""Unit tests for the sentiment analyzer — the paper's worked examples."""

import pytest

from repro.core.analyzer import SentimentAnalyzer
from repro.core.model import Polarity, Subject


@pytest.fixture(scope="module")
def analyzer():
    return SentimentAnalyzer()


def judge(analyzer, text, *names):
    subjects = [Subject(n) for n in names]
    return {j.subject_name: j.polarity for j in analyzer.analyze_text(text, subjects)}


class TestPaperExamples:
    def test_impress_passive_pp(self, analyzer):
        # Paper: "I am impressed by the flash capabilities." → (flash capability, +)
        out = judge(analyzer, "I am impressed by the flash capabilities.", "flash capabilities")
        assert out["flash capabilities"] is Polarity.POSITIVE

    def test_take_op_sp(self, analyzer):
        # Paper: "This camera takes excellent pictures." → (camera, +)
        out = judge(analyzer, "This camera takes excellent pictures.", "camera")
        assert out["camera"] is Polarity.POSITIVE

    def test_be_cp_sp(self, analyzer):
        # Paper: "The colors are vibrant." → colors +
        out = judge(analyzer, "The colors are vibrant.", "colors")
        assert out["colors"] is Polarity.POSITIVE

    def test_offer_positive(self, analyzer):
        out = judge(analyzer, "The company offers high quality products.", "company")
        assert out["company"] is Polarity.POSITIVE

    def test_offer_negative(self, analyzer):
        out = judge(analyzer, "The company offers mediocre services.", "company")
        assert out["company"] is Polarity.NEGATIVE

    def test_picture_is_flawless(self, analyzer):
        # Paper's positive-polarity example sentence.
        out = judge(analyzer, "The picture is flawless.", "picture")
        assert out["picture"] is Polarity.POSITIVE

    def test_product_fails_to_meet(self, analyzer):
        # Paper's negative-polarity example sentence.
        out = judge(
            analyzer, "The product fails to meet our quality expectations.", "product"
        )
        assert out["product"] is Polarity.NEGATIVE


class TestNegationHandling:
    def test_verb_phrase_negation_reverses(self, analyzer):
        out = judge(analyzer, "The camera does not take excellent pictures.", "camera")
        assert out["camera"] is Polarity.NEGATIVE

    def test_negated_copula(self, analyzer):
        out = judge(analyzer, "The colors are not vibrant.", "colors")
        assert out["colors"] is Polarity.NEGATIVE

    def test_never_disappoints(self, analyzer):
        out = judge(analyzer, "The camera never disappoints.", "camera")
        assert out["camera"] is Polarity.POSITIVE

    def test_negation_verb_fails_to(self, analyzer):
        out = judge(analyzer, "The camera fails to impress.", "camera")
        assert out["camera"] is Polarity.NEGATIVE

    def test_stopped_working(self, analyzer):
        out = judge(analyzer, "The camera stopped working.", "camera")
        assert out["camera"] is Polarity.NEGATIVE

    def test_negation_off_ablation(self):
        plain = SentimentAnalyzer(handle_negation=False)
        out = judge(plain, "The camera does not take excellent pictures.", "camera")
        assert out["camera"] is Polarity.POSITIVE  # wrong on purpose

    def test_determiner_negation_in_subject(self, analyzer):
        # Paper Section 4.2: "no" acts at a determiner position.
        out = judge(analyzer, "No part of the lens is flimsy.", "lens")
        assert out["lens"] is Polarity.POSITIVE

    def test_determiner_negation_in_subject_of_intransitive(self, analyzer):
        out = judge(analyzer, "No feature works.", "feature")
        assert out["feature"] is Polarity.NEGATIVE

    def test_determiner_negation_in_object_not_double_counted(self, analyzer):
        # The phrase scorer already flips "no flaws" to positive; the
        # clause-level negation must not flip it back.
        out = judge(analyzer, "The camera has no flaws.", "camera")
        assert out["camera"] is Polarity.POSITIVE


class TestTargetAssociation:
    def test_multiple_subjects_distinct_polarity(self, analyzer):
        text = "Unlike the T series CLIEs, the NR70 offers superb playback."
        out = judge(analyzer, text, "NR70", "T series CLIEs")
        assert out["NR70"] is Polarity.POSITIVE
        assert out["T series CLIEs"] is Polarity.NEGATIVE

    def test_subject_in_other_clause_not_contaminated(self, analyzer):
        text = "The zoom is superb, but the flash is terrible."
        out = judge(analyzer, text, "zoom", "flash")
        assert out["zoom"] is Polarity.POSITIVE
        assert out["flash"] is Polarity.NEGATIVE

    def test_bystander_subject_is_neutral(self, analyzer):
        # "software" is mentioned but the sentiment targets "update".
        text = "The update fixes the annoying bug in the software."
        out = judge(analyzer, text, "update", "software")
        assert out["update"] is Polarity.POSITIVE
        assert out["software"] is Polarity.NEUTRAL

    def test_subject_with_pp_attachment_covered(self, analyzer):
        text = "The support in the NR70 series is functional."
        out = judge(analyzer, text, "NR70 series", "support")
        assert out["NR70 series"] is Polarity.POSITIVE
        assert out["support"] is Polarity.POSITIVE

    def test_experiencer_object_target(self, analyzer):
        out = judge(analyzer, "Reviewers recommend the camera.", "camera")
        assert out["camera"] is Polarity.POSITIVE

    def test_psych_verb_active_subject_target(self, analyzer):
        out = judge(analyzer, "The battery life disappointed everyone.", "battery life")
        assert out["battery life"] is Polarity.NEGATIVE


class TestNeutralCases:
    def test_factual_sentence_neutral(self, analyzer):
        out = judge(analyzer, "The camera is black.", "camera")
        assert out["camera"] is Polarity.NEUTRAL

    def test_unknown_predicate_neutral(self, analyzer):
        out = judge(analyzer, "The camera weighs ten ounces.", "camera")
        assert out["camera"] is Polarity.NEUTRAL

    def test_no_spot_no_judgment(self, analyzer):
        assert analyzer.analyze_text("The zoom is great.", [Subject("flash")]) == []


class TestAblations:
    def test_patterns_off_uses_whole_sentence(self):
        lexicon_only = SentimentAnalyzer(use_patterns=False)
        # Collocation-style behaviour: any sentiment word colours all spots.
        text = "The update fixes the annoying bug in the software."
        out = judge(lexicon_only, text, "software")
        assert out["software"] is Polarity.NEGATIVE  # "annoying"+"bug" dominate

    def test_patterns_off_neutral_without_sentiment(self):
        lexicon_only = SentimentAnalyzer(use_patterns=False)
        out = judge(lexicon_only, "The camera is black.", "camera")
        assert out["camera"] is Polarity.NEUTRAL


class TestBearsSentiment:
    def test_sentiment_word_detected(self, analyzer):
        from repro.nlp.sentences import split_sentences

        (s,) = split_sentences("The camera is excellent.")
        assert analyzer.bears_sentiment(analyzer.tag(s))

    def test_plain_factual_sentence(self, analyzer):
        from repro.nlp.sentences import split_sentences

        (s,) = split_sentences("The camera has a 3x zoom.")
        assert not analyzer.bears_sentiment(analyzer.tag(s))


class TestProvenance:
    def test_pattern_recorded(self, analyzer):
        (j,) = analyzer.analyze_text("The colors are vibrant.", [Subject("colors")])
        assert j.provenance.pattern == "be CP SP"
        assert j.provenance.predicate == "be"
        assert "vibrant" in j.provenance.sentiment_words

    def test_negation_recorded(self, analyzer):
        (j,) = analyzer.analyze_text("The colors are not vibrant.", [Subject("colors")])
        assert j.provenance.negated


class TestNounShadowedPredicates:
    """Regression: predicates that double as sentiment nouns must still
    tag as verbs inside the analyzer, or their patterns can never fire.

    Paper Section 4.2 treats experiencer verbs like "mistrust" as
    sentiment verbs; before the fix, the lexicon's NN entry for the same
    word shadowed the predicate's VB prior and every such pattern
    ("mistrust - OP", "crash - SP", ...) was dead in base-form clauses.
    """

    def test_mistrust_object_pattern_fires(self, analyzer):
        out = judge(analyzer, "I mistrust this vendor.", "vendor")
        assert out["vendor"] is Polarity.NEGATIVE

    def test_trust_object_pattern_fires(self, analyzer):
        out = judge(analyzer, "Reviewers trust this brand.", "brand")
        assert out["brand"] is Polarity.POSITIVE

    def test_crash_subject_pattern_fires(self, analyzer):
        # "crash" is also a negative noun; the verb reading must survive.
        out = judge(analyzer, "These phones crash constantly.", "phones")
        assert out["phones"] is Polarity.NEGATIVE

    def test_noun_reading_still_tags_as_noun(self, analyzer):
        # The override only sets the lexical prior; contextual rules keep
        # noun positions nominal ("the crash" after a determiner).
        tagged = analyzer.tag(
            list(analyzer._splitter.split_text("The crash ruined everything."))[0]
        )
        tags = {t.text: t.tag for t in tagged.tokens}
        assert tags["crash"].startswith("NN")
