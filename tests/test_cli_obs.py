"""CLI observability: --metrics, --trace-out, platform --json, trace."""

import io
import json

from repro.cli import main


def run_cli(*argv, stdin_text=""):
    out = io.StringIO()
    code = main(list(argv), out=out, stdin=io.StringIO(stdin_text))
    return code, out.getvalue()


class TestObsFlagsOffByDefault:
    def test_analyze_output_has_no_obs_sections(self):
        _, plain = run_cli("analyze", "The zoom is superb.", "-s", "zoom")
        assert "metrics:" not in plain
        assert "trace records" not in plain

    def test_mine_output_has_no_obs_sections(self):
        _, plain = run_cli("mine", "--docs", "2")
        assert "metrics:" not in plain


class TestMetricsFlag:
    def test_analyze_metrics_appended(self):
        code, out = run_cli("analyze", "The zoom is superb.", "-s", "zoom", "--metrics")
        assert code == 0
        assert "\nmetrics:\n" in out
        assert "analyzer.sentences" in out

    def test_mine_metrics_include_miner_series(self):
        code, out = run_cli("mine", "--docs", "2", "--metrics")
        assert code == 0
        assert "miner.documents  2" in out
        assert "analyzer.pattern_matches" in out

    def test_platform_metrics_include_cluster_series(self):
        code, out = run_cli("platform", "--docs", "8", "--metrics")
        assert code == 0
        assert "cluster.runs  1" in out
        assert "vinci.requests" in out


class TestTraceOutFlag:
    def test_mine_writes_jsonl_dump(self, tmp_path):
        path = str(tmp_path / "mine.jsonl")
        code, out = run_cli("mine", "--docs", "2", "--trace-out", path)
        assert code == 0
        assert f"trace records to {path}" in out
        types = set()
        with open(path, encoding="utf-8") as stream:
            for line in stream:
                types.add(json.loads(line)["type"])
        assert types == {"span", "metric", "audit"}

    def test_trace_subcommand_renders_dump(self, tmp_path):
        path = str(tmp_path / "mine.jsonl")
        run_cli("mine", "--docs", "2", "--trace-out", path)
        code, out = run_cli("trace", path)
        assert code == 0
        assert "mine.corpus" in out
        assert "mine.document" in out
        assert "metrics" in out

    def test_trace_spans_only(self, tmp_path):
        path = str(tmp_path / "mine.jsonl")
        run_cli("mine", "--docs", "2", "--trace-out", path)
        code, out = run_cli("trace", path, "--spans-only")
        assert code == 0
        assert "mine.document" in out
        assert "miner.documents" not in out

    def test_trace_missing_file_fails_cleanly(self):
        code, _ = run_cli("trace", "/nonexistent/nope.jsonl")
        assert code == 2

    def test_platform_chaos_trace_renders_failures(self, tmp_path):
        path = str(tmp_path / "chaos.jsonl")
        code, _ = run_cli(
            "platform", "--chaos-seed", "8", "--trace-out", path
        )
        assert code == 0
        code, out = run_cli("trace", path, "--spans-only")
        assert code == 0
        assert "cluster.run" in out
        assert "vinci.attempt" in out


class TestPlatformJson:
    def test_json_payload_shape(self):
        code, out = run_cli("platform", "--docs", "8", "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["entities"] == 8
        assert payload["chaos_seed"] is None
        assert payload["report"]["coverage"] == 1.0
        assert payload["metrics"]["cluster.runs"] == 1.0

    def test_json_under_chaos_reports_faults(self):
        code, out = run_cli("platform", "--chaos-seed", "8", "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["chaos_seed"] == 8
        report = payload["report"]
        assert report["retries"] >= 0
        assert "dead_nodes" in report
        assert payload["metrics"]["cluster.retries"] == report["retries"]


class TestHealthCommand:
    def test_text_render_covers_every_section(self):
        code, out = run_cli(
            "health", "--docs", "12", "--requests", "40", "--chaos-seed", "7"
        )
        assert code == 0
        assert out.startswith("health @ sim_time=")
        for heading in ("serving", "index", "ingest", "memos",
                        "stage latency", "slo"):
            assert heading in out
        assert "breaker serving.node0" in out

    def test_json_is_a_v1_envelope(self):
        code, out = run_cli(
            "health", "--docs", "12", "--requests", "40",
            "--chaos-seed", "7", "--json",
        )
        assert code == 0
        envelope = json.loads(out)
        assert envelope["ok"] is True and envelope["error"] is None
        assert envelope["api_version"] == "v1"
        snap = envelope["data"]
        assert sum(snap["serving"]["responses"].values()) == 40
        assert snap["ingest"]["batches_applied"] == 3
        assert {s["slo"] for s in snap["slo"]["slos"]} == {
            "availability", "latency_p95", "freshness_p95"
        }

    def test_health_is_deterministic(self):
        args = ("health", "--docs", "12", "--requests", "40",
                "--chaos-seed", "7", "--json")
        assert run_cli(*args) == run_cli(*args)
