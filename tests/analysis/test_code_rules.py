"""Good/bad synthetic fixtures for every AST code rule."""

import ast
import textwrap

from repro.analysis import (
    EnvelopeSchemaRule,
    LayeringRule,
    MetricNameRule,
    SeededRngRule,
    ServingDisciplineRule,
    SpanContextRule,
    TraceContextRule,
    VinciHandlerRule,
    WallClockRule,
    default_code_rules,
)


def run_rule(rule, source, modpath="repro/core/example.py"):
    tree = ast.parse(textwrap.dedent(source))
    return list(rule.check(modpath, modpath, tree))


class TestWallClockRule:
    def test_clean_simclock_usage(self):
        findings = run_rule(
            WallClockRule(),
            """
            from repro.obs.clock import SimClock

            def run(clock: SimClock) -> float:
                return clock.now()
            """,
            modpath="repro/platform/example.py",
        )
        assert findings == []

    def test_flags_time_time(self):
        findings = run_rule(
            WallClockRule(),
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        assert len(findings) == 1
        assert findings[0].rule == "DET001"
        assert "time.time" in findings[0].message

    def test_flags_perf_counter_import(self):
        findings = run_rule(WallClockRule(), "from time import perf_counter\n")
        assert [f.rule for f in findings] == ["DET001"]

    def test_flags_datetime_now(self):
        findings = run_rule(
            WallClockRule(),
            """
            import datetime

            def stamp():
                return datetime.datetime.now()
            """,
        )
        assert len(findings) == 1
        assert "datetime.datetime.now" in findings[0].message

    def test_allows_datetime_arithmetic(self):
        findings = run_rule(
            WallClockRule(),
            """
            import datetime

            def plus_day(when: datetime.datetime) -> datetime.datetime:
                return when + datetime.timedelta(days=1)
            """,
        )
        assert findings == []


class TestSeededRngRule:
    def test_clean_seeded_rng(self):
        findings = run_rule(
            SeededRngRule(),
            """
            import random

            def make(seed: int) -> random.Random:
                return random.Random(seed)
            """,
        )
        assert findings == []

    def test_flags_unseeded_random(self):
        findings = run_rule(
            SeededRngRule(),
            """
            import random

            rng = random.Random()
            """,
        )
        assert len(findings) == 1
        assert findings[0].rule == "DET002"
        assert "unseeded" in findings[0].message

    def test_flags_module_level_functions(self):
        findings = run_rule(
            SeededRngRule(),
            """
            import random

            def roll():
                return random.randint(1, 6)
            """,
        )
        assert len(findings) == 1
        assert "random.randint" in findings[0].message

    def test_flags_system_random(self):
        findings = run_rule(
            SeededRngRule(),
            """
            import random

            rng = random.SystemRandom()
            """,
        )
        assert len(findings) == 1
        assert "SystemRandom" in findings[0].message

    def test_flags_from_import_of_functions(self):
        findings = run_rule(SeededRngRule(), "from random import shuffle\n")
        assert len(findings) == 1
        assert "random.shuffle" in findings[0].message

    def test_flags_unseeded_bare_random_class(self):
        findings = run_rule(
            SeededRngRule(),
            """
            from random import Random

            rng = Random()
            ok = Random(42)
            """,
        )
        assert len(findings) == 1
        assert "unseeded" in findings[0].message


class TestLayeringRule:
    def test_downward_import_is_legal(self):
        findings = run_rule(
            LayeringRule(),
            "from ..core import SentimentAnalyzer\n",
            modpath="repro/platform/example.py",
        )
        assert findings == []

    def test_upward_import_is_flagged(self):
        findings = run_rule(
            LayeringRule(),
            "from ..platform import DataStore\n",
            modpath="repro/core/example.py",
        )
        assert len(findings) == 1
        assert findings[0].rule == "ARCH001"
        assert "'core'" in findings[0].message and "'platform'" in findings[0].message

    def test_absolute_upward_import_is_flagged(self):
        findings = run_rule(
            LayeringRule(),
            "import repro.cli\n",
            modpath="repro/eval/example.py",
        )
        assert len(findings) == 1

    def test_peer_package_import_is_flagged(self):
        # corpora and miners share a rank: neither may import the other.
        findings = run_rule(
            LayeringRule(),
            "from ..corpora import ReviewGenerator\n",
            modpath="repro/miners/example.py",
        )
        assert len(findings) == 1

    def test_intra_package_import_is_free(self):
        findings = run_rule(
            LayeringRule(),
            "from .model import Polarity\nfrom . import lexicon\n",
            modpath="repro/core/example.py",
        )
        assert findings == []

    def test_stdlib_imports_ignored(self):
        findings = run_rule(
            LayeringRule(),
            "import json\nfrom collections import Counter\n",
            modpath="repro/core/example.py",
        )
        assert findings == []


class TestSpanContextRule:
    def test_with_statement_is_clean(self):
        findings = run_rule(
            SpanContextRule(),
            """
            def work(tracer):
                with tracer.span("mine.doc"):
                    pass
            """,
        )
        assert findings == []

    def test_bare_span_call_is_flagged(self):
        findings = run_rule(
            SpanContextRule(),
            """
            def work(tracer):
                span = tracer.span("mine.doc")
                span.finish()
            """,
        )
        assert len(findings) == 1
        assert findings[0].rule == "OBS001"

    def test_attribute_tracer_receiver(self):
        findings = run_rule(
            SpanContextRule(),
            """
            def work(self):
                self.obs.tracer.span("mine.doc")
            """,
        )
        assert len(findings) == 1

    def test_unrelated_span_method_ignored(self):
        findings = run_rule(
            SpanContextRule(),
            """
            def work(matcher):
                return matcher.span(0)
            """,
        )
        assert findings == []


class TestMetricNameRule:
    def test_valid_literal_name(self):
        findings = run_rule(
            MetricNameRule(),
            """
            def record(metrics):
                metrics.counter("mine.docs").add(1)
            """,
        )
        assert findings == []

    def test_invalid_literal_name(self):
        findings = run_rule(
            MetricNameRule(),
            """
            def record(metrics):
                metrics.counter("Mine Docs!").add(1)
            """,
        )
        assert len(findings) == 1
        assert findings[0].rule == "OBS002"

    def test_module_constant_resolution(self):
        findings = run_rule(
            MetricNameRule(),
            """
            BAD = "Not-A-Metric"

            def record(registry):
                registry.gauge(BAD).set(1)
            """,
        )
        assert len(findings) == 1
        assert "Not-A-Metric" in findings[0].message

    def test_class_constant_resolution_via_self(self):
        findings = run_rule(
            MetricNameRule(),
            """
            class Worker:
                METRIC = "bad name"

                def record(self):
                    self.metrics.histogram(self.METRIC).observe(1.0)
            """,
        )
        assert len(findings) == 1

    def test_unresolvable_name_is_skipped(self):
        findings = run_rule(
            MetricNameRule(),
            """
            def record(metrics, name):
                metrics.counter(name).add(1)
            """,
        )
        assert findings == []

    def test_non_metric_receiver_ignored(self):
        findings = run_rule(
            MetricNameRule(),
            """
            def tally(votes):
                votes.counter("NOT A METRIC")
            """,
        )
        assert findings == []


class TestVinciHandlerRule:
    MODPATH = "repro/platform/example.py"

    def test_conforming_named_handler(self):
        findings = run_rule(
            VinciHandlerRule(),
            """
            def handle(payload: dict) -> dict:
                return {"ok": True}

            def wire(bus):
                bus.register("svc", handle)
            """,
            modpath=self.MODPATH,
        )
        assert findings == []

    def test_conforming_lambda(self):
        findings = run_rule(
            VinciHandlerRule(),
            """
            def wire(bus, node):
                bus.register("svc", lambda payload: node.status())
            """,
            modpath=self.MODPATH,
        )
        assert findings == []

    def test_two_argument_handler_flagged(self):
        findings = run_rule(
            VinciHandlerRule(),
            """
            def handle(payload, extra):
                return {}

            def wire(bus):
                bus.register("svc", handle)
            """,
            modpath=self.MODPATH,
        )
        assert len(findings) == 1
        assert findings[0].rule == "PLAT001"

    def test_non_dict_return_flagged(self):
        findings = run_rule(
            VinciHandlerRule(),
            """
            def handle(payload):
                return [1, 2]

            def wire(bus):
                bus.register("svc", handle)
            """,
            modpath=self.MODPATH,
        )
        assert len(findings) == 1
        assert "dict envelope" in findings[0].message

    def test_lambda_returning_list_flagged(self):
        findings = run_rule(
            VinciHandlerRule(),
            """
            def wire(bus):
                bus.register("svc", lambda payload: [payload])
            """,
            modpath=self.MODPATH,
        )
        assert len(findings) == 1

    def test_out_of_scope_module_skipped(self):
        rule = VinciHandlerRule()
        assert not rule.applies_to("repro/core/example.py")
        assert rule.applies_to("repro/platform/example.py")
        assert rule.applies_to("repro/cli.py")


def test_default_code_rules_have_unique_ids_and_invariants():
    rules = default_code_rules()
    ids = [r.rule_id for r in rules]
    assert len(ids) == len(set(ids))
    assert len(rules) >= 6
    for rule in rules:
        assert rule.invariant, rule.rule_id


class TestServingDisciplineRule:
    MODPATH = "repro/platform/serving/router.py"

    def test_good_handler_and_bounded_queue(self):
        findings = run_rule(
            ServingDisciplineRule(),
            """
            from collections import deque

            class Node:
                def answer_counts(self, replica, payload, deadline):
                    deadline.check("counts")
                    return {"positive": 1}

            queue = deque(maxlen=32)
            window = deque([1, 2], 64)
            """,
            modpath=self.MODPATH,
        )
        assert findings == []

    def test_handler_without_deadline_parameter_flagged(self):
        findings = run_rule(
            ServingDisciplineRule(),
            """
            def answer_counts(replica, payload):
                return {"positive": 1}
            """,
            modpath=self.MODPATH,
        )
        assert len(findings) == 1
        assert "must accept a 'deadline'" in findings[0].message

    def test_handler_ignoring_its_deadline_flagged(self):
        findings = run_rule(
            ServingDisciplineRule(),
            """
            def answer_search(replica, payload, deadline):
                return {"ids": []}
            """,
            modpath=self.MODPATH,
        )
        assert len(findings) == 1
        assert "never" in findings[0].message

    def test_unbounded_deque_flagged(self):
        findings = run_rule(
            ServingDisciplineRule(),
            """
            from collections import deque

            queue = deque()
            explicit_none = deque(maxlen=None)
            """,
            modpath=self.MODPATH,
        )
        assert len(findings) == 2

    def test_unbounded_queue_flagged(self):
        findings = run_rule(
            ServingDisciplineRule(),
            """
            import queue

            unbounded = queue.Queue()
            zero = queue.Queue(maxsize=0)
            bounded = queue.Queue(maxsize=16)
            """,
            modpath=self.MODPATH,
        )
        assert len(findings) == 2

    def test_scope_is_the_serving_package(self):
        rule = ServingDisciplineRule()
        assert rule.applies_to("repro/platform/serving/router.py")
        assert not rule.applies_to("repro/platform/vinci.py")
        assert not rule.applies_to("repro/core/example.py")


class TestEnvelopeSchemaRule:
    MODPATH = "repro/platform/services.py"

    def test_clean_constructor_built_envelopes(self):
        findings = run_rule(
            EnvelopeSchemaRule(),
            """
            from repro.platform.api import error_envelope, ok_envelope

            class Service:
                def handle(self, payload):
                    if "q" not in payload:
                        return error_envelope("bad_request", "missing q")
                    return ok_envelope({"ids": []})
            """,
            modpath=self.MODPATH,
        )
        assert findings == []

    def test_raw_envelope_dict_literal_flagged(self):
        findings = run_rule(
            EnvelopeSchemaRule(),
            """
            def respond():
                return {"api_version": "v1", "ok": True, "data": {}}
            """,
            modpath="repro/platform/serving/loadgen.py",
        )
        assert [f.rule for f in findings] == ["PLAT003"]
        assert "raw envelope dict literal" in findings[0].message

    def test_ok_plus_data_shape_is_also_an_envelope_literal(self):
        findings = run_rule(
            EnvelopeSchemaRule(),
            """
            def respond():
                return {"ok": False, "error": {"code": "bad_request"}}
            """,
            modpath="repro/apps/reputation.py",
        )
        assert len(findings) == 1

    def test_plain_data_dicts_are_not_flagged(self):
        findings = run_rule(
            EnvelopeSchemaRule(),
            """
            def payload():
                return {"subject": "NR70", "positive": 2, "negative": 1}
            """,
            modpath="repro/apps/reputation.py",
        )
        assert findings == []

    def test_api_module_itself_is_exempt(self):
        findings = run_rule(
            EnvelopeSchemaRule(),
            """
            def ok_envelope(data):
                return {"api_version": "v1", "ok": True, "data": data}
            """,
            modpath="repro/platform/api.py",
        )
        assert findings == []

    def test_handler_returning_raw_dict_flagged(self):
        findings = run_rule(
            EnvelopeSchemaRule(),
            """
            class Node:
                def answer_counts(self, snapshot, payload, deadline):
                    return dict(positive=1)
            """,
            modpath="repro/platform/serving/router.py",
        )
        assert len(findings) == 1
        assert "answer_counts" in findings[0].message

    def test_handler_through_helper_fixpoint_is_clean(self):
        findings = run_rule(
            EnvelopeSchemaRule(),
            """
            from repro.platform.api import ok_envelope

            def _reply(data):
                return ok_envelope(data)

            class Service:
                def handle(self, payload):
                    return _reply({"rows": []})
            """,
            modpath=self.MODPATH,
        )
        assert findings == []

    def test_bindings_dict_registers_handlers(self):
        findings = run_rule(
            EnvelopeSchemaRule(),
            """
            class Service:
                def counts(self, payload):
                    return [1, 2, 3]

            def register(bus, service):
                bindings = {"sentiment.counts": service.counts}
                for name, handler in bindings.items():
                    bus.register(name, handler)
            """,
            modpath=self.MODPATH,
        )
        assert len(findings) == 1
        assert "counts" in findings[0].message

    def test_handler_modules_only_for_return_discipline(self):
        # Outside the handler modules the return check does not apply
        # (but the dict-literal check still does).
        findings = run_rule(
            EnvelopeSchemaRule(),
            """
            class Node:
                def handle(self, payload):
                    return {"just": "data"}
            """,
            modpath="repro/platform/serving/loadgen.py",
        )
        assert findings == []

    def test_scope_covers_platform_and_apps(self):
        rule = EnvelopeSchemaRule()
        assert rule.applies_to("repro/platform/services.py")
        assert rule.applies_to("repro/platform/serving/router.py")
        assert rule.applies_to("repro/apps/reputation.py")
        assert not rule.applies_to("repro/core/miner.py")

    def test_registered_in_default_rule_set(self):
        assert "PLAT003" in {rule.rule_id for rule in default_code_rules()}


class TestTraceContextRule:
    MODPATH = "repro/platform/example.py"

    def run(self, source):
        return run_rule(TraceContextRule(), source, modpath=self.MODPATH)

    # -- bus payloads ------------------------------------------------------

    def test_with_trace_wrapped_payload_is_clean(self):
        findings = self.run(
            """
            from repro.obs import with_trace

            def read(bus, tracer, op):
                return bus.request(
                    "node0", with_trace({"op": op}, tracer.current_context)
                )
            """
        )
        assert findings == []

    def test_dict_literal_with_trace_key_is_clean(self):
        findings = self.run(
            """
            def read(bus, ctx):
                return bus.request("node0", {"op": "counts", "trace": ctx})
            """
        )
        assert findings == []

    def test_name_assigned_from_with_trace_is_clean(self):
        findings = self.run(
            """
            from repro.obs import with_trace

            def read(bus, tracer):
                payload = with_trace({"op": "counts"}, tracer.current_context)
                return bus.request("node0", payload)
            """
        )
        assert findings == []

    def test_parameter_passthrough_is_clean(self):
        # A payload the function received is the caller's propagation
        # problem, not this hop's.
        findings = self.run(
            """
            def forward(bus, payload):
                return bus.request("node0", payload)
            """
        )
        assert findings == []

    def test_bare_dict_payload_is_flagged(self):
        findings = self.run(
            """
            def read(bus, subject):
                return bus.request("node0", {"op": "counts", "subject": subject})
            """
        )
        assert [f.rule for f in findings] == ["OBS003"]
        assert "with_trace" in findings[0].message

    def test_locally_built_untraced_dict_is_flagged(self):
        findings = self.run(
            """
            def read(bus, subject):
                payload = {"op": "counts", "subject": subject}
                return bus.request("node0", payload)
            """
        )
        assert [f.rule for f in findings] == ["OBS003"]

    def test_out_of_scope_module_is_ignored(self):
        rule = TraceContextRule()
        assert rule.applies_to(self.MODPATH)
        assert not rule.applies_to("repro/core/miner.py")
        assert not rule.applies_to("repro/obs/tracer.py")

    # -- envelope handlers opening spans -----------------------------------

    def test_handler_joining_remote_context_is_clean(self):
        findings = self.run(
            """
            from repro.obs import extract_context

            def handle(self, payload, tracer):
                ctx = extract_context(payload)
                with tracer.span("node.read", parent=ctx):
                    return {"ok": True}
            """
        )
        assert findings == []

    def test_handler_with_trace_id_param_is_clean(self):
        findings = self.run(
            """
            def attempt(self, payload, trace_id):
                with self.tracer.span("vinci.attempt"):
                    return trace_id
            """
        )
        assert findings == []

    def test_handler_starting_disconnected_span_is_flagged(self):
        findings = self.run(
            """
            def handle(self, payload, tracer):
                with tracer.span("node.read"):
                    return {"ok": True}
            """
        )
        assert [f.rule for f in findings] == ["OBS003"]
        assert "consult" in findings[0].message

    def test_superseded_by_interprocedural_obs003i(self):
        # The per-file heuristic left the default set when OBS003i
        # (tests/analysis/test_program_rules.py) replaced it; the class
        # stays importable for targeted use.
        from repro.analysis import default_program_rules

        assert "OBS003" not in {rule.rule_id for rule in default_code_rules()}
        assert "OBS003i" in {rule.rule_id for rule in default_program_rules()}
