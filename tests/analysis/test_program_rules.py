"""Good/bad fixtures for every interprocedural rule (RES001..DEAD001)."""

import ast
import textwrap

from repro.analysis import (
    DeadSymbolRule,
    DeadlinePropagationRule,
    ResourcePairRule,
    RngFlowRule,
    TraceThreadingRule,
    WalOrderingRule,
    build_program,
    default_program_rules,
    summarize_module,
)
from repro.analysis.program import content_digest


def make_program(modules):
    summaries = []
    for modpath, source in modules.items():
        source = textwrap.dedent(source)
        tree = ast.parse(source)
        summaries.append(
            summarize_module(modpath, modpath, tree, content_digest(source.encode()))
        )
    return build_program(summaries)


def run_rule(rule, modules):
    return list(rule.check(make_program(modules)))


class TestResourcePairRule:
    def test_release_in_finally_is_clean(self):
        findings = run_rule(
            ResourcePairRule(),
            {
                "repro/serving/svc.py": """
                class Service:
                    def handle(self, query):
                        version = self._index.pin()
                        try:
                            return version.search(query)
                        finally:
                            self._index.release(version)
                """
            },
        )
        assert findings == []

    def test_exception_path_leak_is_flagged(self):
        findings = run_rule(
            ResourcePairRule(),
            {
                "repro/serving/svc.py": """
                class Service:
                    def handle(self, query):
                        version = self._index.pin()
                        result = version.search(query)
                        self._index.release(version)
                        return result
                """
            },
        )
        assert [f.rule for f in findings] == ["RES001"]
        assert "exception paths" in findings[0].message

    def test_branch_without_release_is_flagged(self):
        findings = run_rule(
            ResourcePairRule(),
            {
                "repro/serving/svc.py": """
                class Service:
                    def handle(self, query, fast):
                        version = self._index.pin()
                        if fast:
                            return None
                        try:
                            return version.search(query)
                        finally:
                            self._index.release(version)
                """
            },
        )
        assert [f.rule for f in findings] == ["RES001"]

    def test_handoff_to_releasing_helper_is_clean(self):
        findings = run_rule(
            ResourcePairRule(),
            {
                "repro/serving/svc.py": """
                class Service:
                    def handle(self, query):
                        version = self._index.pin()
                        return self._finish(version)

                    def _finish(self, version):
                        self._index.release(version)
                        return None
                """
            },
        )
        assert findings == []


class TestDeadlinePropagationRule:
    GOOD = {
        "repro/platform/svc.py": """
        class Node:
            def answer_entity(self, payload, deadline):
                return self._fetch(deadline)

            def _fetch(self, deadline):
                return self._bus.request(
                    "node", {"budget": deadline.remaining()}
                )
        """
    }

    def test_threaded_deadline_is_clean(self):
        assert run_rule(DeadlinePropagationRule(), self.GOOD) == []

    def test_payload_without_budget_is_flagged(self):
        findings = run_rule(
            DeadlinePropagationRule(),
            {
                "repro/platform/svc.py": """
                class Node:
                    def answer_entity(self, payload, deadline):
                        return self._fetch(deadline)

                    def _fetch(self, deadline):
                        return self._bus.request("node", {"kind": "q"})
                """
            },
        )
        assert [f.rule for f in findings] == ["SRV001"]
        assert "no remaining budget" in findings[0].message

    def test_hop_dropping_the_deadline_is_flagged(self):
        findings = run_rule(
            DeadlinePropagationRule(),
            {
                "repro/platform/svc.py": """
                class Node:
                    def answer_entity(self, payload, deadline):
                        return self._fetch()

                    def _fetch(self):
                        return self._bus.request("node", {"budget": 1})
                """
            },
        )
        assert [f.rule for f in findings] == ["SRV001"]
        assert "without passing the deadline" in findings[0].message

    def test_unreachable_bus_read_is_ignored(self):
        # No answer* handler reaches the read; nothing to enforce.
        findings = run_rule(
            DeadlinePropagationRule(),
            {
                "repro/platform/svc.py": """
                class Node:
                    def poll(self):
                        return self._bus.request("node", {"kind": "q"})
                """
            },
        )
        assert findings == []


class TestTraceThreadingRule:
    def test_wrapped_payload_is_clean(self):
        findings = run_rule(
            TraceThreadingRule(),
            {
                "repro/platform/svc.py": """
                from ..obs import with_trace

                class Node:
                    def send(self, bus):
                        msg = with_trace({"kind": "q"})
                        return bus.request("node", msg)
                """
            },
        )
        assert findings == []

    def test_untraced_value_through_helper_is_flagged(self):
        # The per-file OBS003 had to trust the 'payload' parameter; the
        # interprocedural rule sees the caller pass an untraced dict.
        findings = run_rule(
            TraceThreadingRule(),
            {
                "repro/platform/svc.py": """
                class Node:
                    def send(self, bus):
                        return self._post(bus, {"kind": "q"})

                    def _post(self, bus, payload):
                        return bus.request("node", payload)
                """
            },
        )
        assert [f.rule for f in findings] == ["OBS003i"]
        assert "drops the trace context" in findings[0].message

    def test_traced_value_through_helper_is_clean(self):
        findings = run_rule(
            TraceThreadingRule(),
            {
                "repro/platform/svc.py": """
                class Node:
                    def send(self, bus, ctx):
                        return self._post(bus, {"kind": "q", "trace": ctx})

                    def _post(self, bus, payload):
                        return bus.request("node", payload)
                """
            },
        )
        assert findings == []

    def test_span_without_consulting_context_is_flagged(self):
        findings = run_rule(
            TraceThreadingRule(),
            {
                "repro/platform/svc.py": """
                class Node:
                    def handle(self, payload, tracer):
                        with tracer.span("handle"):
                            return payload["kind"]
                """
            },
        )
        assert [f.rule for f in findings] == ["OBS003i"]
        assert "never consults the incoming trace context" in findings[0].message

    def test_consulting_context_via_callee_is_clean(self):
        findings = run_rule(
            TraceThreadingRule(),
            {
                "repro/platform/svc.py": """
                from ..obs import extract_context

                class Node:
                    def handle(self, payload, tracer):
                        span_ctx = self._ctx(payload)
                        with tracer.span("handle"):
                            return span_ctx

                    def _ctx(self, payload):
                        return extract_context(payload)
                """
            },
        )
        assert findings == []


class TestRngFlowRule:
    SHUFFLER = """
    def shuffle_docs(docs, rng):
        rng.shuffle(docs)
        return docs
    """

    def test_rng_crossing_subsystems_is_flagged(self):
        findings = run_rule(
            RngFlowRule(),
            {
                "repro/nlp/shuffler.py": self.SHUFFLER,
                "repro/core/sampler.py": """
                import random

                from repro.nlp.shuffler import shuffle_docs

                def sample(docs):
                    rng = random.Random(7)
                    return shuffle_docs(docs, rng)
                """,
            },
        )
        assert [f.rule for f in findings] == ["DET002i"]
        assert "'core'" in findings[0].message and "'nlp'" in findings[0].message

    def test_rng_staying_in_its_subsystem_is_clean(self):
        findings = run_rule(
            RngFlowRule(),
            {
                "repro/core/shuffler.py": self.SHUFFLER,
                "repro/core/sampler.py": """
                import random

                from repro.core.shuffler import shuffle_docs

                def sample(docs):
                    rng = random.Random(7)
                    return shuffle_docs(docs, rng)
                """,
            },
        )
        assert findings == []

    def test_state_held_rng_crossing_is_flagged(self):
        findings = run_rule(
            RngFlowRule(),
            {
                "repro/nlp/shuffler.py": self.SHUFFLER,
                "repro/core/sampler.py": """
                import random

                from repro.nlp.shuffler import shuffle_docs

                class Sampler:
                    def __init__(self, seed):
                        self._rng = random.Random(seed)

                    def sample(self, docs):
                        return shuffle_docs(docs, self._rng)
                """,
            },
        )
        assert [f.rule for f in findings] == ["DET002i"]


class TestDeadSymbolRule:
    def test_unreferenced_public_function_is_flagged(self):
        findings = run_rule(
            DeadSymbolRule(),
            {
                "repro/core/util.py": """
                def used(x):
                    return x

                def dead(x):
                    return x
                """,
                "repro/core/user.py": """
                from repro.core.util import used

                def main():
                    return used(0)
                """,
            },
        )
        assert [f.rule for f in findings] == ["DEAD001"]
        assert "'dead'" in findings[0].message

    def test_underscore_and_main_are_exempt(self):
        findings = run_rule(
            DeadSymbolRule(),
            {
                "repro/core/util.py": """
                def _private(x):
                    return x

                def main():
                    return 0
                """
            },
        )
        assert findings == []

    def test_shim_reexport_nothing_imports_is_flagged(self):
        findings = run_rule(
            DeadSymbolRule(),
            {
                "repro/core/impl.py": """
                def helper(x):
                    return x

                def main():
                    return helper(0)
                """,
                "repro/platform/shim.py": """
                from ..core.impl import helper

                __all__ = ["helper"]
                """,
            },
        )
        assert [f.rule for f in findings] == ["DEAD001"]
        assert "re-export 'helper'" in findings[0].message

    def test_shim_reexport_with_importer_is_clean(self):
        findings = run_rule(
            DeadSymbolRule(),
            {
                "repro/core/impl.py": """
                def helper(x):
                    return x

                def main():
                    return helper(0)
                """,
                "repro/platform/shim.py": """
                from ..core.impl import helper

                __all__ = ["helper"]
                """,
                "repro/cli.py": """
                from repro.platform.shim import helper

                def main():
                    return helper(0)
                """,
            },
        )
        assert findings == []

    def test_reference_roots_count_as_users(self, tmp_path):
        tests_root = tmp_path / "tests"
        tests_root.mkdir()
        (tests_root / "test_util.py").write_text(
            "from repro.core.util import only_tested\n", encoding="utf-8"
        )
        modules = {
            "repro/core/util.py": """
            def only_tested(x):
                return x
            """
        }
        with_roots = run_rule(
            DeadSymbolRule(reference_roots=(str(tests_root),)), modules
        )
        without_roots = run_rule(DeadSymbolRule(), modules)
        assert with_roots == []
        assert [f.rule for f in without_roots] == ["DEAD001"]


class TestWalOrderingRule:
    def test_append_before_mutate_is_clean(self):
        findings = run_rule(
            WalOrderingRule(),
            {
                "repro/platform/ingestion.py": """
                class Manager:
                    def ingest(self, batch):
                        if batch:
                            lsn = self._wal.append(batch)
                            for delta in batch:
                                self._store.store(delta.entity)
                        return batch
                """
            },
        )
        assert findings == []

    def test_mutation_before_append_is_flagged(self):
        findings = run_rule(
            WalOrderingRule(),
            {
                "repro/platform/ingestion.py": """
                class Manager:
                    def ingest(self, batch):
                        for delta in batch:
                            self._store.store(delta.entity)
                        self._wal.append(batch)
                """
            },
        )
        assert len(findings) == 1
        assert findings[0].rule == "PLAT004"
        assert "no WAL append has happened yet" in findings[0].message

    def test_append_on_one_branch_only_is_flagged(self):
        # The append must dominate: reaching the mutation through the
        # durable=False arm is an un-logged mutation path.
        findings = run_rule(
            WalOrderingRule(),
            {
                "repro/platform/ingestion.py": """
                class Manager:
                    def ingest(self, batch, durable):
                        if durable:
                            self._wal.append(batch)
                        self._store.store_all(batch)
                """
            },
        )
        assert len(findings) == 1
        assert "store_all" in findings[0].message

    def test_functions_without_wal_appends_are_exempt(self):
        # The offline bootstrap path mutates without a WAL by design;
        # the contract binds only code that participates in logging.
        findings = run_rule(
            WalOrderingRule(),
            {
                "repro/platform/ingestion.py": """
                class Manager:
                    def bootstrap(self, entities):
                        self._store.store_all(entities)
                """
            },
        )
        assert findings == []

    def test_out_of_scope_modules_are_exempt(self):
        findings = run_rule(
            WalOrderingRule(),
            {
                "repro/platform/serving/loadgen.py": """
                def build(batch, wal, store):
                    store.store_all(batch)
                    wal.append(batch)
                """
            },
        )
        assert findings == []

    def test_real_ingest_path_is_clean(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[2] / "src"
        modules = {
            f"repro/platform/{name}": (
                root / "repro" / "platform" / name
            ).read_text(encoding="utf-8")
            for name in ("ingestion.py", "segments.py", "wal.py")
        }
        assert run_rule(WalOrderingRule(), modules) == []


class TestDefaultProgramRules:
    def test_all_six_rules_registered(self):
        ids = [r.rule_id for r in default_program_rules()]
        assert ids == [
            "RES001",
            "SRV001",
            "OBS003i",
            "DET002i",
            "PLAT004",
            "DEAD001",
        ]

    def test_findings_are_deterministically_ordered(self):
        modules = {
            "repro/core/b.py": "def dead_b(x):\n    return x\n",
            "repro/core/a.py": "def dead_a(x):\n    return x\n",
        }
        first = [f.message for f in run_rule(DeadSymbolRule(), modules)]
        second = [
            f.message
            for f in run_rule(
                DeadSymbolRule(), dict(reversed(list(modules.items())))
            )
        ]
        assert first == second == sorted(first)
