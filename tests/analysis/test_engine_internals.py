"""Engine internals: suppression precedence, exit codes, report shape."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    LintReport,
    Severity,
    Suppression,
    SuppressionConfig,
)

GOLDEN = Path(__file__).parent / "data" / "lint_report.golden.json"


def make_finding(rule="DET002", path="src/repro/core/sampler.py", line=12,
                 severity=Severity.ERROR, message="unseeded rng"):
    return Finding(
        rule=rule, severity=severity, message=message, path=path, line=line
    )


class TestSuppressionPrecedence:
    """The first matching entry wins; order encodes precedence."""

    def test_path_specific_entry_beats_later_rule_wide_entry(self):
        config = SuppressionConfig(
            [
                Suppression(
                    rule="DET002",
                    path="src/repro/core/*",
                    reason="core fixture rng",
                ),
                Suppression(rule="DET002", reason="blanket"),
            ]
        )
        finding = config.apply(make_finding())
        assert finding.suppression_reason == "core fixture rng"
        assert [s.rule for s in config.unused()] == ["DET002"]

    def test_rule_wide_entry_beats_later_match_entry(self):
        config = SuppressionConfig(
            [
                Suppression(rule="DET002", reason="by rule"),
                Suppression(rule="*", match="unseeded", reason="by match"),
            ]
        )
        finding = config.apply(make_finding())
        assert finding.suppression_reason == "by rule"

    def test_non_matching_path_falls_through_to_match_entry(self):
        config = SuppressionConfig(
            [
                Suppression(
                    rule="DET002", path="src/repro/nlp/*", reason="nlp only"
                ),
                Suppression(rule="*", match="unseeded", reason="by match"),
            ]
        )
        finding = config.apply(make_finding())
        assert finding.suppression_reason == "by match"

    def test_line_anchored_match_via_message_substring(self):
        config = SuppressionConfig(
            [Suppression(rule="DET002", match="line 12", reason="anchored")]
        )
        assert config.apply(make_finding(message="rng at line 12")).suppressed
        assert not config.apply(make_finding(message="rng at line 13")).suppressed


class TestExitCodes:
    def test_severity_value_is_the_exit_code(self):
        assert int(Severity.INFO) == 0
        assert int(Severity.WARNING) == 1
        assert int(Severity.ERROR) == 2

    @pytest.mark.parametrize(
        "severity,expected",
        [(Severity.INFO, 0), (Severity.WARNING, 1), (Severity.ERROR, 2)],
    )
    def test_exit_code_is_max_unsuppressed_severity(self, severity, expected):
        report = LintReport(findings=[make_finding(severity=severity)])
        assert report.exit_code() == expected

    def test_threshold_hides_lower_severities(self):
        report = LintReport(
            findings=[make_finding(severity=Severity.WARNING)]
        )
        assert report.exit_code(Severity.ERROR) == 0
        assert report.exit_code(Severity.WARNING) == 1

    def test_suppressed_findings_do_not_count(self):
        finding = make_finding()
        finding.suppressed = True
        assert LintReport(findings=[finding]).exit_code() == 0

    def test_severity_parse_round_trip(self):
        for severity in Severity:
            assert Severity.parse(str(severity)) is severity
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.parse("fatal")


class TestGoldenReport:
    def make_report(self):
        suppressed = Finding(
            rule="DATA005",
            severity=Severity.ERROR,
            message="negation verb 'fail' is also a sentiment verb",
            path="<lexicon>",
            line=3,
        )
        suppressed.suppressed = True
        suppressed.suppression_reason = "intended dual reading"
        stale = Finding(
            rule="LINT001",
            severity=Severity.WARNING,
            message=(
                "suppression matched no finding (rule=OBS001 path=*); "
                "remove it or fix its pattern"
            ),
            path="<suppressions>",
        )
        return LintReport(
            findings=[
                make_finding(
                    message="unseeded random.Random() breaks byte-identical reruns"
                ),
                suppressed,
                stale,
            ],
            files_checked=2,
            rules_run=19,
            files_reanalyzed=1,
        )

    def test_to_json_matches_golden_fixture(self):
        golden = GOLDEN.read_text(encoding="utf-8").rstrip("\n")
        assert self.make_report().to_json() == golden

    def test_golden_round_trips_through_json(self):
        payload = json.loads(self.make_report().to_json())
        assert payload == json.loads(GOLDEN.read_text(encoding="utf-8"))
        assert payload["exit_code"] == 2
        assert [f["rule"] for f in payload["findings"]] == [
            "DET002",
            "DATA005",
            "LINT001",
        ]
