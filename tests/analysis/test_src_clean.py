"""Tier-1 gate: the full rule set runs clean over the shipped source.

This is the test the issue's acceptance criteria single out: the whole
``src/repro`` tree must produce zero unsuppressed error findings, and
deliberately introducing a seeded-RNG or layering violation must make
the linter fail.
"""

from pathlib import Path

import repro
from repro.analysis import Linter, Severity, build_linter, default_code_rules

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = Path(repro.__file__).resolve().parent


def lint_src():
    linter = build_linter(REPO_ROOT / "lint-suppressions.json")
    return linter.lint([SRC])


class TestSrcIsClean:
    def test_zero_unsuppressed_errors(self):
        report = lint_src()
        errors = report.unsuppressed(Severity.ERROR)
        assert errors == [], "\n" + "\n".join(f.render() for f in errors)

    def test_zero_unsuppressed_warnings(self):
        # Stale suppressions surface as warnings; the config must be live.
        report = lint_src()
        assert report.unsuppressed(Severity.WARNING) == [], report.render()

    def test_every_source_file_was_checked(self):
        report = lint_src()
        expected = len(list(SRC.rglob("*.py")))
        assert report.files_checked == expected
        assert report.files_checked > 80

    def test_intended_exceptions_are_suppressed_not_silenced(self):
        report = lint_src()
        suppressed = report.suppressed()
        assert len(suppressed) == 2
        assert all(f.rule == "DATA005" for f in suppressed)
        assert all(f.suppression_reason for f in suppressed)

    def test_warm_cache_run_reanalyzes_nothing(self):
        lint_src()  # ensure the cache is populated
        report = lint_src()
        assert report.files_reanalyzed == 0
        assert report.files_checked > 80


class TestViolationsAreCaught:
    """Deliberate violations in synthetic files must fail the lint."""

    def lint_snippet(self, tmp_path, source, relpath):
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
        linter = Linter(code_rules=default_code_rules())
        return linter.lint([target])

    def test_unseeded_rng_fails_the_lint(self, tmp_path):
        report = self.lint_snippet(
            tmp_path,
            "import random\nrng = random.Random()\n",
            "repro/core/bad_rng.py",
        )
        assert report.exit_code() == 2
        assert [f.rule for f in report.unsuppressed()] == ["DET002"]

    def test_layering_violation_fails_the_lint(self, tmp_path):
        report = self.lint_snippet(
            tmp_path,
            "from repro.platform import DataStore\n",
            "repro/core/bad_layering.py",
        )
        assert report.exit_code() == 2
        assert [f.rule for f in report.unsuppressed()] == ["ARCH001"]

    def test_wall_clock_fails_the_lint(self, tmp_path):
        report = self.lint_snippet(
            tmp_path,
            "import time\nstamp = time.time()\n",
            "repro/obs/bad_clock.py",
        )
        assert report.exit_code() == 2
        assert [f.rule for f in report.unsuppressed()] == ["DET001"]

    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        report = self.lint_snippet(
            tmp_path, "def broken(:\n", "repro/core/broken.py"
        )
        assert report.exit_code() == 2
        assert [f.rule for f in report.unsuppressed()] == ["LINT001"]
