"""CFG construction and the forward worklist solver."""

import ast
import textwrap

from repro.analysis import summarize_module
from repro.analysis.dataflow import ENTRY, EXIT, EV_CALL, forward_fixpoint
from repro.analysis.program import content_digest


def function_summary(source, qname="fn"):
    source = textwrap.dedent(source)
    tree = ast.parse(source)
    summary = summarize_module(
        "repro/core/demo.py", "repro/core/demo.py", tree,
        content_digest(source.encode()),
    )
    return summary.functions[qname]


def acquire_facts(fn, acquire="pin", release="release"):
    """In-facts at EXIT: indices of acquire calls that may still be held.

    The exceptional out-set omits the node's own acquires — an acquire
    that raised never acquired — mirroring how RES001 uses the solver.
    """

    def transfer(node, facts):
        held = set(facts)
        for event in node.events:
            if event[0] != EV_CALL:
                continue
            if fn.calls[event[1]].terminal == release:
                held.clear()
        out_exc = frozenset(held)
        for event in node.events:
            if event[0] == EV_CALL and fn.calls[event[1]].terminal == acquire:
                held.add(event[1])
        return frozenset(held), out_exc

    return forward_fixpoint(fn.cfg, transfer)[EXIT]


class TestCfgShape:
    def test_straight_line_reaches_exit(self):
        fn = function_summary("def fn(x):\n    y = x\n    return y\n")
        reachable = set()
        frontier = [ENTRY]
        while frontier:
            idx = frontier.pop()
            if idx in reachable:
                continue
            reachable.add(idx)
            frontier.extend(fn.cfg.successors(idx))
        assert EXIT in reachable

    def test_raising_statement_has_exceptional_edge_to_exit(self):
        fn = function_summary("def fn(x):\n    y = work(x)\n    return y\n")
        raising = [n for n in fn.cfg.nodes if n.esucc >= 0]
        assert raising and all(n.esucc == EXIT for n in raising)

    def test_try_redirects_exceptional_edge_to_handler(self):
        fn = function_summary(
            """
            def fn(x):
                try:
                    y = work(x)
                except ValueError:
                    y = 0
                return y
            """
        )
        work_node = next(
            n for n in fn.cfg.nodes if n.events and n.events[0][0] == EV_CALL
        )
        assert work_node.esucc not in (EXIT, -1)


class TestForwardFixpoint:
    def test_balanced_pair_is_not_held_at_exit(self):
        fn = function_summary(
            """
            def fn(self):
                v = self.index.pin()
                try:
                    return v.data
                finally:
                    self.index.release(v)
            """
        )
        assert acquire_facts(fn) == frozenset()

    def test_exception_path_leaks_without_finally(self):
        fn = function_summary(
            """
            def fn(self):
                v = self.index.pin()
                data = v.search()
                self.index.release(v)
                return data
            """
        )
        assert acquire_facts(fn) != frozenset()

    def test_acquire_that_raised_never_acquired(self):
        # The only way to EXIT without the release is the pin's own
        # exceptional edge, and the exceptional out-set omits the pin.
        fn = function_summary(
            """
            def fn(self):
                v = self.index.pin()
                self.index.release(v)
            """
        )
        assert acquire_facts(fn) == frozenset()

    def test_branch_missing_release_is_held_at_exit(self):
        fn = function_summary(
            """
            def fn(self, flag):
                v = self.index.pin()
                if flag:
                    self.index.release(v)
                return v
            """
        )
        assert acquire_facts(fn) != frozenset()
