"""Mutated in-memory tables for every data rule."""

from repro.analysis import (
    LexiconConflictRule,
    LexiconPosRule,
    NegationOverlapRule,
    PatternDuplicateRule,
    PatternPredicateRule,
    PatternSyntaxRule,
    default_data_rules,
)
from repro.analysis.data_rules import (
    default_lexicon_entries,
    default_pattern_lines,
    known_pattern_predicates,
)


class TestPatternSyntaxRule:
    def test_shipped_db_is_clean(self):
        assert list(PatternSyntaxRule().check()) == []

    def test_paper_examples_parse(self):
        lines = ["impress + PP(by;with)", "be CP SP", "offer OP SP"]
        assert list(PatternSyntaxRule(lines).check()) == []

    def test_unknown_component_flagged(self):
        findings = list(PatternSyntaxRule(["love + XP"]).check())
        assert len(findings) == 1
        assert findings[0].rule == "DATA001"
        assert findings[0].line == 1

    def test_tilde_on_fixed_polarity_flagged(self):
        findings = list(PatternSyntaxRule(["avoid ~- SP"]).check())
        assert len(findings) == 1
        assert "transfer categories" in findings[0].message

    def test_cp_target_flagged(self):
        findings = list(PatternSyntaxRule(["be SP CP"]).check())
        assert len(findings) == 1
        assert "target" in findings[0].message

    def test_malformed_line_flagged(self):
        findings = list(PatternSyntaxRule(["love"]).check())
        assert len(findings) == 1


class TestPatternPredicateRule:
    def test_shipped_db_is_fully_covered(self):
        assert list(PatternPredicateRule().check()) == []

    def test_unknown_predicate_flagged(self):
        findings = list(
            PatternPredicateRule(["frobnicate + SP"], known={"love"}).check()
        )
        assert len(findings) == 1
        assert findings[0].rule == "DATA002"
        assert "frobnicate" in findings[0].message

    def test_known_predicate_passes(self):
        assert list(PatternPredicateRule(["love + OP"], known={"love"}).check()) == []

    def test_every_shipped_predicate_is_a_known_lemma(self):
        known = known_pattern_predicates()
        for line in default_pattern_lines():
            assert line.split()[0] in known, line


class TestPatternDuplicateRule:
    def test_shipped_db_has_no_duplicates(self):
        assert list(PatternDuplicateRule().check()) == []

    def test_duplicate_flagged_with_first_location(self):
        findings = list(
            PatternDuplicateRule(["be CP SP", "offer OP SP", "be CP SP"]).check()
        )
        assert len(findings) == 1
        assert findings[0].rule == "DATA003"
        assert findings[0].line == 3
        assert "entry 1" in findings[0].message

    def test_same_predicate_different_targets_allowed(self):
        lines = ["impress + PP(by;with)", "impress + SP"]
        assert list(PatternDuplicateRule(lines).check()) == []


class TestLexiconConflictRule:
    def test_shipped_lexicon_has_no_conflicts(self):
        assert list(LexiconConflictRule().check()) == []

    def test_conflicting_polarity_flagged(self):
        entries = [("sharp", "JJ", "+"), ("sharp", "JJ", "-")]
        findings = list(LexiconConflictRule(entries).check())
        assert len(findings) == 1
        assert findings[0].rule == "DATA004"
        assert "sharp" in findings[0].message

    def test_same_term_different_pos_allowed(self):
        entries = [("harm", "VB", "-"), ("harm", "NN", "-")]
        assert list(LexiconConflictRule(entries).check()) == []

    def test_case_insensitive(self):
        entries = [("Sharp", "JJ", "+"), ("sharp", "JJ", "-")]
        assert len(list(LexiconConflictRule(entries).check())) == 1


class TestNegationOverlapRule:
    def test_shipped_overlap_is_exactly_fail_and_lack(self):
        words = sorted(
            f.message.split("'")[1] for f in NegationOverlapRule().check()
        )
        assert words == ["fail", "lack"]

    def test_negator_in_polarity_terms_flagged(self):
        findings = list(
            NegationOverlapRule(
                entries=[("never", "RB", "-")],
                negators={"never"},
                negation_verbs=(),
            ).check()
        )
        assert len(findings) == 1
        assert findings[0].rule == "DATA005"

    def test_disjoint_tables_are_clean(self):
        findings = list(
            NegationOverlapRule(
                entries=[("good", "JJ", "+")],
                negators={"not"},
                negation_verbs={"fail"},
            ).check()
        )
        assert findings == []

    def test_negation_verb_overlap_reported_for_verbs_only(self):
        findings = list(
            NegationOverlapRule(
                entries=[("collapse", "NN", "-")],
                negators=(),
                negation_verbs={"collapse"},
            ).check()
        )
        # "collapse" here is a noun entry, not a verb entry.
        assert findings == []


class TestLexiconPosRule:
    def test_shipped_lexicon_is_clean(self):
        assert list(LexiconPosRule().check()) == []

    def test_unknown_pos_flagged(self):
        findings = list(LexiconPosRule([("good", "ADJ", "+")]).check())
        assert len(findings) == 1
        assert findings[0].rule == "DATA006"

    def test_fine_grained_penn_tag_rejected(self):
        # JJR is a valid Penn tag but not a coarse lexicon class.
        findings = list(LexiconPosRule([("better", "JJR", "+")]).check())
        assert len(findings) == 1

    def test_bad_polarity_symbol_flagged(self):
        findings = list(LexiconPosRule([("good", "JJ", "0")]).check())
        assert len(findings) == 1
        assert "sent_category" in findings[0].message


def test_default_data_rules_have_unique_ids():
    rules = default_data_rules()
    ids = [r.rule_id for r in rules]
    assert len(ids) == len(set(ids))
    assert len(rules) >= 6


def test_lexicon_scale_matches_paper():
    # Paper Section 4.2: ~3000 entries, ~2500 adjectives (the curated
    # JJ lists here, plus participial adjectives derived from verbs).
    entries = default_lexicon_entries()
    assert 2500 <= len(entries) <= 3500
    assert sum(1 for _t, pos, _s in entries if pos == "JJ") >= 1500
