"""Suppression config: matching, justification, staleness reporting."""

import json

import pytest

from repro.analysis import (
    Finding,
    Linter,
    Severity,
    Suppression,
    SuppressionConfig,
)
from repro.analysis.data_rules import NegationOverlapRule


def make_finding(rule="DATA005", path="<lexicon>", message="negation verb 'fail'"):
    return Finding(rule=rule, severity=Severity.ERROR, message=message, path=path)


class TestSuppressionMatching:
    def test_exact_rule_and_path(self):
        entry = Suppression(rule="DATA005", reason="intended", path="<lexicon>")
        assert entry.covers(make_finding())
        assert not entry.covers(make_finding(rule="DATA004"))
        assert not entry.covers(make_finding(path="<pattern-db>"))

    def test_message_substring(self):
        entry = Suppression(rule="*", reason="r", match="'fail'")
        assert entry.covers(make_finding())
        assert not entry.covers(make_finding(message="negation verb 'lack'"))

    def test_path_glob(self):
        entry = Suppression(rule="*", reason="r", path="src/repro/platform/*")
        assert entry.covers(make_finding(path="src/repro/platform/vinci.py"))
        assert not entry.covers(make_finding(path="src/repro/core/scoring.py"))


class TestSuppressionConfig:
    def test_reason_is_mandatory(self):
        with pytest.raises(ValueError, match="reason"):
            SuppressionConfig.from_dict({"suppressions": [{"rule": "DATA005"}]})

    def test_rule_is_mandatory(self):
        with pytest.raises(ValueError, match="rule"):
            SuppressionConfig.from_dict({"suppressions": [{"reason": "why"}]})

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown keys"):
            SuppressionConfig.from_dict(
                {"suppressions": [{"rule": "X", "reason": "r", "files": "*"}]}
            )

    def test_load_malformed_json(self, tmp_path):
        config = tmp_path / "s.json"
        config.write_text("{nope")
        with pytest.raises(ValueError, match="malformed"):
            SuppressionConfig.load(str(config))

    def test_apply_marks_finding_with_reason(self):
        config = SuppressionConfig.from_dict(
            {"suppressions": [{"rule": "DATA005", "reason": "intended overlap"}]}
        )
        finding = config.apply(make_finding())
        assert finding.suppressed
        assert finding.suppression_reason == "intended overlap"

    def test_unused_entries_reported(self):
        config = SuppressionConfig.from_dict(
            {
                "suppressions": [
                    {"rule": "DATA005", "reason": "hit"},
                    {"rule": "DET001", "reason": "never hit"},
                ]
            }
        )
        config.apply(make_finding())
        stale = config.unused()
        assert [s.rule for s in stale] == ["DET001"]


class TestLinterSuppressionIntegration:
    def test_suppressed_finding_does_not_count_toward_exit_code(self):
        rule = NegationOverlapRule(
            entries=[("fail", "VB", "-")], negators=(), negation_verbs={"fail"}
        )
        config = SuppressionConfig.from_dict(
            {"suppressions": [{"rule": "DATA005", "reason": "intended"}]}
        )
        report = Linter(data_rules=[rule], suppressions=config).lint([])
        assert report.exit_code() == 0
        assert len(report.suppressed()) == 1

    def test_without_suppression_exit_code_is_error(self):
        rule = NegationOverlapRule(
            entries=[("fail", "VB", "-")], negators=(), negation_verbs={"fail"}
        )
        report = Linter(data_rules=[rule]).lint([])
        assert report.exit_code() == 2

    def test_stale_suppression_becomes_warning(self):
        config = SuppressionConfig.from_dict(
            {"suppressions": [{"rule": "DET001", "reason": "obsolete"}]}
        )
        report = Linter(suppressions=config).lint([])
        warnings = report.unsuppressed(Severity.WARNING)
        assert len(warnings) == 1
        assert "matched no finding" in warnings[0].message
        assert report.exit_code() == 1

    def test_repo_config_parses_and_every_entry_has_a_reason(self):
        from pathlib import Path

        repo_config = Path(__file__).resolve().parents[2] / "lint-suppressions.json"
        config = SuppressionConfig.from_dict(
            json.loads(repo_config.read_text(encoding="utf-8"))
        )
        assert len(config) >= 1
        for entry in config.entries:
            assert entry.reason.strip()


class TestStaleFileEntries:
    def write_config(self, tmp_path, entries):
        config = tmp_path / "lint-suppressions.json"
        config.write_text(json.dumps({"suppressions": entries}), encoding="utf-8")
        return config

    def test_missing_file_entry_is_stale(self, tmp_path):
        (tmp_path / "kept.py").write_text("x = 1\n", encoding="utf-8")
        config = SuppressionConfig.load(
            str(
                self.write_config(
                    tmp_path,
                    [
                        {"rule": "DET002", "path": "kept.py", "reason": "alive"},
                        {"rule": "DET002", "path": "gone.py", "reason": "dead"},
                    ],
                )
            )
        )
        assert [s.path for s in config.stale_files()] == ["gone.py"]

    def test_globs_and_pseudo_paths_are_never_stale(self, tmp_path):
        config = SuppressionConfig.load(
            str(
                self.write_config(
                    tmp_path,
                    [
                        {"rule": "A", "path": "src/*", "reason": "glob"},
                        {"rule": "B", "path": "<lexicon>", "reason": "pseudo"},
                        {"rule": "C", "reason": "wildcard default"},
                    ],
                )
            )
        )
        assert config.stale_files() == []

    def test_stale_file_entry_becomes_a_distinct_warning(self, tmp_path):
        config = SuppressionConfig.load(
            str(
                self.write_config(
                    tmp_path,
                    [{"rule": "DET002", "path": "gone.py", "reason": "dead"}],
                )
            )
        )
        report = Linter(suppressions=config).lint([])
        warnings = report.unsuppressed(Severity.WARNING)
        assert len(warnings) == 1
        assert "missing file" in warnings[0].message
        assert "--prune-suppressions" in warnings[0].message

    def test_pruned_drops_unused_and_missing_file_entries(self, tmp_path):
        (tmp_path / "kept.py").write_text("x = 1\n", encoding="utf-8")
        config = SuppressionConfig.load(
            str(
                self.write_config(
                    tmp_path,
                    [
                        {"rule": "DATA005", "reason": "hit below"},
                        {"rule": "DET001", "reason": "never hit"},
                        {"rule": "DET002", "path": "gone.py", "reason": "dead"},
                    ],
                )
            )
        )
        config.apply(make_finding())
        pruned = config.pruned()
        assert [s.rule for s in pruned.entries] == ["DATA005"]

    def test_save_round_trips_deterministically(self, tmp_path):
        source = self.write_config(
            tmp_path,
            [
                {"rule": "DATA005", "path": "<lexicon>", "match": "fail",
                 "reason": "intended"},
                {"rule": "*", "reason": "blanket"},
            ],
        )
        config = SuppressionConfig.load(str(source))
        config.save()
        first = source.read_text(encoding="utf-8")
        SuppressionConfig.load(str(source)).save()
        assert source.read_text(encoding="utf-8") == first
        reloaded = SuppressionConfig.load(str(source))
        assert [e.describe() for e in reloaded.entries] == [
            e.describe() for e in config.entries
        ]
