"""The whole-program model: summaries, import graph, call graph."""

import ast
import json
import textwrap

from repro.analysis import build_program, summarize_module
from repro.analysis.program import (
    content_digest,
    module_dotted,
    parse_and_summarize,
)


def summarize(modpath, source):
    source = textwrap.dedent(source)
    tree = ast.parse(source)
    return summarize_module(modpath, modpath, tree, content_digest(source.encode()))


def make_program(modules):
    return build_program(summarize(m, src) for m, src in modules.items())


class TestModuleSummary:
    def test_top_symbols_and_kinds(self):
        summary = summarize(
            "repro/core/demo.py",
            """
            import json
            from repro.core.util import helper

            LIMIT = 10

            def public(): ...

            class Thing: ...
            """,
        )
        kinds = {name: kind for name, (kind, _) in summary.top_symbols.items()}
        assert kinds["LIMIT"] == "assign"
        assert kinds["public"] == "function"
        assert kinds["Thing"] == "class"
        assert kinds["helper"] == "import"

    def test_aliases_and_import_targets(self):
        summary = summarize(
            "repro/core/demo.py",
            """
            import repro.obs as obs
            from repro.core.util import helper as h
            """,
        )
        assert summary.aliases["obs"] == ("module", "repro.obs")
        assert summary.aliases["h"] == ("member", "repro.core.util", "helper")
        targets = [t for t, _ in summary.import_targets]
        assert "repro.obs" in targets
        assert "repro.core.util.helper" in targets

    def test_relative_imports_resolve_against_module(self):
        summary = summarize(
            "repro/core/demo.py",
            "from ..obs import Obs\nfrom .util import helper\n",
        )
        targets = [t for t, _ in summary.import_targets]
        assert "repro.obs.Obs" in targets
        assert "repro.core.util.helper" in targets

    def test_function_params_strip_self(self):
        summary = summarize(
            "repro/core/demo.py",
            """
            class Thing:
                def run(self, payload, deadline): ...
            """,
        )
        fn = summary.functions["Thing.run"]
        assert fn.params == ("payload", "deadline")
        assert fn.class_name == "Thing"

    def test_attr_types_track_constructor_calls(self):
        summary = summarize(
            "repro/core/demo.py",
            """
            import random

            class Thing:
                def __init__(self, seed):
                    self._rng = random.Random(seed)
            """,
        )
        cls = summary.classes["Thing"]
        assert cls.attr_types["_rng"] == "random.Random"

    def test_call_site_tokens(self):
        summary = summarize(
            "repro/core/demo.py",
            """
            def run(bus, entity):
                return bus.request("node", {"kind": "q"}, timeout=entity.ttl)
            """,
        )
        (site,) = summary.functions["run"].calls
        assert site.callee == "bus.request"
        assert site.terminal == "request"
        assert site.receiver == "bus"
        assert site.args[0] == "<const>"
        assert site.args[1] == "{}"
        assert site.dict_keys == ("kind",)
        assert site.kwarg("timeout") == "entity.ttl"

    def test_round_trip_through_dict(self):
        summary = summarize(
            "repro/core/demo.py",
            """
            from repro.obs import Obs

            class Thing:
                def run(self, payload):
                    value = self.helper(payload)
                    return value

                def helper(self, payload):
                    return payload
            """,
        )
        clone = type(summary).from_dict(summary.to_dict())
        assert clone.to_dict() == summary.to_dict()

    def test_parse_and_summarize_reads_from_disk(self, tmp_path):
        target = tmp_path / "demo.py"
        target.write_text("def fn(): ...\n", encoding="utf-8")
        summary = parse_and_summarize(target, "repro/core/demo.py")
        assert summary.modpath == "repro/core/demo.py"
        assert "fn" in summary.functions

    def test_module_dotted(self):
        assert module_dotted("repro/core/demo.py") == "repro.core.demo"
        assert module_dotted("repro/core/__init__.py") == "repro.core"


class TestProgramGraphs:
    MODULES = {
        "repro/core/util.py": """
            def helper(x):
                return x
            """,
        "repro/core/user.py": """
            from repro.core.util import helper

            class Runner:
                def run(self, x):
                    return self.step(helper(x))

                def step(self, x):
                    return x
            """,
    }

    def test_import_graph_and_dependency_cone(self):
        program = make_program(self.MODULES)
        assert "repro/core/util.py" in program.import_graph["repro/core/user.py"]
        cone = program.dependency_cone(["repro/core/util.py"])
        assert cone == {"repro/core/util.py", "repro/core/user.py"}

    def test_cross_module_and_method_call_edges(self):
        program = make_program(self.MODULES)
        edges = program.call_edges
        runner = ("repro/core/user.py", "Runner.run")
        assert ("repro/core/util.py", "helper") in edges[runner]
        assert ("repro/core/user.py", "Runner.step") in edges[runner]

    def test_transitive_closure_reverse(self):
        program = make_program(self.MODULES)
        helper = ("repro/core/util.py", "helper")
        reached = program.transitive_closure([helper], reverse=True)
        assert ("repro/core/user.py", "Runner.run") in reached

    def test_graph_dict_is_deterministic(self):
        first = make_program(self.MODULES).graph_dict()
        second = make_program(dict(reversed(list(self.MODULES.items())))).graph_dict()
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)
        assert {e["caller"] for e in first["call_edges"]}
        assert {e["importer"] for e in first["import_edges"]}
