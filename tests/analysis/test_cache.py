"""The incremental lint cache: warm runs, invalidation, suppressions."""

import json

from repro.analysis import (
    CACHE_SCHEMA_VERSION,
    Linter,
    SuppressionConfig,
    default_code_rules,
    default_program_rules,
)
from repro.analysis.cache import LintCache, rule_fingerprint


def make_tree(tmp_path):
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "good.py").write_text("def fn(x):\n    return x\n", encoding="utf-8")
    (pkg / "bad.py").write_text(
        "import random\nrng = random.Random()\n", encoding="utf-8"
    )
    return tmp_path / "repro"


def make_linter(tmp_path, **kwargs):
    return Linter(
        code_rules=default_code_rules(),
        program_rules=default_program_rules(),
        cache_path=tmp_path / "cache.json",
        **kwargs,
    )


class TestWarmRuns:
    def test_warm_run_reanalyzes_nothing(self, tmp_path):
        tree = make_tree(tmp_path)
        cold = make_linter(tmp_path).lint([tree])
        assert cold.files_reanalyzed == cold.files_checked == 2
        warm = make_linter(tmp_path).lint([tree])
        assert warm.files_checked == 2
        assert warm.files_reanalyzed == 0

    def test_warm_findings_match_cold(self, tmp_path):
        tree = make_tree(tmp_path)
        cold = make_linter(tmp_path).lint([tree])
        warm = make_linter(tmp_path).lint([tree])
        assert [f.to_dict() for f in warm.findings] == [
            f.to_dict() for f in cold.findings
        ]

    def test_changed_file_is_the_only_reanalysis(self, tmp_path):
        tree = make_tree(tmp_path)
        make_linter(tmp_path).lint([tree])
        (tree / "core" / "good.py").write_text(
            "def fn(x):\n    return x + 1\n", encoding="utf-8"
        )
        report = make_linter(tmp_path).lint([tree])
        assert report.files_reanalyzed == 1

    def test_cached_syntax_error_still_reported(self, tmp_path):
        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "broken.py").write_text("def broken(:\n", encoding="utf-8")
        cold = make_linter(tmp_path).lint([tmp_path / "repro"])
        warm = make_linter(tmp_path).lint([tmp_path / "repro"])
        assert warm.files_reanalyzed == 0
        assert [f.rule for f in warm.unsuppressed()] == ["LINT001"]
        assert "syntax error" in warm.unsuppressed()[0].message
        assert [f.message for f in warm.findings] == [
            f.message for f in cold.findings
        ]

    def test_suppression_edits_apply_without_invalidation(self, tmp_path):
        tree = make_tree(tmp_path)
        cold = make_linter(tmp_path).lint([tree])
        assert any(f.rule == "DET002" for f in cold.unsuppressed())
        config = SuppressionConfig.from_dict(
            {"suppressions": [{"rule": "DET002", "reason": "fixture rng"}]}
        )
        warm = make_linter(tmp_path, suppressions=config).lint([tree])
        assert warm.files_reanalyzed == 0
        assert not any(f.rule == "DET002" for f in warm.unsuppressed())
        assert [f.rule for f in warm.suppressed()] == ["DET002"]


class TestInvalidation:
    def test_rule_fingerprint_change_drops_the_cache(self, tmp_path):
        tree = make_tree(tmp_path)
        make_linter(tmp_path).lint([tree])
        subset = Linter(
            code_rules=default_code_rules()[:2],
            cache_path=tmp_path / "cache.json",
        )
        report = subset.lint([tree])
        assert report.files_reanalyzed == 2

    def test_schema_version_mismatch_drops_the_cache(self, tmp_path):
        tree = make_tree(tmp_path)
        make_linter(tmp_path).lint([tree])
        cache_file = tmp_path / "cache.json"
        payload = json.loads(cache_file.read_text(encoding="utf-8"))
        assert payload["schema"] == CACHE_SCHEMA_VERSION
        payload["schema"] = CACHE_SCHEMA_VERSION + 1
        cache_file.write_text(json.dumps(payload), encoding="utf-8")
        report = make_linter(tmp_path).lint([tree])
        assert report.files_reanalyzed == 2

    def test_corrupt_cache_file_is_ignored(self, tmp_path):
        tree = make_tree(tmp_path)
        make_linter(tmp_path).lint([tree])
        (tmp_path / "cache.json").write_text("{nope", encoding="utf-8")
        report = make_linter(tmp_path).lint([tree])
        assert report.files_reanalyzed == 2

    def test_no_cache_path_disables_caching(self, tmp_path):
        tree = make_tree(tmp_path)
        linter = Linter(code_rules=default_code_rules())
        assert linter.lint([tree]).files_reanalyzed == 2
        assert linter.lint([tree]).files_reanalyzed == 2


class TestCacheUnit:
    def test_fingerprint_is_order_independent(self):
        rules = default_code_rules()
        assert rule_fingerprint(rules) == rule_fingerprint(list(reversed(rules)))

    def test_save_is_deterministic(self, tmp_path):
        for name in ("a.json", "b.json"):
            cache = LintCache(tmp_path / name, "fp")
            cache.store("repro/z.py", "d2", None, [])
            cache.store("repro/a.py", "d1", None, [])
            cache.save()
        assert (tmp_path / "a.json").read_text() == (tmp_path / "b.json").read_text()
