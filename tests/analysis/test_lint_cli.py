"""The ``repro lint`` CLI: output formats, exit codes, config handling."""

import io
import json

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestLintCli:
    def test_default_run_is_clean(self):
        code, output = run_cli("lint")
        assert code == 0
        assert "0 errors" in output

    def test_json_output(self):
        code, output = run_cli("lint", "--json")
        assert code == 0
        payload = json.loads(output)
        assert payload["exit_code"] == 0
        assert payload["files_checked"] > 80
        assert isinstance(payload["findings"], list)

    def test_out_file(self, tmp_path):
        report_path = tmp_path / "report.json"
        code, output = run_cli("lint", "--json", "--out", str(report_path))
        assert code == 0
        assert str(report_path) in output
        payload = json.loads(report_path.read_text(encoding="utf-8"))
        assert payload["exit_code"] == 0

    def test_exit_code_reflects_violations(self, tmp_path):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nrng = random.Random()\n", encoding="utf-8")
        code, output = run_cli("lint", str(bad))
        assert code == 2
        assert "DET002" in output

    def test_severity_threshold_filters_warnings(self, tmp_path):
        # A config whose only entry is stale produces a warning finding:
        # visible at the default threshold, invisible at --severity error.
        config = tmp_path / "s.json"
        config.write_text(
            json.dumps(
                {
                    "suppressions": [
                        {"rule": "DET001", "reason": "stale on purpose"},
                        # Data rules run on every lint; keep the repo's two
                        # intended DATA005 exceptions suppressed here too.
                        {"rule": "DATA005", "reason": "intended overlap"},
                    ]
                }
            ),
            encoding="utf-8",
        )
        empty = tmp_path / "repro" / "core" / "empty.py"
        empty.parent.mkdir(parents=True)
        empty.write_text("x = 1\n", encoding="utf-8")
        code, _ = run_cli("lint", str(empty), "--config", str(config))
        assert code == 1
        code, _ = run_cli(
            "lint", str(empty), "--config", str(config), "--severity", "error"
        )
        assert code == 0

    def test_show_suppressed_lists_justifications(self):
        code, output = run_cli("lint", "--show-suppressed")
        assert code == 0
        assert "suppressed: intended dual reading" in output

    def test_list_rules(self):
        code, output = run_cli("lint", "--list-rules")
        assert code == 0
        for rule_id in ("DET001", "DET002", "ARCH001", "OBS001", "OBS002",
                        "PLAT001", "DATA001", "DATA006"):
            assert rule_id in output

    def test_missing_config_is_an_error(self, tmp_path):
        code, _ = run_cli("lint", "--config", str(tmp_path / "nope.json"))
        assert code == 2


class TestGraphOut:
    def test_graph_export_is_deterministic_json(self, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        for target in (first, second):
            code, output = run_cli("lint", "--graph-out", str(target))
            assert code == 0
            assert str(target) in output
        assert first.read_text() == second.read_text()
        graph = json.loads(first.read_text(encoding="utf-8"))
        assert set(graph) == {"functions", "call_edges", "import_edges"}
        assert len(graph["functions"]) > 500
        assert len(graph["call_edges"]) > 300


class TestNoCache:
    def test_no_cache_reanalyzes_every_file(self, tmp_path):
        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "mod.py").write_text("def fn(): ...\n", encoding="utf-8")
        config = tmp_path / "s.json"
        config.write_text(json.dumps({"suppressions": []}), encoding="utf-8")
        argv = ["lint", str(pkg), "--config", str(config), "--json"]
        runs = []
        for flags in ([], [], ["--no-cache"]):
            _, output = run_cli(*argv, *flags)
            runs.append(json.loads(output)["files_reanalyzed"])
        # cold, warm, then --no-cache ignoring the warm cache
        assert runs == [1, 0, 1]


class TestPruneSuppressions:
    def test_prune_rewrites_config_without_dead_entries(self, tmp_path):
        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "mod.py").write_text("def fn(): ...\n", encoding="utf-8")
        config = tmp_path / "s.json"
        config.write_text(
            json.dumps(
                {
                    "suppressions": [
                        {"rule": "DATA005", "reason": "live: repo lexicon overlap"},
                        {"rule": "OBS001", "reason": "matches nothing"},
                        {
                            "rule": "DET002",
                            "path": "repro/core/gone.py",
                            "reason": "file was deleted",
                        },
                    ]
                }
            ),
            encoding="utf-8",
        )
        code, output = run_cli(
            "lint", str(pkg), "--config", str(config), "--prune-suppressions"
        )
        assert code == 0
        assert "pruned 2 of 3" in output
        payload = json.loads(config.read_text(encoding="utf-8"))
        assert [e["rule"] for e in payload["suppressions"]] == ["DATA005"]
        # The surviving entry keeps its mandatory reason.
        assert payload["suppressions"][0]["reason"]


class TestChangedOnly:
    def init_repo(self, tmp_path):
        import subprocess

        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "util.py").write_text(
            "def helper(x):\n    return x\n", encoding="utf-8"
        )
        (pkg / "user.py").write_text(
            "from repro.core.util import helper\n\n"
            "def main():\n    return helper(0)\n",
            encoding="utf-8",
        )
        (pkg / "other.py").write_text(
            "import random\nrng = random.Random()\n", encoding="utf-8"
        )
        config = tmp_path / "s.json"
        config.write_text(json.dumps({"suppressions": []}), encoding="utf-8")
        for cmd in (
            ["git", "init", "-q"],
            ["git", "add", "-A"],
            ["git", "-c", "user.email=t@t", "-c", "user.name=t",
             "commit", "-qm", "seed"],
        ):
            subprocess.run(cmd, cwd=tmp_path, check=True, capture_output=True)
        return pkg, config

    def test_unchanged_tree_reports_only_global_findings(
        self, tmp_path, monkeypatch
    ):
        pkg, config = self.init_repo(tmp_path)
        monkeypatch.chdir(tmp_path)
        code, output = run_cli(
            "lint", "repro", "--config", str(config), "--changed-only", "--json"
        )
        payload = json.loads(output)
        # other.py's DET002 is filtered out: the file did not change.
        assert not any(
            f["path"].endswith("other.py") for f in payload["findings"]
        )
        assert code == payload["exit_code"] == 2  # DATA005 findings are global

    def test_change_widens_to_the_reverse_dependency_cone(
        self, tmp_path, monkeypatch
    ):
        pkg, config = self.init_repo(tmp_path)
        # Introduce a violation in user.py, then touch only util.py:
        # user.py imports util.py, so it is in the cone and its finding
        # must surface even though user.py itself did not change.
        (pkg / "user.py").write_text(
            "import random\n"
            "from repro.core.util import helper\n\n"
            "rng = random.Random()\n\n"
            "def main():\n    return helper(0)\n",
            encoding="utf-8",
        )
        import subprocess

        subprocess.run(
            ["git", "add", "-A"], cwd=tmp_path, check=True, capture_output=True
        )
        subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t",
             "commit", "-qm", "violation"],
            cwd=tmp_path, check=True, capture_output=True,
        )
        (pkg / "util.py").write_text(
            "def helper(x):\n    return x + 1\n", encoding="utf-8"
        )
        monkeypatch.chdir(tmp_path)
        code, output = run_cli(
            "lint", "repro", "--config", str(config), "--changed-only", "--json"
        )
        payload = json.loads(output)
        paths = {f["path"] for f in payload["findings"]}
        assert any(p.endswith("user.py") for p in paths)
        assert not any(p.endswith("other.py") for p in paths)
