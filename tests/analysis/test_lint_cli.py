"""The ``repro lint`` CLI: output formats, exit codes, config handling."""

import io
import json

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestLintCli:
    def test_default_run_is_clean(self):
        code, output = run_cli("lint")
        assert code == 0
        assert "0 errors" in output

    def test_json_output(self):
        code, output = run_cli("lint", "--json")
        assert code == 0
        payload = json.loads(output)
        assert payload["exit_code"] == 0
        assert payload["files_checked"] > 80
        assert isinstance(payload["findings"], list)

    def test_out_file(self, tmp_path):
        report_path = tmp_path / "report.json"
        code, output = run_cli("lint", "--json", "--out", str(report_path))
        assert code == 0
        assert str(report_path) in output
        payload = json.loads(report_path.read_text(encoding="utf-8"))
        assert payload["exit_code"] == 0

    def test_exit_code_reflects_violations(self, tmp_path):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nrng = random.Random()\n", encoding="utf-8")
        code, output = run_cli("lint", str(bad))
        assert code == 2
        assert "DET002" in output

    def test_severity_threshold_filters_warnings(self, tmp_path):
        # A config whose only entry is stale produces a warning finding:
        # visible at the default threshold, invisible at --severity error.
        config = tmp_path / "s.json"
        config.write_text(
            json.dumps(
                {
                    "suppressions": [
                        {"rule": "DET001", "reason": "stale on purpose"},
                        # Data rules run on every lint; keep the repo's two
                        # intended DATA005 exceptions suppressed here too.
                        {"rule": "DATA005", "reason": "intended overlap"},
                    ]
                }
            ),
            encoding="utf-8",
        )
        empty = tmp_path / "repro" / "core" / "empty.py"
        empty.parent.mkdir(parents=True)
        empty.write_text("x = 1\n", encoding="utf-8")
        code, _ = run_cli("lint", str(empty), "--config", str(config))
        assert code == 1
        code, _ = run_cli(
            "lint", str(empty), "--config", str(config), "--severity", "error"
        )
        assert code == 0

    def test_show_suppressed_lists_justifications(self):
        code, output = run_cli("lint", "--show-suppressed")
        assert code == 0
        assert "suppressed: intended dual reading" in output

    def test_list_rules(self):
        code, output = run_cli("lint", "--list-rules")
        assert code == 0
        for rule_id in ("DET001", "DET002", "ARCH001", "OBS001", "OBS002",
                        "PLAT001", "DATA001", "DATA006"):
            assert rule_id in output

    def test_missing_config_is_an_error(self, tmp_path):
        code, _ = run_cli("lint", "--config", str(tmp_path / "nope.json"))
        assert code == 2
