"""Sanity tests over the raw lexicon data modules."""

from repro.lexicons import adjectives, adverbs, negation, nouns, patterns, verbs
from repro.core.patterns import parse_pattern_line


class TestAdjectives:
    def test_no_overlap_between_polarities(self):
        overlap = set(adjectives.POSITIVE_ADJECTIVES) & set(adjectives.NEGATIVE_ADJECTIVES)
        assert overlap == set()

    def test_scale(self):
        assert len(adjectives.POSITIVE_ADJECTIVES) >= 500
        assert len(adjectives.NEGATIVE_ADJECTIVES) >= 500

    def test_all_lowercase_no_spaces(self):
        for word in adjectives.POSITIVE_ADJECTIVES + adjectives.NEGATIVE_ADJECTIVES:
            assert word == word.lower()
            assert " " not in word

    def test_entries_shape(self):
        for term, pos, symbol in adjectives.entries():
            assert pos == "JJ"
            assert symbol in "+-"


class TestNouns:
    def test_no_overlap(self):
        assert set(nouns.POSITIVE_NOUNS) & set(nouns.NEGATIVE_NOUNS) == set()

    def test_scale_below_500(self):
        # Paper: "less than 500 nouns".
        total = len(nouns.POSITIVE_NOUNS) + len(nouns.NEGATIVE_NOUNS)
        assert 100 <= total <= 500


class TestVerbs:
    def test_no_overlap(self):
        assert set(verbs.POSITIVE_VERBS) & set(verbs.NEGATIVE_VERBS) == set()

    def test_trans_verbs_carry_no_polarity(self):
        trans = set(verbs.TRANS_VERBS)
        assert trans & set(verbs.POSITIVE_VERBS) == set()
        assert trans & set(verbs.NEGATIVE_VERBS) == set()

    def test_paper_trans_examples_present(self):
        assert "be" in verbs.TRANS_VERBS
        assert "offer" in verbs.TRANS_VERBS


class TestAdverbs:
    def test_no_overlap(self):
        assert set(adverbs.POSITIVE_ADVERBS) & set(adverbs.NEGATIVE_ADVERBS) == set()

    def test_intensifiers_not_polar(self):
        polar = set(adverbs.POSITIVE_ADVERBS) | set(adverbs.NEGATIVE_ADVERBS)
        # A handful of words legitimately live in both worlds ("terribly
        # good"); the core scorer resolves polarity first, so only check
        # the bulk are disjoint.
        assert len(set(adverbs.INTENSIFIERS) & polar) <= 8


class TestNegation:
    def test_paper_negators_present(self):
        # "not, no, never, hardly, seldom, or little"
        assert "not" in negation.NEGATION_ADVERBS
        assert "never" in negation.NEGATION_ADVERBS
        assert "hardly" in negation.NEGATION_ADVERBS
        assert "seldom" in negation.NEGATION_ADVERBS
        assert "no" in negation.NEGATION_DETERMINERS
        assert "little" in negation.NEGATION_QUANTIFIERS

    def test_is_negator(self):
        assert negation.is_negator("Not")
        assert negation.is_negator("n't")
        assert not negation.is_negator("very")


class TestPatternData:
    def test_all_lines_parse(self):
        for line in patterns.pattern_lines():
            parse_pattern_line(line)

    def test_no_duplicate_lines(self):
        lines = patterns.pattern_lines()
        assert len(lines) == len(set(lines))

    def test_verb_class_disjointness(self):
        classes = [
            set(patterns.PSYCH_VERBS_POSITIVE),
            set(patterns.PSYCH_VERBS_NEGATIVE),
            set(patterns.EXPERIENCER_VERBS_POSITIVE),
            set(patterns.EXPERIENCER_VERBS_NEGATIVE),
        ]
        for i, a in enumerate(classes):
            for b in classes[i + 1 :]:
                assert a & b == set()

    def test_psych_verbs_are_sentiment_verbs(self):
        known = set(verbs.POSITIVE_VERBS) | set(verbs.NEGATIVE_VERBS)
        for verb in patterns.PSYCH_VERBS_POSITIVE + patterns.PSYCH_VERBS_NEGATIVE:
            assert verb in known, verb


class TestLexiconPatternConsistency:
    """Regression tests for lexicon bugs surfaced by ``repro lint``.

    The paper (Section 4.2) requires every pattern-DB entry's predicate
    to be a verb lemma the analyzer can recognise; predicates outside
    the verb lexicon produce patterns that can never fire.
    """

    def test_mistrust_is_a_negative_verb(self):
        # Bug: "mistrust" generated experiencer patterns ("mistrust - OP")
        # but had no polarity entry, so "I mistrust this vendor" scored
        # neutral.  Paper Section 4.2 lists verbs with inherent negative
        # sentiment; mistrust is one (cf. "trust" on the positive side).
        assert "mistrust" in verbs.NEGATIVE_VERBS
        assert "trust" in verbs.POSITIVE_VERBS

    def test_every_pattern_predicate_is_in_the_verb_lexicon(self):
        known = (
            set(verbs.POSITIVE_VERBS)
            | set(verbs.NEGATIVE_VERBS)
            | set(verbs.TRANS_VERBS)
        )
        missing = sorted(
            {line.split()[0] for line in patterns.pattern_lines()} - known
        )
        assert missing == [], missing

    def test_no_hyphenated_predicates(self):
        # Bug: "bring-about" can never match a single parsed verb lemma;
        # the tokenizer yields "bring" and "about" separately, and
        # "bring OP SP" already covers the lemma.
        for line in patterns.pattern_lines():
            assert "-" not in line.split()[0], line

    def test_trans_verbs_cover_pattern_helper_classes(self):
        trans = set(verbs.TRANS_VERBS)
        for verb in (
            patterns.COPULAR_PATTERN_VERBS
            + patterns.OBJECT_TO_SUBJECT_VERBS
            + patterns.FUNCTION_VERBS
            + patterns.INVERTING_VERBS
            + patterns.CAUSATIVE_VERBS
            + patterns.JUDGMENT_VERBS
            + list(patterns.PP_TO_SUBJECT_VERBS)
        ):
            assert verb in trans, verb
