"""Unit and property tests for the tokenizer."""

import string

from hypothesis import given
from hypothesis import strategies as st

from repro.nlp.tokenizer import Tokenizer, tokenize


def words(text):
    return [t.text for t in tokenize(text)]


class TestBasicTokenization:
    def test_simple_sentence(self):
        assert words("The camera works well.") == ["The", "camera", "works", "well", "."]

    def test_punctuation_split(self):
        assert words("great!") == ["great", "!"]
        assert words("fast, light") == ["fast", ",", "light"]

    def test_question_and_quotes(self):
        assert words('Is it "good"?') == ["Is", "it", '"', "good", '"', "?"]

    def test_empty_and_whitespace(self):
        assert words("") == []
        assert words("   \n\t ") == []

    def test_parentheses(self):
        assert words("the (new) model") == ["the", "(", "new", ")", "model"]


class TestContractions:
    def test_nt(self):
        assert words("doesn't") == ["does", "n't"]
        assert words("don't work") == ["do", "n't", "work"]

    def test_possessive(self):
        assert words("Sony's camera") == ["Sony", "'s", "camera"]

    def test_will_and_would(self):
        assert words("it'll") == ["it", "'ll"]
        assert words("I'd") == ["I", "'d"]

    def test_are_and_have(self):
        assert words("they're") == ["they", "'re"]
        assert words("we've") == ["we", "'ve"]

    def test_am(self):
        assert words("I'm happy") == ["I", "'m", "happy"]


class TestAbbreviations:
    def test_title_keeps_period(self):
        assert words("Prof. Wilson") == ["Prof.", "Wilson"]
        assert words("Mr. Smith agrees.") == ["Mr.", "Smith", "agrees", "."]

    def test_acronym_with_internal_periods(self):
        assert words("the U.S. market") == ["the", "U.S.", "market"]

    def test_single_initial(self):
        assert words("J. Yi wrote it.") == ["J.", "Yi", "wrote", "it", "."]

    def test_regular_word_loses_period(self):
        assert words("It works.") == ["It", "works", "."]

    def test_custom_abbreviation(self):
        tk = Tokenizer(extra_abbreviations={"approx.", "config."})
        assert [t.text for t in tk.tokenize("config. file")] == ["config.", "file"]


class TestNumbersAndCompounds:
    def test_decimal(self):
        assert words("3.5 stars") == ["3.5", "stars"]

    def test_thousands(self):
        assert words("1,000 dollars") == ["1,000", "dollars"]

    def test_alphanumeric_model_names(self):
        assert words("the NR70 series") == ["the", "NR70", "series"]
        assert words("x335 and x350") == ["x335", "and", "x350"]

    def test_number_with_unit_suffix(self):
        assert words("72GB drive") == ["72GB", "drive"]

    def test_hyphenated_compound(self):
        assert words("add-on adapter") == ["add-on", "adapter"]
        assert words("state-of-the-art") == ["state-of-the-art"]


class TestOffsets:
    def test_offsets_roundtrip(self):
        text = "Prof. Wilson doesn't like Sony's NR70, does he?"
        for tok in tokenize(text):
            assert text[tok.start : tok.end] == tok.text

    def test_tokens_in_order_and_disjoint(self):
        text = "The flash, which I love, isn't bad."
        toks = tokenize(text)
        for a, b in zip(toks, toks[1:]):
            assert a.end <= b.start


# Printable text without surrogates; the invariants must hold on anything.
_text = st.text(alphabet=st.characters(blacklist_categories=("Cs",)), max_size=200)


class TestProperties:
    @given(_text)
    def test_offsets_always_faithful(self, text):
        for tok in tokenize(text):
            assert text[tok.start : tok.end] == tok.text

    @given(_text)
    def test_tokens_ordered_and_nonoverlapping(self, text):
        toks = tokenize(text)
        for a, b in zip(toks, toks[1:]):
            assert a.end <= b.start

    @given(_text)
    def test_no_whitespace_inside_tokens(self, text):
        for tok in tokenize(text):
            assert not any(c.isspace() for c in tok.text)

    @given(st.lists(st.sampled_from(["camera", "great", "doesn't", "NR70", "U.S.", "3.5", "!"]), max_size=20))
    def test_word_material_preserved(self, parts):
        text = " ".join(parts)
        rebuilt = "".join(t.text for t in tokenize(text))
        assert rebuilt == text.replace(" ", "")
