"""Unit tests for the shallow parser's role assignment."""

import pytest

from repro.nlp.parser import ShallowParser
from repro.nlp.postagger import PosTagger
from repro.nlp.sentences import split_sentences

_TAGGER = PosTagger(
    extra_lexicon={
        "excellent": "JJ",
        "vibrant": "JJ",
        "mediocre": "JJ",
        "sharp": "JJ",
        "functional": "JJ",
        "flawless": "JJ",
    }
)
_PARSER = ShallowParser()


def parse_one(text):
    (sentence,) = split_sentences(text)
    return _PARSER.parse(_TAGGER.tag(sentence))


def main_clause(text):
    parsed = parse_one(text)
    assert parsed.main_clause is not None, text
    return parsed.main_clause


class TestPredicates:
    def test_simple_predicate(self):
        assert main_clause("The camera works.").predicate_lemma == "work"

    def test_passive_predicate_lemma(self):
        assert main_clause("I am impressed by the picture quality.").predicate_lemma == "impress"

    def test_copula(self):
        clause = main_clause("The colors are vibrant.")
        assert clause.predicate_lemma == "be"
        assert clause.is_copular

    def test_modal_chain_predicate(self):
        assert main_clause("The flash will not work.").predicate_lemma == "work"

    def test_no_verb_no_clause(self):
        assert parse_one("What a camera!").clauses == []


class TestSubjects:
    def test_simple_subject(self):
        assert main_clause("The camera takes excellent pictures.").subject.text == "The camera"

    def test_pronoun_subject(self):
        assert main_clause("I love the zoom.").subject.text == "I"

    def test_subject_skips_pp_attachment(self):
        clause = main_clause("The support in the NR70 series is functional.")
        assert clause.subject.text == "The support"

    def test_coordinated_clause_inherits_subject(self):
        parsed = parse_one("The zoom is fast and works well.")
        assert len(parsed.clauses) == 2
        assert parsed.clauses[1].subject.text == "The zoom"


class TestObjectsAndComplements:
    def test_direct_object(self):
        clause = main_clause("The company offers mediocre services.")
        assert clause.object.text == "mediocre services"

    def test_adjectival_complement(self):
        clause = main_clause("The colors are vibrant.")
        assert clause.complement.text == "vibrant"
        assert clause.objects == []

    def test_nominal_complement_with_copula(self):
        clause = main_clause("The NR70 is an excellent camera.")
        assert clause.complement.text == "an excellent camera"

    def test_coordinated_adjective_complement(self):
        clause = main_clause("The support is well implemented and functional.")
        assert clause.complement is not None
        assert "functional" in clause.complement.text


class TestPrepPhrases:
    def test_pp_capture(self):
        clause = main_clause("I am impressed by the picture quality.")
        pp = clause.prep_phrase("by", "with")
        assert pp is not None
        assert pp.noun_phrase.text == "the picture quality"

    def test_pp_lookup_miss(self):
        clause = main_clause("I am impressed by the picture quality.")
        assert clause.prep_phrase("at") is None

    def test_pp_text(self):
        clause = main_clause("It comes with a lens.")
        assert clause.prep_phrases[0].text == "with a lens"

    def test_multiple_pps(self):
        clause = main_clause("It ships with a lens in a box.")
        preps = [pp.preposition for pp in clause.prep_phrases]
        assert preps == ["with", "in"]


class TestNegation:
    def test_contraction_negation(self):
        assert main_clause("The flash doesn't work.").negated

    def test_not_negation(self):
        assert main_clause("The flash does not work.").negated

    def test_never_negation(self):
        assert main_clause("The flash never works.").negated

    def test_no_negation(self):
        assert not main_clause("The flash works.").negated

    def test_hardly(self):
        assert main_clause("The battery hardly lasts an hour.").negated

    def test_determiner_no_negates_through_the_object(self):
        # Paper Section 4.2: "has no flaws" negates the predicate through
        # its object.  Found via lint DEAD001 — NEGATIVE_DETERMINERS was
        # defined but never consulted by _is_negated.
        assert main_clause("The camera has no flaws.").negated

    def test_determiner_no_negates_from_the_subject(self):
        assert main_clause("No feature works.").negated

    def test_plain_object_is_not_negated(self):
        assert not main_clause("The camera has flaws.").negated


class TestClauseSegmentation:
    def test_but_splits_clauses(self):
        parsed = parse_one("The zoom is fast, but the flash is weak.")
        assert len(parsed.clauses) == 2
        assert parsed.clauses[0].subject.text == "The zoom"
        assert parsed.clauses[1].subject.text == "the flash"

    def test_coordinated_adjectives_not_split(self):
        parsed = parse_one("The zoom is fast and sharp.")
        assert len(parsed.clauses) == 1

    def test_because_clause(self):
        parsed = parse_one("I love it because the pictures are flawless.")
        assert len(parsed.clauses) == 2
        assert parsed.clauses[1].subject.text == "the pictures"

    def test_relative_clause(self):
        parsed = parse_one("The camera, which I bought, works.")
        lemmas = [c.predicate_lemma for c in parsed.clauses]
        assert "buy" in lemmas and "work" in lemmas


class TestClauseLookup:
    def test_clause_covering_finds_subject_clause(self):
        parsed = parse_one("The zoom is fast, but the flash is weak.")
        (sentence,) = split_sentences("The zoom is fast, but the flash is weak.")
        text = "The zoom is fast, but the flash is weak."
        start = text.index("flash")
        clause = parsed.clause_covering(start, start + len("flash"))
        assert clause is parsed.clauses[1]

    def test_clause_covering_miss(self):
        parsed = parse_one("The zoom is fast.")
        assert parsed.clause_covering(900, 910) is None
