"""Unit tests for sentence boundary detection."""

from hypothesis import given
from hypothesis import strategies as st

from repro.nlp.sentences import SentenceSplitter, split_sentences


def texts(document):
    return [s.text_of(document) for s in split_sentences(document)]


class TestBasicSplitting:
    def test_two_sentences(self):
        doc = "The camera is great. The battery is weak."
        assert texts(doc) == ["The camera is great.", "The battery is weak."]

    def test_exclamation_and_question(self):
        doc = "It failed! Why did it fail? Nobody knows."
        assert len(texts(doc)) == 3

    def test_single_sentence_no_terminator(self):
        doc = "no final period here"
        assert texts(doc) == [doc]

    def test_empty_document(self):
        assert split_sentences("") == []

    def test_indexes_are_sequential(self):
        doc = "One. Two. Three."
        assert [s.index for s in split_sentences(doc)] == [0, 1, 2]


class TestAbbreviationHandling:
    def test_title_does_not_split(self):
        doc = "Prof. Wilson praised the NR70. It sold well."
        out = texts(doc)
        assert len(out) == 2
        assert out[0].startswith("Prof. Wilson")

    def test_acronym_mid_sentence(self):
        doc = "The U.S. market grew. Sales rose."
        assert len(texts(doc)) == 2

    def test_decimal_number_not_a_boundary(self):
        doc = "It scored 4.5 stars. Reviewers agreed."
        assert len(texts(doc)) == 2


class TestTrailingClosers:
    def test_quote_after_period_stays(self):
        doc = 'He said "It is great." Then he left.'
        out = texts(doc)
        assert len(out) == 2
        assert out[0].endswith('."')

    def test_paren_after_period(self):
        doc = "It works (mostly.) The rest fails."
        assert len(texts(doc)) == 2


class TestLowercaseContinuation:
    def test_ellipsis_like_period_before_lowercase(self):
        doc = "The camera etc. and accessories arrived."
        assert len(texts(doc)) == 1


class TestProperties:
    @given(st.lists(st.sampled_from(["The camera is great.", "It failed!", "Why?", "Prof. Wilson agreed."]), min_size=1, max_size=10))
    def test_every_token_lands_in_exactly_one_sentence(self, parts):
        doc = " ".join(parts)
        sentences = split_sentences(doc)
        spans = [(s.start, s.end) for s in sentences]
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    @given(st.text(max_size=200))
    def test_splitter_never_crashes(self, doc):
        sentences = split_sentences(doc)
        assert all(len(s) >= 1 for s in sentences)

    def test_split_text_equals_split_of_tokens(self):
        from repro.nlp.tokenizer import tokenize

        doc = "One works. Two fails."
        splitter = SentenceSplitter()
        assert [s.span for s in splitter.split(tokenize(doc))] == [
            s.span for s in splitter.split_text(doc)
        ]
