"""Shallow-parser edge cases beyond the core role-assignment tests."""

import pytest

from repro.nlp.parser import ShallowParser
from repro.nlp.postagger import PosTagger
from repro.nlp.sentences import split_sentences

_TAGGER = PosTagger(
    extra_lexicon={
        "superb": "JJ",
        "excellent": "JJ",
        "vibrant": "JJ",
        "impressed": "JJ",
        "praised": "JJ",
    }
)
_PARSER = ShallowParser()


def parse_one(text):
    (sentence,) = split_sentences(text)
    return _PARSER.parse(_TAGGER.tag(sentence))


class TestPassiveVoice:
    def test_passive_with_by_agent(self):
        clause = parse_one("The camera was praised by reviewers.").main_clause
        assert clause.predicate_lemma == "praise"
        assert clause.subject.text == "The camera"
        pp = clause.prep_phrase("by")
        assert pp.noun_phrase.text == "reviewers"

    def test_passive_without_agent(self):
        clause = parse_one("The camera was praised.").main_clause
        assert clause.predicate_lemma == "praise"
        assert clause.subject.text == "The camera"

    def test_aux_chain_passive(self):
        clause = parse_one("The design has been improved.").main_clause
        assert clause.predicate_lemma == "improve"


class TestPossessives:
    def test_possessive_np_stays_whole(self):
        clause = parse_one("Sony's camera impressed everyone.").main_clause
        assert "camera" in clause.subject.text

    def test_possessive_object(self):
        clause = parse_one("I love Sony's zoom.").main_clause
        assert clause.object is not None
        assert "zoom" in clause.object.text


class TestOrphanPrepositionalPhrases:
    def test_leading_pp_attaches_forward(self):
        clause = parse_one("Unlike the old model, the camera is superb.").main_clause
        pp = clause.prep_phrase("unlike")
        assert pp is not None
        assert "old model" in pp.noun_phrase.text

    def test_leading_temporal_pp(self):
        clause = parse_one("After the update, the camera works.").main_clause
        pp = clause.prep_phrase("after")
        assert pp is not None

    def test_verbless_fragment_yields_no_clause(self):
        assert parse_one("Into the valley of shadows.").clauses == []


class TestImperativesAndInversions:
    def test_imperative_has_no_subject(self):
        clause = parse_one("Buy the camera.").main_clause
        assert clause.subject is None
        assert clause.object.text == "the camera"

    def test_existential_there(self):
        clause = parse_one("There is a problem.").main_clause
        assert clause.predicate_lemma == "be"


class TestMultiClauseChains:
    def test_three_clauses(self):
        parsed = parse_one("The zoom is superb, the flash is vibrant, and the menu works.")
        assert len(parsed.clauses) == 3

    def test_subject_inheritance_chain(self):
        parsed = parse_one("The zoom is superb and works and impresses everyone.")
        assert all(
            c.subject is not None and "zoom" in c.subject.text for c in parsed.clauses
        )


class TestNegationPlacement:
    def test_negation_in_second_clause_only(self):
        parsed = parse_one("The zoom works, but the flash does not work.")
        assert not parsed.clauses[0].negated
        assert parsed.clauses[1].negated

    def test_never_before_verb(self):
        clause = parse_one("The flash never works.").main_clause
        assert clause.negated


class TestHypotheticalFlag:
    def test_if_clause_flagged(self):
        parsed = parse_one("If the zoom works, I will buy it.")
        flags = [c.hypothetical for c in parsed.clauses]
        assert flags[0] is True
        assert flags[1] is False

    def test_plain_clause_not_flagged(self):
        assert not parse_one("The zoom works.").main_clause.hypothetical
