"""Unit tests for the span/token data model."""

import pytest

from repro.nlp.tokens import Chunk, Sentence, Span, TaggedSentence, TaggedToken, Token, cover_span, tokens_text


def tok(text, start=0):
    return Token(text, start, start + len(text))


def ttok(text, tag, start=0):
    return TaggedToken(tok(text, start), tag)


class TestSpan:
    def test_length(self):
        assert len(Span(2, 7)) == 5

    def test_empty_span_allowed(self):
        assert len(Span(3, 3)) == 0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            Span(-1, 4)

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            Span(5, 2)

    def test_contains(self):
        assert Span(0, 10).contains(Span(2, 5))
        assert Span(0, 10).contains(Span(0, 10))
        assert not Span(2, 5).contains(Span(0, 10))

    def test_overlaps(self):
        assert Span(0, 5).overlaps(Span(4, 8))
        assert not Span(0, 5).overlaps(Span(5, 8))

    def test_text_of(self):
        assert Span(4, 9).text_of("the camera works") == "camer"

    def test_ordering(self):
        assert Span(0, 3) < Span(1, 2)
        assert sorted([Span(5, 6), Span(0, 1)])[0] == Span(0, 1)


class TestToken:
    def test_span_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Token("abc", 0, 5)

    def test_properties(self):
        t = Token("Camera", 10, 16)
        assert t.lower == "camera"
        assert t.is_capitalized
        assert t.is_alpha
        assert t.span == Span(10, 16)

    def test_not_capitalized(self):
        assert not tok("camera").is_capitalized
        assert not tok("9mm").is_capitalized

    def test_tagged_token_delegates(self):
        tt = ttok("Flash", "NN", 3)
        assert tt.text == "Flash"
        assert tt.lower == "flash"
        assert tt.start == 3 and tt.end == 8


class TestSentence:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Sentence([])

    def test_span_covers_tokens(self):
        s = Sentence([tok("the", 0), tok("camera", 4)])
        assert s.span == Span(0, 10)
        assert s.start == 0 and s.end == 10

    def test_iteration_and_len(self):
        s = Sentence([tok("a", 0), tok("b", 2)])
        assert len(s) == 2
        assert [t.text for t in s] == ["a", "b"]

    def test_text_of(self):
        doc = "the camera"
        s = Sentence([tok("the", 0), tok("camera", 4)])
        assert s.text_of(doc) == doc


class TestTaggedSentence:
    def test_words_and_tags(self):
        s = TaggedSentence([ttok("the", "DT", 0), ttok("camera", "NN", 4)])
        assert s.words == ["the", "camera"]
        assert s.tags == ["DT", "NN"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TaggedSentence([])


class TestChunk:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Chunk("NP", ())

    def test_text_and_head(self):
        c = Chunk("NP", (ttok("battery", "NN", 0), ttok("life", "NN", 8)))
        assert c.text == "battery life"
        assert c.lower == "battery life"
        assert c.head.text == "life"
        assert c.tags == ("NN", "NN")
        assert len(c) == 2

    def test_span(self):
        c = Chunk("NP", (ttok("battery", "NN", 4), ttok("life", "NN", 12)))
        assert c.span == Span(4, 16)


class TestHelpers:
    def test_tokens_text(self):
        assert tokens_text([tok("a", 0), tok("b", 2)]) == "a b"

    def test_cover_span(self):
        assert cover_span([Span(3, 5), Span(0, 2), Span(4, 9)]) == Span(0, 9)

    def test_cover_span_empty(self):
        with pytest.raises(ValueError):
            cover_span([])
