"""Unit tests for the lemmatizer."""

from hypothesis import given
from hypothesis import strategies as st

from repro.nlp.lemmatizer import Lemmatizer, lemmatize


class TestVerbLemmas:
    def test_be_forms(self):
        for form, tag in [("is", "VBZ"), ("are", "VBP"), ("was", "VBD"), ("been", "VBN"), ("being", "VBG"), ("am", "VBP")]:
            assert lemmatize(form, tag) == "be"

    def test_regular_s(self):
        assert lemmatize("works", "VBZ") == "work"
        assert lemmatize("offers", "VBZ") == "offer"

    def test_es_after_sibilant(self):
        assert lemmatize("crashes", "VBZ") == "crash"
        assert lemmatize("misses", "VBZ") == "miss"

    def test_ed_regular(self):
        assert lemmatize("worked", "VBD") == "work"
        assert lemmatize("impressed", "VBN") == "impress"

    def test_ed_silent_e(self):
        assert lemmatize("loved", "VBD") == "love"
        assert lemmatize("improved", "VBN") == "improve"

    def test_ed_doubling(self):
        assert lemmatize("stopped", "VBD") == "stop"

    def test_ied(self):
        assert lemmatize("tried", "VBD") == "try"

    def test_ing(self):
        assert lemmatize("working", "VBG") == "work"
        assert lemmatize("taking", "VBG") == "take"
        assert lemmatize("running", "VBG") == "run"

    def test_irregular_past(self):
        assert lemmatize("took", "VBD") == "take"
        assert lemmatize("broke", "VBD") == "break"
        assert lemmatize("felt", "VBD") == "feel"
        assert lemmatize("thought", "VBD") == "think"

    def test_uppercase_input(self):
        assert lemmatize("Impressed", "VBN") == "impress"


class TestNounLemmas:
    def test_regular_plural(self):
        assert lemmatize("cameras", "NNS") == "camera"
        assert lemmatize("pictures", "NNS") == "picture"

    def test_ies_plural(self):
        assert lemmatize("batteries", "NNS") == "battery"

    def test_es_plural(self):
        assert lemmatize("flashes", "NNS") == "flash"
        assert lemmatize("boxes", "NNS") == "box"

    def test_irregular_plural(self):
        assert lemmatize("people", "NNS") == "person"
        assert lemmatize("children", "NNS") == "child"
        assert lemmatize("lenses", "NNS") == "lens"

    def test_invariant_nouns(self):
        assert lemmatize("series", "NNS") == "series"
        assert lemmatize("species", "NNS") == "species"

    def test_ss_final_not_stripped(self):
        assert lemmatize("glass", "NNS") == "glass"

    def test_singular_untouched(self):
        assert lemmatize("camera", "NN") == "camera"


class TestGradedForms:
    def test_irregular_comparatives(self):
        assert lemmatize("better", "JJR") == "good"
        assert lemmatize("worst", "JJS") == "bad"

    def test_regular_comparative(self):
        assert lemmatize("faster", "JJR") == "fast"
        assert lemmatize("sharpest", "JJS") == "sharp"

    def test_y_comparative(self):
        assert lemmatize("happier", "JJR") == "happy"

    def test_doubling_comparative(self):
        assert lemmatize("bigger", "JJR") == "big"


class TestNonInflectedTags:
    def test_adjective_passthrough(self):
        assert lemmatize("excellent", "JJ") == "excellent"

    def test_preposition_passthrough(self):
        assert lemmatize("With", "IN") == "with"


class TestProperties:
    @given(st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122), min_size=1, max_size=15),
           st.sampled_from(["VB", "VBD", "VBZ", "VBG", "VBN", "NN", "NNS", "JJ", "JJR"]))
    def test_lemma_is_lowercase_and_nonempty(self, word, tag):
        lemma = lemmatize(word, tag)
        assert lemma == lemma.lower()
        assert lemma

    @given(st.sampled_from("work offer provide impress disappoint improve handle support".split()))
    def test_inflection_roundtrip(self, base):
        lem = Lemmatizer()
        vbz = base + ("es" if base.endswith(("s", "sh", "ch", "x", "z")) else "s")
        assert lem.lemmatize(vbz, "VBZ") == base
        vbd = base + ("d" if base.endswith("e") else "ed")
        assert lem.lemmatize(vbd, "VBD") == base
