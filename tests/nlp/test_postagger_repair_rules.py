"""Focused tests for the tagger's contextual repair rules.

Each rule earned its place by fixing a concrete mis-analysis found while
tuning the pipeline; these tests pin those cases so later rule changes
cannot silently regress them.
"""

from repro.core import default_lexicon
from repro.nlp.postagger import PosTagger
from repro.nlp.sentences import split_sentences

_TAGGER = PosTagger(extra_lexicon=default_lexicon().tagger_entries())


def tags_of(text):
    (sentence,) = split_sentences(text)
    return {t.text: t.tag for t in _TAGGER.tag(sentence)}


class TestNominalPromotions:
    def test_the_beat_is_a_noun(self):
        assert tags_of("The beat is monotonous.")["beat"] == "NN"

    def test_that_sold_keeps_verb(self):
        # "that sold me the lens" — relativizer + verb must stay verbal.
        assert tags_of("A store that sold me the lens had fine service.")["sold"] == "VBD"

    def test_expansion_plan_compound(self):
        out = tags_of("The expansion plan disappointed everyone.")
        assert out["plan"] == "NN"
        assert out["disappointed"] == "VBD"

    def test_the_manual_before_finite_verb(self):
        assert tags_of("The manual is thorough.")["manual"] == "NN"

    def test_the_manual_impressed(self):
        out = tags_of("The manual impressed everyone.")
        assert out["manual"] == "NN"
        assert out["impressed"] == "VBD"

    def test_manual_stays_adjective_before_noun(self):
        assert tags_of("The manual focus works.")["manual"] == "JJ"


class TestVerbalPromotions:
    def test_people_work_not_demoted(self):
        assert tags_of("People work hard.")["work"] in {"VBP", "VB"}

    def test_reviewers_praised(self):
        assert tags_of("Reviewers praised the camera.")["praised"] == "VBD"

    def test_was_praised_passive(self):
        assert tags_of("The camera was praised.")["praised"] == "VBN"

    def test_impressed_before_by(self):
        assert tags_of("I am impressed by it.")["impressed"] == "VBN"

    def test_disappointing_complement_allowed_either_reading(self):
        # Either JJ (adjective) or VBG (verb) is linguistically fine; the
        # analyzer handles both — just pin that it is one of the two.
        assert tags_of("The zoom is disappointing.")["disappointing"] in {"JJ", "VBG"}


class TestGradedForms:
    def test_irregulars(self):
        out = tags_of("The zoom is better but the flash is worst.")
        assert out["better"] == "JJR"
        assert out["worst"] == "JJS"

    def test_regular_comparative_of_known_adjective(self):
        assert tags_of("This lens is sharper.")["sharper"] == "JJR"

    def test_superlative(self):
        assert tags_of("This is the sharpest lens.")["sharpest"] == "JJS"

    def test_er_noun_not_promoted(self):
        # "charger" ends in -er but "charg" is no adjective.
        assert tags_of("The charger arrived.")["charger"] == "NN"
