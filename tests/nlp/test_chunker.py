"""Unit tests for NP/VG chunking and the paper's definite-bNP patterns."""

from repro.nlp.chunker import Chunker, DEFINITE_BNP_PATTERNS
from repro.nlp.postagger import PosTagger
from repro.nlp.sentences import split_sentences

_TAGGER = PosTagger(extra_lexicon={"excellent": "JJ", "vibrant": "JJ", "sharp": "JJ", "definite": "JJ"})
_CHUNKER = Chunker()


def tagged(text):
    (sentence,) = split_sentences(text)
    return _TAGGER.tag(sentence)


def nps(text):
    return [c.text for c in _CHUNKER.noun_phrases(tagged(text))]


def vgs(text):
    return [c.text for c in _CHUNKER.verb_groups(tagged(text))]


def bbnps(text):
    return [c.text for c in _CHUNKER.beginning_definite_bnps(tagged(text))]


class TestNounPhrases:
    def test_simple_np(self):
        assert nps("The camera works.") == ["The camera"]

    def test_np_with_adjective(self):
        assert "excellent pictures" in nps("It takes excellent pictures.")

    def test_compound_noun(self):
        assert nps("The battery life is short.")[0] == "The battery life"

    def test_pronoun_is_np(self):
        assert nps("I love it.") == ["I", "it"]

    def test_multiple_nps(self):
        out = nps("The company offers high quality products.")
        assert out == ["The company", "high quality products"]

    def test_possessive_determiner(self):
        assert nps("My camera broke.")[0] == "My camera"

    def test_no_np(self):
        assert nps("Quickly!") == []

    def test_base_noun_phrases_strip_determiner(self):
        chunks = _CHUNKER.base_noun_phrases(tagged("The battery life is short."))
        assert chunks[0].text == "battery life"


class TestVerbGroups:
    def test_simple_verb(self):
        assert vgs("The camera works.") == ["works"]

    def test_modal_chain(self):
        assert vgs("It will not work.") == ["will not work"]

    def test_auxiliary_chain(self):
        assert vgs("The design has been improved.") == ["has been improved"]

    def test_negated_contraction(self):
        out = vgs("It doesn't work.")
        assert out == ["does n't work"]

    def test_two_predicates(self):
        out = vgs("The camera works and the flash fails.")
        assert out == ["works", "fails"]

    def test_adverb_inside_group(self):
        assert vgs("It has really improved.") == ["has really improved"]


class TestDefiniteBnps:
    def test_patterns_are_the_papers_six(self):
        assert set(DEFINITE_BNP_PATTERNS) == {
            ("NN",),
            ("NN", "NN"),
            ("JJ", "NN"),
            ("NN", "NN", "NN"),
            ("JJ", "NN", "NN"),
            ("JJ", "JJ", "NN"),
        }

    def test_simple_definite(self):
        chunks = _CHUNKER.definite_bnps(tagged("The battery drains fast."))
        assert [c.text for c in chunks] == ["battery"]

    def test_nn_nn(self):
        chunks = _CHUNKER.definite_bnps(tagged("The battery life is short."))
        assert [c.text for c in chunks] == ["battery life"]

    def test_indefinite_not_matched(self):
        assert _CHUNKER.definite_bnps(tagged("A battery drains fast.")) == []

    def test_mid_sentence_definite(self):
        chunks = _CHUNKER.definite_bnps(tagged("I like the picture quality."))
        assert [c.text for c in chunks] == ["picture quality"]


class TestBeginningDefiniteBnps:
    def test_bbnp_at_sentence_start(self):
        assert bbnps("The battery lasts all day.") == ["battery"]

    def test_bbnp_compound(self):
        assert bbnps("The picture quality impressed me.") == ["picture quality"]

    def test_bbnp_with_adjective(self):
        assert bbnps("The optical zoom works well.") == ["optical zoom"]

    def test_requires_following_verb(self):
        # "The battery of the camera" — definite NP with a PP, not a bBNP.
        assert bbnps("The battery of the camera.") == []

    def test_not_at_start_rejected(self):
        assert bbnps("Overall the battery lasts.") == []

    def test_indefinite_start_rejected(self):
        assert bbnps("A battery lasts all day.") == []

    def test_adverb_between_np_and_verb_ok(self):
        assert bbnps("The battery really lasts.") == ["battery"]

    def test_pronoun_start_rejected(self):
        assert bbnps("It lasts all day.") == []
