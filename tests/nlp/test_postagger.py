"""Unit tests for the POS tagger."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nlp import penn
from repro.nlp.postagger import PosTagger, default_tagger
from repro.nlp.sentences import split_sentences


def tag_pairs(text, tagger=None):
    tagger = tagger or default_tagger()
    (sentence,) = split_sentences(text)
    return [(t.text, t.tag) for t in tagger.tag(sentence)]


def tags_of(text, tagger=None):
    return [tag for _, tag in tag_pairs(text, tagger)]


class TestClosedClass:
    def test_determiners_and_nouns(self):
        assert tag_pairs("The camera works.")[:2] == [("The", "DT"), ("camera", "NN")]

    def test_pronouns(self):
        pairs = tag_pairs("I love it.")
        assert pairs[0] == ("I", "PRP")
        assert pairs[2] == ("it", "PRP")

    def test_modal_plus_verb(self):
        pairs = dict(tag_pairs("It can work."))
        assert pairs["can"] == "MD"
        assert pairs["work"] == "VB"

    def test_preposition(self):
        assert ("with", "IN") in tag_pairs("It comes with a lens.")

    def test_numbers(self):
        assert ("3.5", "CD") in tag_pairs("It scored 3.5 stars.")
        assert ("three", "CD") in tag_pairs("It has three modes.")


class TestVerbMorphology:
    def test_be_forms(self):
        assert ("is", "VBZ") in tag_pairs("The picture is sharp.")
        assert ("were", "VBD") in tag_pairs("The pictures were sharp.")

    def test_regular_inflections(self):
        assert ("impressed", "VBN") in tag_pairs("I am impressed by it.")
        assert ("works", "VBZ") in tag_pairs("The camera works.")
        assert ("working", "VBG") in tag_pairs("It keeps working.")

    def test_irregular_past(self):
        assert ("took", "VBD") in tag_pairs("He took pictures.")
        assert ("broke", "VBD") in tag_pairs("The lens broke.")

    def test_vbn_after_auxiliary(self):
        pairs = dict(tag_pairs("The design has improved."))
        assert pairs["improved"] == "VBN"

    def test_vbd_without_auxiliary(self):
        pairs = dict(tag_pairs("The design improved."))
        assert pairs["improved"] == "VBD"


class TestContextRules:
    def test_noun_after_determiner_not_verb(self):
        pairs = dict(tag_pairs("The work is done."))
        assert pairs["work"] == "NN"

    def test_base_verb_after_to(self):
        pairs = dict(tag_pairs("I want to work."))
        assert pairs["work"] == "VB"

    def test_her_possessive(self):
        pairs = dict(tag_pairs("She loves her camera."))
        assert pairs["her"] == "PRP$"

    def test_like_as_verb_after_pronoun(self):
        pairs = dict(tag_pairs("I like the flash."))
        assert pairs["like"] in {"VBP", "VB"}

    def test_like_as_verb_after_negation(self):
        pairs = dict(tag_pairs("It doesn't like water."))
        assert pairs["like"] == "VB"

    def test_like_as_preposition(self):
        pairs = dict(tag_pairs("It looks like a toy."))
        assert pairs["like"] == "IN"

    def test_gerund_after_determiner_is_noun(self):
        pairs = dict(tag_pairs("The pricing is fair."))
        assert pairs["pricing"] == "NN"


class TestUnknownWords:
    def test_ly_adverb(self):
        pairs = dict(tag_pairs("It zooms smoothlike and quixotically."))
        assert pairs["quixotically"] == "RB"

    def test_ness_noun(self):
        pairs = dict(tag_pairs("The blurriness annoyed me."))
        assert pairs["blurriness"] == "NN"

    def test_able_adjective(self):
        pairs = dict(tag_pairs("It seems quite pluggable."))
        assert pairs["pluggable"] == "JJ"

    def test_capitalized_mid_sentence_is_proper(self):
        pairs = dict(tag_pairs("We tested the Zorblax camera."))
        assert pairs["Zorblax"] == "NNP"

    def test_alphanumeric_model_is_proper(self):
        pairs = dict(tag_pairs("We reviewed the NR70 today."))
        assert pairs["NR70"] == "NNP"

    def test_unknown_plural(self):
        pairs = dict(tag_pairs("Some gizmotrons failed."))
        assert pairs["gizmotrons"] == "NNS"


class TestExtraLexicon:
    def test_extra_entries_override_suffix_rules(self):
        tagger = PosTagger(extra_lexicon={"vibrant": "JJ", "excellent": "JJ"})
        pairs = dict(tag_pairs("The colors are vibrant.", tagger))
        assert pairs["vibrant"] == "JJ"

    def test_extra_entries_cannot_shadow_closed_class(self):
        tagger = PosTagger(extra_lexicon={"the": "NN"})
        assert tag_pairs("The camera.", tagger)[0] == ("The", "DT")

    def test_invalid_tag_rejected(self):
        with pytest.raises(ValueError):
            PosTagger(extra_lexicon={"blorp": "XX"})

    def test_multiword_entries_ignored(self):
        tagger = PosTagger(extra_lexicon={"battery life": "NN"})
        assert dict(tag_pairs("The battery life is fine.", tagger))["battery"] == "NN"


class TestInvariants:
    @given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=120))
    def test_all_emitted_tags_valid(self, text):
        tagger = default_tagger()
        for sentence in split_sentences(text):
            for tt in tagger.tag(sentence):
                assert penn.is_valid_tag(tt.tag), (tt.text, tt.tag)

    @given(st.lists(st.sampled_from(
        "the a camera battery is was takes excellent pictures not and it I".split()
    ), min_size=1, max_size=15))
    def test_tagging_is_deterministic(self, words):
        text = " ".join(words) + "."
        assert tags_of(text) == tags_of(text)

    def test_tag_tokens_empty(self):
        assert default_tagger().tag_tokens([]) == []
