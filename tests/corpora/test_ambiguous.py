"""Tests for the ambiguous-subject corpus generator."""

from repro.core import Disambiguator, SentimentMiner, Subject
from repro.corpora.ambiguous import generate_ambiguous_corpus


class TestGeneration:
    def test_balanced_corpus(self):
        corpus = generate_ambiguous_corpus(on_topic_docs=5, off_topic_docs=7)
        assert len(corpus.on_topic_documents()) == 5
        assert len(corpus.off_topic_documents()) == 7

    def test_subject_appears_in_every_document(self):
        corpus = generate_ambiguous_corpus(on_topic_docs=4, off_topic_docs=4)
        assert all("Apex" in d.text for d in corpus.documents)

    def test_term_sets_disjoint(self):
        corpus = generate_ambiguous_corpus()
        assert corpus.term_set.on_topic & corpus.term_set.off_topic == set()

    def test_deterministic(self):
        a = generate_ambiguous_corpus(seed=3)
        b = generate_ambiguous_corpus(seed=3)
        assert [d.text for d in a.documents] == [d.text for d in b.documents]

    def test_custom_subject(self):
        corpus = generate_ambiguous_corpus(subject="Summit")
        assert corpus.subject == "Summit"
        assert all("Summit" in d.text for d in corpus.documents)


class TestDisambiguationBehaviour:
    def test_disambiguator_separates_readings(self):
        corpus = generate_ambiguous_corpus(on_topic_docs=8, off_topic_docs=8, seed=9)
        miner = SentimentMiner(
            subjects=[Subject(corpus.subject)],
            disambiguator=Disambiguator(corpus.term_set),
        )
        for document in corpus.on_topic_documents():
            result = miner.mine_document(document.text, document.doc_id)
            assert result.stats.spots_on_topic > 0, document.text
        for document in corpus.off_topic_documents():
            result = miner.mine_document(document.text, document.doc_id)
            assert result.stats.spots_on_topic == 0, document.text
