"""Statistical invariants of the generated datasets.

The experiment design (DESIGN.md §4-5) depends on specific corpus
statistics: these tests pin them so innocent-looking generator edits
cannot silently invalidate the reproduced tables.
"""

import pytest

from repro.core.model import Polarity
from repro.corpora import camera_reviews, petroleum_web
from repro.corpora.gold import I_CLASS_KINDS


@pytest.fixture(scope="module")
def camera():
    return camera_reviews(seed=2005, scale=0.06)


@pytest.fixture(scope="module")
def web():
    return petroleum_web(seed=2005, scale=0.06)


class TestReviewStatistics:
    def test_neutral_majority(self, camera):
        """Most mentions must be neutral — the paper's accuracy>precision
        phenomenon depends on it."""
        mentions = [m for d in camera.dplus for m in d.mentions]
        neutral = [m for m in mentions if not m.polarity.is_polar]
        assert 0.5 <= len(neutral) / len(mentions) <= 0.75

    def test_stray_dominates_neutrals(self, camera):
        counts = camera.mention_counts_by_kind()
        assert counts["stray"] > counts["neutral"]

    def test_polar_class_proportions(self, camera):
        """direct+mixed ≈ recall numerator; slang+trap+anaphora the rest."""
        counts = camera.mention_counts_by_kind()
        catchable = counts["direct"] + counts["mixed"]
        missed = counts["slang"] + counts["trap"] + counts["anaphora"]
        assert 0.4 <= catchable / (catchable + missed) <= 0.75

    def test_doc_polarity_split_roughly_60_40(self, camera):
        positive = sum(1 for d in camera.dplus if d.doc_polarity is Polarity.POSITIVE)
        assert 0.4 <= positive / len(camera.dplus) <= 0.8

    def test_dminus_larger_than_dplus(self, camera):
        assert len(camera.dminus) > 3 * len(camera.dplus)

    def test_every_review_mentions_a_product(self, camera):
        from repro.corpora.vocab import DIGITAL_CAMERA

        products = set(DIGITAL_CAMERA.products)
        for document in camera.dplus:
            assert any(m.subject in products for m in document.mentions)


class TestWebStatistics:
    def test_i_class_fraction_in_paper_band(self, web):
        mentions = [m for d in web.dplus for m in d.mentions]
        i_class = [m for m in mentions if m.kind in I_CLASS_KINDS]
        assert 0.6 <= len(i_class) / len(mentions) <= 0.9

    def test_pages_are_multi_subject(self, web):
        multi = sum(1 for d in web.dplus if len({m.subject for m in d.mentions}) >= 3)
        assert multi / len(web.dplus) >= 0.7

    def test_sentiment_sparser_than_reviews(self, web, camera):
        def polar_fraction(dataset):
            mentions = [m for d in dataset.dplus for m in d.mentions]
            return sum(1 for m in mentions if m.polarity.is_polar) / len(mentions)

        assert polar_fraction(web) < polar_fraction(camera)
