"""Tests pinning each template class's behaviour against the analyzer.

The experiment design in DESIGN.md depends on these contracts: if a
template class drifts (e.g. the analyzer learns to handle slang), the
corpora must be retuned, so these tests fail loudly.
"""

import random

import pytest

from repro.core import SentimentAnalyzer, Subject
from repro.core.model import Polarity
from repro.corpora.gold import GoldMention, LabeledSentence
from repro.corpora.templates import SentenceFactory
from repro.corpora.vocab import DIGITAL_CAMERA

ANALYZER = SentimentAnalyzer()


def factory(seed=11):
    return SentenceFactory(DIGITAL_CAMERA, random.Random(seed))


def sm_polarity(sentence: LabeledSentence, subject: str) -> Polarity:
    judgments = ANALYZER.analyze_text(sentence.text, [Subject(subject)])
    return judgments[0].polarity if judgments else Polarity.NEUTRAL


def sample(kind, polarity, n=25, seed=11):
    f = factory(seed)
    rng = random.Random(seed + 1)
    out = []
    for _ in range(n):
        subject = rng.choice(DIGITAL_CAMERA.features)
        out.append((subject, f.of_kind(kind, subject, polarity)))
    return out


class TestDirectTemplates:
    @pytest.mark.parametrize("polarity", [Polarity.POSITIVE, Polarity.NEGATIVE])
    def test_analyzer_agrees_with_gold(self, polarity):
        hits = 0
        cases = sample("direct", polarity)
        for subject, sentence in cases:
            if sm_polarity(sentence, subject) is polarity:
                hits += 1
        assert hits / len(cases) >= 0.95

    def test_single_gold_mention(self):
        (subject, sentence), = sample("direct", Polarity.POSITIVE, n=1)
        assert len(sentence.mentions) == 1
        assert sentence.mentions[0].kind == "direct"


class TestMixedTemplates:
    @pytest.mark.parametrize("polarity", [Polarity.POSITIVE, Polarity.NEGATIVE])
    def test_analyzer_right_on_subject(self, polarity):
        hits = 0
        cases = sample("mixed", polarity)
        for subject, sentence in cases:
            if sm_polarity(sentence, subject) is polarity:
                hits += 1
        assert hits / len(cases) >= 0.9

    def test_two_gold_mentions_opposite_polarity(self):
        (subject, sentence), = sample("mixed", Polarity.POSITIVE, n=1)
        assert len(sentence.mentions) == 2
        polarities = {m.subject: m.polarity for m in sentence.mentions}
        assert polarities[subject] is Polarity.POSITIVE
        other = next(s for s in polarities if s != subject)
        assert polarities[other] is Polarity.NEGATIVE

    def test_collocation_votes_wrong(self):
        from repro.baselines import CollocationBaseline

        baseline = CollocationBaseline()
        wrong = 0
        cases = sample("mixed", Polarity.POSITIVE)
        for subject, sentence in cases:
            judgments = baseline.analyze_text(sentence.text, [Subject(subject)])
            if judgments and judgments[0].polarity is Polarity.NEGATIVE:
                wrong += 1
        # Slightly under 0.9: feature names containing lexicon words
        # ("picture quality") occasionally tie the vote to neutral.
        assert wrong / len(cases) >= 0.75


class TestSlangTemplates:
    @pytest.mark.parametrize("polarity", [Polarity.POSITIVE, Polarity.NEGATIVE])
    def test_analyzer_abstains(self, polarity):
        abstained = 0
        cases = sample("slang", polarity)
        for subject, sentence in cases:
            if not sm_polarity(sentence, subject).is_polar:
                abstained += 1
        assert abstained / len(cases) >= 0.9

    def test_collocation_fires_correctly(self):
        from repro.baselines import CollocationBaseline

        baseline = CollocationBaseline()
        right = 0
        cases = sample("slang", Polarity.POSITIVE)
        for subject, sentence in cases:
            judgments = baseline.analyze_text(sentence.text, [Subject(subject)])
            if judgments and judgments[0].polarity is Polarity.POSITIVE:
                right += 1
        assert right / len(cases) >= 0.9


class TestTrapTemplates:
    @pytest.mark.parametrize("polarity", [Polarity.POSITIVE, Polarity.NEGATIVE])
    def test_analyzer_wrong_polar(self, polarity):
        wrong_polar = 0
        cases = sample("trap", polarity)
        for subject, sentence in cases:
            got = sm_polarity(sentence, subject)
            if got.is_polar and got is not polarity:
                wrong_polar += 1
        assert wrong_polar / len(cases) >= 0.9


class TestNeutralAndStray:
    def test_neutral_has_no_sentiment_words_outside_subject(self):
        # The subject term itself may be a lexicon word ("picture
        # quality"); the neutral contract is that no *other* token
        # carries sentiment.
        from repro.nlp import split_sentences

        lexicon = ANALYZER.lexicon
        for subject, sentence in sample("neutral", Polarity.NEUTRAL):
            subject_words = set(subject.lower().split())
            for s in split_sentences(sentence.text):
                for token in ANALYZER.tag(s):
                    if token.lower in subject_words:
                        continue
                    assert not lexicon.polarity(token.text, token.tag).is_polar, (
                        sentence.text,
                        token.text,
                    )

    def test_analyzer_neutral_on_stray(self):
        ok = 0
        cases = sample("stray", Polarity.NEUTRAL)
        for subject, sentence in cases:
            if not sm_polarity(sentence, subject).is_polar:
                ok += 1
        assert ok / len(cases) >= 0.9

    def test_stray_contains_sentiment_word(self):
        from repro.nlp import split_sentences

        lexicon = ANALYZER.lexicon
        polar_found = 0
        cases = sample("stray", Polarity.NEUTRAL)
        for subject, sentence in cases:
            for s in split_sentences(sentence.text):
                if any(
                    lexicon.polarity(t.text, t.tag).is_polar for t in ANALYZER.tag(s)
                ):
                    polar_found += 1
                    break
        assert polar_found == len(cases)


class TestFactoryMisc:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            factory().of_kind("sonnet", "zoom", Polarity.POSITIVE)

    def test_filler_has_no_mentions(self):
        sentence = factory().filler()
        assert sentence.mentions == ()

    def test_gold_mention_kind_validated(self):
        with pytest.raises(ValueError):
            GoldMention("x", Polarity.NEUTRAL, kind="bogus")

    def test_deterministic_given_seed(self):
        a = factory(3).direct("zoom", Polarity.POSITIVE)
        b = factory(3).direct("zoom", Polarity.POSITIVE)
        assert a.text == b.text
