"""Tests for the review/webpage generators and dataset assembly."""

import pytest

from repro.core.model import Polarity
from repro.corpora import (
    DIGITAL_CAMERA,
    PETROLEUM,
    ReviewGenerator,
    WebPageGenerator,
    camera_reviews,
    music_reviews,
    petroleum_news,
    petroleum_web,
    pharmaceutical_web,
)
from repro.corpora.gold import I_CLASS_KINDS
from repro.corpora.reviews import zipf_choice
from repro.nlp.sentences import split_sentences


class TestReviewGenerator:
    def test_deterministic(self):
        a = ReviewGenerator(DIGITAL_CAMERA, seed=5).generate_dplus(3)
        b = ReviewGenerator(DIGITAL_CAMERA, seed=5).generate_dplus(3)
        assert [d.text for d in a] == [d.text for d in b]

    def test_different_seeds_differ(self):
        a = ReviewGenerator(DIGITAL_CAMERA, seed=5).generate_review("x")
        b = ReviewGenerator(DIGITAL_CAMERA, seed=6).generate_review("x")
        assert a.text != b.text

    def test_review_has_doc_polarity(self):
        docs = ReviewGenerator(DIGITAL_CAMERA, seed=1).generate_dplus(20)
        polarities = {d.doc_polarity for d in docs}
        assert polarities == {Polarity.POSITIVE, Polarity.NEGATIVE}

    def test_mentions_align_with_sentences(self):
        for doc in ReviewGenerator(DIGITAL_CAMERA, seed=2).generate_dplus(5):
            n_sentences = len(split_sentences(doc.text))
            for mention in doc.mentions:
                assert 0 <= mention.sentence_index < n_sentences

    def test_mention_subjects_appear_in_their_sentence(self):
        for doc in ReviewGenerator(DIGITAL_CAMERA, seed=3).generate_dplus(5):
            sentences = split_sentences(doc.text)
            for mention in doc.mentions:
                text = sentences[mention.sentence_index].text_of(doc.text).lower()
                assert mention.subject.lower() in text

    def test_offtopic_docs_have_no_mentions(self):
        docs = ReviewGenerator(DIGITAL_CAMERA, seed=4).generate_dminus(10)
        assert all(not d.mentions for d in docs)
        assert all(not d.on_topic for d in docs)

    def test_doc_polarity_biases_sentence_polarity(self):
        docs = ReviewGenerator(DIGITAL_CAMERA, seed=7).generate_dplus(30)
        agree = 0
        total = 0
        for doc in docs:
            for mention in doc.polar_mentions():
                total += 1
                if mention.polarity is doc.doc_polarity:
                    agree += 1
        assert agree / total > 0.65


class TestWebPageGenerator:
    def test_i_class_dominates(self):
        docs = WebPageGenerator(PETROLEUM, seed=9).generate_pages(20)
        mentions = [m for d in docs for m in d.mentions]
        i_class = [m for m in mentions if m.kind in I_CLASS_KINDS]
        assert 0.6 <= len(i_class) / len(mentions) <= 0.9

    def test_multi_subject_pages(self):
        docs = WebPageGenerator(PETROLEUM, seed=9).generate_pages(10)
        multi = [d for d in docs if len({m.subject for m in d.mentions}) >= 3]
        assert len(multi) >= 5

    def test_news_style_headline(self):
        doc = WebPageGenerator(PETROLEUM, seed=9, news_style=True).generate_page("n")
        first = split_sentences(doc.text)[0].text_of(doc.text)
        assert any(company in first for company in PETROLEUM.products)

    def test_deterministic(self):
        a = WebPageGenerator(PETROLEUM, seed=3).generate_pages(2)
        b = WebPageGenerator(PETROLEUM, seed=3).generate_pages(2)
        assert [d.text for d in a] == [d.text for d in b]


class TestDatasets:
    def test_camera_paper_sizes_at_scale_one(self):
        # Only check the arithmetic, not a full-size build.
        from repro.corpora.datasets import CAMERA_DPLUS, CAMERA_DMINUS, _scaled

        assert _scaled(CAMERA_DPLUS, 1.0) == 485
        assert _scaled(CAMERA_DMINUS, 1.0) == 1838

    def test_scaled_dataset_counts(self):
        ds = camera_reviews(scale=0.02)
        assert len(ds.dplus) == round(485 * 0.02)
        assert len(ds.dminus) == round(1838 * 0.02)

    def test_music_dataset(self):
        ds = music_reviews(scale=0.02)
        assert len(ds.dplus) == round(250 * 0.02)
        assert ds.name == "music_reviews"

    def test_web_datasets_have_no_dminus(self):
        for builder in (petroleum_web, pharmaceutical_web, petroleum_news):
            ds = builder(scale=0.02)
            assert ds.dminus == []
            assert len(ds.dplus) >= 1

    def test_kind_counts_cover_all_kinds(self):
        ds = camera_reviews(scale=0.02)
        counts = ds.mention_counts_by_kind()
        assert all(counts[k] > 0 for k in ("direct", "mixed", "slang", "neutral", "stray"))

    def test_gold_by_key_lookup(self):
        ds = camera_reviews(scale=0.01)
        doc = ds.dplus[0]
        table = doc.gold_by_key()
        mention = doc.mentions[0]
        assert table[(mention.subject.lower(), mention.sentence_index)] is mention

    def test_unknown_domain_rejected(self):
        from repro.corpora import review_dataset_for

        with pytest.raises(ValueError):
            review_dataset_for("cuisine")


class TestZipfChoice:
    def test_early_items_dominate(self):
        import random

        rng = random.Random(0)
        items = tuple("abcdef")
        picks = [zipf_choice(rng, items) for _ in range(2000)]
        assert picks.count("a") > picks.count("f") * 3
