"""Property-based tests for DataStore partition invariants.

Requires ``hypothesis`` (an optional test dependency); the module skips
cleanly when it is missing.  The invariants chaos recovery leans on:

* every stored entity lives in exactly one partition;
* ``scan()`` over all partitions yields exactly ``len(store)`` entities;
* hash partition assignment is stable across save/load round-trips.
"""

import tempfile

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.platform.datastore import DataStore, default_partitioner
from repro.platform.entity import Entity

_ids = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122), min_size=1, max_size=12
)
_settings = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def build_store(entity_ids, num_partitions=8, memtable_limit=4):
    store = DataStore(num_partitions=num_partitions, memtable_limit=memtable_limit)
    for entity_id in entity_ids:
        store.store(Entity(entity_id=entity_id, content=f"doc {entity_id}"))
    return store


class TestPartitionInvariants:
    @_settings
    @given(st.lists(_ids, min_size=1, max_size=40))
    def test_each_entity_in_exactly_one_partition(self, entity_ids):
        store = build_store(entity_ids)
        for entity_id in set(entity_ids):
            holders = [
                p
                for p in range(store.num_partitions)
                if store.partition(p).get(entity_id) is not None
            ]
            assert len(holders) == 1
            assert holders[0] == default_partitioner(entity_id, store.num_partitions)

    @_settings
    @given(st.lists(_ids, min_size=0, max_size=40), st.integers(min_value=1, max_value=12))
    def test_scan_over_partitions_equals_len(self, entity_ids, num_partitions):
        store = build_store(entity_ids, num_partitions=num_partitions)
        scanned = list(store.scan())
        assert len(scanned) == len(store) == len(set(entity_ids))
        assert {e.entity_id for e in scanned} == set(entity_ids)

    @_settings
    @given(
        st.lists(_ids, min_size=1, max_size=30),
        st.lists(_ids, min_size=0, max_size=10),
    )
    def test_deletes_preserve_partition_accounting(self, stored, deleted):
        store = build_store(stored)
        for entity_id in deleted:
            store.delete(entity_id)
        store.flush()
        live = set(stored) - set(deleted)
        assert len(store) == len(live)
        assert sum(len(store.partition(p)) for p in range(store.num_partitions)) == len(live)

    @_settings
    @given(st.lists(_ids, min_size=1, max_size=25))
    def test_assignment_stable_under_reopen(self, entity_ids):
        store = build_store(entity_ids)
        placement = {
            e.entity_id: p
            for p in range(store.num_partitions)
            for e in store.partition(p).scan()
        }
        with tempfile.TemporaryDirectory() as directory:
            store.save(directory)
            reopened = DataStore.load(directory)
        reopened_placement = {
            e.entity_id: p
            for p in range(reopened.num_partitions)
            for e in reopened.partition(p).scan()
        }
        assert reopened_placement == placement

    @_settings
    @given(st.lists(_ids, min_size=1, max_size=30))
    def test_compaction_preserves_partition_contents(self, entity_ids):
        store = build_store(entity_ids, memtable_limit=2)
        before = {e.entity_id for e in store.scan()}
        store.flush()
        store.compact()
        assert {e.entity_id for e in store.scan()} == before
        assert len(store) == len(before)
