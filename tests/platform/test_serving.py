"""Unit tests for the serving building blocks: deadlines, shards, breakers."""

import pytest

from repro.core.model import Polarity, SentimentJudgment, Spot, Subject
from repro.nlp.tokens import Span
from repro.obs import Obs
from repro.platform.entity import Entity
from repro.platform.serving import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    ReplicatedIndex,
    shard_of,
)

pytestmark = pytest.mark.serving


def judgment(subject: str, doc: str = "d1", polarity=Polarity.POSITIVE):
    return SentimentJudgment(
        spot=Spot(Subject(subject), subject, Span(0, len(subject)), 0, doc),
        polarity=polarity,
    )


class TestDeadline:
    def test_remaining_counts_down_with_the_clock(self):
        obs = Obs.default()
        deadline = Deadline(obs.clock, 2.0)
        assert deadline.remaining == pytest.approx(2.0)
        obs.clock.advance(1.5)
        assert deadline.remaining == pytest.approx(0.5)
        assert not deadline.expired

    def test_expires_exactly_at_budget(self):
        obs = Obs.default()
        deadline = Deadline(obs.clock, 1.0)
        obs.clock.advance(1.0)
        assert deadline.expired
        assert deadline.remaining == 0.0

    def test_check_raises_after_expiry(self):
        obs = Obs.default()
        deadline = Deadline(obs.clock, 0.5)
        deadline.check("early")  # no raise
        obs.clock.advance(1.0)
        with pytest.raises(DeadlineExceeded, match="late-stage"):
            deadline.check("late-stage")

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(Obs.default().clock, -0.1)

    def test_child_deadline_never_outlives_parent(self):
        obs = Obs.default()
        parent = Deadline(obs.clock, 1.0)
        child = parent.sub(5.0)
        assert child.expires_at == parent.expires_at
        tight = parent.sub(0.25)
        assert tight.remaining == pytest.approx(0.25)


class TestShardPlacement:
    def test_shard_of_is_stable(self):
        assert shard_of("nr70", 8) == shard_of("nr70", 8)
        assert 0 <= shard_of("anything", 5) < 5

    def test_replica_placement_is_successor_style(self):
        index = ReplicatedIndex(num_shards=4, num_nodes=3, replication=2)
        assert index.nodes_for(0) == [0, 1]
        assert index.nodes_for(2) == [2, 0]
        # Primary-first ordering.
        assert [r.replica for r in index.replicas_for(1)] == [0, 1]

    def test_replication_bounds_validated(self):
        with pytest.raises(ValueError):
            ReplicatedIndex(num_shards=2, num_nodes=2, replication=3)
        with pytest.raises(ValueError):
            ReplicatedIndex(num_shards=0, num_nodes=2)

    def test_writes_fan_out_to_every_replica(self):
        index = ReplicatedIndex(num_shards=2, num_nodes=3, replication=2)
        index.add_judgment(judgment("NR70"))
        shard = index.subject_shard("NR70")
        for replica in index.replicas_for(shard):
            assert replica.sentiment.counts("NR70")[Polarity.POSITIVE] == 1
        other = 1 - shard
        for replica in index.replicas_for(other):
            assert len(replica.sentiment) == 0

    def test_entities_route_by_entity_hash(self):
        index = ReplicatedIndex(num_shards=2, num_nodes=2, replication=1)
        entity = Entity(entity_id="doc-1", content="excellent pictures")
        index.add_entity(entity)
        shard = shard_of("doc-1", 2)
        assert index.replicas_for(shard)[0].inverted.search("pictures") == {"doc-1"}

    def test_single_node_death_never_loses_a_shard(self):
        index = ReplicatedIndex(num_shards=8, num_nodes=4, replication=2)
        for dead in range(4):
            for shard in index.shard_ids():
                survivors = [n for n in index.nodes_for(shard) if n != dead]
                assert survivors, f"shard {shard} lost with node {dead} down"


class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        obs = Obs.default()
        return obs, CircuitBreaker("svc", obs, **kwargs)

    def test_opens_after_threshold_failures(self):
        _, breaker = self._breaker(failure_threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN

    def test_open_fast_fails_until_cooldown(self):
        obs, breaker = self._breaker(failure_threshold=1, cooldown=2.0)
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        obs.clock.advance(1.0)
        assert not breaker.allow()
        assert breaker.snapshot()["fastfails"] == 2
        obs.clock.advance(1.0)
        assert breaker.allow()  # cooldown elapsed: half-open probe
        assert breaker.state == HALF_OPEN

    def test_half_open_success_closes(self):
        obs, breaker = self._breaker(failure_threshold=1, cooldown=1.0)
        breaker.record_failure()
        obs.clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.consecutive_failures == 0

    def test_half_open_failure_reopens(self):
        obs, breaker = self._breaker(failure_threshold=3, cooldown=1.0)
        for _ in range(3):
            breaker.record_failure()
        obs.clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()  # a single half-open failure re-trips
        assert breaker.state == OPEN
        assert breaker.snapshot()["opens"] == 2

    def test_success_resets_failure_streak(self):
        _, breaker = self._breaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_state_mirrored_to_gauge(self):
        obs, breaker = self._breaker(failure_threshold=1)
        gauge = obs.metrics.gauge("serving.breaker_state", service="svc")
        assert gauge.value == 0
        breaker.record_failure()
        assert gauge.value == 2
