"""End-to-end chaos runs of the serving layer (seeded, deterministic)."""

import json

import pytest

from repro.platform.serving import LoadProfile, build_scenario

pytestmark = [pytest.mark.chaos, pytest.mark.serving]

PROFILE = LoadProfile(requests=300)


def run_report(chaos_seed):
    scenario = build_scenario(
        seed=2005, docs=24, chaos_seed=chaos_seed, profile=PROFILE
    )
    return scenario.run()


def test_same_seed_gives_byte_identical_reports():
    first = run_report(chaos_seed=7)
    second = run_report(chaos_seed=7)
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)


def test_chaos_run_upholds_the_availability_contract():
    report = run_report(chaos_seed=7)
    assert report["requests"] == PROFILE.requests
    assert report["dead_nodes"], "the chaos plan kills one index node"
    assert report["faults_injected"] >= 0.05 * report["requests"]
    assert report["malformed_responses"] == 0
    assert report["late_responses"] == 0, "nothing is served past its deadline"
    assert report["availability"] >= 0.99
    assert report["degraded"] > 0, "a dead node must surface degraded answers"


def test_different_seeds_change_the_fault_plan_not_the_contract():
    reports = [run_report(chaos_seed=s) for s in (3, 11)]
    assert reports[0]["dead_nodes"] != reports[1]["dead_nodes"] or (
        json.dumps(reports[0], sort_keys=True)
        != json.dumps(reports[1], sort_keys=True)
    )
    for report in reports:
        assert report["late_responses"] == 0
        assert report["malformed_responses"] == 0
        assert report["availability"] >= 0.99


def test_calm_run_is_fully_available():
    scenario = build_scenario(seed=2005, docs=24, chaos_seed=None, profile=PROFILE)
    report = scenario.run()
    assert report["dead_nodes"] == []
    assert report["faults_injected"] == 0
    assert report["availability"] >= 0.99
    assert report["late_responses"] == 0
    assert report["responses_by_status"].get("error", 0) == 0
