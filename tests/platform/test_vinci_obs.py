"""Envelope semantics under retries and the trace ring buffer.

Covers the observability contract of the bus: ``Envelope.attempt``
counts tries of one logical request, ``Envelope.fault`` names the
injected fault that killed a try, and the trace is an explicit ring
buffer whose evictions are counted, never silent.
"""

import pytest

from repro.obs import Obs
from repro.platform.faults import TIMEOUT, FaultPlan
from repro.platform.retry import RetryPolicy
from repro.platform.vinci import TRACE_STATS_KEY, VinciBus, VinciError


def ok_handler(payload):
    return {"ok": True}


class TestEnvelopeAttemptSemantics:
    def test_attempt_counts_up_across_retries(self):
        plan = FaultPlan().fail_service("svc", count=2)
        bus = VinciBus(
            retry_policy=RetryPolicy(max_attempts=3, base_backoff=0.1),
            fault_plan=plan,
        )
        bus.register("svc", ok_handler)
        bus.request("svc")
        envelopes = bus.trace()
        assert [e.attempt for e in envelopes] == [1, 2, 3]
        assert [e.ok for e in envelopes] == [False, False, True]

    def test_fault_names_injected_kind_per_attempt(self):
        plan = FaultPlan().fail_service("svc", count=1, kind=TIMEOUT)
        bus = VinciBus(
            retry_policy=RetryPolicy(max_attempts=2, base_backoff=0.1),
            fault_plan=plan,
        )
        bus.register("svc", ok_handler)
        bus.request("svc")
        failed, succeeded = bus.trace()
        assert failed.fault == TIMEOUT
        assert not failed.ok
        assert succeeded.fault == ""
        assert succeeded.ok

    def test_handler_exception_failure_has_no_fault_kind(self):
        bus = VinciBus(retry_policy=RetryPolicy(max_attempts=2, base_backoff=0.0))
        calls = {"n": 0}

        def flaky(payload):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("flake")
            return {}

        bus.register("svc", flaky)
        bus.request("svc")
        failed, succeeded = bus.trace()
        assert not failed.ok and failed.fault == ""
        assert failed.attempt == 1 and succeeded.attempt == 2

    def test_exhausted_retries_leave_all_attempts_in_trace(self):
        plan = FaultPlan().fail_service("svc", count=5)
        bus = VinciBus(
            retry_policy=RetryPolicy(max_attempts=3, base_backoff=0.1),
            fault_plan=plan,
        )
        bus.register("svc", ok_handler)
        with pytest.raises(VinciError):
            bus.request("svc")
        assert [e.attempt for e in bus.trace()] == [1, 2, 3]
        assert all(not e.ok for e in bus.trace())

    def test_attempt_resets_per_logical_request(self):
        bus = VinciBus(retry_policy=RetryPolicy(max_attempts=3, base_backoff=0.1))
        bus.register("svc", ok_handler)
        bus.request("svc")
        bus.request("svc")
        assert [e.attempt for e in bus.trace()] == [1, 1]


class TestTraceRingBuffer:
    def test_oldest_envelopes_evicted_and_counted(self):
        bus = VinciBus(trace_limit=3)
        bus.register("svc", lambda payload: {"n": payload["n"]})
        for n in range(5):
            bus.request("svc", {"n": n})
        kept = [e.request["n"] for e in bus.trace()]
        assert kept == [2, 3, 4]
        assert bus.trace_dropped == 2

    def test_stats_surface_ring_buffer_state(self):
        bus = VinciBus(trace_limit=2)
        bus.register("svc", ok_handler)
        for _ in range(3):
            bus.request("svc")
        entry = bus.stats()[TRACE_STATS_KEY]
        assert entry["recorded"] == 2
        assert entry["dropped"] == 1
        assert entry["limit"] == 2
        # Zero-filled so aggregations over all stats values stay correct.
        assert entry["requests"] == 0 and entry["failures"] == 0

    def test_dropped_counter_in_metrics_registry(self):
        obs = Obs.default()
        bus = VinciBus(trace_limit=1, obs=obs)
        bus.register("svc", ok_handler)
        bus.request("svc")
        bus.request("svc")
        assert obs.metrics.value("vinci.trace_dropped") == 1.0

    def test_zero_limit_drops_everything(self):
        bus = VinciBus(trace_limit=0)
        bus.register("svc", ok_handler)
        bus.request("svc")
        assert bus.trace() == []
        assert bus.trace_dropped == 1

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            VinciBus(trace_limit=-1)

    def test_no_eviction_below_limit(self):
        bus = VinciBus(trace_limit=10)
        bus.register("svc", ok_handler)
        bus.request("svc")
        assert bus.trace_dropped == 0


class TestRequestSpans:
    def test_request_span_wraps_attempt_spans(self):
        obs = Obs.enabled()
        plan = FaultPlan().fail_service("svc", count=1, kind=TIMEOUT)
        bus = VinciBus(
            retry_policy=RetryPolicy(max_attempts=2, base_backoff=0.1),
            fault_plan=plan,
            obs=obs,
        )
        bus.register("svc", ok_handler)
        bus.request("svc")
        (request_span,) = obs.tracer.find("vinci.request")
        attempts = obs.tracer.children(request_span)
        assert request_span.attributes["attempts"] == 2
        assert [s.attributes["attempt"] for s in attempts] == [1, 2]
        assert attempts[0].attributes["fault"] == TIMEOUT
        assert attempts[0].status == "error"
        assert attempts[1].status == "ok"

    def test_backoff_cost_advances_shared_clock(self):
        obs = Obs.enabled()
        plan = FaultPlan().fail_service("svc", count=1)
        bus = VinciBus(
            retry_policy=RetryPolicy(max_attempts=2, base_backoff=0.5),
            fault_plan=plan,
            obs=obs,
        )
        bus.register("svc", ok_handler)
        before = obs.clock.now
        bus.request("svc")
        assert obs.clock.now - before >= 0.5
        (request_span,) = obs.tracer.find("vinci.request")
        assert request_span.duration >= 0.5
