"""Unit tests for the shared-nothing cluster simulation."""

import pytest

from repro.platform.cluster import Cluster
from repro.platform.datastore import DataStore
from repro.platform.entity import Annotation, Entity
from repro.platform.miners import CorpusMiner, EntityMiner, MinerPipeline


class Marker(EntityMiner):
    name = "marker"
    provides = ("mark",)

    def process(self, entity):
        entity.annotate(Annotation.make("mark", 0, 0, label="x"))


class Summer(CorpusMiner):
    name = "summer"

    def map_partition(self, entities):
        return sum(1 for _ in entities)

    def reduce(self, partials):
        return sum(partials)


def loaded_store(n=64, partitions=8):
    store = DataStore(num_partitions=partitions)
    store.store_all(Entity(entity_id=f"d{i}", content=f"doc {i}") for i in range(n))
    return store


class TestConstruction:
    def test_partitions_assigned_round_robin(self):
        cluster = Cluster(loaded_store(partitions=8), num_nodes=4)
        for node in cluster.nodes:
            assert len(node.partition_ids) == 2

    def test_more_nodes_than_partitions_rejected(self):
        with pytest.raises(ValueError):
            Cluster(loaded_store(partitions=2), num_nodes=4)

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            Cluster(loaded_store(), num_nodes=0)

    def test_status_service_registered(self):
        cluster = Cluster(loaded_store(), num_nodes=2)
        status = cluster.bus.request("cluster.status")
        assert status["nodes"] == 2
        assert status["entities"] == 64


class TestPipelineRuns:
    def test_all_entities_processed(self):
        store = loaded_store()
        cluster = Cluster(store, num_nodes=4)
        report = cluster.run_pipeline(MinerPipeline([Marker()]))
        assert report.pipeline.entities_processed == 64
        assert all(e.has_layer("mark") for e in store.scan())

    def test_makespan_decreases_with_more_nodes(self):
        def makespan(nodes):
            cluster = Cluster(loaded_store(), num_nodes=nodes)
            return cluster.run_pipeline(MinerPipeline([Marker()])).makespan

        assert makespan(8) < makespan(2) < makespan(1)

    def test_speedup_near_linear(self):
        cluster = Cluster(loaded_store(n=256), num_nodes=8)
        report = cluster.run_pipeline(MinerPipeline([Marker()]))
        assert report.speedup > 4  # 8 nodes, allowing overhead

    def test_work_split_across_nodes(self):
        cluster = Cluster(loaded_store(n=128), num_nodes=4)
        report = cluster.run_pipeline(MinerPipeline([Marker()]))
        assert len(report.per_node_work) == 4
        assert all(w > 0 for w in report.per_node_work)

    def test_messages_counted(self):
        cluster = Cluster(loaded_store(), num_nodes=4)
        report = cluster.run_pipeline(MinerPipeline([Marker()]))
        assert report.messages == 4


class TestCorpusRuns:
    def test_corpus_miner_result_matches_sequential(self):
        store = loaded_store(n=100)
        cluster = Cluster(store, num_nodes=4)
        result, report = cluster.run_corpus_miner(Summer())
        assert result == 100
        assert report.pipeline.entities_processed == 100

    def test_reduce_cost_included_in_makespan(self):
        store = loaded_store(n=16)
        only_map = Cluster(store, num_nodes=4).run_pipeline(MinerPipeline([Marker()]))
        _, with_reduce = Cluster(store, num_nodes=4).run_corpus_miner(Summer())
        assert with_reduce.makespan > 0
        assert with_reduce.makespan >= only_map.makespan - 1e-9
