"""Unit tests for the shared-nothing cluster simulation."""

import pytest

from repro.platform.cluster import Cluster
from repro.platform.datastore import DataStore
from repro.platform.entity import Annotation, Entity
from repro.platform.miners import CorpusMiner, EntityMiner, MinerPipeline


class Marker(EntityMiner):
    name = "marker"
    provides = ("mark",)

    def process(self, entity):
        entity.annotate(Annotation.make("mark", 0, 0, label="x"))


class Summer(CorpusMiner):
    name = "summer"

    def map_partition(self, entities):
        return sum(1 for _ in entities)

    def reduce(self, partials):
        return sum(partials)


def loaded_store(n=64, partitions=8):
    store = DataStore(num_partitions=partitions)
    store.store_all(Entity(entity_id=f"d{i}", content=f"doc {i}") for i in range(n))
    return store


class TestConstruction:
    def test_partitions_assigned_round_robin(self):
        cluster = Cluster(loaded_store(partitions=8), num_nodes=4)
        for node in cluster.nodes:
            assert len(node.partition_ids) == 2

    def test_more_nodes_than_partitions_rejected(self):
        with pytest.raises(ValueError):
            Cluster(loaded_store(partitions=2), num_nodes=4)

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            Cluster(loaded_store(), num_nodes=0)

    def test_status_service_registered(self):
        cluster = Cluster(loaded_store(), num_nodes=2)
        status = cluster.bus.request("cluster.status")
        assert status["nodes"] == 2
        assert status["entities"] == 64


class TestPipelineRuns:
    def test_all_entities_processed(self):
        store = loaded_store()
        cluster = Cluster(store, num_nodes=4)
        report = cluster.run_pipeline(MinerPipeline([Marker()]))
        assert report.pipeline.entities_processed == 64
        assert all(e.has_layer("mark") for e in store.scan())

    def test_makespan_decreases_with_more_nodes(self):
        def makespan(nodes):
            cluster = Cluster(loaded_store(), num_nodes=nodes)
            return cluster.run_pipeline(MinerPipeline([Marker()])).makespan

        assert makespan(8) < makespan(2) < makespan(1)

    def test_speedup_near_linear(self):
        cluster = Cluster(loaded_store(n=256), num_nodes=8)
        report = cluster.run_pipeline(MinerPipeline([Marker()]))
        assert report.speedup > 4  # 8 nodes, allowing overhead

    def test_work_split_across_nodes(self):
        cluster = Cluster(loaded_store(n=128), num_nodes=4)
        report = cluster.run_pipeline(MinerPipeline([Marker()]))
        assert len(report.per_node_work) == 4
        assert all(w > 0 for w in report.per_node_work)

    def test_messages_counted(self):
        cluster = Cluster(loaded_store(), num_nodes=4)
        report = cluster.run_pipeline(MinerPipeline([Marker()]))
        assert report.messages == 4


class TestPerRunAccounting:
    def test_messages_reset_between_runs(self):
        # Regression: report.messages used to be the bus-lifetime
        # cumulative count, so a second run reported double.
        cluster = Cluster(loaded_store(), num_nodes=4)
        first = cluster.run_pipeline(MinerPipeline([Marker()]))
        second = cluster.run_pipeline(MinerPipeline([Marker()]))
        assert first.messages == second.messages == 4

    def test_corpus_runs_also_reset_messages(self):
        cluster = Cluster(loaded_store(), num_nodes=4)
        _, first = cluster.run_corpus_miner(Summer())
        _, second = cluster.run_corpus_miner(Summer())
        assert first.messages == second.messages == 4

    def test_status_keeps_lifetime_total(self):
        cluster = Cluster(loaded_store(), num_nodes=4)
        cluster.run_pipeline(MinerPipeline([Marker()]))
        cluster.run_pipeline(MinerPipeline([Marker()]))
        assert cluster.status()["messages"] == 8


class TestReplication:
    def test_owner_lists_have_replication_size(self):
        cluster = Cluster(loaded_store(partitions=8), num_nodes=4, replication=2)
        for pid in range(8):
            owners = cluster.owners(pid)
            assert len(owners) == 2
            assert owners[0] == pid % 4  # primary stays round-robin
            assert len(set(owners)) == 2

    def test_replication_must_fit_cluster(self):
        with pytest.raises(ValueError):
            Cluster(loaded_store(), num_nodes=4, replication=5)
        with pytest.raises(ValueError):
            Cluster(loaded_store(), num_nodes=4, replication=0)

    def test_failover_charges_replica_owner(self):
        from repro.platform.faults import FaultPlan

        store = loaded_store(n=64, partitions=8)
        plan = FaultPlan().kill_node(0, after_partitions=0)
        cluster = Cluster(store, num_nodes=4, replication=2, fault_plan=plan)
        report = cluster.run_pipeline(MinerPipeline([Marker()]))
        assert report.coverage == 1.0
        assert report.failovers == 2  # node 0's two partitions
        assert report.dead_nodes == (0,)
        assert report.per_node_work[0] == 0.0
        assert report.per_node_work[1] > report.per_node_work[2]  # took the orphans

    def test_unreplicated_death_degrades(self):
        from repro.platform.faults import FaultPlan

        store = loaded_store(n=64, partitions=8)
        plan = FaultPlan().kill_node(1, after_partitions=0)
        cluster = Cluster(store, num_nodes=4, replication=1, fault_plan=plan)
        report = cluster.run_pipeline(MinerPipeline([Marker()]))
        assert report.degraded
        assert report.coverage < 1.0
        assert set(report.lost_partitions) == {1, 5}

    def test_fault_free_report_has_clean_degradation_fields(self):
        report = Cluster(loaded_store(), num_nodes=4).run_pipeline(
            MinerPipeline([Marker()])
        )
        assert report.retries == 0
        assert report.failovers == 0
        assert report.dead_nodes == ()
        assert report.coverage == 1.0
        assert not report.degraded


class TestCorpusRuns:
    def test_corpus_miner_result_matches_sequential(self):
        store = loaded_store(n=100)
        cluster = Cluster(store, num_nodes=4)
        result, report = cluster.run_corpus_miner(Summer())
        assert result == 100
        assert report.pipeline.entities_processed == 100

    def test_reduce_cost_included_in_makespan(self):
        store = loaded_store(n=16)
        only_map = Cluster(store, num_nodes=4).run_pipeline(MinerPipeline([Marker()]))
        _, with_reduce = Cluster(store, num_nodes=4).run_corpus_miner(Summer())
        assert with_reduce.makespan > 0
        assert with_reduce.makespan >= only_map.makespan - 1e-9
