"""Unit tests for the inverted index and the sentiment index."""

import pytest

from repro.core.model import Polarity, SentimentJudgment, Spot, Subject
from repro.nlp.tokens import Span
from repro.platform.entity import Annotation, Entity
from repro.platform.indexer import InvertedIndex, SentimentIndex
from repro.platform.query import Concept, parse_query


def corpus():
    docs = {
        "d1": "The camera takes excellent pictures in daylight.",
        "d2": "The battery drains fast. The camera is heavy.",
        "d3": "Picture quality matters more than megapixels.",
        "d4": "The NR70 and NR80 are PDAs.",
    }
    entities = []
    for eid, content in docs.items():
        e = Entity(entity_id=eid, content=content, metadata={"year": int(eid[1]) + 2000})
        entities.append(e)
    return entities


@pytest.fixture()
def index():
    idx = InvertedIndex()
    idx.add_all(corpus())
    return idx


class TestBooleanSearch:
    def test_term(self, index):
        assert index.search("camera") == {"d1", "d2"}

    def test_term_case_folded(self, index):
        assert index.search("CAMERA") == {"d1", "d2"}

    def test_and(self, index):
        assert index.search("camera AND battery") == {"d2"}

    def test_or(self, index):
        assert index.search("battery OR pictures") == {"d1", "d2"}

    def test_not(self, index):
        assert index.search("NOT camera") == {"d3", "d4"}

    def test_compound(self, index):
        assert index.search("camera AND NOT battery") == {"d1"}

    def test_miss(self, index):
        assert index.search("zeppelin") == set()


class TestPhraseSearch:
    def test_phrase_hit(self, index):
        assert index.search('"excellent pictures"') == {"d1"}

    def test_phrase_requires_adjacency(self, index):
        assert index.search('"pictures excellent"') == set()

    def test_phrase_crossing_docs_empty(self, index):
        assert index.search('"battery quality"') == set()


class TestRegexAndRange:
    def test_regex_matches_tokens(self, index):
        assert index.search(r"re:/NR\d+/") == {"d4"}

    def test_range_over_metadata(self, index):
        assert index.search("year:[2001 TO 2002]") == {"d1", "d2"}

    def test_range_miss(self, index):
        assert index.search("year:[1990 TO 1991]") == set()


class TestConceptIndex:
    def test_concept_tokens_searchable(self):
        idx = InvertedIndex()
        e = Entity(entity_id="d1", content="The camera rocks.")
        e.annotate(Annotation.make("spot", 4, 10, label="camera"))
        idx.add_entity(e)
        assert idx.search(Concept("spot", "camera")) == {"d1"}
        assert idx.search(Concept("spot", "")) == {"d1"}
        assert idx.search(Concept("spot", "zoom")) == set()

    def test_concept_query_via_parser(self):
        idx = InvertedIndex()
        e = Entity(entity_id="d1", content="Good stuff here.")
        e.annotate(Annotation.make("sentiment", 0, 4, label="+"))
        idx.add_entity(e)
        assert idx.search(parse_query("sentiment:+")) == {"d1"}


class TestIndexMaintenance:
    def test_reindex_replaces(self, index):
        updated = Entity(entity_id="d1", content="Completely different words now.")
        index.add_entity(updated)
        assert "d1" not in index.search("camera")
        assert index.search("different") == {"d1"}

    def test_remove_entity(self, index):
        index.remove_entity("d2")
        assert index.search("battery") == set()
        assert index.document_count == 3

    def test_document_count(self, index):
        assert index.document_count == 4

    def test_document_frequency(self, index):
        assert index.document_frequency("camera") == 2
        assert index.document_frequency("zeppelin") == 0

    def test_idf_ordering(self, index):
        assert index.idf("camera") < index.idf("battery")

    def test_idf_unknown_is_one(self, index):
        assert index.idf("zeppelin") == 1.0

    def test_vocabulary_size_positive(self, index):
        assert index.vocabulary_size > 10


def judgment(subject, polarity, doc_id="d1", start=0, end=5):
    return SentimentJudgment(
        spot=Spot(
            subject=Subject(subject),
            term=subject,
            span=Span(start, end),
            sentence_index=0,
            document_id=doc_id,
        ),
        polarity=polarity,
    )


class TestSentimentIndex:
    def test_add_and_query(self):
        idx = SentimentIndex()
        idx.add_judgment(judgment("NR70", Polarity.POSITIVE))
        idx.add_judgment(judgment("NR70", Polarity.NEGATIVE, doc_id="d2"))
        assert len(idx.query("NR70")) == 2
        assert len(idx.query("NR70", Polarity.POSITIVE)) == 1

    def test_query_case_insensitive(self):
        idx = SentimentIndex()
        idx.add_judgment(judgment("NR70", Polarity.POSITIVE))
        assert len(idx.query("nr70")) == 1

    def test_neutral_judgments_not_indexed(self):
        idx = SentimentIndex()
        idx.add_judgment(judgment("NR70", Polarity.NEUTRAL))
        assert len(idx) == 0

    def test_counts(self):
        idx = SentimentIndex()
        for _ in range(3):
            idx.add_judgment(judgment("zoom", Polarity.POSITIVE))
        idx.add_judgment(judgment("zoom", Polarity.NEGATIVE))
        counts = idx.counts("zoom")
        assert counts[Polarity.POSITIVE] == 3
        assert counts[Polarity.NEGATIVE] == 1

    def test_subjects_sorted_by_mentions(self):
        idx = SentimentIndex()
        idx.add_judgment(judgment("rare", Polarity.POSITIVE))
        for _ in range(4):
            idx.add_judgment(judgment("popular", Polarity.POSITIVE))
        assert idx.subjects() == ["popular", "rare"]

    def test_add_all_returns_indexed_count(self):
        idx = SentimentIndex()
        n = idx.add_all(
            [judgment("a", Polarity.POSITIVE), judgment("b", Polarity.NEUTRAL)]
        )
        assert n == 1

    def test_iteration(self):
        idx = SentimentIndex()
        idx.add_judgment(judgment("b", Polarity.POSITIVE))
        idx.add_judgment(judgment("a", Polarity.NEGATIVE))
        assert [e.subject for e in idx] == ["a", "b"]

    def test_subject_ranking_breaks_ties_alphabetically(self):
        idx = SentimentIndex()
        # Insert in an order that disagrees with the alphabet: the
        # ranking must not depend on insertion order.
        for subject in ("zoom", "flash", "battery"):
            idx.add_judgment(judgment(subject, Polarity.POSITIVE))
            idx.add_judgment(judgment(subject, Polarity.NEGATIVE, doc_id="d2"))
        idx.add_judgment(judgment("aperture", Polarity.POSITIVE))
        assert idx.subjects() == ["battery", "flash", "zoom", "aperture"]

    def test_subject_counts_for_shard_merging(self):
        idx = SentimentIndex()
        idx.add_judgment(judgment("zoom", Polarity.POSITIVE))
        idx.add_judgment(judgment("zoom", Polarity.NEGATIVE, doc_id="d2"))
        idx.add_judgment(judgment("flash", Polarity.POSITIVE))
        assert idx.subject_counts() == {"flash": 1, "zoom": 2}
