"""Failure semantics of the serving front door.

The contracts under test: deadline-expired requests are never answered
after their deadline, open breakers fast-fail without touching the bus,
a hedged read returns exactly one answer and cancels the loser, and
degraded responses enumerate the shards they are missing.  Every
response — success or failure — is a v1 envelope with the transport
detail (status, code, latency, hedging) in ``meta``.
"""

import pytest

from repro.core.model import Polarity, SentimentJudgment, Spot, Subject
from repro.nlp.tokens import Span
from repro.obs import Obs
from repro.platform.api import validate_envelope
from repro.platform.datastore import DataStore
from repro.platform.entity import Entity
from repro.platform.faults import FaultPlan
from repro.platform.serving import (
    OPEN,
    ReplicatedIndex,
    ServingRequest,
    ServingRouter,
    node_service,
)
from repro.platform.vinci import VinciBus

pytestmark = pytest.mark.serving

DOCS = {
    "d1": "The NR70 is excellent . I love the pictures .",
    "d2": "The NR70 is great . The G3 is awful .",
}


def judgment(subject, doc, polarity, start=4):
    return SentimentJudgment(
        spot=Spot(Subject(subject), subject, Span(start, start + len(subject)), 0, doc),
        polarity=polarity,
    )


JUDGMENTS = [
    judgment("NR70", "d1", Polarity.POSITIVE),
    judgment("NR70", "d2", Polarity.POSITIVE),
    judgment("NR70", "d2", Polarity.NEGATIVE),
    judgment("G3", "d2", Polarity.NEGATIVE, start=21),
]


class FixedLatency:
    """A latency model with one constant draw per node."""

    def __init__(self, by_node, default=0.1):
        self._by_node = dict(by_node)
        self._default = default

    def draw(self, node_id):
        return self._by_node.get(node_id, self._default)


def build_stack(
    *,
    num_shards=2,
    num_nodes=3,
    replication=2,
    fault_plan=None,
    **router_kwargs,
):
    obs = Obs.default()
    store = DataStore()
    for doc_id, content in DOCS.items():
        store.store(Entity(entity_id=doc_id, content=content))
    index = ReplicatedIndex(num_shards, num_nodes, replication)
    index.add_judgments(JUDGMENTS)
    index.add_entities(
        Entity(entity_id=doc_id, content=content) for doc_id, content in DOCS.items()
    )
    bus = VinciBus(fault_plan=fault_plan, obs=obs)
    router = ServingRouter(
        index, store, bus, obs=obs, fault_plan=fault_plan, **router_kwargs
    )
    return obs, index, bus, router


def bus_requests(obs, num_nodes=3):
    """Total Vinci requests sent to any serving node endpoint."""
    return sum(
        obs.metrics.counter("vinci.requests", service=node_service(n)).value
        for n in range(num_nodes)
    )


def meta_of(envelope):
    """Assert envelope well-formedness and return its meta block."""
    assert validate_envelope(envelope) == []
    return envelope["meta"]


class TestHappyPath:
    def test_counts_are_not_double_counted_by_replication(self):
        _, _, _, router = build_stack()
        envelope = router.serve("counts", {"subject": "NR70"})
        meta = meta_of(envelope)
        assert meta["status"] == "ok"
        assert meta["code"] == 200
        assert not meta["degraded"]
        assert meta["missing_shards"] == []
        assert envelope["ok"] is True
        assert envelope["data"] == {"subject": "NR70", "positive": 2, "negative": 1}

    def test_subjects_merge_across_shards_deterministically(self):
        _, _, _, router = build_stack()
        envelope = router.serve("subjects")
        assert meta_of(envelope)["status"] == "ok"
        assert envelope["data"]["subjects"] == ["nr70", "g3"]

    def test_search_unions_shard_postings(self):
        _, _, _, router = build_stack()
        envelope = router.serve("search", {"q": "nr70"})
        assert meta_of(envelope)["status"] == "ok"
        assert envelope["data"]["ids"] == ["d1", "d2"]
        assert envelope["data"]["total"] == 2

    def test_sentences_return_snippets(self):
        _, _, _, router = build_stack()
        envelope = router.serve("sentences", {"subject": "NR70", "polarity": "-"})
        rows = envelope["data"]["rows"]
        assert len(rows) == 1
        assert rows[0]["entity_id"] == "d2"
        assert "NR70" in rows[0]["sentence"] or rows[0]["sentence"] == ""


class TestDeadlines:
    def test_expired_in_queue_is_never_answered(self):
        obs, _, _, router = build_stack(request_overhead=0.05)
        envelope = router.serve("counts", {"subject": "NR70"}, budget=0.01)
        meta = meta_of(envelope)
        assert meta["status"] == "expired"
        assert meta["code"] == 504
        assert envelope["ok"] is False
        assert envelope["data"] is None
        assert envelope["error"]["code"] == "deadline_expired"
        # The work was cancelled outright: the bus never saw a read.
        assert bus_requests(obs) == 0

    def test_reads_that_cannot_finish_are_cancelled_not_late(self):
        # Every replica read costs 1.0 but the budget is 0.5: all reads
        # must be cancelled before starting, the request degrades, and
        # the response still lands inside its deadline.
        obs, _, _, router = build_stack(
            latency_model=FixedLatency({}, default=1.0), request_overhead=0.01
        )
        envelope = router.serve("counts", {"subject": "NR70"}, budget=0.5)
        meta = meta_of(envelope)
        assert meta["status"] == "degraded"
        assert meta["latency"] <= 0.5
        assert obs.metrics.counter("serving.cancelled_reads").value > 0
        assert bus_requests(obs) == 0

    def test_downstream_gets_the_remaining_budget(self):
        seen = {}
        _, index, bus, router = build_stack(
            latency_model=FixedLatency({}, default=0.25), request_overhead=0.05
        )
        shard = index.subject_shard("nr70")
        primary = node_service(index.nodes_for(shard)[0])
        inner = bus._services[primary].handler

        def spy(payload):
            seen["budget"] = payload["budget"]
            return inner(payload)

        bus.register(primary, spy)
        router.serve("counts", {"subject": "NR70"}, budget=2.0)
        # Budget seen downstream = 2.0 - overhead - read latency.
        assert seen["budget"] == pytest.approx(2.0 - 0.05 - 0.25)


class TestBreakers:
    def test_open_breaker_fast_fails_without_touching_the_bus(self):
        obs, index, _, router = build_stack(
            breaker_threshold=1, breaker_cooldown=100.0
        )
        shard = index.subject_shard("nr70")
        services = [node_service(n) for n in index.nodes_for(shard)]
        for service in services:
            breaker = router.breaker(service)
            breaker.record_failure()
            assert breaker.state == OPEN
        before = bus_requests(obs)
        envelope = router.serve("counts", {"subject": "NR70"}, budget=1.0)
        meta = meta_of(envelope)
        assert meta["status"] == "degraded"
        assert meta["missing_shards"] == [shard]
        # Fast-fail means zero bus traffic and zero retry consumption.
        assert bus_requests(obs) == before
        assert sum(
            router.breaker(s).snapshot()["fastfails"] for s in services
        ) > 0

    def test_breaker_recovers_through_half_open(self):
        obs, index, _, router = build_stack(
            breaker_threshold=1, breaker_cooldown=0.5, request_overhead=0.01
        )
        shard = index.subject_shard("nr70")
        primary = node_service(index.nodes_for(shard)[0])
        router.breaker(primary).record_failure()
        assert router.breaker(primary).state == OPEN
        obs.clock.advance(1.0)  # cooldown elapses
        envelope = router.serve("counts", {"subject": "NR70"})
        assert meta_of(envelope)["status"] == "ok"
        assert router.breaker(primary).state != OPEN


class TestHedgedReads:
    def test_hedge_returns_exactly_one_answer_and_cancels_the_loser(self):
        probe_index = ReplicatedIndex(2, 3, 2)
        shard = probe_index.subject_shard("nr70")
        primary_node, alt_node = probe_index.nodes_for(shard)
        obs, _, _, router = build_stack(
            hedge_threshold=0.0,  # hedge every read
            latency_model=FixedLatency({primary_node: 0.5, alt_node: 0.1}),
            request_overhead=0.0,
        )
        start = obs.clock.now
        envelope = router.serve("counts", {"subject": "NR70"}, budget=4.0)
        meta = meta_of(envelope)
        assert meta["status"] == "ok"
        assert meta["hedged"] == 1
        # Exactly one answer: one bus request total, sent to the winner.
        assert bus_requests(obs) == 1
        assert (
            obs.metrics.counter(
                "vinci.requests", service=node_service(alt_node)
            ).value
            == 1
        )
        # The loser was cancelled: only the winner's latency was charged.
        assert obs.clock.now - start == pytest.approx(0.1)
        assert obs.metrics.counter("serving.hedge_wins").value == 1

    def test_slower_alternate_does_not_steal_the_read(self):
        probe_index = ReplicatedIndex(2, 3, 2)
        shard = probe_index.subject_shard("nr70")
        primary_node, alt_node = probe_index.nodes_for(shard)
        obs, _, _, router = build_stack(
            hedge_threshold=0.0,
            latency_model=FixedLatency({primary_node: 0.2, alt_node: 0.9}),
            request_overhead=0.0,
        )
        envelope = router.serve("counts", {"subject": "NR70"}, budget=4.0)
        meta = meta_of(envelope)
        assert meta["status"] == "ok"
        assert meta["hedged"] == 1
        assert (
            obs.metrics.counter(
                "vinci.requests", service=node_service(primary_node)
            ).value
            == 1
        )
        assert obs.metrics.counter("serving.hedge_wins").value == 0


class TestDegradation:
    def test_degraded_enumerates_missing_shards(self):
        probe_index = ReplicatedIndex(2, 3, 2)
        shard = probe_index.subject_shard("nr70")
        plan = FaultPlan(seed=1)
        for node in probe_index.nodes_for(shard):
            plan.kill_node(node)
        _, index, _, router = build_stack(fault_plan=plan)
        envelope = router.serve("counts", {"subject": "NR70"})
        meta = meta_of(envelope)
        assert meta["status"] == "degraded"
        assert meta["code"] == 206
        assert meta["degraded"]
        assert meta["missing_shards"] == [shard]
        # Degraded responses are still ok-envelopes with partial data.
        assert envelope["ok"] is True
        assert envelope["data"] == {"subject": "NR70", "positive": 0, "negative": 0}

    def test_partial_subjects_with_one_dead_shard(self):
        # With 2 shards on a 4-node ring at R=2, killing both of g3's
        # replica nodes still leaves nr70's shard one live replica.
        probe = ReplicatedIndex(2, 4, 2)
        g3_shard = probe.subject_shard("g3")
        nr70_shard = probe.subject_shard("nr70")
        assert g3_shard != nr70_shard
        plan = FaultPlan(seed=1)
        for node in probe.nodes_for(g3_shard):
            plan.kill_node(node)
        _, _, _, router = build_stack(num_nodes=4, fault_plan=plan)
        envelope = router.serve("subjects")
        meta = meta_of(envelope)
        assert meta["status"] == "degraded"
        assert meta["missing_shards"] == [g3_shard]
        assert envelope["data"]["subjects"] == ["nr70"]


class TestAdmissionControl:
    def test_full_queue_sheds_the_incoming_request_at_equal_priority(self):
        _, _, _, router = build_stack(queue_limit=2)
        assert router.submit(router.make_request("counts", {"subject": "NR70"})) is None
        assert router.submit(router.make_request("counts", {"subject": "NR70"})) is None
        envelope = router.submit(router.make_request("counts", {"subject": "NR70"}))
        assert envelope is not None
        meta = meta_of(envelope)
        assert meta["status"] == "shed"
        assert meta["code"] == 503
        assert meta["shed"] is True
        assert envelope["error"]["code"] == "shed"

    def test_higher_priority_arrival_evicts_the_lowest_priority_victim(self):
        _, _, _, router = build_stack(queue_limit=2)
        low = router.make_request("counts", {"subject": "NR70"}, priority=0)
        assert router.submit(low) is None
        assert (
            router.submit(router.make_request("counts", {"subject": "NR70"})) is None
        )
        vip = router.make_request("counts", {"subject": "NR70"}, priority=2)
        assert router.submit(vip) is None  # admitted: victim shed instead
        outcomes = {req.request_id: env for req, env in router.drain()}
        assert outcomes[low.request_id]["meta"]["status"] == "shed"
        assert outcomes[vip.request_id]["meta"]["status"] == "ok"

    def test_queue_depth_gauge_tracks_admissions(self):
        obs, _, _, router = build_stack(queue_limit=4)
        router.submit(router.make_request("counts", {"subject": "NR70"}))
        assert obs.metrics.gauge("serving.queue_depth").value == 1
        router.drain()
        assert obs.metrics.gauge("serving.queue_depth").value == 0


class TestValidation:
    def envelope_for(self, router, request):
        envelope = router.submit(request)
        assert envelope is not None
        meta = meta_of(envelope)
        assert meta["status"] == "error"
        assert meta["code"] == 400
        assert envelope["ok"] is False and envelope["data"] is None
        return envelope["error"]["message"]

    def test_unknown_op(self):
        _, _, _, router = build_stack()
        message = self.envelope_for(router, router.make_request("explode"))
        assert "unknown op" in message

    def test_non_dict_payload(self):
        _, _, _, router = build_stack()
        request = ServingRequest(request_id=99, op="counts", payload="nope")
        assert "dict envelope" in self.envelope_for(router, request)

    def test_negative_limit(self):
        _, _, _, router = build_stack()
        request = router.make_request("sentences", {"subject": "NR70", "limit": -3})
        assert "non-negative integer" in self.envelope_for(router, request)

    def test_boolean_limit_rejected(self):
        _, _, _, router = build_stack()
        request = router.make_request("subjects", {"limit": True})
        assert "non-negative integer" in self.envelope_for(router, request)

    def test_non_positive_budget(self):
        _, _, _, router = build_stack()
        request = router.make_request("counts", {"subject": "NR70"}, budget=0.0)
        assert "budget" in self.envelope_for(router, request)

    def test_missing_subject(self):
        _, _, _, router = build_stack()
        assert "subject" in self.envelope_for(router, router.make_request("counts"))

    def test_bad_polarity(self):
        _, _, _, router = build_stack()
        request = router.make_request("counts", {"subject": "NR70", "polarity": "!"})
        assert "polarity" in self.envelope_for(router, request)

    def test_unparseable_query(self):
        _, _, _, router = build_stack()
        request = router.make_request("search", {"q": '"unclosed phrase'})
        assert "bad query" in self.envelope_for(router, request)

    def test_cursor_on_unpaginated_op_rejected(self):
        _, _, _, router = build_stack()
        request = router.make_request("counts", {"subject": "NR70", "cursor": "abc"})
        assert "does not support cursors" in self.envelope_for(router, request)

    def test_garbage_cursor_rejected_as_bad_cursor(self):
        _, _, _, router = build_stack()
        request = router.make_request("subjects", {"cursor": "!!not-base64!!"})
        envelope = router.submit(request)
        assert envelope["error"]["code"] == "bad_cursor"

    def test_error_envelopes_skip_the_queue(self):
        _, _, _, router = build_stack(queue_limit=1)
        router.submit(router.make_request("counts", {"subject": "NR70"}))
        # A malformed request must not count against admission.
        envelope = router.submit(router.make_request("explode"))
        assert envelope["meta"]["status"] == "error"
        assert router.queue_depth == 1


class TestRouterPagination:
    def test_subjects_cursor_walks_all_pages(self):
        _, _, _, router = build_stack()
        seen = []
        cursor = None
        while True:
            payload = {"limit": 1}
            if cursor is not None:
                payload["cursor"] = cursor
            envelope = router.serve("subjects", payload)
            assert meta_of(envelope)["status"] == "ok"
            seen.extend(envelope["data"]["subjects"])
            cursor = envelope["meta"]["cursor"]
            if cursor is None:
                break
        assert seen == ["nr70", "g3"]

    def test_search_cursor_walks_all_pages(self):
        _, _, _, router = build_stack()
        seen = []
        cursor = None
        while True:
            payload = {"q": "nr70", "limit": 1}
            if cursor is not None:
                payload["cursor"] = cursor
            envelope = router.serve("search", payload)
            data = envelope["data"]
            assert data["total"] == 2
            seen.extend(data["ids"])
            cursor = envelope["meta"]["cursor"]
            if cursor is None:
                break
        assert seen == ["d1", "d2"]
