"""Unit tests for the crawler and ingestors."""

import pytest

from repro.platform.datastore import DataStore
from repro.platform.ingestion import (
    BulletinBoardIngestor,
    CrawlPage,
    CustomerDataIngestor,
    IngestionManager,
    NewsFeedIngestor,
    WebCrawler,
)


def site():
    return {
        "http://a": CrawlPage("http://a", "Page A.", links=("http://b", "http://c")),
        "http://b": CrawlPage("http://b", "Page B.", links=("http://a",)),
        "http://c": CrawlPage("http://c", "Page C.", links=("http://d",)),
        "http://d": CrawlPage("http://d", "Page D."),
    }


class TestWebCrawler:
    def test_bfs_visits_reachable_pages(self):
        crawler = WebCrawler(site(), seeds=["http://a"])
        ids = [e.entity_id for e in crawler.fetch()]
        assert ids == ["web:http://a", "web:http://b", "web:http://c", "web:http://d"]

    def test_cycle_safe(self):
        crawler = WebCrawler(site(), seeds=["http://a"])
        assert len(list(crawler.fetch())) == 4

    def test_max_pages_budget(self):
        crawler = WebCrawler(site(), seeds=["http://a"], max_pages=2)
        assert len(list(crawler.fetch())) == 2

    def test_unreachable_pages_skipped(self):
        crawler = WebCrawler(site(), seeds=["http://c"])
        ids = {e.entity_id for e in crawler.fetch()}
        assert ids == {"web:http://c", "web:http://d"}

    def test_dead_seed_ignored(self):
        crawler = WebCrawler(site(), seeds=["http://nowhere"])
        assert list(crawler.fetch()) == []

    def test_url_in_metadata(self):
        crawler = WebCrawler(site(), seeds=["http://a"], max_pages=1)
        (entity,) = crawler.fetch()
        assert entity.metadata["url"] == "http://a"

    def test_bad_budget(self):
        with pytest.raises(ValueError):
            WebCrawler(site(), seeds=[], max_pages=0)


class TestIngestors:
    def test_newsfeed(self):
        ingestor = NewsFeedIngestor([("Title", "Body text.", "2004-05-01")])
        (entity,) = ingestor.fetch()
        assert entity.source == "newsfeed"
        assert entity.content == "Title. Body text."
        assert entity.metadata["date"] == "2004-05-01"

    def test_bboard_flattens_thread(self):
        ingestor = BulletinBoardIngestor([("cameras", ["First post.", "Reply."])])
        (entity,) = ingestor.fetch()
        assert entity.content == "First post. Reply."
        assert entity.metadata["posts"] == 2

    def test_customer_records(self):
        ingestor = CustomerDataIngestor(
            [{"account": 42, "comment": "Great service."}]
        )
        (entity,) = ingestor.fetch()
        assert entity.content == "Great service."
        assert entity.metadata == {"account": 42}

    def test_customer_custom_text_field(self):
        ingestor = CustomerDataIngestor(
            [{"note": "Bad service.", "id": 1}], text_field="note"
        )
        (entity,) = ingestor.fetch()
        assert entity.content == "Bad service."


class TestIngestionManager:
    def test_multi_source_ingest(self):
        store = DataStore(num_partitions=2)
        manager = IngestionManager(store)
        manager.add_source(WebCrawler(site(), seeds=["http://a"]))
        manager.add_source(NewsFeedIngestor([("T", "B.", "2004-01-01")]))
        report = manager.ingest()
        assert report.per_source == {"webcrawl": 4, "newsfeed": 1}
        assert report.total == 5
        assert len(store) == 5

    def test_sources_listed(self):
        manager = IngestionManager(DataStore())
        manager.add_source(NewsFeedIngestor([]))
        assert manager.sources == ["newsfeed"]
