"""Unit tests for the crawler and ingestors."""

import pytest

from repro.platform.datastore import DataStore
from repro.platform.ingestion import (
    BulletinBoardIngestor,
    CrawlPage,
    CustomerDataIngestor,
    IngestionManager,
    NewsFeedIngestor,
    WebCrawler,
)


def site():
    return {
        "http://a": CrawlPage("http://a", "Page A.", links=("http://b", "http://c")),
        "http://b": CrawlPage("http://b", "Page B.", links=("http://a",)),
        "http://c": CrawlPage("http://c", "Page C.", links=("http://d",)),
        "http://d": CrawlPage("http://d", "Page D."),
    }


class TestWebCrawler:
    def test_bfs_visits_reachable_pages(self):
        crawler = WebCrawler(site(), seeds=["http://a"])
        ids = [e.entity_id for e in crawler.fetch()]
        assert ids == ["web:http://a", "web:http://b", "web:http://c", "web:http://d"]

    def test_cycle_safe(self):
        crawler = WebCrawler(site(), seeds=["http://a"])
        assert len(list(crawler.fetch())) == 4

    def test_max_pages_budget(self):
        crawler = WebCrawler(site(), seeds=["http://a"], max_pages=2)
        assert len(list(crawler.fetch())) == 2

    def test_unreachable_pages_skipped(self):
        crawler = WebCrawler(site(), seeds=["http://c"])
        ids = {e.entity_id for e in crawler.fetch()}
        assert ids == {"web:http://c", "web:http://d"}

    def test_dead_seed_ignored(self):
        crawler = WebCrawler(site(), seeds=["http://nowhere"])
        assert list(crawler.fetch()) == []

    def test_url_in_metadata(self):
        crawler = WebCrawler(site(), seeds=["http://a"], max_pages=1)
        (entity,) = crawler.fetch()
        assert entity.metadata["url"] == "http://a"

    def test_bad_budget(self):
        with pytest.raises(ValueError):
            WebCrawler(site(), seeds=[], max_pages=0)


class TestIngestors:
    def test_newsfeed(self):
        ingestor = NewsFeedIngestor([("Title", "Body text.", "2004-05-01")])
        (entity,) = ingestor.fetch()
        assert entity.source == "newsfeed"
        assert entity.content == "Title. Body text."
        assert entity.metadata["date"] == "2004-05-01"

    def test_bboard_flattens_thread(self):
        ingestor = BulletinBoardIngestor([("cameras", ["First post.", "Reply."])])
        (entity,) = ingestor.fetch()
        assert entity.content == "First post. Reply."
        assert entity.metadata["posts"] == 2

    def test_customer_records(self):
        ingestor = CustomerDataIngestor(
            [{"account": 42, "comment": "Great service."}]
        )
        (entity,) = ingestor.fetch()
        assert entity.content == "Great service."
        assert entity.metadata == {"account": 42}

    def test_customer_custom_text_field(self):
        ingestor = CustomerDataIngestor(
            [{"note": "Bad service.", "id": 1}], text_field="note"
        )
        (entity,) = ingestor.fetch()
        assert entity.content == "Bad service."


class TestIngestionManager:
    def test_multi_source_ingest(self):
        store = DataStore(num_partitions=2)
        manager = IngestionManager(store)
        manager.add_source(WebCrawler(site(), seeds=["http://a"]))
        manager.add_source(NewsFeedIngestor([("T", "B.", "2004-01-01")]))
        report = manager.ingest()
        assert report.per_source == {"webcrawl": 4, "newsfeed": 1}
        assert report.total == 5
        assert len(store) == 5

    def test_sources_listed(self):
        manager = IngestionManager(DataStore())
        manager.add_source(NewsFeedIngestor([]))
        assert manager.sources == ["newsfeed"]


class TestIngestIncrementObservability:
    """ingest.docs / ingest.deletes counters and ingest.increment traces."""

    def manager(self):
        from repro.obs import Obs
        from repro.platform.entity import Entity
        from repro.platform.ingestion import (
            DELTA_ADD,
            DELTA_DELETE,
            DocumentDelta,
            ScriptedDeltaSource,
        )

        def doc_add(doc_id):
            return DocumentDelta(
                kind=DELTA_ADD,
                entity_id=doc_id,
                entity=Entity(entity_id=doc_id, content="A camera ."),
            )

        obs = Obs.enabled()
        store = DataStore(num_partitions=2)
        manager = IngestionManager(store, obs=obs)
        manager.add_delta_source(
            ScriptedDeltaSource(
                [doc_add("a1"), doc_add("a2"),
                 DocumentDelta(kind=DELTA_DELETE, entity_id="a1")],
                name="feed_a",
                batch_size=2,
            )
        )
        manager.add_delta_source(
            ScriptedDeltaSource([doc_add("b1")], name="feed_b", batch_size=2)
        )
        return obs, store, manager

    def test_docs_and_deletes_counted_per_source(self):
        obs, _, manager = self.manager()
        manager.ingest_increment()  # a1+a2 from feed_a, b1 from feed_b
        manager.ingest_increment()  # delete(a1) from feed_a
        metrics = obs.metrics
        assert metrics.value("ingest.docs", source="feed_a") == 2
        assert metrics.value("ingest.docs", source="feed_b") == 1
        assert metrics.value("ingest.deletes", source="feed_a") == 1
        assert metrics.value("ingest.deletes", source="feed_b") == 0

    def test_each_increment_is_its_own_root_trace(self):
        obs, _, manager = self.manager()
        batch1, _ = manager.ingest_increment()
        batch2, _ = manager.ingest_increment()
        spans = obs.tracer.find("ingest.increment")
        assert len(spans) == 2
        assert all(s.parent_id is None for s in spans)
        assert spans[0].trace_id != spans[1].trace_id
        assert [s.attributes["deltas"] for s in spans] == [
            len(batch1), len(batch2)
        ]

    def test_drained_sources_leave_series_untouched(self):
        obs, store, manager = self.manager()
        manager.ingest_increment()
        manager.ingest_increment()
        before = obs.metrics.value("ingest.docs", source="feed_a")
        batch, report = manager.ingest_increment()  # everything drained
        assert batch == [] and report.total == 0
        assert obs.metrics.value("ingest.docs", source="feed_a") == before
        # The tombstone from the delete batch reached the store.
        assert store.get("a1") is None
