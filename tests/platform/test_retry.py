"""Unit tests for the retry policy and its Vinci bus wiring."""

import random

import pytest

from repro.platform.faults import FaultPlan
from repro.platform.retry import NO_RETRY, RetryPolicy, RetryStats
from repro.platform.vinci import VinciBus, VinciError

pytestmark = pytest.mark.chaos


class TestPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(max_attempts=5, base_backoff=0.1, multiplier=2.0)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.4)

    def test_jitter_bounds_and_determinism(self):
        policy = RetryPolicy(max_attempts=3, base_backoff=1.0, jitter=0.5)
        a = [policy.backoff(1, random.Random(9)) for _ in range(10)]
        b = [policy.backoff(1, random.Random(9)) for _ in range(10)]
        assert a == b  # same seed, same jitter stream
        assert all(0.5 <= cost <= 1.5 for cost in a)

    def test_no_rng_means_no_jitter(self):
        policy = RetryPolicy(base_backoff=1.0, jitter=0.5)
        assert policy.backoff(1) == 1.0

    def test_allows_retry(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.allows_retry(1)
        assert policy.allows_retry(2)
        assert not policy.allows_retry(3)

    def test_no_retry_sentinel(self):
        assert NO_RETRY.max_attempts == 1
        assert not NO_RETRY.allows_retry(1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_backoff": -0.1},
            {"multiplier": 0.5},
            {"jitter": 1.0},
            {"jitter": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff(0)


class TestStats:
    def test_record_retry_accumulates(self):
        stats = RetryStats()
        stats.record_retry("a", 0.1)
        stats.record_retry("a", 0.2)
        stats.record_retry("b", 0.4)
        assert stats.retries == 3
        assert stats.backoff_cost == pytest.approx(0.7)
        assert stats.by_service == {"a": 2, "b": 1}
        assert stats.snapshot()["retries"] == 3


class TestBusRetries:
    def _flaky(self, failures):
        """A handler that fails its first *failures* calls, then succeeds."""
        state = {"calls": 0}

        def handler(payload):
            state["calls"] += 1
            if state["calls"] <= failures:
                raise RuntimeError("transient")
            return {"calls": state["calls"]}

        return handler

    def test_transient_failure_recovered(self):
        bus = VinciBus(retry_policy=RetryPolicy(max_attempts=3, base_backoff=0.1))
        bus.register("svc", self._flaky(2))
        assert bus.request("svc") == {"calls": 3}
        assert bus.retry_stats.retries == 2
        assert bus.retry_stats.recovered == 1
        assert bus.retry_stats.backoff_cost == pytest.approx(0.1 + 0.2)
        assert bus.stats()["svc"] == {"requests": 3, "failures": 2}

    def test_attempts_exhausted_raises(self):
        bus = VinciBus(retry_policy=RetryPolicy(max_attempts=2, base_backoff=0.1))
        bus.register("svc", self._flaky(5))
        with pytest.raises(VinciError):
            bus.request("svc")
        assert bus.retry_stats.exhausted == 1
        assert bus.retry_stats.retries == 1

    def test_unknown_service_not_retried(self):
        bus = VinciBus(retry_policy=RetryPolicy(max_attempts=5))
        with pytest.raises(VinciError, match="no such service"):
            bus.request("ghost")
        assert bus.retry_stats.retries == 0

    def test_no_policy_fails_fast(self):
        bus = VinciBus()
        bus.register("svc", self._flaky(1))
        with pytest.raises(VinciError):
            bus.request("svc")
        assert bus.retry_stats.retries == 0
        assert bus.retry_stats.exhausted == 1

    def test_injected_faults_retried_through(self):
        plan = FaultPlan().fail_service("svc", count=2)
        bus = VinciBus(retry_policy=RetryPolicy(max_attempts=3, base_backoff=0.1), fault_plan=plan)
        bus.register("svc", lambda p: {"ok": True})
        assert bus.request("svc") == {"ok": True}
        assert bus.retry_stats.retries == 2
        attempts = [envelope.attempt for envelope in bus.trace()]
        assert attempts == [1, 2, 3]

    def test_trace_marks_retry_attempts(self):
        bus = VinciBus(retry_policy=RetryPolicy(max_attempts=2, base_backoff=0.0))
        bus.register("svc", self._flaky(1))
        bus.request("svc")
        first, second = bus.trace()
        assert (first.ok, first.attempt) == (False, 1)
        assert (second.ok, second.attempt) == (True, 2)
