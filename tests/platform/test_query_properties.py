"""Property tests: ``parse_query`` round-trips ASTs through ``render_query``.

Strategies generate ASTs over alphabets the surface syntax can actually
express (no quotes inside phrases, no slashes inside regex bodies, no
``near`` as a range field) and assert ``parse(render(q)) == q`` — the
documented contract of :func:`repro.platform.query.render_query`.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.platform.query import (
    And,
    Concept,
    Near,
    Not,
    Or,
    Phrase,
    Range,
    Regex,
    Term,
    parse_query,
    render_query,
)

pytestmark = pytest.mark.serving

_LOWER = "abcdefghijklmnopqrstuvwxyz"
_WORD = _LOWER + "0123456789_"

#: Bare tokens the lexer reads back as a single lowercase term.
tokens = st.text(alphabet=_WORD, min_size=1, max_size=8)

#: Identifier-shaped field/layer names (``[A-Za-z_][\w.]*``).
idents = st.builds(
    lambda head, tail: head + tail,
    st.sampled_from(_LOWER + "_"),
    st.text(alphabet=_WORD + ".", max_size=6),
)

finite = st.floats(allow_nan=False, allow_infinity=False)

terms = tokens.map(Term)
phrases = st.lists(tokens, min_size=2, max_size=4).map(lambda ws: Phrase(tuple(ws)))
ranges = st.builds(
    lambda field, a, b: Range(field, min(a, b), max(a, b)),
    idents.filter(lambda f: f != "near"),
    finite,
    finite,
)
#: Regex bodies stick to literals the lexer token can carry (no ``/``).
regexes = st.text(alphabet=_WORD + ".", min_size=1, max_size=8).map(Regex)
nears = st.builds(
    Near,
    st.floats(min_value=-90.0, max_value=90.0),
    st.floats(min_value=-180.0, max_value=180.0),
    st.floats(min_value=0.001, max_value=20000.0),
)
concepts = st.builds(Concept, idents, st.text(alphabet=_WORD, min_size=1, max_size=6))

leaves = st.one_of(terms, phrases, ranges, regexes, nears, concepts)
queries = st.recursive(
    leaves,
    lambda inner: st.one_of(
        st.builds(And, inner, inner),
        st.builds(Or, inner, inner),
        st.builds(Not, inner),
    ),
    max_leaves=12,
)


@settings(deadline=None)
@given(queries)
def test_parse_render_round_trip(query):
    assert parse_query(render_query(query)) == query


@settings(deadline=None)
@given(queries)
def test_render_is_a_fixed_point(query):
    rendered = render_query(query)
    assert render_query(parse_query(rendered)) == rendered


@settings(deadline=None)
@given(st.lists(tokens, min_size=2, max_size=5))
def test_unclosed_quotes_always_refused(words):
    from repro.platform.query import QueryParseError

    with pytest.raises(QueryParseError, match="unclosed quote"):
        parse_query('"' + " ".join(words))


def test_empty_label_concept_has_no_surface_form():
    with pytest.raises(ValueError, match="empty-label"):
        render_query(Concept("spot", ""))


def test_unknown_node_rejected():
    with pytest.raises(TypeError):
        render_query(object())
