"""Unit tests for the hosted application services."""

import pytest

from repro.core.model import Polarity, SentimentJudgment, Spot, Subject
from repro.nlp.tokens import Span
from repro.platform.datastore import DataStore
from repro.platform.entity import Entity
from repro.platform.indexer import InvertedIndex, SentimentIndex
from repro.platform.services import register_services
from repro.platform.vinci import VinciBus, VinciError

CONTENT = "Intro sentence. The NR70 takes excellent pictures. Outro here."


@pytest.fixture()
def stack():
    store = DataStore(num_partitions=2)
    entity = Entity(entity_id="d1", content=CONTENT)
    store.store(entity)
    index = InvertedIndex()
    index.add_entity(entity)
    sidx = SentimentIndex()
    start = CONTENT.index("NR70")
    sidx.add_judgment(
        SentimentJudgment(
            spot=Spot(Subject("NR70"), "NR70", Span(start, start + 4), 1, "d1"),
            polarity=Polarity.POSITIVE,
        )
    )
    bus = VinciBus()
    register_services(bus, store, index, sidx)
    return bus


class TestSentimentServices:
    def test_counts(self, stack):
        out = stack.request("sentiment.counts", {"subject": "NR70"})
        assert out == {"subject": "NR70", "positive": 1, "negative": 0}

    def test_counts_requires_subject(self, stack):
        with pytest.raises(VinciError, match="subject"):
            stack.request("sentiment.counts", {})

    def test_sentences_listing(self, stack):
        out = stack.request("sentiment.sentences", {"subject": "NR70"})
        (row,) = out["rows"]
        assert row["sentence"] == "The NR70 takes excellent pictures."
        assert row["polarity"] == "+"
        assert row["entity_id"] == "d1"

    def test_sentences_polarity_filter(self, stack):
        out = stack.request("sentiment.sentences", {"subject": "NR70", "polarity": "-"})
        assert out["rows"] == []

    def test_subjects(self, stack):
        out = stack.request("sentiment.subjects", {})
        assert out["subjects"] == ["nr70"]


class TestSearchService:
    def test_query(self, stack):
        out = stack.request("search.query", {"q": '"excellent pictures"'})
        assert out["total"] == 1
        assert out["ids"] == ["d1"]

    def test_bad_query_wrapped(self, stack):
        with pytest.raises(VinciError, match="bad query"):
            stack.request("search.query", {"q": "(broken"})

    def test_missing_q(self, stack):
        with pytest.raises(VinciError):
            stack.request("search.query", {})


class TestStoreService:
    def test_get(self, stack):
        out = stack.request("store.get", {"entity_id": "d1"})
        assert out["content"] == CONTENT

    def test_get_missing(self, stack):
        with pytest.raises(VinciError, match="no such entity"):
            stack.request("store.get", {"entity_id": "ghost"})

    def test_stats(self, stack):
        out = stack.request("store.stats", {})
        assert out["entities"] == 1


class TestRegistration:
    def test_all_services_registered(self, stack):
        expected = {
            "search.query",
            "sentiment.counts",
            "sentiment.sentences",
            "sentiment.subjects",
            "store.get",
            "store.stats",
        }
        assert expected <= set(stack.services())


class TestRequestHardening:
    """Malformed payloads get structured error envelopes, not crashes."""

    def test_negative_limit_rejected(self, stack):
        out = stack.request("sentiment.sentences", {"subject": "NR70", "limit": -1})
        assert out["ok"] is False
        assert out["error"]["code"] == "bad_request"
        assert "limit" in out["error"]["message"]

    def test_non_integer_limit_rejected(self, stack):
        out = stack.request("sentiment.subjects", {"limit": "ten"})
        assert out["ok"] is False
        assert "limit" in out["error"]["message"]

    def test_boolean_limit_rejected(self, stack):
        out = stack.request("search.query", {"q": "pictures", "limit": True})
        assert out["ok"] is False
        assert "limit" in out["error"]["message"]

    def test_non_dict_payload_rejected(self, stack):
        for service in (
            "sentiment.counts",
            "sentiment.sentences",
            "sentiment.subjects",
            "search.query",
        ):
            out = stack.request(service, ["not", "a", "dict"])
            assert out["ok"] is False, service
            assert out["error"]["code"] == "bad_request"
            assert "dict" in out["error"]["message"]

    def test_valid_limits_still_served(self, stack):
        out = stack.request("sentiment.sentences", {"subject": "NR70", "limit": 0})
        assert out["rows"] == []
        out = stack.request("sentiment.subjects", {"limit": 1})
        assert out["subjects"] == ["nr70"]
