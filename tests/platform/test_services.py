"""Unit tests for the hosted application services.

Every handler speaks the v1 envelope: success as ``ok_envelope(data)``,
client mistakes as ``error_envelope(code, message)`` flowing back as
data rather than raised faults.
"""

import pytest

from repro.core.model import Polarity, SentimentJudgment, Spot, Subject
from repro.nlp.tokens import Span
from repro.platform.api import API_VERSION, validate_envelope
from repro.platform.datastore import DataStore
from repro.platform.entity import Entity
from repro.platform.indexer import InvertedIndex, SentimentIndex
from repro.platform.services import register_services
from repro.platform.vinci import VinciBus

CONTENT = "Intro sentence. The NR70 takes excellent pictures. Outro here."


@pytest.fixture()
def stack():
    store = DataStore(num_partitions=2)
    entity = Entity(entity_id="d1", content=CONTENT)
    store.store(entity)
    index = InvertedIndex()
    index.add_entity(entity)
    sidx = SentimentIndex()
    start = CONTENT.index("NR70")
    sidx.add_judgment(
        SentimentJudgment(
            spot=Spot(Subject("NR70"), "NR70", Span(start, start + 4), 1, "d1"),
            polarity=Polarity.POSITIVE,
        )
    )
    bus = VinciBus()
    register_services(bus, store, index, sidx)
    return bus


def ok_data(envelope):
    """Assert a well-formed v1 success envelope and return its data."""
    assert validate_envelope(envelope) == []
    assert envelope["api_version"] == API_VERSION
    assert envelope["ok"] is True
    assert envelope["error"] is None
    return envelope["data"]


def error_of(envelope):
    """Assert a well-formed v1 error envelope and return its error block."""
    assert validate_envelope(envelope) == []
    assert envelope["ok"] is False
    assert envelope["data"] is None
    return envelope["error"]


class TestSentimentServices:
    def test_counts(self, stack):
        out = stack.request("sentiment.counts", {"subject": "NR70"})
        assert ok_data(out) == {"subject": "NR70", "positive": 1, "negative": 0}

    def test_counts_requires_subject(self, stack):
        out = stack.request("sentiment.counts", {})
        error = error_of(out)
        assert error["code"] == "bad_request"
        assert "subject" in error["message"]

    def test_sentences_listing(self, stack):
        out = stack.request("sentiment.sentences", {"subject": "NR70"})
        (row,) = ok_data(out)["rows"]
        assert row["sentence"] == "The NR70 takes excellent pictures."
        assert row["polarity"] == "+"
        assert row["entity_id"] == "d1"

    def test_sentences_polarity_filter(self, stack):
        out = stack.request("sentiment.sentences", {"subject": "NR70", "polarity": "-"})
        assert ok_data(out)["rows"] == []

    def test_subjects(self, stack):
        out = stack.request("sentiment.subjects", {})
        assert ok_data(out)["subjects"] == ["nr70"]
        assert out["meta"]["cursor"] is None  # single page


class TestSearchService:
    def test_query(self, stack):
        out = stack.request("search.query", {"q": '"excellent pictures"'})
        data = ok_data(out)
        assert data["total"] == 1
        assert data["ids"] == ["d1"]

    def test_bad_query_wrapped(self, stack):
        out = stack.request("search.query", {"q": "(broken"})
        error = error_of(out)
        assert error["code"] == "bad_request"
        assert "bad query" in error["message"]

    def test_missing_q(self, stack):
        out = stack.request("search.query", {})
        assert error_of(out)["code"] == "bad_request"


class TestStoreService:
    def test_get(self, stack):
        out = stack.request("store.get", {"entity_id": "d1"})
        assert ok_data(out)["content"] == CONTENT

    def test_get_missing(self, stack):
        out = stack.request("store.get", {"entity_id": "ghost"})
        error = error_of(out)
        assert error["code"] == "not_found"
        assert "no such entity" in error["message"]

    def test_stats(self, stack):
        out = stack.request("store.stats", {})
        assert ok_data(out)["entities"] == 1


class TestRegistration:
    def test_all_services_registered(self, stack):
        expected = {
            "search.query",
            "sentiment.counts",
            "sentiment.sentences",
            "sentiment.subjects",
            "store.get",
            "store.stats",
        }
        assert expected <= set(stack.services())


class TestPagination:
    """Cursor pagination on subjects and search."""

    @pytest.fixture()
    def wide_stack(self):
        store = DataStore(num_partitions=2)
        index = InvertedIndex()
        sidx = SentimentIndex()
        for i in range(7):
            doc_id = f"d{i}"
            content = f"The camera-{i} takes excellent shared pictures."
            store.store(Entity(entity_id=doc_id, content=content))
            index.add_entity(Entity(entity_id=doc_id, content=content))
            name = f"camera-{i}"
            start = content.index(name)
            sidx.add_judgment(
                SentimentJudgment(
                    spot=Spot(
                        Subject(name), name, Span(start, start + len(name)), 0, doc_id
                    ),
                    polarity=Polarity.POSITIVE,
                )
            )
        bus = VinciBus()
        register_services(bus, store, index, sidx)
        return bus

    def test_subjects_pages_cover_everything_once(self, wide_stack):
        seen = []
        cursor = None
        pages = 0
        while True:
            payload = {"limit": 3}
            if cursor is not None:
                payload["cursor"] = cursor
            out = wide_stack.request("sentiment.subjects", payload)
            seen.extend(ok_data(out)["subjects"])
            cursor = out["meta"]["cursor"]
            pages += 1
            if cursor is None:
                break
        assert pages == 3
        assert seen == sorted(seen)
        assert len(seen) == len(set(seen)) == 7

    def test_search_pages_cover_everything_once(self, wide_stack):
        seen = []
        cursor = None
        while True:
            payload = {"q": "pictures", "limit": 2}
            if cursor is not None:
                payload["cursor"] = cursor
            out = wide_stack.request("search.query", payload)
            data = ok_data(out)
            assert data["total"] == 7  # total is page-independent
            seen.extend(data["ids"])
            cursor = out["meta"]["cursor"]
            if cursor is None:
                break
        assert seen == [f"d{i}" for i in range(7)]

    def test_garbage_cursor_is_a_bad_cursor_error(self, wide_stack):
        out = wide_stack.request(
            "sentiment.subjects", {"cursor": "not-a-cursor"}
        )
        assert error_of(out)["code"] == "bad_cursor"

    def test_cursor_from_other_op_is_rejected(self, wide_stack):
        first = wide_stack.request("sentiment.subjects", {"limit": 2})
        cursor = first["meta"]["cursor"]
        assert cursor is not None
        out = wide_stack.request("search.query", {"q": "pictures", "cursor": cursor})
        assert error_of(out)["code"] == "bad_cursor"


class TestRequestHardening:
    """Malformed payloads get structured error envelopes, not crashes."""

    def test_negative_limit_rejected(self, stack):
        out = stack.request("sentiment.sentences", {"subject": "NR70", "limit": -1})
        error = error_of(out)
        assert error["code"] == "bad_request"
        assert "limit" in error["message"]

    def test_non_integer_limit_rejected(self, stack):
        out = stack.request("sentiment.subjects", {"limit": "ten"})
        assert "limit" in error_of(out)["message"]

    def test_boolean_limit_rejected(self, stack):
        out = stack.request("search.query", {"q": "pictures", "limit": True})
        assert "limit" in error_of(out)["message"]

    def test_non_dict_payload_rejected(self, stack):
        for service in (
            "sentiment.counts",
            "sentiment.sentences",
            "sentiment.subjects",
            "search.query",
        ):
            out = stack.request(service, ["not", "a", "dict"])
            error = error_of(out)
            assert error["code"] == "bad_request", service
            assert "dict" in error["message"]

    def test_valid_limits_still_served(self, stack):
        out = stack.request("sentiment.sentences", {"subject": "NR70", "limit": 0})
        assert ok_data(out)["rows"] == []
        out = stack.request("sentiment.subjects", {"limit": 1})
        assert ok_data(out)["subjects"] == ["nr70"]
