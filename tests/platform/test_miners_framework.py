"""Unit tests for the miner framework (pipeline + corpus miners)."""

import pytest

from repro.platform.datastore import DataStore
from repro.platform.entity import Annotation, Entity
from repro.platform.miners import (
    CorpusMiner,
    EntityMiner,
    MinerPipeline,
    PipelineError,
    run_corpus_miner,
)


class UppercaseCounter(EntityMiner):
    """Toy miner: annotates capitalized character count."""

    name = "upper-counter"
    provides = ("upper",)

    def process(self, entity):
        count = sum(1 for c in entity.content if c.isupper())
        entity.annotate(Annotation.make("upper", 0, 0, label=str(count)))


class NeedsUpper(EntityMiner):
    name = "needs-upper"
    requires = ("upper",)
    provides = ("shout",)

    def process(self, entity):
        (upper,) = entity.layer("upper")
        entity.annotate(Annotation.make("shout", 0, 0, label="!" * int(upper.label)))


class Crasher(EntityMiner):
    name = "crasher"
    provides = ("crash",)

    def process(self, entity):
        raise RuntimeError("bang")


class WordCounter(CorpusMiner):
    name = "word-counter"

    def map_partition(self, entities):
        return sum(len(e.content.split()) for e in entities)

    def reduce(self, partials):
        return sum(partials)


def store_with(n=10):
    store = DataStore(num_partitions=4)
    store.store_all(Entity(entity_id=f"d{i}", content=f"Doc Number {i}") for i in range(n))
    return store


class TestPipelineValidation:
    def test_satisfied_dependencies_ok(self):
        MinerPipeline([UppercaseCounter(), NeedsUpper()])

    def test_missing_dependency_rejected(self):
        with pytest.raises(PipelineError, match="requires layers"):
            MinerPipeline([NeedsUpper()])

    def test_order_matters(self):
        with pytest.raises(PipelineError):
            MinerPipeline([NeedsUpper(), UppercaseCounter()])


class TestPipelineExecution:
    def test_run_annotates_and_stores(self):
        store = store_with(5)
        report = MinerPipeline([UppercaseCounter(), NeedsUpper()]).run(store)
        assert report.entities_processed == 5
        assert report.miner_runs == {"upper-counter": 5, "needs-upper": 5}
        entity = store.get("d0")
        assert entity.has_layer("shout")

    def test_run_over_stream(self):
        entities = [Entity(entity_id="x", content="Abc")]
        report = MinerPipeline([UppercaseCounter()]).run_over(entities)
        assert report.entities_processed == 1
        assert entities[0].layer("upper")[0].label == "1"

    def test_strict_mode_propagates_errors(self):
        store = store_with(1)
        with pytest.raises(RuntimeError, match="bang"):
            MinerPipeline([Crasher()]).run(store)

    def test_lenient_mode_records_errors(self):
        store = store_with(3)
        report = MinerPipeline([Crasher()], strict=False).run(store)
        assert len(report.errors) == 3
        assert report.errors[0][0] == "crasher"

    def test_lenient_mode_skips_missing_layers(self):
        entity = Entity(entity_id="x", content="abc")
        pipeline = MinerPipeline([UppercaseCounter(), NeedsUpper()], strict=False)
        entity2 = Entity(entity_id="y", content="abc")
        entity2.clear_layer("upper")
        report = pipeline.run_over([entity])
        assert report.entities_processed == 1

    def test_report_merge(self):
        from repro.platform.miners import PipelineReport

        a = PipelineReport(entities_processed=2, miner_runs={"m": 2})
        b = PipelineReport(entities_processed=3, miner_runs={"m": 1, "n": 3})
        a.merge(b)
        assert a.entities_processed == 5
        assert a.miner_runs == {"m": 3, "n": 3}


class TestCorpusMiner:
    def test_map_reduce_over_store(self):
        store = store_with(10)
        total = run_corpus_miner(WordCounter(), store)
        assert total == 30  # "Doc Number i" = 3 words each

    def test_empty_store(self):
        assert run_corpus_miner(WordCounter(), DataStore(num_partitions=2)) == 0


class TestShimSurface:
    """The platform shim re-exports only what is imported through it."""

    def test_store_protocols_come_from_core_not_the_shim(self):
        # Trimmed via lint DEAD001: nothing imported the store protocols
        # through the platform shim, so the re-export was dropped.
        import repro.platform.miners as shim
        from repro.core.mining import EntityPartition, EntityStore

        assert "EntityStore" not in shim.__all__
        assert "EntityPartition" not in shim.__all__
        assert not hasattr(shim, "EntityStore")
        assert EntityStore is not None and EntityPartition is not None

    def test_remaining_reexports_match_core(self):
        import repro.core.mining as core
        import repro.platform.miners as shim

        for name in shim.__all__:
            assert getattr(shim, name) is getattr(core, name)
