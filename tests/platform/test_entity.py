"""Unit tests for entities and annotations."""

import pytest

from repro.platform.entity import Annotation, Entity


def make_entity(content="The camera works well."):
    return Entity(entity_id="doc1", content=content, source="webcrawl", metadata={"url": "http://x"})


class TestAnnotation:
    def test_make_sorts_attributes(self):
        a = Annotation.make("spot", 0, 3, label="x", zeta=1, alpha=2)
        assert a.attributes == (("alpha", 2), ("zeta", 1))

    def test_attribute_lookup(self):
        a = Annotation.make("spot", 0, 3, label="x", sentence=4)
        assert a.attribute("sentence") == 4
        assert a.attribute("missing", "d") == "d"


class TestEntityBasics:
    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            Entity(entity_id="", content="x")

    def test_annotate_and_read_layer(self):
        e = make_entity()
        e.annotate(Annotation.make("token", 0, 3))
        e.annotate(Annotation.make("token", 4, 10))
        assert len(e.layer("token")) == 2
        assert e.layers() == ["token"]

    def test_annotation_beyond_content_rejected(self):
        e = make_entity("short")
        with pytest.raises(ValueError):
            e.annotate(Annotation.make("token", 0, 100))

    def test_text_of(self):
        e = make_entity()
        a = Annotation.make("spot", 4, 10, label="camera")
        e.annotate(a)
        assert e.text_of(a) == "camera"

    def test_clear_layer(self):
        e = make_entity()
        e.annotate(Annotation.make("token", 0, 3))
        e.clear_layer("token")
        assert not e.has_layer("token")

    def test_missing_layer_empty(self):
        assert make_entity().layer("nope") == []


class TestSerialisation:
    def test_json_roundtrip(self):
        e = make_entity()
        e.annotate(Annotation.make("spot", 4, 10, label="camera", sentence=0))
        restored = Entity.from_json(e.to_json())
        assert restored.entity_id == e.entity_id
        assert restored.content == e.content
        assert restored.metadata == e.metadata
        (a,) = restored.layer("spot")
        assert a.label == "camera"
        assert a.attribute("sentence") == 0

    def test_record_roundtrip_preserves_layers(self):
        e = make_entity()
        e.annotate(Annotation.make("token", 0, 3))
        e.annotate(Annotation.make("sentence", 0, 22, label="0"))
        restored = Entity.from_record(e.to_record())
        assert restored.layers() == ["sentence", "token"]

    def test_to_xml_escapes(self):
        e = Entity(entity_id="x", content="a < b & c")
        xml = e.to_xml()
        assert "&lt;" in xml and "&amp;" in xml
        assert '<entity id="x"' in xml

    def test_xml_includes_metadata(self):
        xml = make_entity().to_xml()
        assert '<meta name="url">http://x</meta>' in xml
