"""Tests for data store save/load persistence."""

import json

import pytest

from repro.platform.datastore import DataStore
from repro.platform.entity import Annotation, Entity


def populated_store():
    store = DataStore(num_partitions=4, memtable_limit=8)
    for i in range(20):
        entity = Entity(
            entity_id=f"d{i}", content=f"Document number {i}.", metadata={"n": i}
        )
        entity.annotate(Annotation.make("token", 0, 8, label=""))
        store.store(entity)
    store.delete("d3")
    store.store(Entity(entity_id="d5", content="updated content"))
    return store


class TestSaveLoad:
    def test_roundtrip_preserves_live_entities(self, tmp_path):
        store = populated_store()
        written = store.save(tmp_path / "db")
        assert written == 19  # 20 - 1 deleted
        loaded = DataStore.load(tmp_path / "db")
        assert len(loaded) == 19
        assert loaded.get("d3") is None
        assert loaded.get("d5").content == "updated content"
        assert loaded.get("d7").metadata == {"n": 7}

    def test_roundtrip_preserves_annotations(self, tmp_path):
        store = populated_store()
        store.save(tmp_path / "db")
        loaded = DataStore.load(tmp_path / "db")
        assert loaded.get("d0").has_layer("token")

    def test_partition_count_restored(self, tmp_path):
        store = populated_store()
        store.save(tmp_path / "db")
        loaded = DataStore.load(tmp_path / "db")
        assert loaded.num_partitions == 4

    def test_manifest_written(self, tmp_path):
        populated_store().save(tmp_path / "db")
        manifest = json.loads((tmp_path / "db" / "manifest.json").read_text())
        assert manifest["format"] == "repro-datastore-v1"
        assert manifest["num_partitions"] == 4

    def test_save_is_compacted_view(self, tmp_path):
        store = populated_store()
        store.save(tmp_path / "db")
        # 4 partition files, one line per live entity overall.
        lines = 0
        for path in (tmp_path / "db").glob("partition-*.jsonl"):
            lines += sum(1 for l in path.read_text().splitlines() if l.strip())
        assert lines == 19

    def test_load_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            DataStore.load(tmp_path / "nothing")

    def test_load_bad_format(self, tmp_path):
        (tmp_path / "db").mkdir()
        (tmp_path / "db" / "manifest.json").write_text('{"format": "other"}')
        with pytest.raises(ValueError):
            DataStore.load(tmp_path / "db")

    def test_double_save_overwrites(self, tmp_path):
        store = populated_store()
        store.save(tmp_path / "db")
        store.delete("d0")
        store.save(tmp_path / "db")
        loaded = DataStore.load(tmp_path / "db")
        assert loaded.get("d0") is None
        assert len(loaded) == 18
