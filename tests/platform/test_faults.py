"""Unit tests for the deterministic fault-injection plan."""

import pytest

from repro.platform.entity import Annotation, Entity
from repro.platform.faults import CORRUPT, DROP, FAIL, TIMEOUT, FaultPlan
from repro.platform.vinci import VinciBus, VinciError, VinciTimeout

pytestmark = pytest.mark.chaos


def entity(eid="e1", content="The camera takes excellent pictures."):
    return Entity(entity_id=eid, content=content)


class TestScheduling:
    def test_fail_service_consumed_fifo(self):
        plan = FaultPlan().fail_service("svc", count=2)
        assert plan.consume_service_fault("svc") == FAIL
        assert plan.consume_service_fault("svc") == FAIL
        assert plan.consume_service_fault("svc") is None

    def test_timeout_kind(self):
        plan = FaultPlan().fail_service("svc", kind=TIMEOUT)
        assert plan.consume_service_fault("svc") == TIMEOUT

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().fail_service("svc", kind="meltdown")

    def test_nonpositive_count_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().fail_service("svc", count=0)
        with pytest.raises(ValueError):
            FaultPlan().drop_write(0, count=0)

    def test_kill_node_schedule(self):
        plan = FaultPlan().kill_node(2, after_partitions=1)
        assert plan.node_death(2) == 1
        assert plan.node_death(0) is None
        assert plan.dead_nodes == {2: 1}

    def test_negative_death_point_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().kill_node(0, after_partitions=-1)

    def test_pending_counts(self):
        plan = FaultPlan().fail_service("a", count=3).drop_write(1, count=2)
        assert plan.pending_service_faults("a") == 3
        assert plan.pending_write_faults(1) == 2
        assert plan.pending_write_faults(9) == 0


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        kwargs = dict(
            services=("x", "y", "z"),
            num_nodes=6,
            num_partitions=12,
            service_failure_rate=0.5,
            node_death_rate=0.5,
            write_drop_rate=0.3,
            write_corrupt_rate=0.3,
        )
        a = FaultPlan.scheduled(42, **kwargs)
        b = FaultPlan.scheduled(42, **kwargs)
        assert a.dead_nodes == b.dead_nodes
        for name in ("x", "y", "z"):
            assert a.pending_service_faults(name) == b.pending_service_faults(name)
        for pid in range(12):
            assert a.pending_write_faults(pid) == b.pending_write_faults(pid)

    def test_different_seeds_differ_somewhere(self):
        plans = [
            FaultPlan.scheduled(
                seed, num_nodes=8, num_partitions=16, node_death_rate=0.5
            ).dead_nodes
            for seed in range(6)
        ]
        assert len({tuple(sorted(p.items())) for p in plans}) > 1

    def test_corruption_modes_cycle_deterministically(self):
        plan = FaultPlan(seed=1)
        modes = [plan.corrupt_entity(entity()).metadata["corruption"] for _ in range(5)]
        assert modes == ["empty", "punctuation", "reversed", "truncated", "empty"]


class TestWriteInterception:
    def test_drop_returns_none_and_ledgers(self):
        plan = FaultPlan().drop_write(3)
        assert plan.intercept_write(3, entity()) is None
        later = entity("e2")
        assert plan.intercept_write(3, later) is later  # queue drained
        assert plan.summary()[DROP] == 1

    def test_corrupt_discards_annotations_and_flags(self):
        doc = entity()
        doc.annotate(Annotation.make("token", 0, 3))
        plan = FaultPlan().corrupt_write(0)
        out = plan.intercept_write(0, doc)
        assert out is not doc
        assert out.entity_id == doc.entity_id
        assert out.metadata["corrupted"] is True
        assert out.layers() == []
        assert plan.summary()[CORRUPT] == 1

    def test_no_fault_passes_entity_through(self):
        plan = FaultPlan()
        doc = entity()
        assert plan.intercept_write(0, doc) is doc

    def test_ledger_records_injection_order(self):
        plan = FaultPlan().fail_service("svc").drop_write(1)
        plan.consume_service_fault("svc")
        plan.intercept_write(1, entity())
        kinds = [event.kind for event in plan.ledger()]
        assert kinds == ["service", "write"]
        assert plan.faults_injected == 2


class TestBusIntegration:
    def test_injected_error_raises_and_counts(self):
        plan = FaultPlan().fail_service("svc")
        bus = VinciBus(fault_plan=plan)
        bus.register("svc", lambda p: {"ok": True})
        with pytest.raises(VinciError, match="injected"):
            bus.request("svc")
        assert bus.stats()["svc"] == {"requests": 1, "failures": 1}
        assert bus.request("svc") == {"ok": True}  # fault consumed

    def test_injected_timeout_is_timeout_subclass(self):
        plan = FaultPlan().fail_service("svc", kind=TIMEOUT)
        bus = VinciBus(fault_plan=plan)
        bus.register("svc", lambda p: {"ok": True})
        with pytest.raises(VinciTimeout):
            bus.request("svc")

    def test_fault_envelope_recorded_with_kind(self):
        plan = FaultPlan().fail_service("svc", kind=TIMEOUT)
        bus = VinciBus(fault_plan=plan)
        bus.register("svc", lambda p: {"ok": True})
        with pytest.raises(VinciError):
            bus.request("svc")
        (envelope,) = bus.trace()
        assert not envelope.ok
        assert envelope.fault == TIMEOUT
