"""The segment model: sealing, masking, snapshots, compaction.

Unit coverage for DESIGN.md §5f — the incremental half of the
crawl→analyze→index→serve loop.  The cross-cutting equivalence property
(any batch partition converges to the one-pass build) lives in
``test_incremental_equivalence.py``.
"""

import pytest

from repro.core import SentimentMiner, Subject
from repro.obs import Obs
from repro.platform.entity import Entity
from repro.platform.ingestion import (
    DELTA_ADD,
    DELTA_DELETE,
    DELTA_UPDATE,
    DocumentDelta,
)
from repro.platform.segments import (
    CompactionPolicy,
    DeltaIndexer,
    LiveIndexer,
    ReplicaSnapshot,
    ShardSegment,
    merge_segments,
)
from repro.platform.serving import ReplicatedIndex

pytestmark = pytest.mark.incremental

POSITIVE = "The NR70 is excellent . I love the pictures ."
NEGATIVE = "The NR70 is awful . The battery is bad ."
OTHER = "The G3 is great . Pictures look sharp ."


def make_indexer(obs=None):
    subjects = [Subject("NR70"), Subject("G3")]
    miner = SentimentMiner(subjects=subjects, obs=obs or Obs.default())
    return DeltaIndexer(miner, obs=obs or Obs.default())


def add(doc_id, content):
    return DocumentDelta(
        kind=DELTA_ADD, entity_id=doc_id, entity=Entity(entity_id=doc_id, content=content)
    )


def update(doc_id, content):
    return DocumentDelta(
        kind=DELTA_UPDATE,
        entity_id=doc_id,
        entity=Entity(entity_id=doc_id, content=content),
    )


def delete(doc_id):
    return DocumentDelta(kind=DELTA_DELETE, entity_id=doc_id)


class TestDeltaIndexer:
    def test_seals_adds_into_a_segment(self):
        indexer = make_indexer()
        segment = indexer.index_batch([add("d1", POSITIVE), add("d2", OTHER)])
        assert segment.stats.documents == 2
        assert segment.stats.deletes == 0
        assert segment.stats.judgments > 0
        assert segment.doc_ids == {"d1", "d2"}
        # Every delta id is tombstoned: earlier copies get masked.
        assert segment.tombstones == {"d1", "d2"}

    def test_intra_batch_update_chain_stays_net(self):
        indexer = make_indexer()
        segment = indexer.index_batch(
            [add("d1", POSITIVE), update("d1", NEGATIVE)]
        )
        assert segment.stats.documents == 1
        (entity,) = segment.entities
        assert entity.content == NEGATIVE
        assert segment.inverted.search("awful") == {"d1"}
        assert segment.inverted.search("excellent") == set()

    def test_intra_batch_delete_chain_stays_net(self):
        indexer = make_indexer()
        segment = indexer.index_batch([add("d1", POSITIVE), delete("d1")])
        assert segment.stats.documents == 0
        assert segment.stats.deletes == 1
        assert segment.doc_ids == set()
        assert "d1" in segment.tombstones

    def test_sealing_charges_simulated_time(self):
        obs = Obs.default()
        indexer = make_indexer(obs)
        before = obs.clock.now
        indexer.index_batch([add("d1", POSITIVE)])
        assert obs.clock.now > before


class TestMaskingAndMerge:
    def build_log(self):
        """Base + two absorbed slices: d1 superseded, d2 deleted."""
        indexer = make_indexer()
        seg1 = indexer.index_batch([add("d1", POSITIVE), add("d2", OTHER)])
        seg2 = indexer.index_batch([update("d1", NEGATIVE), delete("d2")])
        log = [
            ShardSegment(version=0),
            ShardSegment(
                version=1,
                sentiment=seg1.sentiment,
                inverted=seg1.inverted,
                tombstones=seg1.tombstones,
            ),
            ShardSegment(
                version=2,
                sentiment=seg2.sentiment,
                inverted=seg2.inverted,
                tombstones=seg2.tombstones,
            ),
        ]
        return log

    def test_later_tombstones_mask_earlier_copies(self):
        log = self.build_log()
        snapshot = ReplicaSnapshot(2, log)
        assert snapshot.inverted.doc_ids == {"d1"}
        assert snapshot.inverted.search("awful") == {"d1"}
        assert snapshot.inverted.search("excellent") == set()
        assert snapshot.inverted.search("sharp") == set()

    def test_snapshot_at_earlier_version_sees_the_old_world(self):
        log = self.build_log()
        snapshot = ReplicaSnapshot(1, log)
        assert snapshot.inverted.doc_ids == {"d1", "d2"}
        assert snapshot.inverted.search("excellent") == {"d1"}

    def test_merge_drops_masked_copies_and_all_tombstones(self):
        log = self.build_log()
        merged = merge_segments(log)
        assert merged.version == 2
        assert merged.tombstones == frozenset()
        assert merged.inverted.doc_ids == {"d1"}
        assert merged.inverted.search("awful") == {"d1"}

    def test_merged_prefix_reads_identically(self):
        log = self.build_log()
        before = ReplicaSnapshot(2, log)
        merged_log = [merge_segments(log)]
        after = ReplicaSnapshot(2, merged_log)
        assert before.inverted.doc_ids == after.inverted.doc_ids
        assert before.inverted.idf_table() == after.inverted.idf_table()
        assert (
            before.sentiment.subject_counts() == after.sentiment.subject_counts()
        )

    def test_merge_rejects_empty_prefix(self):
        with pytest.raises(ValueError):
            merge_segments([])


class TestReplicatedIndexSegments:
    def test_absorb_bumps_version_and_routes_slices(self):
        index = ReplicatedIndex(4, 4, replication=2)
        indexer = make_indexer()
        segment = indexer.index_batch([add("d1", POSITIVE), add("d2", OTHER)])
        version = index.absorb(segment)
        assert version == 1 == index.current_version
        # Each document's postings landed on exactly one shard.
        owners = [
            shard_id
            for shard_id in index.shard_ids()
            if "d1" in index.replicas_for(shard_id)[0].view().inverted.doc_ids
        ]
        assert len(owners) == 1

    def test_pinned_snapshot_survives_concurrent_delete(self):
        index = ReplicatedIndex(2, 2, replication=1)
        indexer = make_indexer()
        index.absorb(indexer.index_batch([add("d1", POSITIVE)]))
        pinned_version = index.pin()
        views = [
            index.replicas_for(s)[0].view(pinned_version) for s in index.shard_ids()
        ]
        before = {id for v in views for id in v.inverted.doc_ids}
        assert before == {"d1"}
        # A delete batch lands mid-read...
        index.absorb(indexer.index_batch([delete("d1")]))
        # ...but the pinned views are unchanged, while fresh views see it.
        still = {id for v in views for id in v.inverted.doc_ids}
        assert still == {"d1"}
        fresh = {
            id
            for s in index.shard_ids()
            for id in index.replicas_for(s)[0].view().inverted.doc_ids
        }
        assert fresh == set()
        index.release(pinned_version)

    def test_compaction_floor_respects_active_pins(self):
        index = ReplicatedIndex(1, 1, replication=1)
        indexer = make_indexer()
        index.absorb(indexer.index_batch([add("d1", POSITIVE)]))
        pinned = index.pin()
        index.absorb(indexer.index_batch([add("d2", OTHER)]))
        index.absorb(indexer.index_batch([add("d3", NEGATIVE)]))
        assert index.compaction_floor() == pinned
        replica = index.replicas_for(0)[0]
        logs_before = len(replica.segments)
        index.compact()
        # Only the prefix at or below the pin may merge; the pinned
        # reader's segment set stays granular above the floor.
        assert replica.segments[-1].version == index.current_version
        assert len(replica.segments) <= logs_before
        index.release(pinned)
        index.compact()
        assert len(replica.segments) == 1
        snapshot = replica.view()
        assert snapshot.inverted.doc_ids == {"d1", "d2", "d3"}


class TestLiveIndexer:
    def test_apply_batch_reports_freshness_and_triggers_compaction(self):
        obs = Obs.default()
        index = ReplicatedIndex(2, 2, replication=1)
        live = LiveIndexer(
            index,
            make_indexer(obs),
            obs=obs,
            policy=CompactionPolicy(max_segments=2),
        )
        stats = live.apply_batch([add("d1", POSITIVE)])
        assert stats["version"] == 1
        assert stats["documents"] == 1
        assert stats["freshness_lag"] > 0
        assert stats["segments_merged"] == 0
        # Keep absorbing until some replica's log exceeds the policy.
        merged = 0
        for i in range(2, 6):
            merged += live.apply_batch([add(f"d{i}", OTHER)])["segments_merged"]
        assert merged > 0
        assert index.max_segment_count() <= 3
        assert live.documents_indexed == 5
        assert obs.metrics.counter("segments.compactions").value > 0
        assert obs.metrics.histogram("ingest.freshness_lag").count == 5


class TestCompactionObservability:
    """Satellite coverage for compaction counters and audit entries."""

    def run_until_compaction(self):
        obs = Obs.enabled()
        index = ReplicatedIndex(2, 2, replication=1)
        live = LiveIndexer(
            index,
            make_indexer(obs),
            obs=obs,
            policy=CompactionPolicy(max_segments=2),
        )
        for i in range(1, 7):
            live.apply_batch([add(f"d{i}", OTHER if i % 2 else POSITIVE)])
        return obs, live, index

    def test_compaction_counters_track_runs_and_docs(self):
        obs, _, _ = self.run_until_compaction()
        from repro.platform.segments import AUDIT_KIND_COMPACTION

        ran = [
            e
            for e in obs.audit.entries
            if e.kind == AUDIT_KIND_COMPACTION and e.decision == "ran"
        ]
        runs = obs.metrics.counter("compaction.runs").value
        assert runs == len(ran) > 0
        merged_docs = obs.metrics.counter("compaction.merged_docs").value
        assert merged_docs == sum(dict(e.detail)["rewritten"] for e in ran)
        # compaction.runs only counts merges; segments.compactions is its
        # legacy mirror and must agree.
        assert obs.metrics.counter("segments.compactions").value == runs

    def test_compaction_audit_entry_shape(self):
        obs, _, _ = self.run_until_compaction()
        from repro.platform.segments import AUDIT_KIND_COMPACTION

        entries = [e for e in obs.audit.entries if e.kind == AUDIT_KIND_COMPACTION]
        assert entries, "policy max_segments=2 must trip at least once"
        for entry in entries:
            assert entry.decision in ("ran", "blocked")
            assert entry.subject.startswith("segments:")
            assert "exceeds policy max" in entry.reason
            detail = dict(entry.detail)
            assert {"floor", "merged", "pins", "rewritten"} <= set(detail)
            if entry.decision == "ran":
                assert detail["merged"] > 0
            else:
                assert detail["merged"] == 0

    def test_blocked_compaction_is_audited_not_counted(self):
        # A pinned snapshot below the would-be merge floor blocks the
        # whole merge: audited as "blocked", counters untouched.
        obs = Obs.enabled()
        index = ReplicatedIndex(1, 1, replication=1)
        live = LiveIndexer(
            index,
            make_indexer(obs),
            obs=obs,
            policy=CompactionPolicy(max_segments=2),
        )
        pinned = index.pin()  # pins the empty base (version 0): floor stays 0
        try:
            for i in range(1, 5):
                live.apply_batch([add(f"d{i}", OTHER)])
            from repro.platform.segments import AUDIT_KIND_COMPACTION

            blocked = [
                e
                for e in obs.audit.entries
                if e.kind == AUDIT_KIND_COMPACTION and e.decision == "blocked"
            ]
            assert blocked
            assert dict(blocked[0].detail)["pins"] == {"0": 1}
        finally:
            index.release(pinned)
        assert obs.metrics.counter("compaction.runs").value == 0
        assert obs.metrics.counter("compaction.merged_docs").value == 0
