"""Durable recovery units: restart schedules, probes, WAL, anti-entropy.

Unit coverage for DESIGN.md §5j — crash-restart fault plans, the
explicit circuit-breaker probe API, the simulated write-ahead log, the
shard-level recovery surface (digests, version vectors, replica
add/drop/sync), and the :class:`RecoveryManager` lifecycle.  The
end-to-end determinism gates live in ``test_recovery_equivalence.py``.
"""

import pytest

from repro.core import SentimentMiner, Subject
from repro.obs import (
    Obs,
    SLOMonitor,
    health_snapshot,
    render_health,
    replication_slo,
)
from repro.platform.chaos import DEFAULT_RESTART_WINDOW, schedule_restarts
from repro.platform.entity import Entity
from repro.platform.faults import FaultPlan
from repro.platform.ingestion import DELTA_ADD, DocumentDelta
from repro.platform.recovery import (
    AUDIT_KIND_RECOVERY,
    TRANSFER_COST_PER_DOC,
    RecoveryManager,
)
from repro.platform.segments import CompactionPolicy, DeltaIndexer, LiveIndexer
from repro.platform.serving import ReplicatedIndex
from repro.platform.serving.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
)
from repro.platform.serving.shards import segment_digest, segment_docs
from repro.platform.wal import (
    WAL_APPEND_COST_PER_DELTA,
    NullWriteAheadLog,
    WriteAheadLog,
)

pytestmark = pytest.mark.recovery

POSITIVE = "The NR70 is excellent . I love the pictures ."
NEGATIVE = "The NR70 is awful . The battery is bad ."
OTHER = "The G3 is great . Pictures look sharp ."


def add(doc_id, content):
    return DocumentDelta(
        kind=DELTA_ADD,
        entity_id=doc_id,
        entity=Entity(entity_id=doc_id, content=content),
    )


def make_live(index, obs, wal=None):
    miner = SentimentMiner(subjects=[Subject("NR70"), Subject("G3")], obs=obs)
    return LiveIndexer(
        index,
        DeltaIndexer(miner, obs=obs),
        obs=obs,
        policy=CompactionPolicy(max_segments=8),
        wal=wal,
    )


class StubRouter:
    """Counts probes; denies the first ``deny`` before admitting."""

    def __init__(self, deny=0):
        self.probed = []
        self._deny = deny

    def probe_node(self, node_id):
        self.probed.append(node_id)
        if self._deny > 0:
            self._deny -= 1
            return False
        return True


# ---------------------------------------------------------------------------
# fault-plan restart schedules
# ---------------------------------------------------------------------------


class TestFaultPlanRestarts:
    def test_node_down_until_restart_time(self):
        plan = FaultPlan(0).kill_node(1)
        plan.restart_node(1, after_cost=5.0)
        assert plan.node_down(1, 0.0)
        assert plan.node_down(1, 4.999)
        assert not plan.node_down(1, 5.0)
        assert plan.node_restart(1) == 5.0

    def test_death_without_restart_is_permanent(self):
        plan = FaultPlan(0).kill_node(2)
        assert plan.node_down(2, 1e9)
        assert plan.node_restart(2) is None

    def test_never_killed_node_is_always_up(self):
        plan = FaultPlan(0)
        assert not plan.node_down(0, 0.0)

    def test_restart_requires_a_scheduled_death(self):
        with pytest.raises(ValueError, match="no scheduled death"):
            FaultPlan(0).restart_node(3, after_cost=1.0)

    def test_restart_rejects_negative_cost(self):
        plan = FaultPlan(0).kill_node(1)
        with pytest.raises(ValueError, match="non-negative"):
            plan.restart_node(1, after_cost=-1.0)

    def test_summary_counts_restarts_only_when_scheduled(self):
        plain = FaultPlan(0).kill_node(1)
        assert "scheduled_node_restarts" not in plain.summary()
        plain.restart_node(1, after_cost=2.0)
        assert plain.summary()["scheduled_node_restarts"] == 1

    def test_schedule_restarts_is_seed_deterministic(self):
        def build():
            plan = FaultPlan(42).kill_node(0).kill_node(2)
            return schedule_restarts(plan), plan

        times_a, plan_a = build()
        times_b, plan_b = build()
        assert times_a == times_b
        assert plan_a.restarts == plan_b.restarts
        lo, hi = DEFAULT_RESTART_WINDOW
        for at in times_a.values():
            assert lo <= at <= hi

    def test_schedule_restarts_rejects_bad_window(self):
        plan = FaultPlan(0).kill_node(1)
        with pytest.raises(ValueError):
            schedule_restarts(plan, window=(5.0, 1.0))


# ---------------------------------------------------------------------------
# breaker probes
# ---------------------------------------------------------------------------


class TestBreakerProbe:
    def make_breaker(self, obs, cooldown=2.0):
        return CircuitBreaker(
            "serving.node1", obs, failure_threshold=1, cooldown=cooldown
        )

    def test_probe_during_cooldown_is_denied_without_fastfail(self):
        obs = Obs.default()
        breaker = self.make_breaker(obs)
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.probe() is False
        snap = breaker.snapshot()
        assert snap["fastfails"] == 0  # a probe denial is not a fast-fail
        assert snap["probes"] == 0
        assert breaker.state == OPEN

    def test_probe_cycle_open_half_open_closed(self):
        obs = Obs.default()
        breaker = self.make_breaker(obs)
        breaker.record_failure()
        obs.clock.advance(2.0)
        assert breaker.probe() is True
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.snapshot()["probes"] == 1

    def test_failed_probe_reopens_for_another_cooldown(self):
        obs = Obs.default()
        breaker = self.make_breaker(obs)
        breaker.record_failure()
        obs.clock.advance(2.0)
        assert breaker.probe() is True
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.probe() is False  # cooldown restarted

    def test_probe_on_closed_breaker_is_admitted(self):
        obs = Obs.default()
        breaker = self.make_breaker(obs)
        assert breaker.probe() is True
        assert breaker.state == CLOSED


# ---------------------------------------------------------------------------
# write-ahead log
# ---------------------------------------------------------------------------


class TestWriteAheadLog:
    def test_append_assigns_contiguous_lsns_and_charges_cost(self):
        obs = Obs.default()
        wal = WriteAheadLog(obs=obs)
        lsn1 = wal.append([add("d1", POSITIVE)])
        lsn2 = wal.append([add("d2", NEGATIVE), add("d3", OTHER)])
        assert (lsn1, lsn2) == (1, 2)
        assert wal.depth == 2
        assert wal.last_lsn == 2
        assert obs.clock.now == pytest.approx(3 * WAL_APPEND_COST_PER_DELTA)

    def test_append_rejects_empty_batch(self):
        with pytest.raises(ValueError, match="empty"):
            WriteAheadLog().append([])

    def test_seal_rejects_unknown_lsn(self):
        wal = WriteAheadLog()
        wal.append([add("d1", POSITIVE)])
        with pytest.raises(ValueError):
            wal.seal(0)
        with pytest.raises(ValueError):
            wal.seal(2)

    def test_checkpoint_advances_over_contiguous_prefix_only(self):
        wal = WriteAheadLog()
        for doc in ("d1", "d2", "d3"):
            wal.append([add(doc, POSITIVE)])
        wal.seal(2)  # out of order: checkpoint must wait for lsn 1
        assert wal.checkpoint_lsn == 0
        assert wal.depth == 2
        wal.seal(1)
        assert wal.checkpoint_lsn == 2
        wal.seal(3)
        assert wal.checkpoint_lsn == 3
        assert wal.depth == 0

    def test_seal_is_idempotent(self):
        wal = WriteAheadLog()
        wal.append([add("d1", POSITIVE)])
        wal.seal(1)
        wal.seal(1)
        assert wal.depth == 0

    def test_replay_yields_unsealed_records_in_lsn_order(self):
        wal = WriteAheadLog()
        for doc in ("d1", "d2", "d3"):
            wal.append([add(doc, POSITIVE)])
        wal.seal(2)
        assert [r.lsn for r in wal.replay()] == [1, 3]
        assert wal.snapshot()["unsealed"] == [1, 3]

    def test_null_wal_is_inert(self):
        wal = NullWriteAheadLog()
        assert wal.append([add("d1", POSITIVE)]) == 0
        wal.seal(7)  # no-op, no error
        assert list(wal.replay()) == []
        assert wal.depth == 0
        assert wal.snapshot()["last_lsn"] == 0


# ---------------------------------------------------------------------------
# shard recovery surface
# ---------------------------------------------------------------------------


def build_index(obs=None, docs=None):
    obs = obs or Obs.default()
    index = ReplicatedIndex(4, 3, replication=2)
    live = make_live(index, obs)
    live.apply_batch([add(d, c) for d, c in (docs or [("d1", POSITIVE), ("d2", OTHER)])])
    return index, live, obs


class TestShardRecoverySurface:
    def test_digest_is_content_based(self):
        index_a, _, _ = build_index()
        index_b, _, _ = build_index()
        for shard_id in index_a.shard_ids():
            va = index_a.replicas_for(shard_id)[0].version_vector()
            vb = index_b.replicas_for(shard_id)[0].version_vector()
            assert va == vb  # distinct objects, identical content

    def test_replicas_of_a_shard_share_a_version_vector(self):
        index, _, _ = build_index()
        for shard_id in index.shard_ids():
            vectors = {r.version_vector() for r in index.replicas_for(shard_id)}
            assert len(vectors) == 1

    def test_down_node_misses_absorbed_segments(self):
        index, live, _ = build_index()
        index.set_liveness(lambda node_id: node_id != 1)
        live.apply_batch([add("d3", NEGATIVE)])
        for replica in index.replicas_on(1):
            peer = next(
                r
                for r in index.replicas_for(replica.shard_id)
                if r.node_id != 1
            )
            assert len(replica.segments) < len(peer.segments)

    def test_live_replication_and_under_replicated(self):
        index, _, _ = build_index()
        assert index.under_replicated() == []
        index.set_liveness(lambda node_id: node_id != 1)
        under = index.under_replicated()
        assert under  # node 1 hosted a replica of some shard
        for shard_id in under:
            assert index.live_replication()[shard_id] < index.replication

    def test_add_replica_copies_donor_and_reports_docs(self):
        index, _, _ = build_index()
        shard_id = index.replicas_on(1)[0].shard_id
        donor = next(
            r for r in index.replicas_for(shard_id) if r.node_id != 1
        )
        free = next(
            n
            for n in range(index.num_nodes)
            if n not in {r.node_id for r in index.replicas_for(shard_id)}
        )
        replica, docs = index.add_replica(shard_id, free, donor)
        assert docs == sum(segment_docs(s) for s in donor.segments)
        assert replica.version_vector() == donor.version_vector()
        with pytest.raises(ValueError):
            index.add_replica(shard_id, free, donor)  # already hosting

    def test_drop_replica_requires_presence(self):
        index, _, _ = build_index()
        shard_id = 0
        absent = next(
            n
            for n in range(index.num_nodes)
            if n not in {r.node_id for r in index.replicas_for(shard_id)}
        )
        with pytest.raises(ValueError):
            index.drop_replica(shard_id, absent)

    def test_sync_replica_ships_only_the_missing_suffix(self):
        index, live, _ = build_index()
        index.set_liveness(lambda node_id: node_id != 1)
        live.apply_batch([add("d3", NEGATIVE)])
        index.set_liveness(None)
        stale = index.replicas_on(1)[0]
        donor = next(
            r for r in index.replicas_for(stale.shard_id) if r.node_id != 1
        )
        shipped = index.sync_replica(stale, donor)
        missing = donor.segments[len(donor.segments) - 1]
        assert shipped == segment_docs(missing)
        assert stale.version_vector() == donor.version_vector()
        assert index.sync_replica(stale, donor) == 0  # already caught up

    def test_sync_replica_full_resync_on_divergence(self):
        # The donor compacted while the target was down: the target's
        # log is no longer a prefix, so the whole log ships.
        obs = Obs.default()
        index = ReplicatedIndex(2, 2, replication=2)
        live = LiveIndexer(
            index,
            DeltaIndexer(
                SentimentMiner(
                    subjects=[Subject("NR70"), Subject("G3")], obs=obs
                ),
                obs=obs,
            ),
            obs=obs,
            policy=CompactionPolicy(max_segments=2),
        )
        live.apply_batch([add("d1", POSITIVE)])
        index.set_liveness(lambda node_id: node_id != 1)
        # Enough batches to trigger compaction on the live replicas.
        for i in range(3):
            live.apply_batch([add(f"x{i}", OTHER)])
        index.set_liveness(None)
        stale = index.replicas_on(1)[0]
        donor = next(
            r for r in index.replicas_for(stale.shard_id) if r.node_id != 1
        )
        assert len(donor.segments) != len(stale.segments)
        shipped = index.sync_replica(stale, donor)
        assert shipped == sum(segment_docs(s) for s in donor.segments)
        assert stale.version_vector() == donor.version_vector()


# ---------------------------------------------------------------------------
# recovery manager lifecycle
# ---------------------------------------------------------------------------


def make_recovery(obs=None, router=None, slo=None):
    obs = obs or Obs.enabled()
    index, live, _ = build_index(obs=obs)
    plan = FaultPlan(0).kill_node(1)
    recovery = RecoveryManager(
        index, plan, obs, router=router, slo=slo, live_indexer=live
    )
    return index, live, plan, recovery, obs


class TestRecoveryManager:
    def test_death_triggers_re_replication_to_rf(self):
        index, _, plan, recovery, obs = make_recovery()
        before = obs.clock.now
        tick = recovery.tick()
        assert tick["down_nodes"] == [1]
        assert tick["under_replicated"] == []
        assert index.under_replicated() == []
        assert recovery.recovery_replicas  # extra copies exist
        shipped = sum(
            segment_docs(s)
            for shard, host in recovery.recovery_replicas
            for s in index.replica_on(host, shard).segments
        )
        assert obs.clock.now - before == pytest.approx(
            shipped * TRANSFER_COST_PER_DOC
        )
        assert recovery.restore_durations  # measured from death at t=0

    def test_rejoin_catches_up_retires_and_settles(self):
        router = StubRouter()
        obs = Obs.enabled()
        index, live, _ = build_index(obs=obs)
        original = {
            (r.shard_id, r.node_id)
            for shard in index.shard_ids()
            for r in index.replicas_for(shard)
        }
        plan = FaultPlan(0).kill_node(1)
        plan.restart_node(1, after_cost=obs.clock.now + 5.0)
        recovery = RecoveryManager(
            index, plan, obs, router=router, live_indexer=live
        )
        recovery.tick()  # death observed
        live.apply_batch([add("d9", NEGATIVE)])  # node 1 misses this
        assert not recovery.settled
        obs.clock.advance(10.0)
        recovery.tick()  # rejoin: catch-up + retire + probe
        assert recovery.settled
        assert router.probed == [1]
        assert recovery.catchup_durations
        placement = {
            (r.shard_id, r.node_id)
            for shard in index.shard_ids()
            for r in index.replicas_for(shard)
        }
        assert placement == original  # recovery copies retired
        for shard in index.shard_ids():
            vectors = {r.version_vector() for r in index.replicas_for(shard)}
            assert len(vectors) == 1  # anti-entropy converged

    def test_denied_probe_is_retried_next_tick(self):
        router = StubRouter(deny=1)
        obs = Obs.enabled()
        index, live, _ = build_index(obs=obs)
        plan = FaultPlan(0).kill_node(1)
        plan.restart_node(1, after_cost=obs.clock.now + 1.0)
        recovery = RecoveryManager(
            index, plan, obs, router=router, live_indexer=live
        )
        recovery.tick()
        obs.clock.advance(2.0)
        recovery.tick()  # rejoin; probe denied (breaker still cooling)
        assert not recovery.settled
        recovery.tick()  # retried and admitted
        assert recovery.settled
        assert router.probed == [1, 1]

    def test_events_and_audit_are_recorded(self):
        obs = Obs.enabled()
        index, live, _ = build_index(obs=obs)
        plan = FaultPlan(0).kill_node(1)
        plan.restart_node(1, after_cost=obs.clock.now + 1.0)
        recovery = RecoveryManager(index, plan, obs, live_indexer=live)
        recovery.tick()
        obs.clock.advance(2.0)
        recovery.tick()
        kinds = [e["kind"] for e in recovery.events]
        assert "death" in kinds and "rejoin" in kinds
        assert "replicate" in kinds and "retire" in kinds
        audit_kinds = {e.kind for e in obs.audit.entries}
        assert AUDIT_KIND_RECOVERY in audit_kinds

    def test_replication_slo_records_per_shard_health(self):
        obs = Obs.enabled()
        slo = SLOMonitor(obs, (replication_slo(),))
        index, live, _ = build_index(obs=obs)
        plan = FaultPlan(0).kill_node(1)
        recovery = RecoveryManager(index, plan, obs, slo=slo, live_indexer=live)
        recovery.tick()
        (status,) = slo.evaluate()
        assert status["kind"] == "replication"
        # Re-replication healed every shard within the tick.
        assert status["events"] == len(list(index.shard_ids()))
        assert status["bad"] == 0

    def test_wal_replay_applies_unsealed_batches_exactly_once(self):
        obs = Obs.default()
        index = ReplicatedIndex(4, 3, replication=2)
        wal = WriteAheadLog(obs=obs)
        live = make_live(index, obs, wal=wal)
        batch = [add("d1", POSITIVE), add("d2", OTHER)]
        lsn = wal.append(batch)
        # Crash before apply: the WAL holds the only durable copy.
        assert wal.depth == 1
        recovery = RecoveryManager(
            index, None, obs, wal=wal, live_indexer=live
        )
        assert recovery.replay_wal() == 1
        assert wal.depth == 0  # apply_batch sealed lsn on absorb
        assert wal.checkpoint_lsn == lsn
        assert recovery.replay_wal() == 0  # second replay finds nothing
        doc_ids = {
            doc
            for shard in index.shard_ids()
            for doc in index.replicas_for(shard)[0].view().inverted.doc_ids
        }
        assert doc_ids == {"d1", "d2"}

    def test_snapshot_and_summary_shapes(self):
        _, _, _, recovery, _ = make_recovery()
        recovery.tick()
        snap = recovery.snapshot()
        assert set(snap) == {
            "down_nodes",
            "pending_probes",
            "inflight_replicas",
            "live_replication",
            "under_replicated",
            "transfers",
            "docs_shipped",
            "settled",
        }
        summary = recovery.summary()
        assert summary["deaths"] == 1
        assert summary["transfers"] == snap["transfers"] > 0

    def test_health_surface_renders_recovery_and_wal_sections(self):
        obs = Obs.enabled()
        wal = WriteAheadLog(obs=obs)
        wal.append([add("d1", POSITIVE)])
        _, _, _, recovery, _ = (None,) * 5
        index, live, _ = build_index(obs=obs)
        plan = FaultPlan(0).kill_node(1)
        recovery = RecoveryManager(index, plan, obs, wal=wal, live_indexer=live)
        recovery.tick()
        snap = health_snapshot(obs, recovery=recovery, wal=wal)
        assert snap["recovery"]["down_nodes"] == [1]
        assert snap["wal"]["depth"] == 1
        text = render_health(snap)
        assert "recovery" in text and "wal" in text
        assert "down_nodes       1" in text
