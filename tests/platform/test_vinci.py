"""Unit tests for the Vinci service bus."""

import pytest

from repro.platform.vinci import VinciBus, VinciError


def echo(payload):
    return {"echo": payload}


class TestRegistration:
    def test_register_and_call(self):
        bus = VinciBus()
        bus.register("echo", echo)
        assert bus.request("echo", {"x": 1}) == {"echo": {"x": 1}}

    def test_services_listed_sorted(self):
        bus = VinciBus()
        bus.register("zeta", echo)
        bus.register("alpha", echo)
        assert bus.services() == ["alpha", "zeta"]

    def test_contains(self):
        bus = VinciBus()
        bus.register("echo", echo)
        assert "echo" in bus
        assert "nope" not in bus

    def test_unregister(self):
        bus = VinciBus()
        bus.register("echo", echo)
        bus.unregister("echo")
        with pytest.raises(VinciError):
            bus.request("echo")

    def test_replace_handler(self):
        bus = VinciBus()
        bus.register("svc", lambda p: {"v": 1})
        bus.register("svc", lambda p: {"v": 2})
        assert bus.request("svc")["v"] == 2

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            VinciBus().register("", echo)


class TestErrors:
    def test_unknown_service(self):
        with pytest.raises(VinciError, match="no such service"):
            VinciBus().request("ghost")

    def test_handler_exception_wrapped(self):
        bus = VinciBus()

        def boom(payload):
            raise RuntimeError("kaput")

        bus.register("boom", boom)
        with pytest.raises(VinciError, match="kaput"):
            bus.request("boom")

    def test_non_dict_response_rejected(self):
        bus = VinciBus()
        bus.register("bad", lambda p: "not a document")
        with pytest.raises(VinciError, match="non-document"):
            bus.request("bad")

    def test_non_dict_response_recorded_in_trace(self):
        # Regression: the failure used to raise without recording an
        # Envelope, so trace() undercounted failures vs stats().
        bus = VinciBus()
        bus.register("bad", lambda p: "not a document")
        with pytest.raises(VinciError):
            bus.request("bad")
        (envelope,) = bus.trace()
        assert envelope.service == "bad"
        assert not envelope.ok
        assert bus.stats()["bad"]["failures"] == 1

    def test_trace_failure_count_matches_stats(self):
        bus = VinciBus()
        bus.register("bad", lambda p: "nope")
        bus.register("boom", lambda p: 1 / 0)
        bus.register("ok", lambda p: {})
        for service in ("bad", "boom", "ok", "ghost"):
            try:
                bus.request(service)
            except VinciError:
                pass
        failures = sum(1 for e in bus.trace() if not e.ok)
        assert failures == sum(s["failures"] for s in bus.stats().values()) + 1  # +ghost


class TestStatsAndTrace:
    def test_request_counters(self):
        bus = VinciBus()
        bus.register("echo", echo)
        bus.request("echo")
        bus.request("echo")
        assert bus.stats()["echo"]["requests"] == 2
        assert bus.stats()["echo"]["failures"] == 0

    def test_failure_counter(self):
        bus = VinciBus()
        bus.register("boom", lambda p: 1 / 0)
        with pytest.raises(VinciError):
            bus.request("boom")
        assert bus.stats()["boom"]["failures"] == 1

    def test_trace_records_envelopes(self):
        bus = VinciBus()
        bus.register("echo", echo)
        bus.request("echo", {"n": 1})
        (envelope,) = bus.trace()
        assert envelope.service == "echo"
        assert envelope.ok

    def test_trace_bounded(self):
        bus = VinciBus(trace_limit=5)
        bus.register("echo", echo)
        for i in range(20):
            bus.request("echo", {"n": i})
        trace = bus.trace()
        assert len(trace) == 5
        assert trace[-1].request == {"n": 19}
