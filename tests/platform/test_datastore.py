"""Unit and property tests for the partitioned data store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform.datastore import DataStore, Partition, default_partitioner
from repro.platform.entity import Entity


def doc(entity_id, content="text"):
    return Entity(entity_id=entity_id, content=content)


class TestPartitioner:
    def test_stable(self):
        assert default_partitioner("abc", 8) == default_partitioner("abc", 8)

    def test_in_range(self):
        for i in range(100):
            assert 0 <= default_partitioner(f"id{i}", 7) < 7

    def test_spreads_keys(self):
        hits = {default_partitioner(f"id{i}", 8) for i in range(200)}
        assert len(hits) == 8


class TestPartition:
    def test_put_get(self):
        p = Partition(0)
        p.put(doc("a", "one"))
        assert p.get("a").content == "one"

    def test_overwrite(self):
        p = Partition(0)
        p.put(doc("a", "one"))
        p.put(doc("a", "two"))
        assert p.get("a").content == "two"

    def test_delete_tombstone(self):
        p = Partition(0)
        p.put(doc("a"))
        p.flush()
        p.delete("a")
        assert p.get("a") is None
        assert list(p.scan()) == []

    def test_flush_creates_segments(self):
        p = Partition(0, memtable_limit=100)
        p.put(doc("a"))
        assert p.segment_count == 0
        p.flush()
        assert p.segment_count == 1

    def test_auto_flush_at_limit(self):
        p = Partition(0, memtable_limit=2)
        p.put(doc("a"))
        p.put(doc("b"))
        assert p.segment_count == 1

    def test_read_spans_memtable_and_segments(self):
        p = Partition(0)
        p.put(doc("a", "segment version"))
        p.flush()
        p.put(doc("b", "memtable version"))
        assert p.get("a").content == "segment version"
        assert p.get("b").content == "memtable version"

    def test_newest_segment_wins(self):
        p = Partition(0)
        p.put(doc("a", "v1"))
        p.flush()
        p.put(doc("a", "v2"))
        p.flush()
        assert p.get("a").content == "v2"

    def test_compact_drops_shadowed_and_tombstones(self):
        p = Partition(0)
        p.put(doc("a", "v1"))
        p.flush()
        p.put(doc("a", "v2"))
        p.put(doc("b"))
        p.flush()
        p.delete("b")
        p.flush()
        dropped = p.compact()
        assert dropped == 3  # v1, old b, tombstone
        assert p.segment_count == 1
        assert p.get("a").content == "v2"
        assert p.get("b") is None

    def test_scan_sorted(self):
        p = Partition(0)
        for eid in ["c", "a", "b"]:
            p.put(doc(eid))
        assert [e.entity_id for e in p.scan()] == ["a", "b", "c"]

    def test_bad_memtable_limit(self):
        with pytest.raises(ValueError):
            Partition(0, memtable_limit=0)


class TestDataStore:
    def test_store_get_roundtrip(self):
        store = DataStore(num_partitions=4)
        store.store(doc("x", "hello"))
        assert store.get("x").content == "hello"
        assert "x" in store

    def test_missing_returns_none(self):
        assert DataStore().get("nope") is None

    def test_len_counts_live_entities(self):
        store = DataStore(num_partitions=3)
        store.store_all(doc(f"id{i}") for i in range(10))
        assert len(store) == 10
        store.delete("id3")
        assert len(store) == 9

    def test_scan_covers_all_partitions(self):
        store = DataStore(num_partitions=5)
        ids = {f"id{i}" for i in range(30)}
        store.store_all(doc(i) for i in ids)
        assert {e.entity_id for e in store.scan()} == ids

    def test_modify(self):
        store = DataStore()
        store.store(doc("x"))
        store.modify("x", lambda e: e.metadata.update(score=3))
        assert store.get("x").metadata["score"] == 3

    def test_modify_missing_raises(self):
        with pytest.raises(KeyError):
            DataStore().modify("nope", lambda e: None)

    def test_compaction_reduces_segments(self):
        store = DataStore(num_partitions=2, memtable_limit=4)
        for round_ in range(3):
            store.store_all(doc(f"id{i}", f"v{round_}") for i in range(8))
        store.flush()
        before = store.stats()["segments"]
        store.compact()
        after = store.stats()["segments"]
        assert after <= before
        assert all(store.get(f"id{i}").content == "v2" for i in range(8))

    def test_bad_partition_count(self):
        with pytest.raises(ValueError):
            DataStore(num_partitions=0)

    def test_stats_shape(self):
        stats = DataStore(num_partitions=2).stats()
        assert set(stats) == {"entities", "partitions", "segments"}


class TestStoreProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["put", "delete"]),
                st.integers(0, 9),
                st.text(max_size=5),
            ),
            max_size=40,
        )
    )
    def test_store_matches_dict_model(self, operations):
        """The store behaves like a dict under put/delete/flush/compact."""
        store = DataStore(num_partitions=3, memtable_limit=5)
        model: dict[str, str] = {}
        for op, key_num, content in operations:
            key = f"k{key_num}"
            if op == "put":
                store.store(doc(key, content))
                model[key] = content
            else:
                store.delete(key)
                model.pop(key, None)
        store.flush()
        store.compact()
        assert len(store) == len(model)
        for key, content in model.items():
            assert store.get(key).content == content
