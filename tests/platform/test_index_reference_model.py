"""Property test: the inverted index agrees with a naive reference scan.

For random corpora and random query ASTs, evaluating through the
positional index must return exactly the ids a brute-force document scan
returns.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nlp.tokenizer import tokenize
from repro.platform.entity import Entity
from repro.platform.indexer import InvertedIndex
from repro.platform.query import And, Not, Or, Phrase, Query, Term

_VOCAB = ["camera", "flash", "zoom", "battery", "lens", "menu"]

_documents = st.lists(
    st.lists(st.sampled_from(_VOCAB), min_size=1, max_size=12).map(" ".join),
    min_size=1,
    max_size=10,
)


def _queries(depth=2):
    leaf = st.one_of(
        st.sampled_from(_VOCAB).map(Term),
        st.tuples(st.sampled_from(_VOCAB), st.sampled_from(_VOCAB)).map(
            lambda pair: Phrase(pair)
        ),
    )
    if depth == 0:
        return leaf
    sub = _queries(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(sub, sub).map(lambda pair: And(*pair)),
        st.tuples(sub, sub).map(lambda pair: Or(*pair)),
        sub.map(Not),
    )


def _naive_eval(query: Query, docs: dict[str, list[str]]) -> set[str]:
    if isinstance(query, Term):
        return {eid for eid, words in docs.items() if query.token in words}
    if isinstance(query, Phrase):
        out = set()
        for eid, words in docs.items():
            for i in range(len(words) - len(query.tokens) + 1):
                if tuple(words[i : i + len(query.tokens)]) == query.tokens:
                    out.add(eid)
                    break
        return out
    if isinstance(query, And):
        return _naive_eval(query.left, docs) & _naive_eval(query.right, docs)
    if isinstance(query, Or):
        return _naive_eval(query.left, docs) | _naive_eval(query.right, docs)
    if isinstance(query, Not):
        return set(docs) - _naive_eval(query.operand, docs)
    raise TypeError(type(query))


class TestIndexMatchesReference:
    @settings(max_examples=150, deadline=None)
    @given(_documents, _queries())
    def test_search_equals_naive_scan(self, texts, query):
        index = InvertedIndex()
        docs = {}
        for i, text in enumerate(texts):
            eid = f"d{i}"
            index.add_entity(Entity(entity_id=eid, content=text))
            docs[eid] = [t.lower for t in tokenize(text)]
        assert index.search(query) == _naive_eval(query, docs)

    @settings(max_examples=50, deadline=None)
    @given(_documents)
    def test_reindexing_is_idempotent(self, texts):
        index = InvertedIndex()
        entities = [Entity(entity_id=f"d{i}", content=t) for i, t in enumerate(texts)]
        index.add_all(entities)
        before = {w: index.search(Term(w)) for w in _VOCAB}
        index.add_all(entities)  # re-add everything
        after = {w: index.search(Term(w)) for w in _VOCAB}
        assert before == after
        assert index.document_count == len(entities)
