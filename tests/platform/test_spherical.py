"""Tests for spherical (geospatial) queries — a paper-named query type."""

import pytest

from repro.miners import GeographicContextMiner, TokenizerMiner
from repro.platform import Entity, InvertedIndex
from repro.platform.indexer import haversine_km
from repro.platform.query import Near, QueryParseError, parse_query


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(48.86, 2.35, 48.86, 2.35) == 0.0

    def test_known_distance_paris_london(self):
        # ~344 km great-circle.
        distance = haversine_km(48.86, 2.35, 51.51, -0.13)
        assert 320 <= distance <= 370

    def test_symmetry(self):
        a = haversine_km(35.68, 139.69, 40.71, -74.01)
        b = haversine_km(40.71, -74.01, 35.68, 139.69)
        assert a == pytest.approx(b)

    def test_antipodal_half_circumference(self):
        distance = haversine_km(0, 0, 0, 180)
        assert distance == pytest.approx(3.14159265 * 6371, rel=1e-3)


class TestNearParsing:
    def test_parse(self):
        node = parse_query("near:[48.86,2.35,500]")
        assert node == Near(48.86, 2.35, 500.0)

    def test_wrong_arity(self):
        with pytest.raises(QueryParseError):
            parse_query("near:[1,2]")

    def test_non_numeric(self):
        with pytest.raises(QueryParseError):
            parse_query("near:[a,b,c]")

    def test_bad_latitude(self):
        with pytest.raises(QueryParseError):
            parse_query("near:[99,0,10]")

    def test_bad_radius(self):
        with pytest.raises(ValueError):
            Near(0, 0, -5)

    def test_combinable_with_boolean(self):
        node = parse_query("camera AND near:[0,0,100]")
        assert "Near" in repr(node)


@pytest.fixture()
def geo_index():
    docs = {
        "paris": "The launch event in Paris drew crowds.",
        "tokyo": "Our Tokyo office expanded this year.",
        "nyc": "The New York branch closed early.",
        "nowhere": "No places are mentioned here at all.",
    }
    index = InvertedIndex()
    for eid, text in docs.items():
        entity = Entity(entity_id=eid, content=text)
        TokenizerMiner().process(entity)
        GeographicContextMiner().process(entity)
        index.add_entity(entity)
    return index


class TestNearEvaluation:
    def test_radius_hits_one_city(self, geo_index):
        assert geo_index.search("near:[48.86,2.35,500]") == {"paris"}

    def test_radius_covers_continent(self, geo_index):
        hits = geo_index.search("near:[48.86,2.35,6000]")
        assert "paris" in hits and "nyc" in hits
        assert "tokyo" not in hits

    def test_unlocated_documents_never_match(self, geo_index):
        assert "nowhere" not in geo_index.search("near:[0,0,20000]")

    def test_combined_with_terms(self, geo_index):
        assert geo_index.search("near:[48.86,2.35,500] AND crowds") == {"paris"}
        assert geo_index.search("near:[48.86,2.35,500] AND office") == set()

    def test_remove_entity_clears_locations(self, geo_index):
        geo_index.remove_entity("paris")
        assert geo_index.search("near:[48.86,2.35,500]") == set()
