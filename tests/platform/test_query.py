"""Unit tests for the query language parser."""

import pytest

from repro.platform.query import (
    And,
    Concept,
    Not,
    Or,
    Phrase,
    QueryParseError,
    Range,
    Regex,
    Term,
    parse_query,
    render_query,
)


class TestAtoms:
    def test_bare_term_lowercased(self):
        assert parse_query("Camera") == Term("camera")

    def test_phrase(self):
        assert parse_query('"picture quality"') == Phrase(("picture", "quality"))

    def test_single_word_phrase_is_term(self):
        assert parse_query('"camera"') == Term("camera")

    def test_regex(self):
        node = parse_query(r"re:/NR\d+/")
        assert isinstance(node, Regex)
        assert node.compiled().fullmatch("NR70")

    def test_bad_regex_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query("re:/(/")

    def test_range(self):
        assert parse_query("year:[2003 TO 2005]") == Range("year", 2003.0, 2005.0)

    def test_bad_range_body(self):
        with pytest.raises(QueryParseError):
            parse_query("year:[2003]")

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError):
            Range("year", 5, 1)

    def test_concept(self):
        assert parse_query("sentiment:+") == Concept("sentiment", "+")
        assert parse_query("spot:camera") == Concept("spot", "camera")


class TestBooleanStructure:
    def test_and(self):
        assert parse_query("a AND b") == And(Term("a"), Term("b"))

    def test_implicit_and(self):
        assert parse_query("a b") == And(Term("a"), Term("b"))

    def test_or(self):
        assert parse_query("a OR b") == Or(Term("a"), Term("b"))

    def test_not(self):
        assert parse_query("NOT a") == Not(Term("a"))

    def test_precedence_and_binds_tighter(self):
        node = parse_query("a OR b AND c")
        assert node == Or(Term("a"), And(Term("b"), Term("c")))

    def test_parentheses_override(self):
        node = parse_query("(a OR b) AND c")
        assert node == And(Or(Term("a"), Term("b")), Term("c"))

    def test_nested(self):
        node = parse_query('camera AND (battery OR "picture quality") AND NOT tripod')
        assert isinstance(node, And)
        assert isinstance(node.right, Not)

    def test_left_associative_and_chain(self):
        node = parse_query("a AND b AND c")
        assert node == And(And(Term("a"), Term("b")), Term("c"))


class TestErrors:
    def test_empty_query(self):
        with pytest.raises(QueryParseError):
            parse_query("")

    def test_unbalanced_paren(self):
        with pytest.raises(QueryParseError):
            parse_query("(a AND b")

    def test_dangling_operator(self):
        with pytest.raises(QueryParseError):
            parse_query("a AND")

    def test_stray_close_paren(self):
        with pytest.raises(QueryParseError):
            parse_query("a )")

    def test_phrase_must_be_nonempty(self):
        with pytest.raises(QueryParseError):
            parse_query('""')


class TestLexerHardening:
    def test_unclosed_quote_rejected(self):
        with pytest.raises(QueryParseError, match="unclosed quote"):
            parse_query('"picture quality')

    def test_unclosed_quote_mid_query_rejected(self):
        with pytest.raises(QueryParseError, match="unclosed quote"):
            parse_query('camera AND "battery life')

    def test_empty_regex_body_rejected(self):
        with pytest.raises(QueryParseError, match="re://"):
            parse_query("re://")

    def test_closed_quotes_still_lex(self):
        assert parse_query('"picture quality"') == Phrase(("picture", "quality"))

    def test_regex_compiled_is_memoised(self):
        node = Regex(r"nr\d+")
        first = node.compiled()
        assert node.compiled() is first
        # The cache never leaks into equality or hashing.
        assert node == Regex(r"nr\d+")
        assert hash(node) == hash(Regex(r"nr\d+"))


class TestRendering:
    def test_round_trip_of_compound_query(self):
        text = 'camera AND (battery OR "picture quality") AND NOT tripod'
        node = parse_query(text)
        assert parse_query(render_query(node)) == node

    def test_round_trip_of_range_and_regex(self):
        for text in ("year:[2003 TO 2005]", r"re:/nr\d+/", "spot:NR70"):
            node = parse_query(text)
            assert parse_query(render_query(node)) == node
