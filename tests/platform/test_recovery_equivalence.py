"""The recovery determinism gate: crashed-and-healed equals never-crashed.

Three layers of evidence for DESIGN.md §5j:

* a byte-identity gate on the full serving stack — after a seeded
  crash-restart run settles, every replica's segment digests (and the
  answers the router serves) are identical to a run that never crashed,
  and the same seed reproduces the whole report byte-for-byte;
* a WAL replay gate — a crash between "batch accepted" and "segment
  absorbed" (on either side of the absorb) replays to the same
  observable state as a run with no crash, exactly once;
* a Hypothesis property — *any* seeded interleaving of deaths, rejoins,
  delta batches, compactions, and recovery ticks converges to
  byte-identical replicas at the restored replication factor.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import SentimentMiner, Subject
from repro.obs import Obs, SLOMonitor, default_serving_slos
from repro.platform.entity import Entity
from repro.platform.faults import FaultPlan
from repro.platform.ingestion import DELTA_ADD, DocumentDelta
from repro.platform.recovery import RecoveryManager
from repro.platform.segments import CompactionPolicy, DeltaIndexer, LiveIndexer
from repro.platform.serving import LoadProfile, ReplicatedIndex, build_scenario
from repro.platform.serving.shards import segment_digest
from repro.platform.wal import WriteAheadLog

pytestmark = pytest.mark.recovery

TEMPLATES = (
    "The NR70 is excellent . I love the pictures .",
    "The NR70 is awful . The battery is bad .",
    "The G3 is great . Pictures look sharp .",
    "The G3 is terrible . The lens is poor .",
)


def fresh_miner(obs=None):
    return SentimentMiner(
        subjects=[Subject("NR70"), Subject("G3")], obs=obs or Obs.default()
    )


def add(doc_id, content):
    return DocumentDelta(
        kind=DELTA_ADD,
        entity_id=doc_id,
        entity=Entity(entity_id=doc_id, content=content),
    )


def replica_vectors(index):
    """Per-shard, per-node segment digest vectors — the byte-level view."""
    return {
        shard_id: tuple(
            sorted(
                (replica.node_id, replica.version_vector())
                for replica in index.replicas_for(shard_id)
            )
        )
        for shard_id in index.shard_ids()
    }


def run_scenario(chaos_seed, restarts):
    obs = Obs.enabled()
    slo = SLOMonitor(obs, default_serving_slos())
    scenario = build_scenario(
        chaos_seed=chaos_seed,
        batches=4,
        obs=obs,
        slo=slo,
        restarts=restarts,
        profile=LoadProfile(requests=120),
    )
    report = scenario.run()
    return scenario, report


def served_answers(scenario):
    """Fixed read set through the router; content-only (no meta/latency)."""
    router = scenario.router
    answers = []
    for op, payload in (
        ("subjects", {}),
        ("counts", {"subject": "powershot g3"}),
        ("search", {"q": "battery"}),
    ):
        request = router.make_request(op, payload, priority=2, budget=8.0)
        immediate = router.submit(request)
        outcomes = [(request, immediate)] if immediate is not None else []
        outcomes.extend(router.drain())
        for _, envelope in outcomes:
            answers.append(envelope["data"])
    return answers


class TestRecoveryDeterminismGate:
    def test_healed_cluster_is_byte_identical_to_unchaosed_run(self):
        chaos, chaos_report = run_scenario(chaos_seed=7, restarts=True)
        clean, _ = run_scenario(chaos_seed=None, restarts=False)
        assert chaos_report["recovery"]["settled"] is True
        assert chaos_report["recovery"]["deaths"] == 1
        assert chaos_report["recovery"]["rejoins"] == 1
        # Every replica of every shard — including the crashed node's —
        # carries exactly the segments of a run that never crashed.
        assert replica_vectors(chaos.router.index) == replica_vectors(
            clean.router.index
        )

    def test_served_answers_match_after_recovery(self):
        chaos, _ = run_scenario(chaos_seed=7, restarts=True)
        clean, _ = run_scenario(chaos_seed=None, restarts=False)
        assert served_answers(chaos) == served_answers(clean)

    def test_same_seed_full_report_is_byte_identical(self):
        for seed in (7, 11):
            _, first = run_scenario(chaos_seed=seed, restarts=True)
            _, second = run_scenario(chaos_seed=seed, restarts=True)
            assert json.dumps(first, sort_keys=True) == json.dumps(
                second, sort_keys=True
            )

    def test_recovery_lifecycle_is_visible_in_the_report(self):
        _, report = run_scenario(chaos_seed=7, restarts=True)
        recovery = report["recovery"]
        assert recovery["transfers"] > 0
        assert recovery["docs_shipped"] > 0
        assert recovery["probes_admitted"] == 1
        assert recovery["restore_durations"]
        assert recovery["catchup_durations"]
        assert recovery["under_replicated"] == []
        assert report["fault_summary"]["scheduled_node_restarts"] == 1
        assert report["late_responses"] == 0
        assert report["malformed_responses"] == 0


# ---------------------------------------------------------------------------
# WAL replay after a mid-batch crash
# ---------------------------------------------------------------------------


def wal_stack(obs=None):
    obs = obs or Obs.default()
    index = ReplicatedIndex(4, 3, replication=2)
    wal = WriteAheadLog(obs=obs)
    live = LiveIndexer(
        index,
        DeltaIndexer(fresh_miner(obs), obs=obs),
        obs=obs,
        policy=CompactionPolicy(max_segments=8),
        wal=wal,
    )
    return index, wal, live, obs


BATCH_ONE = [add("d0", TEMPLATES[0]), add("d1", TEMPLATES[1])]
BATCH_TWO = [add("d2", TEMPLATES[2]), add("d3", TEMPLATES[3])]


def no_crash_reference():
    index, wal, live, _ = wal_stack()
    for batch in (BATCH_ONE, BATCH_TWO):
        live.apply_batch(batch, lsn=wal.append(batch))
    return replica_vectors(index)


class TestWalReplay:
    def test_crash_before_absorb_replays_to_the_no_crash_state(self):
        index, wal, live, obs = wal_stack()
        live.apply_batch(BATCH_ONE, lsn=wal.append(BATCH_ONE))
        wal.append(BATCH_TWO)  # accepted ...
        # ... and the indexer dies before apply_batch.  A restarted
        # indexer (fresh miner, fresh LiveIndexer — the crashed one is
        # gone) replays the unsealed suffix.
        restarted = LiveIndexer(
            index,
            DeltaIndexer(fresh_miner(obs), obs=obs),
            obs=obs,
            policy=CompactionPolicy(max_segments=8),
            wal=wal,
        )
        recovery = RecoveryManager(
            index, None, obs, wal=wal, live_indexer=restarted
        )
        assert recovery.replay_wal() == 1
        assert wal.depth == 0
        assert replica_vectors(index) == no_crash_reference()

    def test_crash_after_absorb_before_seal_is_idempotent(self):
        # The worst window: the segment was absorbed but the crash beat
        # the seal.  Replay re-absorbs the batch; full-batch tombstones
        # mask the first copy, so the observable documents and judgments
        # converge (exactly-once at the content level).
        index, wal, live, obs = wal_stack()
        live.apply_batch(BATCH_ONE, lsn=wal.append(BATCH_ONE))
        lsn = wal.append(BATCH_TWO)
        live.apply_batch(BATCH_TWO)  # absorbed, but lsn never sealed
        assert wal.depth == 1
        restarted = LiveIndexer(
            index,
            DeltaIndexer(fresh_miner(obs), obs=obs),
            obs=obs,
            policy=CompactionPolicy(max_segments=8),
            wal=wal,
        )
        recovery = RecoveryManager(
            index, None, obs, wal=wal, live_indexer=restarted
        )
        assert recovery.replay_wal() == 1
        assert wal.checkpoint_lsn == lsn
        reference = ReplicatedIndex(4, 3, replication=2)
        obs2 = Obs.default()
        ref_live = LiveIndexer(
            reference,
            DeltaIndexer(fresh_miner(obs2), obs=obs2),
            obs=obs2,
            policy=CompactionPolicy(max_segments=8),
        )
        ref_live.apply_batch(BATCH_ONE)
        ref_live.apply_batch(BATCH_TWO)
        for shard_id in index.shard_ids():
            got = index.replicas_for(shard_id)[0].view()
            want = reference.replicas_for(shard_id)[0].view()
            assert sorted(got.inverted.doc_ids) == sorted(want.inverted.doc_ids)
            assert (
                got.sentiment.subject_counts() == want.sentiment.subject_counts()
            )
        assert recovery.replay_wal() == 0  # sealed now; nothing to redo


# ---------------------------------------------------------------------------
# property: any interleaving converges
# ---------------------------------------------------------------------------

#: One chaos step: kill a node / schedule its restart / apply the next
#: delta batch / run a recovery tick.  Invalid steps are skipped by the
#: interpreter (kill while a node is down, restart with nobody down).
#: The interpreter ticks the recovery manager right after every kill and
#: restart — the failure detector observes each liveness transition
#: before the next fault.  Without that assumption RF=2 genuinely loses
#: data: two nodes blipping across two different batches leaves no
#: complete replica to heal from.
step_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("kill"), st.integers(0, 2)),
        st.just(("restart",)),
        st.just(("batch",)),
        st.just(("tick",)),
    ),
    min_size=1,
    max_size=10,
)


def interleaved_build(steps):
    """Run *steps* on a live cluster with recovery; return (index, batches)."""
    obs = Obs.default()
    index = ReplicatedIndex(4, 3, replication=2)
    wal = WriteAheadLog(obs=obs)
    live = LiveIndexer(
        index,
        DeltaIndexer(fresh_miner(obs), obs=obs),
        obs=obs,
        policy=CompactionPolicy(max_segments=2),  # compact aggressively
        wal=wal,
    )
    plan = FaultPlan(0)
    recovery = RecoveryManager(index, plan, obs, wal=wal, live_indexer=live)
    died: set[int] = set()
    down: int | None = None
    batches = 0
    for step in steps:
        if step[0] == "kill":
            node = step[1]
            if down is not None or node in died:
                continue  # single-failure model; one death per node
            plan.kill_node(node)
            died.add(node)
            down = node
            recovery.tick()  # the detector sees the death promptly
        elif step[0] == "restart":
            if down is None:
                continue
            plan.restart_node(down, after_cost=obs.clock.now + 1.0)
            obs.clock.advance(1.5)
            down = None
            recovery.tick()  # ... and the rejoin
        elif step[0] == "batch":
            batch = [add(f"b{batches}", TEMPLATES[batches % len(TEMPLATES)])]
            live.apply_batch(batch, lsn=wal.append(batch))
            batches += 1
        else:
            recovery.tick()
    if down is not None:
        plan.restart_node(down, after_cost=obs.clock.now + 1.0)
        obs.clock.advance(1.5)
    for _ in range(8):
        if recovery.settled:
            break
        recovery.tick()
        obs.clock.advance(0.5)
    assert recovery.settled
    assert wal.depth == 0
    return index, batches


def reference_build(batches):
    """The same batch sequence on a cluster that never crashed."""
    obs = Obs.default()
    index = ReplicatedIndex(4, 3, replication=2)
    live = LiveIndexer(
        index,
        DeltaIndexer(fresh_miner(obs), obs=obs),
        obs=obs,
        policy=CompactionPolicy(max_segments=2),
    )
    for i in range(batches):
        live.apply_batch([add(f"b{i}", TEMPLATES[i % len(TEMPLATES)])])
    return index


class TestInterleavingProperty:
    @settings(
        max_examples=25,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(steps=step_strategy)
    def test_any_interleaving_converges_to_identical_replicas(self, steps):
        index, batches = interleaved_build(steps)
        reference = reference_build(batches)
        for shard_id in index.shard_ids():
            vectors = {
                replica.version_vector()
                for replica in index.replicas_for(shard_id)
            }
            assert len(vectors) == 1  # replicas byte-identical
            assert len(index.replicas_for(shard_id)) == index.replication
        assert index.under_replicated() == []
        assert replica_vectors(index) == replica_vectors(reference)

    @settings(max_examples=10, deadline=None, derandomize=True)
    @given(steps=step_strategy)
    def test_interleavings_are_reproducible(self, steps):
        first, _ = interleaved_build(steps)
        second, _ = interleaved_build(steps)
        assert replica_vectors(first) == replica_vectors(second)

    def test_unobserved_blip_is_healed_by_the_sweep(self):
        # A node dies, misses a batch, and comes back entirely between
        # two recovery ticks.  Liveness alone would call the stale
        # replica healthy; the digest-guided anti-entropy sweep must
        # still notice the divergence and heal it.
        obs = Obs.default()
        index = ReplicatedIndex(4, 3, replication=2)
        wal = WriteAheadLog(obs=obs)
        live = LiveIndexer(
            index,
            DeltaIndexer(fresh_miner(obs), obs=obs),
            obs=obs,
            policy=CompactionPolicy(max_segments=2),
            wal=wal,
        )
        plan = FaultPlan(0)
        recovery = RecoveryManager(index, plan, obs, wal=wal, live_indexer=live)
        plan.kill_node(0)
        batch = [add("b0", TEMPLATES[0])]
        live.apply_batch(batch, lsn=wal.append(batch))  # node 0 misses it
        plan.restart_node(0, after_cost=obs.clock.now + 1.0)
        obs.clock.advance(1.5)  # back up before any tick ran
        assert not recovery.settled  # divergence counts as unhealed
        recovery.tick()
        assert recovery.settled
        assert any(e["kind"] == "sweep" for e in recovery.events)
        assert replica_vectors(index) == replica_vectors(reference_build(1))


def test_segment_digest_distinguishes_content():
    obs = Obs.default()
    index = ReplicatedIndex(1, 1, replication=1)
    live = LiveIndexer(
        index, DeltaIndexer(fresh_miner(obs), obs=obs), obs=obs
    )
    live.apply_batch([add("d0", TEMPLATES[0])])
    live.apply_batch([add("d1", TEMPLATES[1])])
    (replica,) = index.replicas_for(0)
    digests = [segment_digest(s) for s in replica.segments]
    assert len(set(digests)) == len(digests)
