"""The v1 envelope schema and opaque-cursor contract."""

import pytest

from repro.platform.api import (
    API_VERSION,
    ERR_BAD_REQUEST,
    ERROR_CODES,
    CursorError,
    decode_cursor,
    encode_cursor,
    error_envelope,
    is_envelope,
    make_meta,
    ok_envelope,
    paginate,
    validate_envelope,
)


class TestEnvelopes:
    def test_ok_envelope_shape(self):
        envelope = ok_envelope({"answer": 42})
        assert validate_envelope(envelope) == []
        assert envelope["api_version"] == API_VERSION
        assert envelope["ok"] is True
        assert envelope["data"] == {"answer": 42}
        assert envelope["error"] is None
        for key in ("degraded", "missing_shards", "shed", "cursor"):
            assert key in envelope["meta"]

    def test_error_envelope_shape(self):
        envelope = error_envelope(ERR_BAD_REQUEST, "nope")
        assert validate_envelope(envelope) == []
        assert envelope["ok"] is False
        assert envelope["data"] is None
        assert envelope["error"] == {"code": "bad_request", "message": "nope"}

    def test_unknown_error_code_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown error code"):
            error_envelope("whoops", "message")

    def test_every_registered_code_constructs(self):
        for code in sorted(ERROR_CODES):
            assert validate_envelope(error_envelope(code, "m")) == []

    def test_meta_extras_survive_but_reserved_keys_always_present(self):
        meta = make_meta(degraded=True, missing_shards=[3, 1], latency=0.5)
        assert meta["missing_shards"] == [1, 3]
        assert meta["latency"] == 0.5
        envelope = ok_envelope({}, meta=meta)
        assert validate_envelope(envelope) == []

    def test_validate_catches_missing_keys(self):
        assert validate_envelope({"ok": True}) != []
        assert validate_envelope("not a dict") != []
        assert not is_envelope({"ok": True})

    def test_validate_catches_inconsistent_ok_error(self):
        bad = ok_envelope({})
        bad["error"] = {"code": "bad_request", "message": "x"}
        assert any("error: null" in p for p in validate_envelope(bad))
        bad = error_envelope(ERR_BAD_REQUEST, "x")
        bad["data"] = {"leak": True}
        assert any("data: null" in p for p in validate_envelope(bad))

    def test_validate_catches_malformed_meta(self):
        envelope = ok_envelope({})
        envelope["meta"] = {"degraded": "yes"}
        problems = validate_envelope(envelope)
        assert any("degraded" in p for p in problems)
        assert any("missing reserved key" in p for p in problems)


class TestCursors:
    def test_round_trip(self):
        token = encode_cursor({"o": "subjects", "k": [-3, "nr70"]})
        assert decode_cursor(token) == {"o": "subjects", "k": [-3, "nr70"]}

    def test_deterministic_encoding(self):
        a = encode_cursor({"k": 1, "o": "search"})
        b = encode_cursor({"o": "search", "k": 1})
        assert a == b  # key order never leaks into the token

    def test_garbage_rejected(self):
        with pytest.raises(CursorError):
            decode_cursor("@@@not a cursor@@@")
        with pytest.raises(CursorError):
            decode_cursor("")
        with pytest.raises(CursorError):
            decode_cursor(None)

    def test_non_object_body_rejected(self):
        token = encode_cursor({"o": "x", "k": 1})
        # A token whose body is valid JSON but not an object.
        import base64

        bad = base64.urlsafe_b64encode(b"[1,2,3]").decode().rstrip("=")
        with pytest.raises(CursorError, match="object"):
            decode_cursor(bad)
        assert decode_cursor(token)["o"] == "x"


class TestPaginate:
    ITEMS = ["a", "b", "c", "d", "e"]

    def walk(self, items, limit, kind="test"):
        pages = []
        cursor = None
        while True:
            page, cursor = paginate(
                items, limit=limit, cursor=cursor, kind=kind, sort_key=lambda x: x
            )
            pages.append(page)
            if cursor is None:
                break
        return pages

    def test_pages_partition_the_list(self):
        pages = self.walk(self.ITEMS, 2)
        assert pages == [["a", "b"], ["c", "d"], ["e"]]

    def test_limit_none_returns_everything(self):
        page, cursor = paginate(
            self.ITEMS, limit=None, cursor=None, kind="t", sort_key=lambda x: x
        )
        assert page == self.ITEMS and cursor is None

    def test_exact_fit_has_no_trailing_cursor(self):
        page, cursor = paginate(
            self.ITEMS, limit=5, cursor=None, kind="t", sort_key=lambda x: x
        )
        assert page == self.ITEMS and cursor is None

    def test_kind_mismatch_rejected(self):
        _, cursor = paginate(
            self.ITEMS, limit=2, cursor=None, kind="subjects", sort_key=lambda x: x
        )
        with pytest.raises(CursorError, match="not"):
            paginate(
                self.ITEMS, limit=2, cursor=cursor, kind="search", sort_key=lambda x: x
            )

    def test_cursor_is_positional_not_offset(self):
        # Take a page, then *grow* the list before resuming — exactly
        # what a segment merge that surfaces no new equal-key rows looks
        # like.  The cursor keys on the last served sort position, so
        # resumption never re-serves or skips existing rows.
        _, cursor = paginate(
            self.ITEMS, limit=2, cursor=None, kind="t", sort_key=lambda x: x
        )
        grown = self.ITEMS + ["f", "g"]
        page, _ = paginate(
            grown, limit=3, cursor=cursor, kind="t", sort_key=lambda x: x
        )
        assert page == ["c", "d", "e"]

    def test_tuple_sort_keys_round_trip(self):
        items = [("nr70", 3), ("g3", 2), ("elph", 2)]
        ranked = sorted(items, key=lambda kv: (-kv[1], kv[0]))
        key = lambda kv: (-kv[1], kv[0])  # noqa: E731
        first, cursor = paginate(
            ranked, limit=1, cursor=None, kind="s", sort_key=key
        )
        rest, end = paginate(ranked, limit=10, cursor=cursor, kind="s", sort_key=key)
        assert first == [("nr70", 3)]
        assert rest == [("elph", 2), ("g3", 2)]
        assert end is None
