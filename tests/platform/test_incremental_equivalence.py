"""The equivalence gate: incremental builds converge to the one-pass build.

Two layers of evidence:

* a Hypothesis property — *any* partition of *any* delta stream
  (out-of-order updates and deletes included) absorbed batch-by-batch
  reads identically to one offline pass over the final document
  versions in last-write order;
* a byte-identity gate on the full serving stack — the same seed serves
  a byte-identical end-state report whether the corpus was indexed in
  one pass or N incremental batches, with and without serving chaos.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import SentimentMiner, Subject
from repro.obs import Obs
from repro.platform.entity import Entity
from repro.platform.ingestion import (
    DELTA_ADD,
    DELTA_DELETE,
    DELTA_UPDATE,
    DocumentDelta,
)
from repro.platform.serving import LoadProfile, ReplicatedIndex, build_scenario

pytestmark = pytest.mark.incremental

#: Sentence pool: positive/negative/neutral mentions of two subjects.
TEMPLATES = (
    "The NR70 is excellent . I love the pictures .",
    "The NR70 is awful . The battery is bad .",
    "The G3 is great . Pictures look sharp .",
    "The G3 is terrible . The lens is poor .",
    "The NR70 and the G3 are cameras . Nothing else to say .",
)

DOC_IDS = ("d0", "d1", "d2", "d3")

QUERIES = ("nr70", "g3", "nr70 AND NOT awful", '"the pictures"', "pictures OR lens")


def fresh_miner(obs=None):
    return SentimentMiner(
        subjects=[Subject("NR70"), Subject("G3")], obs=obs or Obs.default()
    )


#: One op: (doc index, template index) writes; (doc index, None) deletes.
ops_strategy = st.lists(
    st.tuples(
        st.integers(0, len(DOC_IDS) - 1),
        st.one_of(st.none(), st.integers(0, len(TEMPLATES) - 1)),
    ),
    min_size=1,
    max_size=12,
)


def to_deltas(ops):
    """Delta stream in delivery order, with add/update kinds resolved."""
    deltas = []
    live = set()
    for doc_index, template_index in ops:
        doc_id = DOC_IDS[doc_index]
        if template_index is None:
            deltas.append(DocumentDelta(kind=DELTA_DELETE, entity_id=doc_id))
            live.discard(doc_id)
        else:
            kind = DELTA_UPDATE if doc_id in live else DELTA_ADD
            content = TEMPLATES[template_index]
            deltas.append(
                DocumentDelta(
                    kind=kind,
                    entity_id=doc_id,
                    entity=Entity(entity_id=doc_id, content=content),
                )
            )
            live.add(doc_id)
    return deltas


def final_versions(deltas):
    """Surviving documents in last-write order (the LSM read order)."""
    live = {}
    for delta in deltas:
        live.pop(delta.entity_id, None)
        if delta.kind != DELTA_DELETE:
            live[delta.entity_id] = delta.entity
    return list(live.values())


def build_incremental(deltas, cuts):
    """Absorb the stream as batches split at *cuts* (sorted positions)."""
    from repro.platform.segments import CompactionPolicy, DeltaIndexer, LiveIndexer

    obs = Obs.default()
    index = ReplicatedIndex(2, 2, replication=1)
    live = LiveIndexer(
        index,
        DeltaIndexer(fresh_miner(obs), obs=obs),
        obs=obs,
        policy=CompactionPolicy(max_segments=2),
    )
    bounds = [0, *sorted(cuts), len(deltas)]
    for start, stop in zip(bounds, bounds[1:]):
        if stop > start:
            live.apply_batch(deltas[start:stop])
    return index


def build_one_pass(documents):
    """The offline bulk build over the final document versions."""
    miner = fresh_miner()
    index = ReplicatedIndex(2, 2, replication=1)
    result = miner.mine_corpus((e.entity_id, e.content) for e in documents)
    index.add_judgments(result.polar_judgments())
    index.add_entities(documents)
    return index


def observable_state(index):
    """Everything a reader can see, per shard, in deterministic form."""
    state = {}
    for shard_id in index.shard_ids():
        snapshot = index.replicas_for(shard_id)[0].view()
        state[shard_id] = {
            "subject_counts": snapshot.sentiment.subject_counts(),
            "entries": {
                subject: [
                    (e.entity_id, e.polarity.value, e.start, e.end)
                    for e in snapshot.sentiment.query(subject)
                ]
                for subject in snapshot.sentiment.subject_counts()
            },
            "doc_ids": sorted(snapshot.inverted.doc_ids),
            "idf_table": snapshot.inverted.idf_table(),
            "searches": {q: sorted(snapshot.inverted.search(q)) for q in QUERIES},
        }
    return state


class TestEquivalenceProperty:
    @settings(
        max_examples=40,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops=ops_strategy, data=st.data())
    def test_any_partition_converges_to_the_one_pass_build(self, ops, data):
        deltas = to_deltas(ops)
        cuts = data.draw(
            st.sets(st.integers(1, max(1, len(deltas) - 1)), max_size=4),
            label="batch cut points",
        )
        incremental = build_incremental(deltas, cuts)
        one_pass = build_one_pass(final_versions(deltas))
        assert observable_state(incremental) == observable_state(one_pass)

    @settings(max_examples=15, deadline=None, derandomize=True)
    @given(ops=ops_strategy)
    def test_one_batch_equals_many_singleton_batches(self, ops):
        deltas = to_deltas(ops)
        as_one = build_incremental(deltas, cuts=())
        as_many = build_incremental(deltas, cuts=range(1, len(deltas)))
        assert observable_state(as_one) == observable_state(as_many)


SEED = 2005
DOCS = 18
REQUESTS = 120


def scenario_report(*, batches, chaos_seed):
    scenario = build_scenario(
        seed=SEED,
        docs=DOCS,
        chaos_seed=chaos_seed,
        profile=LoadProfile(requests=REQUESTS),
        batches=batches,
    )
    return json.dumps(scenario.run(), sort_keys=True)


class TestServingByteIdentity:
    """The determinism gate from ISSUE 6's acceptance criteria."""

    def test_one_pass_and_batched_builds_serve_identical_reports(self):
        one_pass = scenario_report(batches=None, chaos_seed=None)
        assert scenario_report(batches=4, chaos_seed=None) == one_pass
        assert scenario_report(batches=7, chaos_seed=None) == one_pass

    @pytest.mark.chaos
    def test_byte_identity_holds_under_serving_chaos(self):
        one_pass = scenario_report(batches=None, chaos_seed=99)
        batched = scenario_report(batches=5, chaos_seed=99)
        assert batched == one_pass
        report = json.loads(one_pass)
        assert report["dead_nodes"], "chaos must actually kill a node"
        assert report["faults_injected"] >= 0.05 * REQUESTS


class TestSnapshotReadsUnderAbsorb:
    """A fan-out read never sees a torn segment set mid-absorb."""

    def test_absorb_between_shard_reads_does_not_tear_the_answer(self):
        from repro.core.miner import SentimentMiner as _SM  # noqa: F401
        from repro.platform.datastore import DataStore
        from repro.platform.segments import DeltaIndexer, LiveIndexer
        from repro.platform.serving import ServingRouter, node_service
        from repro.platform.vinci import VinciBus

        obs = Obs.default()
        store = DataStore()
        index = ReplicatedIndex(4, 2, replication=1)
        live = LiveIndexer(index, DeltaIndexer(fresh_miner(obs), obs=obs), obs=obs)
        docs = {
            "d0": "The NR70 is excellent . Pictures are sharp .",
            "d1": "The G3 is great . The pictures are lovely .",
            "d2": "The NR70 is awful . The pictures are poor .",
        }
        for doc_id, content in docs.items():
            store.store(Entity(entity_id=doc_id, content=content))
        live.apply_batch(
            [
                DocumentDelta(
                    kind=DELTA_ADD,
                    entity_id=doc_id,
                    entity=Entity(entity_id=doc_id, content=content),
                )
                for doc_id, content in docs.items()
            ]
        )
        bus = VinciBus(obs=obs)
        router = ServingRouter(index, store, bus, obs=obs)

        # Sabotage: the first shard read triggers an absorb of a delete
        # batch mid-request — after the router pinned its version.
        fired = {"done": False}
        for node_id in (0, 1):
            service = node_service(node_id)
            inner = bus._services[service].handler

            def wrapped(payload, inner=inner):
                if not fired["done"]:
                    fired["done"] = True
                    live.apply_batch(
                        [DocumentDelta(kind=DELTA_DELETE, entity_id="d0")]
                    )
                return inner(payload)

            bus.register(service, wrapped)

        envelope = router.serve("search", {"q": "pictures"})
        assert fired["done"], "the mid-request absorb must have fired"
        assert envelope["meta"]["status"] == "ok"
        # The pinned snapshot predates the delete: all three docs answer.
        assert envelope["data"]["ids"] == ["d0", "d1", "d2"]
        # A fresh request reads the post-delete world.
        after = router.serve("search", {"q": "pictures"})
        assert after["data"]["ids"] == ["d1", "d2"]
