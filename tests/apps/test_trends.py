"""Unit tests for market trend tracking."""

import pytest

from repro.apps.trends import TrendPoint, TrendSeries, TrendTracker
from repro.core.model import Polarity, SentimentJudgment, Spot, Subject
from repro.nlp.tokens import Span


def judgment(subject="Canon", polarity=Polarity.POSITIVE):
    spot = Spot(Subject(subject), subject, Span(0, len(subject)), 0, "d")
    return SentimentJudgment(spot=spot, polarity=polarity)


class TestTrendPoint:
    def test_satisfaction(self):
        point = TrendPoint("2004-06", positive=3, negative=1)
        assert point.satisfaction == 0.75
        assert point.total == 4

    def test_empty_period(self):
        assert TrendPoint("2004-06", 0, 0).satisfaction == 0.0


class TestTrendTracker:
    def test_period_truncation(self):
        tracker = TrendTracker(period_length=7)
        assert tracker.period_of("2004-06-15") == "2004-06"

    def test_bad_period_length(self):
        with pytest.raises(ValueError):
            TrendTracker(period_length=0)

    def test_add_and_series(self):
        tracker = TrendTracker()
        tracker.add(judgment(), "2004-05-10")
        tracker.add(judgment(), "2004-05-20")
        tracker.add(judgment(polarity=Polarity.NEGATIVE), "2004-06-01")
        series = tracker.series("Canon")
        assert [p.period for p in series.points] == ["2004-05", "2004-06"]
        assert series.points[0].positive == 2
        assert series.points[1].negative == 1

    def test_neutral_ignored(self):
        tracker = TrendTracker()
        tracker.add(judgment(polarity=Polarity.NEUTRAL), "2004-05-01")
        assert tracker.subjects() == []

    def test_add_all_counts_polar_only(self):
        tracker = TrendTracker()
        n = tracker.add_all(
            [
                (judgment(), "2004-05-01"),
                (judgment(polarity=Polarity.NEUTRAL), "2004-05-01"),
            ]
        )
        assert n == 1

    def test_unknown_subject_empty_series(self):
        series = TrendTracker().series("Ghost")
        assert series.points == []
        assert series.direction == "flat"


class TestDirection:
    def build(self, month_buckets):
        tracker = TrendTracker()
        for month, (pos, neg) in month_buckets.items():
            for _ in range(pos):
                tracker.add(judgment(), f"2004-{month}-05")
            for _ in range(neg):
                tracker.add(judgment(polarity=Polarity.NEGATIVE), f"2004-{month}-05")
        return tracker.series("Canon")

    def test_improving(self):
        series = self.build({"01": (1, 4), "02": (1, 3), "03": (4, 1), "04": (5, 1)})
        assert series.direction == "improving"

    def test_declining(self):
        series = self.build({"01": (5, 1), "02": (4, 1), "03": (1, 4), "04": (1, 5)})
        assert series.direction == "declining"

    def test_flat(self):
        series = self.build({"01": (2, 2), "02": (2, 2), "03": (2, 2), "04": (2, 2)})
        assert series.direction == "flat"

    def test_single_period_flat(self):
        series = self.build({"01": (5, 0)})
        assert series.direction == "flat"


class TestRenderAndMovers:
    def test_render_contains_chart_and_table(self):
        tracker = TrendTracker()
        tracker.add(judgment(), "2004-05-01")
        tracker.add(judgment(polarity=Polarity.NEGATIVE), "2004-06-01")
        out = tracker.series("Canon").render()
        assert "satisfaction by period" in out
        assert "2004-05" in out and "2004-06" in out

    def test_movers(self):
        tracker = TrendTracker()
        for month in ("01", "02"):
            tracker.add(judgment("Up", Polarity.NEGATIVE), f"2004-{month}-01")
        for month in ("03", "04"):
            tracker.add(judgment("Up", Polarity.POSITIVE), f"2004-{month}-01")
        for month in ("01", "02", "03", "04"):
            tracker.add(judgment("Steady", Polarity.POSITIVE), f"2004-{month}-01")
        movers = dict(tracker.movers())
        assert movers == {"Up": "improving"}
