"""Unit tests for the reputation-management application."""

import pytest

from repro.apps import ReputationManager
from repro.core import Subject
from repro.core.model import Polarity

DOCS = [
    ("d1", "The Canon takes excellent pictures. The Canon is superb."),
    ("d2", "The Canon is terrible. I love the Nikon."),
    ("d3", "The Nikon impressed everyone. The Nikon works really well."),
    ("d4", "Nothing interesting happened on Monday."),
]


@pytest.fixture(scope="module")
def manager():
    mgr = ReputationManager([Subject("Canon"), Subject("Nikon")], num_partitions=4, num_nodes=2)
    mgr.load_documents(DOCS)
    mgr.build()
    return mgr


class TestBuild:
    def test_requires_subjects(self):
        with pytest.raises(ValueError):
            ReputationManager([])

    def test_query_before_build_raises(self):
        mgr = ReputationManager([Subject("Canon")])
        with pytest.raises(RuntimeError):
            mgr.summary("Canon")

    def test_loaded_documents_stored(self, manager):
        assert len(manager.store) == 4


class TestSummaries:
    def test_summary_counts(self, manager):
        canon = manager.summary("Canon")
        assert canon.positive == 2
        assert canon.negative == 1
        assert canon.satisfaction == pytest.approx(2 / 3)

    def test_summaries_sorted_by_mentions(self, manager):
        summaries = manager.summaries()
        assert summaries[0].total >= summaries[-1].total

    def test_unknown_subject_zero(self, manager):
        s = manager.summary("Kodak")
        assert s.total == 0
        assert s.satisfaction == 0.0


class TestSentences:
    def test_sentence_listing(self, manager):
        rows = manager.sentences("Nikon")
        assert len(rows) == 3
        assert all(row["polarity"] in "+-" for row in rows)

    def test_polarity_filter(self, manager):
        rows = manager.sentences("Canon", polarity="-")
        assert len(rows) == 1
        assert "terrible" in rows[0]["sentence"]

    def test_limit(self, manager):
        assert len(manager.sentences("Nikon", limit=1)) == 1


class TestRendering:
    def test_product_summary_masked(self, manager):
        out = manager.render_product_summary(mask_names=True)
        assert "Product A" in out
        assert "Canon" not in out

    def test_product_summary_unmasked(self, manager):
        out = manager.render_product_summary()
        assert "Canon" in out and "Nikon" in out

    def test_sentences_rendering(self, manager):
        out = manager.render_sentences("Canon")
        assert "Figure 5" in out

    def test_satisfaction_chart(self, manager):
        out = manager.render_satisfaction_chart(["Canon", "Nikon"])
        assert "#" in out
        assert "Canon" in out


class TestServices:
    def test_services_registered_on_bus(self, manager):
        assert "sentiment.counts" in manager.bus
        counts = manager.bus.request("sentiment.counts", {"subject": "Nikon"})
        assert counts["ok"] is True and counts["api_version"] == "v1"
        assert counts["data"]["positive"] == 3
        assert counts["data"]["negative"] == 0

    def test_search_service_works(self, manager):
        out = manager.bus.request("search.query", {"q": "excellent AND pictures"})
        assert out["data"]["ids"] == ["d1"]


class TestFeatureDiscovery:
    def test_discovered_features_become_subjects(self):
        from repro.corpora import camera_reviews

        dataset = camera_reviews(scale=0.02)
        mgr = ReputationManager([Subject("Canon")], num_partitions=4, num_nodes=2)
        mgr.load_documents((d.doc_id, d.text) for d in dataset.dplus)
        added = mgr.discover_feature_subjects(dataset.dminus_texts(), top_n=10)
        assert added
        assert any(s.canonical in ("camera", "picture", "flash") for s in added)
        mgr.build()
        # The discovered features now accumulate sentiment.
        assert any(mgr.summary(s.canonical).total > 0 for s in added)

    def test_existing_subjects_not_duplicated(self):
        from repro.corpora import camera_reviews

        dataset = camera_reviews(scale=0.02)
        mgr = ReputationManager([Subject("camera")], num_partitions=4, num_nodes=2)
        mgr.load_documents((d.doc_id, d.text) for d in dataset.dplus)
        added = mgr.discover_feature_subjects(dataset.dminus_texts(), top_n=5)
        assert all(s.canonical != "camera" for s in added)

    def test_discovery_after_build_rejected(self):
        mgr = ReputationManager([Subject("Canon")], num_partitions=4, num_nodes=2)
        mgr.load_documents([("d1", "The Canon is fine.")])
        mgr.build()
        import pytest as _pytest

        with _pytest.raises(RuntimeError):
            mgr.discover_feature_subjects([])
