"""Unit and property tests for MinHash duplicate detection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.miners.duplicates import (
    DuplicateDetectionMiner,
    jaccard,
    minhash_signature,
    shingles,
)
from repro.platform import DataStore, Entity, run_corpus_miner


class TestShingles:
    def test_basic_trigrams(self):
        out = shingles("a b c d", k=3)
        assert out == {"a b c", "b c d"}

    def test_short_text_single_shingle(self):
        assert shingles("a b", k=3) == {"a b"}

    def test_empty_text(self):
        assert shingles("", k=3) == set()

    def test_case_folded(self):
        assert shingles("A B C", k=3) == shingles("a b c", k=3)


class TestJaccard:
    def test_identical(self):
        assert jaccard({"a", "b"}, {"a", "b"}) == 1.0

    def test_disjoint(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_partial(self):
        assert jaccard({"a", "b", "c"}, {"b", "c", "d"}) == pytest.approx(0.5)

    def test_both_empty(self):
        assert jaccard(set(), set()) == 1.0


class TestMinhash:
    def test_signature_length(self):
        assert len(minhash_signature({"x"}, num_hashes=16)) == 16

    def test_deterministic(self):
        s = {"a b c", "b c d"}
        assert minhash_signature(s) == minhash_signature(s)

    def test_identical_sets_identical_signatures(self):
        assert minhash_signature({"a", "b"}) == minhash_signature({"b", "a"})

    def test_empty_set_sentinel(self):
        sig = minhash_signature(set(), num_hashes=4)
        assert sig == tuple([2**64 - 1] * 4)

    @settings(max_examples=20, deadline=None)
    @given(st.sets(st.text(alphabet="abcdef", min_size=1, max_size=4), min_size=5, max_size=30))
    def test_signature_agreement_tracks_jaccard(self, base):
        """Signature agreement approximates Jaccard within a loose band."""
        other = set(list(base)[: len(base) // 2]) | {"zz"}
        sig_a = minhash_signature(base, num_hashes=64)
        sig_b = minhash_signature(other, num_hashes=64)
        agreement = sum(1 for x, y in zip(sig_a, sig_b) if x == y) / 64
        true = jaccard(base, other)
        assert abs(agreement - true) < 0.35


class TestMinerConfig:
    def test_bands_must_divide(self):
        with pytest.raises(ValueError):
            DuplicateDetectionMiner(num_hashes=48, bands=7)

    def test_threshold_bounds(self):
        with pytest.raises(ValueError):
            DuplicateDetectionMiner(threshold=0.0)


class TestDetection:
    def _store(self, docs):
        store = DataStore(num_partitions=2)
        for eid, text in docs.items():
            store.store(Entity(entity_id=eid, content=text))
        return store

    def test_near_duplicates_found(self):
        base = "the quick brown fox jumps over the lazy dog by the river today"
        store = self._store(
            {"a": base, "b": base + "!", "c": "something else entirely different here now"}
        )
        miner = DuplicateDetectionMiner(threshold=0.7)
        pairs = miner.pairs(run_corpus_miner(miner, store))
        assert [(p.first, p.second) for p in pairs] == [("a", "b")]
        assert pairs[0].similarity > 0.7

    def test_exact_duplicates_similarity_one(self):
        text = "identical content in every respect across both documents here"
        store = self._store({"x": text, "y": text})
        miner = DuplicateDetectionMiner()
        pairs = miner.pairs(run_corpus_miner(miner, store))
        assert pairs[0].similarity == 1.0

    def test_no_duplicates(self):
        store = self._store(
            {
                "a": "cameras take pictures of mountains in the north",
                "b": "orchestras perform symphonies in concert halls nightly",
            }
        )
        miner = DuplicateDetectionMiner()
        assert miner.pairs(run_corpus_miner(miner, store)) == []

    def test_cross_partition_pairs_found(self):
        # Duplicates land in different partitions; reduce must join them.
        text = "the very same words repeated in all of these documents today"
        store = DataStore(num_partitions=8)
        for i in range(6):
            store.store(Entity(entity_id=f"dup{i}", content=text))
        miner = DuplicateDetectionMiner()
        pairs = miner.pairs(run_corpus_miner(miner, store))
        assert len(pairs) == 15  # C(6,2)
