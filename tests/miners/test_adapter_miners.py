"""Unit tests for the WebFountain adapter miners."""

import pytest

from repro.core import Subject
from repro.core.disambiguation import Disambiguator, TopicTermSet
from repro.miners import (
    DisambiguatorMiner,
    FeatureTermMiner,
    NamedEntityMiner,
    OpenSentimentEntityMiner,
    PosTaggerMiner,
    SentimentEntityMiner,
    SpotterMiner,
    TokenizerMiner,
    base,
    judgments_from,
)
from repro.platform.datastore import DataStore
from repro.platform.entity import Entity
from repro.platform.miners import MinerPipeline, run_corpus_miner

TEXT = "The camera takes excellent pictures. The battery life is disappointing."


def tokenized_entity(text=TEXT, entity_id="d1"):
    entity = Entity(entity_id=entity_id, content=text)
    TokenizerMiner().process(entity)
    return entity


class TestTokenizerMiner:
    def test_token_and_sentence_layers(self):
        entity = tokenized_entity()
        assert entity.has_layer(base.TOKEN_LAYER)
        assert len(entity.layer(base.SENTENCE_LAYER)) == 2

    def test_reprocessing_is_idempotent(self):
        entity = tokenized_entity()
        count = len(entity.layer(base.TOKEN_LAYER))
        TokenizerMiner().process(entity)
        assert len(entity.layer(base.TOKEN_LAYER)) == count

    def test_reconstruction_roundtrip(self):
        entity = tokenized_entity()
        sentences = base.sentences_from(entity)
        assert [s.text_of(TEXT) for s in sentences] == [
            "The camera takes excellent pictures.",
            "The battery life is disappointing.",
        ]


class TestPosTaggerMiner:
    def test_pos_layer_written(self):
        entity = tokenized_entity()
        PosTaggerMiner().process(entity)
        tags = {entity.text_of(a): a.label for a in entity.layer(base.POS_LAYER)}
        assert tags["camera"] == "NN"
        assert tags["takes"] == "VBZ"

    def test_tagged_reconstruction(self):
        entity = tokenized_entity()
        PosTaggerMiner().process(entity)
        (first, second) = base.tagged_sentences_from(entity)
        assert first.tags[0] == "DT"


class TestSpotterMiner:
    def test_spots_annotated(self):
        entity = tokenized_entity()
        SpotterMiner([Subject("camera"), Subject("battery life")]).process(entity)
        labels = [a.label for a in entity.layer(base.SPOT_LAYER)]
        assert labels == ["camera", "battery life"]

    def test_sentence_attribute(self):
        entity = tokenized_entity()
        SpotterMiner([Subject("battery life")]).process(entity)
        (a,) = entity.layer(base.SPOT_LAYER)
        assert a.attribute("sentence") == 1

    def test_requires_subjects(self):
        with pytest.raises(ValueError):
            SpotterMiner([])


class TestDisambiguatorMiner:
    def test_off_topic_spots_removed(self):
        text = "The SUN rose over the beach. The weather was sunny."
        entity = tokenized_entity(text)
        SpotterMiner([Subject("SUN")]).process(entity)
        terms = TopicTermSet.build(["server", "java"], ["beach", "weather", "sunny"])
        DisambiguatorMiner(Disambiguator(terms)).process(entity)
        assert entity.layer(base.SPOT_LAYER) == []
        assert entity.metadata["spots_found"] == 1
        assert entity.metadata["spots_on_topic"] == 0

    def test_on_topic_spots_kept(self):
        text = "SUN shipped a java server. The java tools improved."
        entity = tokenized_entity(text)
        SpotterMiner([Subject("SUN")]).process(entity)
        terms = TopicTermSet.build(["server", "java"], ["beach"])
        DisambiguatorMiner(Disambiguator(terms)).process(entity)
        assert len(entity.layer(base.SPOT_LAYER)) == 1


class TestSentimentEntityMiner:
    def test_judgments_annotated(self):
        entity = tokenized_entity()
        SpotterMiner([Subject("camera"), Subject("battery life")]).process(entity)
        SentimentEntityMiner().process(entity)
        sentiments = {
            a.attribute("subject"): a.label for a in entity.layer(base.SENTIMENT_LAYER)
        }
        assert sentiments["camera"] == "+"
        assert sentiments["battery life"] == "-"

    def test_polar_only_filter(self):
        entity = tokenized_entity("I saw the camera. The camera is excellent.")
        SpotterMiner([Subject("camera")]).process(entity)
        SentimentEntityMiner(polar_only=True).process(entity)
        labels = [a.label for a in entity.layer(base.SENTIMENT_LAYER)]
        assert labels == ["+"]

    def test_judgments_from_roundtrip(self):
        entity = tokenized_entity()
        SpotterMiner([Subject("camera")]).process(entity)
        SentimentEntityMiner().process(entity)
        judgments = judgments_from(entity)
        assert [j.subject_name for j in judgments][0] == "camera"
        assert judgments[0].spot.document_id == "d1"


class TestOpenSentimentMiner:
    def test_mode_b_pipeline(self):
        text = "Zorblax impressed reviewers. Omaha has offices."
        entity = tokenized_entity(text)
        PosTaggerMiner().process(entity)
        NamedEntityMiner().process(entity)
        OpenSentimentEntityMiner().process(entity)
        sentiments = {
            a.attribute("subject"): a.label for a in entity.layer(base.SENTIMENT_LAYER)
        }
        assert sentiments == {"Zorblax": "+"}

    def test_ne_layer_written(self):
        entity = tokenized_entity("We met Prof. Wilson of American University.")
        PosTaggerMiner().process(entity)
        NamedEntityMiner().process(entity)
        names = [a.label for a in entity.layer(base.ENTITY_LAYER)]
        assert "Prof. Wilson" in names
        assert "American University" in names


class TestFullPipelineOnCluster:
    def test_mode_a_pipeline_layers(self):
        pipeline = MinerPipeline(
            [
                TokenizerMiner(),
                PosTaggerMiner(),
                SpotterMiner([Subject("camera")]),
                SentimentEntityMiner(),
            ]
        )
        entity = Entity(entity_id="d1", content=TEXT)
        pipeline.process_entity(entity)
        assert entity.has_layer(base.SENTIMENT_LAYER)


class TestFeatureTermMiner:
    def test_map_reduce_scoring(self):
        store = DataStore(num_partitions=2)
        reviews = [
            "The battery lasts all day. The battery charges fast.",
            "The battery drains quickly. The zoom performs well.",
            "The battery holds a charge. The zoom works.",
        ]
        others = [
            "The election results came in late.",
            "The committee approved the budget.",
            "The orchestra played a symphony.",
        ]
        for i, text in enumerate(reviews):
            store.store(Entity(entity_id=f"r{i}", content=text, metadata={"domain": "camera"}))
        for i, text in enumerate(others):
            store.store(Entity(entity_id=f"o{i}", content=text, metadata={"domain": "general"}))
        miner = FeatureTermMiner("camera")
        merged = run_corpus_miner(miner, store)
        assert merged.dplus_docs == 3
        assert merged.dminus_docs == 3
        features = miner.score(merged)
        assert any(f.term == "battery" for f in features)
        battery = next(f for f in features if f.term == "battery")
        assert battery.dplus_count == 3
        assert battery.dminus_count == 0
