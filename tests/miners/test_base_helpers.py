"""Unit tests for the annotation-layer reconstruction helpers."""

from repro.core import Subject
from repro.miners import TokenizerMiner, base
from repro.platform.entity import Annotation, Entity

TEXT = "The camera works. The flash fails."


def entity_with_layers():
    entity = Entity(entity_id="d", content=TEXT)
    TokenizerMiner().process(entity)
    return entity


class TestReconstruction:
    def test_tokens_roundtrip_offsets(self):
        entity = entity_with_layers()
        for token in base.tokens_from(entity):
            assert TEXT[token.start : token.end] == token.text

    def test_sentences_preserve_indexes(self):
        entity = entity_with_layers()
        sentences = base.sentences_from(entity)
        assert [s.index for s in sentences] == [0, 1]

    def test_tagged_sentences_default_tag(self):
        # Without a pos layer, tokens default to NN rather than crashing.
        entity = entity_with_layers()
        tagged = base.tagged_sentences_from(entity)
        assert all(t.tag == "NN" for sentence in tagged for t in sentence)

    def test_spots_from_uses_subject_mapping(self):
        entity = entity_with_layers()
        start = TEXT.index("camera")
        entity.annotate(
            Annotation.make(base.SPOT_LAYER, start, start + 6, label="Canon X", sentence=0)
        )
        subject = Subject("Canon X", ("camera",))
        (spot,) = base.spots_from(entity, {"Canon X": subject})
        assert spot.subject is subject
        assert spot.term == "camera"
        assert spot.document_id == "d"

    def test_spots_from_without_mapping_builds_subject(self):
        entity = entity_with_layers()
        start = TEXT.index("flash")
        entity.annotate(
            Annotation.make(base.SPOT_LAYER, start, start + 5, label="flash", sentence=1)
        )
        (spot,) = base.spots_from(entity)
        assert spot.subject.canonical == "flash"
        assert spot.sentence_index == 1

    def test_annotate_spot_roundtrip(self):
        entity = entity_with_layers()
        start = TEXT.index("camera")
        from repro.core.model import Spot
        from repro.nlp.tokens import Span

        spot = Spot(Subject("camera"), "camera", Span(start, start + 6), 0, "d")
        base.annotate_spot(entity, spot)
        (restored,) = base.spots_from(entity)
        assert restored.span == spot.span
        assert restored.sentence_index == 0
