"""Unit tests for the clustering and template-detection miners."""

import pytest

from repro.miners.clustering import ClusteringMiner, cosine_similarity
from repro.miners.template_detection import TemplateDetectionMiner
from repro.platform import DataStore, Entity, run_corpus_miner

CAMERA_DOCS = [
    "camera lens flash pictures zoom battery camera pictures",
    "camera flash zoom lens pictures camera battery viewfinder",
    "pictures camera zoom lens flash sensor camera images",
]
MUSIC_DOCS = [
    "album song track melody guitar chorus album lyrics",
    "song album melody track guitar piano album chorus",
    "track song album lyrics melody orchestra album beat",
]


def store_of(docs):
    store = DataStore(num_partitions=2)
    for i, text in enumerate(docs):
        store.store(Entity(entity_id=f"d{i}", content=text))
    return store


class TestCosine:
    def test_identical(self):
        v = {"a": 1.0, "b": 2.0}
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine_similarity({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_empty(self):
        assert cosine_similarity({}, {"a": 1.0}) == 0.0


class TestClustering:
    def test_two_topics_separate(self):
        store = store_of(CAMERA_DOCS + MUSIC_DOCS)
        miner = ClusteringMiner(k=2, seed=7)
        result = miner.cluster(run_corpus_miner(miner, store))
        camera_clusters = {result.assignments[f"d{i}"] for i in range(3)}
        music_clusters = {result.assignments[f"d{i}"] for i in range(3, 6)}
        assert len(camera_clusters) == 1
        assert len(music_clusters) == 1
        assert camera_clusters != music_clusters

    def test_cluster_labels_describe_topics(self):
        store = store_of(CAMERA_DOCS + MUSIC_DOCS)
        miner = ClusteringMiner(k=2, seed=7)
        result = miner.cluster(run_corpus_miner(miner, store))
        all_terms = {t for terms in result.top_terms for t in terms}
        assert "camera" in all_terms
        assert "album" in all_terms

    def test_members(self):
        store = store_of(CAMERA_DOCS + MUSIC_DOCS)
        miner = ClusteringMiner(k=2, seed=7)
        result = miner.cluster(run_corpus_miner(miner, store))
        cluster_of_d0 = result.assignments["d0"]
        assert "d0" in result.members(cluster_of_d0)

    def test_deterministic(self):
        store = store_of(CAMERA_DOCS + MUSIC_DOCS)
        miner = ClusteringMiner(k=2, seed=3)
        a = miner.cluster(run_corpus_miner(miner, store)).assignments
        b = miner.cluster(run_corpus_miner(miner, store)).assignments
        assert a == b

    def test_k_larger_than_corpus_clamped(self):
        store = store_of(CAMERA_DOCS[:2])
        miner = ClusteringMiner(k=10, seed=1)
        result = miner.cluster(run_corpus_miner(miner, store))
        assert result.num_clusters <= 2

    def test_empty_corpus(self):
        miner = ClusteringMiner(k=2)
        result = miner.cluster(run_corpus_miner(miner, DataStore(num_partitions=2)))
        assert result.assignments == {}

    def test_bad_k(self):
        with pytest.raises(ValueError):
            ClusteringMiner(k=0)


BOILER = "Welcome to CameraShop, your trusted photo source."
PAGES = [
    f"{BOILER} The Canon excels in daylight. Visit us daily.",
    f"{BOILER} The Nikon struggles indoors. Visit us daily.",
    f"{BOILER} Battery prices fell again this month. Visit us daily.",
]


def crawl_store(pages, host="camerashop.example"):
    store = DataStore(num_partitions=2)
    for i, text in enumerate(pages):
        store.store(
            Entity(
                entity_id=f"w{i}",
                content=text,
                metadata={"url": f"http://{host}/page{i}"},
            )
        )
    return store


class TestTemplateDetection:
    def test_boilerplate_detected(self):
        store = crawl_store(PAGES)
        miner = TemplateDetectionMiner(min_pages=3, min_fraction=0.9)
        merged = run_corpus_miner(miner, store)
        written = miner.annotate_corpus(list(store.scan()), merged)
        assert written == 6  # two boilerplate sentences on three pages

    def test_unique_content_not_marked(self):
        store = crawl_store(PAGES)
        miner = TemplateDetectionMiner(min_pages=3, min_fraction=0.9)
        merged = run_corpus_miner(miner, store)
        miner.annotate_corpus(list(store.scan()), merged)
        for entity in store.scan():
            marked = {entity.text_of(a) for a in entity.layer("template")}
            assert all("Canon" not in m and "Nikon" not in m for m in marked)

    def test_sites_isolated(self):
        # Same sentence on two different sites, below threshold per site.
        store = DataStore(num_partitions=2)
        for i, host in enumerate(["a.example", "b.example"]):
            store.store(
                Entity(
                    entity_id=f"s{i}",
                    content=BOILER,
                    metadata={"url": f"http://{host}/p"},
                )
            )
        miner = TemplateDetectionMiner(min_pages=2, min_fraction=0.5)
        merged = run_corpus_miner(miner, store)
        assert miner.boilerplate_keys(merged) == set()

    def test_min_fraction_gate(self):
        pages = PAGES + ["Totally unique page content here."] * 4
        store = crawl_store(pages)
        miner = TemplateDetectionMiner(min_pages=3, min_fraction=0.9)
        merged = run_corpus_miner(miner, store)
        # Boilerplate appears on 3/7 pages < 90%: not marked.
        assert miner.boilerplate_keys(merged) == set()

    def test_bad_config(self):
        with pytest.raises(ValueError):
            TemplateDetectionMiner(min_pages=1)
        with pytest.raises(ValueError):
            TemplateDetectionMiner(min_fraction=0.0)

    def test_entities_without_url_use_source(self):
        store = DataStore(num_partitions=2)
        for i in range(3):
            store.store(Entity(entity_id=f"n{i}", content=BOILER, source="newsfeed"))
        miner = TemplateDetectionMiner(min_pages=3, min_fraction=0.9)
        merged = run_corpus_miner(miner, store)
        assert len(miner.boilerplate_keys(merged)) == 1
