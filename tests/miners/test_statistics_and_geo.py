"""Unit tests for aggregate statistics and geographic context miners."""

import pytest

from repro.miners import (
    AggregateStatisticsMiner,
    GeographicContextMiner,
    TokenizerMiner,
)
from repro.platform import DataStore, Entity, run_corpus_miner


def store_with(docs):
    store = DataStore(num_partitions=3)
    for eid, (text, source) in docs.items():
        store.store(Entity(entity_id=eid, content=text, source=source))
    return store


class TestAggregateStatistics:
    @pytest.fixture()
    def stats(self):
        store = store_with(
            {
                "a": ("The camera works. The camera shines.", "webcrawl"),
                "b": ("Batteries drain quickly sometimes.", "newsfeed"),
                "c": ("The camera arrived today.", "webcrawl"),
            }
        )
        return run_corpus_miner(AggregateStatisticsMiner(), store)

    def test_document_and_source_counts(self, stats):
        assert stats.documents == 3
        assert stats.per_source == {"webcrawl": 2, "newsfeed": 1}

    def test_token_counts(self, stats):
        assert stats.tokens > 10
        assert stats.mean_tokens_per_document == pytest.approx(stats.tokens / 3)

    def test_sentence_estimate(self, stats):
        assert stats.sentences_estimate == 4

    def test_top_terms_exclude_stopwords(self, stats):
        top = dict(stats.top_terms(5))
        assert "camera" in top
        assert "the" not in top

    def test_vocabulary_size(self, stats):
        assert stats.vocabulary_size >= 10

    def test_empty_corpus(self):
        stats = run_corpus_miner(AggregateStatisticsMiner(), DataStore(num_partitions=2))
        assert stats.documents == 0
        assert stats.mean_tokens_per_document == 0.0


class TestGeographicContext:
    def geo(self, text, gazetteer=None):
        entity = Entity(entity_id="g", content=text)
        TokenizerMiner().process(entity)
        GeographicContextMiner(gazetteer).process(entity)
        return entity

    def test_single_place(self):
        entity = self.geo("The office opened in Tokyo last year.")
        (a,) = entity.layer("geo")
        assert entity.text_of(a) == "Tokyo"
        assert a.label == "asia"
        assert entity.metadata["geo_region"] == "asia"

    def test_multiword_place(self):
        entity = self.geo("We flew to San Jose for the conference.")
        (a,) = entity.layer("geo")
        assert entity.text_of(a) == "San Jose"

    def test_person_cue_suppresses(self):
        entity = self.geo("Dr. London presented the results.")
        assert entity.layer("geo") == []
        assert "geo_region" not in entity.metadata

    def test_lowercase_not_matched(self):
        entity = self.geo("the london fog rolled in")
        assert entity.layer("geo") == []

    def test_dominant_region(self):
        entity = self.geo("Paris and Berlin beat Tokyo this quarter in London.")
        assert entity.metadata["geo_region"] == "europe"

    def test_custom_gazetteer(self):
        entity = self.geo("Meeting in Gotham tomorrow.", gazetteer={"gotham": "fiction"})
        (a,) = entity.layer("geo")
        assert a.label == "fiction"

    def test_rerun_is_idempotent(self):
        entity = self.geo("Tokyo again.")
        GeographicContextMiner().process(entity)
        assert len(entity.layer("geo")) == 1


class TestPageRank:
    def test_rank_entities_orders_hub_first(self):
        from repro.platform import CrawlPage, WebCrawler
        from repro.platform.ranking import rank_entities

        site = {
            "hub": CrawlPage("hub", "x", links=("a", "b")),
            "a": CrawlPage("a", "x", links=("hub",)),
            "b": CrawlPage("b", "x", links=("hub",)),
        }
        entities = list(WebCrawler(site, ["hub"]).fetch())
        ranked = rank_entities(entities)
        assert ranked[0][0] == "hub"

    def test_scores_sum_to_one(self):
        from repro.platform.ranking import pagerank

        graph = {"a": ["b"], "b": ["c"], "c": ["a"]}
        scores = pagerank(graph)
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_symmetric_cycle_uniform(self):
        from repro.platform.ranking import pagerank

        scores = pagerank({"a": ["b"], "b": ["c"], "c": ["a"]})
        assert scores["a"] == pytest.approx(scores["b"]) == pytest.approx(scores["c"])

    def test_dangling_nodes_handled(self):
        from repro.platform.ranking import pagerank

        scores = pagerank({"a": ["b"], "b": []})
        assert sum(scores.values()) == pytest.approx(1.0)
        assert scores["b"] > scores["a"]

    def test_empty_graph(self):
        from repro.platform.ranking import pagerank

        assert pagerank({}) == {}

    def test_bad_damping(self):
        from repro.platform.ranking import pagerank

        with pytest.raises(ValueError):
            pagerank({"a": []}, damping=1.5)

    def test_external_links_ignored(self):
        from repro.platform.ranking import link_graph
        from repro.platform import Entity

        entity = Entity(
            entity_id="web:u1",
            content="x",
            metadata={"url": "u1", "links": ["u2", "http://elsewhere"]},
        )
        other = Entity(entity_id="web:u2", content="x", metadata={"url": "u2", "links": []})
        graph = link_graph([entity, other])
        assert graph["u1"] == ["u2"]
