"""Unit tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def run_cli(*argv, stdin_text=""):
    out = io.StringIO()
    code = main(list(argv), out=out, stdin=io.StringIO(stdin_text))
    return code, out.getvalue()


class TestAnalyze:
    def test_with_subjects(self):
        code, out = run_cli(
            "analyze", "The camera takes excellent pictures.", "--subject", "camera"
        )
        assert code == 0
        assert "camera" in out
        assert "+" in out

    def test_subject_with_synonyms(self):
        code, out = run_cli(
            "analyze",
            "The NR70 series is superb.",
            "--subject",
            "NR70=NR70 series,the NR70",
        )
        assert code == 0
        assert out.startswith("NR70")

    def test_stdin_input(self):
        code, out = run_cli(
            "analyze", "--subject", "zoom", stdin_text="The zoom is terrible."
        )
        assert code == 0
        assert "-" in out

    def test_open_mode_without_subjects(self):
        code, out = run_cli("analyze", "Zorblax impressed the reviewers.")
        assert code == 0
        assert "Zorblax" in out

    def test_no_mentions(self):
        code, out = run_cli("analyze", "Nothing relevant here.", "--subject", "camera")
        assert code == 0
        assert "no subject mentions" in out

    def test_empty_input_fails(self):
        code, _ = run_cli("analyze", stdin_text="   ")
        assert code == 2


class TestExperiment:
    def test_table3(self):
        code, out = run_cli("experiment", "table3", "--scale", "0.02")
        assert code == 0
        assert "Table 3" in out

    def test_figure2(self):
        code, out = run_cli("experiment", "figure2", "--scale", "0.04")
        assert code == 0
        assert "Customer Satisfaction" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("experiment", "table9")


class TestLexiconAndPatterns:
    def test_lexicon_dump_format(self):
        code, out = run_cli("lexicon")
        assert code == 0
        assert '"excellent" JJ +' in out
        assert len(out.splitlines()) > 2000

    def test_lexicon_pos_filter(self):
        code, out = run_cli("lexicon", "--pos", "NN")
        assert code == 0
        assert all(" NN " in line for line in out.splitlines())

    def test_patterns_listing(self):
        code, out = run_cli("patterns")
        assert code == 0
        assert "be CP SP" in out
        assert "impress + PP(by;with)" in out


class TestMine:
    def test_mine_summary(self):
        code, out = run_cli("mine", "--docs", "3")
        assert code == 0
        assert "polar judgments" in out

    def test_mine_other_domain(self):
        code, out = run_cli("mine", "--domain", "music", "--docs", "2")
        assert code == 0


class TestTopLevel:
    def test_version(self):
        with pytest.raises(SystemExit) as excinfo:
            run_cli("--version")
        assert excinfo.value.code == 0

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            run_cli()


class TestReport:
    def test_report_to_stdout(self):
        code, out = run_cli("report", "--scale", "0.02")
        assert code == 0
        assert "# Sentiment Mining in WebFountain — experiment report" in out
        assert "Table 4" in out and "Figure 3" in out

    def test_report_to_file(self, tmp_path=None):
        import tempfile, os, pathlib

        with tempfile.TemporaryDirectory() as d:
            path = os.path.join(d, "report.md")
            code, out = run_cli("report", "--scale", "0.02", "--out", path)
            assert code == 0
            assert "wrote" in out
            text = pathlib.Path(path).read_text()
            assert "Table 5" in text


class TestPlatform:
    def test_fault_free_run(self):
        code, out = run_cli("platform", "--docs", "12")
        assert code == 0
        assert "coverage" in out and "1.000" in out
        assert "degraded" in out and "False" in out

    def test_chaos_seed_is_deterministic(self):
        argv = ["platform", "--docs", "12", "--chaos-seed", "7", "--failure-rate", "0.5"]
        code_a, out_a = run_cli(*argv)
        code_b, out_b = run_cli(*argv)
        assert code_a == code_b == 0
        assert out_a == out_b
        assert "chaos seed 7" in out_a

    def test_unreplicated_chaos_reports_degradation_fields(self):
        code, out = run_cli(
            "platform",
            "--docs", "12",
            "--replication", "1",
            "--chaos-seed", "3",
            "--failure-rate", "0.5",
        )
        assert code == 0
        assert "dead nodes" in out
        assert "lost partitions" in out
        assert "retries" in out
