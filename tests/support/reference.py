"""Reference (naive) hot-path implementations for differential testing.

The production pipeline runs an Aho–Corasick subject spotter, a bounded
parse memo, and batched stage loops.  Each of those is an *optimization*
of a simpler implementation whose semantics define correctness.  This
module keeps the simple implementations alive so tests and benchmarks
can assert, input by input, that the optimized path is byte-identical
to the reference path:

* :class:`ReferenceSubjectSpotter` — the original n-gram window scanner
  (one dict probe per (position, length) pair), sharing the production
  ``compile_terms`` table so the collision policy (first subject wins)
  is part of the common contract;
* :func:`reference_analyzer` — a :class:`SentimentAnalyzer` with parse
  memoisation disabled, so every sentence is parsed from scratch;
* :func:`reference_miner` — a mode-A :class:`SentimentMiner` wired to
  both of the above; drive it with ``mine_corpus`` (the unbatched,
  re-enter-the-stack-per-document loop) for the full reference run.
"""

from __future__ import annotations

from repro.core.analyzer import SentimentAnalyzer
from repro.core.disambiguation import Disambiguator
from repro.core.miner import SentimentMiner
from repro.core.model import Spot, Subject
from repro.core.spotting import TermCollision, compile_terms
from repro.nlp.tokens import Sentence, Span, Token
from repro.obs import Obs


class ReferenceSubjectSpotter:
    """The historical n-gram subject spotter, kept verbatim as the oracle.

    Matching is case-insensitive over token n-grams, longest term first
    at each position, greedy left to right, non-overlapping.  Any change
    to the production spotter's observable behaviour must show up as a
    diff against this implementation.
    """

    def __init__(self, subjects: list[Subject]):
        self._subjects = list(subjects)
        self._by_term, self._collisions = compile_terms(self._subjects)
        self._max_len = max((len(k) for k in self._by_term), default=0)

    @property
    def subjects(self) -> list[Subject]:
        return list(self._subjects)

    @property
    def collisions(self) -> list[TermCollision]:
        return list(self._collisions)

    def spot_sentence(self, sentence: Sentence, document_id: str = "") -> list[Spot]:
        spots: list[Spot] = []
        tokens = sentence.tokens
        i = 0
        n = len(tokens)
        while i < n:
            match = self._longest_match(tokens, i)
            if match is None:
                i += 1
                continue
            length, subject = match
            span = Span(tokens[i].start, tokens[i + length - 1].end)
            term = " ".join(t.text for t in tokens[i : i + length])
            spots.append(
                Spot(
                    subject=subject,
                    term=term,
                    span=span,
                    sentence_index=sentence.index,
                    document_id=document_id,
                )
            )
            i += length
        return spots

    def spot_document(self, sentences: list[Sentence], document_id: str = "") -> list[Spot]:
        spots: list[Spot] = []
        for sentence in sentences:
            spots.extend(self.spot_sentence(sentence, document_id))
        return spots

    def _longest_match(self, tokens: list[Token], i: int) -> tuple[int, Subject] | None:
        limit = min(self._max_len, len(tokens) - i)
        for length in range(limit, 0, -1):
            key = tuple(tokens[i + k].lower for k in range(length))
            subject = self._by_term.get(key)
            if subject is not None:
                return length, subject
        return None


def reference_analyzer(obs: Obs | None = None, **kwargs) -> SentimentAnalyzer:
    """An analyzer with all hot-path memoisation off: every sentence is
    tagged and parsed from scratch on every occurrence."""
    kwargs.setdefault("parse_memo_size", 0)
    kwargs.setdefault("tag_memo_size", 0)
    kwargs.setdefault("split_memo_size", 0)
    return SentimentAnalyzer(obs=obs, **kwargs)


def reference_miner(
    subjects: list[Subject],
    obs: Obs | None = None,
    disambiguator: Disambiguator | None = None,
) -> SentimentMiner:
    """A mode-A miner on the fully naive path (n-gram spotter, no memo)."""
    return SentimentMiner(
        subjects=subjects,
        analyzer=reference_analyzer(obs=obs),
        disambiguator=disambiguator,
        obs=obs,
        spotter=ReferenceSubjectSpotter(subjects),
        split_memo_size=0,
    )
