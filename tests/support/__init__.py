"""Shared test-support code: reference implementations and golden-report
serialization for the differential hot-path harness."""
