"""Golden-corpus serialization for the hot-path differential harness.

Two seeded corpora have their *entire* mining output — every spot,
polarity, provenance field, and audit decision — frozen as JSON under
``tests/fixtures/golden/``.  The tier-1 regression test re-mines the
same corpora (on both the batched optimized path and the unbatched
path) and diffs the reports byte-for-byte, so any hot-path change that
shifts semantics fails loudly rather than silently skewing results.

Regenerate fixtures (only after an *intentional* semantics change)::

    PYTHONPATH=src python -m tests.support.golden
"""

from __future__ import annotations

import json
import os

from repro.core import Subject
from repro.core.disambiguation import Disambiguator, TopicTermSet
from repro.core.miner import MiningResult, SentimentMiner
from repro.core.model import SentimentJudgment
from repro.corpora import DIGITAL_CAMERA, MUSIC, ReviewGenerator
from repro.obs import Obs

FIXTURE_DIR = os.path.join(os.path.dirname(__file__), "..", "fixtures", "golden")

#: Golden corpus sizes — small enough for tier-1, large enough to cover
#: every sentence-template class the generators emit.
CAMERA_DOCS = 6
MUSIC_DOCS = 12
CAMERA_SEED = 7
MUSIC_SEED = 11


def judgment_record(judgment: SentimentJudgment) -> dict:
    """One judgment as a canonical JSON-able record (every field)."""
    spot = judgment.spot
    provenance = judgment.provenance
    return {
        "subject": spot.subject.canonical,
        "synonyms": list(spot.subject.synonyms),
        "term": spot.term,
        "start": spot.start,
        "end": spot.end,
        "sentence_index": spot.sentence_index,
        "document_id": spot.document_id,
        "polarity": judgment.polarity.value,
        "sentence_span": (
            [judgment.sentence_span.start, judgment.sentence_span.end]
            if judgment.sentence_span is not None
            else None
        ),
        "provenance": {
            "predicate": provenance.predicate,
            "pattern": provenance.pattern,
            "source_role": provenance.source_role,
            "target_role": provenance.target_role,
            "sentiment_words": list(provenance.sentiment_words),
            "negated": provenance.negated,
            "holder": provenance.holder,
        },
    }


def mining_report(result: MiningResult) -> dict:
    """The full mining output as one canonical JSON-able report."""
    return {
        "judgments": [judgment_record(j) for j in result.judgments],
        "stats": {
            "documents": result.stats.documents,
            "sentences": result.stats.sentences,
            "spots_found": result.stats.spots_found,
            "spots_on_topic": result.stats.spots_on_topic,
            "judgments_polar": result.stats.judgments_polar,
            "judgments_neutral": result.stats.judgments_neutral,
        },
        "audit": [entry.to_record() for entry in result.audit],
    }


# -- the two golden corpora -----------------------------------------------------


def camera_documents() -> list[tuple[str, str]]:
    docs = ReviewGenerator(DIGITAL_CAMERA, seed=CAMERA_SEED).generate_dplus(CAMERA_DOCS)
    return [(d.doc_id, d.text) for d in docs]


def camera_subjects() -> list[Subject]:
    return [Subject(p) for p in DIGITAL_CAMERA.products] + [
        Subject(f) for f in DIGITAL_CAMERA.features
    ]


def camera_miner(obs: Obs) -> SentimentMiner:
    """Mode A with disambiguation, so audit carries keep/filter decisions."""
    terms = TopicTermSet.build(
        on_topic=list(DIGITAL_CAMERA.features) + ["camera", "photo", "picture"]
    )
    return SentimentMiner(
        subjects=camera_subjects(),
        disambiguator=Disambiguator(terms),
        obs=obs,
    )


def music_documents() -> list[tuple[str, str]]:
    docs = ReviewGenerator(MUSIC, seed=MUSIC_SEED).generate_dplus(MUSIC_DOCS)
    return [(d.doc_id, d.text) for d in docs]


def mine_camera(batched: bool) -> MiningResult:
    miner = camera_miner(Obs.enabled())
    documents = camera_documents()
    return miner.mine_batch(documents) if batched else miner.mine_corpus(documents)


def mine_music_open(batched: bool = False) -> MiningResult:
    """Mode B (open subjects) over the music corpus; always per-document."""
    del batched  # mode B has no batch entry point; the argument keeps call sites uniform
    miner = SentimentMiner(obs=Obs.enabled())
    return miner.mine_open_corpus(music_documents())


GOLDEN_RUNS = {
    "camera_modeA.json": lambda: mine_camera(batched=False),
    "music_modeB.json": lambda: mine_music_open(),
}


def fixture_path(name: str) -> str:
    return os.path.join(FIXTURE_DIR, name)


def load_fixture(name: str) -> dict:
    with open(fixture_path(name), "r", encoding="utf-8") as stream:
        return json.load(stream)


def regenerate() -> list[str]:
    os.makedirs(FIXTURE_DIR, exist_ok=True)
    written = []
    for name, run in GOLDEN_RUNS.items():
        report = mining_report(run())
        with open(fixture_path(name), "w", encoding="utf-8") as stream:
            json.dump(report, stream, indent=1, sort_keys=True)
            stream.write("\n")
        written.append(fixture_path(name))
    return written


if __name__ == "__main__":
    for path in regenerate():
        print(f"wrote {path}")
