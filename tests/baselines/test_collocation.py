"""Unit tests for the collocation baseline."""

from repro.baselines import CollocationBaseline
from repro.core.model import Polarity, Subject


def judge(text, *names):
    baseline = CollocationBaseline()
    subjects = [Subject(n) for n in names]
    return {j.subject_name: j.polarity for j in baseline.analyze_text(text, subjects)}


class TestSentencePolarity:
    def test_positive_majority(self):
        out = judge("The camera is excellent and superb but heavy.", "camera")
        assert out["camera"] is Polarity.POSITIVE

    def test_negative_majority(self):
        out = judge("The camera is terrible and awful but compact.", "camera")
        assert out["camera"] is Polarity.NEGATIVE

    def test_tie_is_neutral(self):
        out = judge("The camera is excellent but terrible.", "camera")
        assert out["camera"] is Polarity.NEUTRAL

    def test_no_sentiment_words_neutral(self):
        out = judge("The camera arrived on Monday.", "camera")
        assert out["camera"] is Polarity.NEUTRAL


class TestNoTargetAssociation:
    def test_all_spots_get_same_polarity(self):
        # The paper's NR70 example: collocation wrongly colours bystanders.
        text = "Unlike the awful and dreadful flash, the zoom is superb."
        out = judge(text, "zoom", "flash")
        assert out["zoom"] == out["flash"]
        assert out["zoom"] is Polarity.NEGATIVE  # 2 neg vs 1 pos

    def test_stray_sentiment_false_positive(self):
        text = "A friend with a wonderful job bought the camera."
        out = judge(text, "camera")
        assert out["camera"] is Polarity.POSITIVE  # false positive by design

    def test_negation_ignored(self):
        # No linguistic analysis: "not excellent" still counts positive.
        out = judge("The camera is not excellent.", "camera")
        assert out["camera"] is Polarity.POSITIVE


class TestScope:
    def test_per_sentence_scope(self):
        text = "The zoom is superb. The flash is terrible."
        out = judge(text, "zoom", "flash")
        assert out["zoom"] is Polarity.POSITIVE
        assert out["flash"] is Polarity.NEGATIVE

    def test_no_spots_no_judgments(self):
        baseline = CollocationBaseline()
        assert baseline.analyze_text("Nothing here.", [Subject("camera")]) == []

    def test_provenance_labelled(self):
        baseline = CollocationBaseline()
        (j,) = baseline.analyze_text("The camera is excellent.", [Subject("camera")])
        assert j.provenance.pattern == "collocation"
        assert "excellent" in j.provenance.sentiment_words
