"""Unit tests for the ReviewSeer-like Naive Bayes classifier."""

import pytest

from repro.baselines import ReviewSeerClassifier, extract_features
from repro.core.model import Polarity

POSITIVE_DOCS = [
    "The camera is excellent. Superb pictures and a wonderful lens. I love it.",
    "Fantastic zoom and flawless colors. The battery life is great. Highly recommended.",
    "Wonderful camera. Excellent flash, superb screen, great value.",
    "I love this camera. Sharp pictures, brilliant menu, excellent build.",
]
NEGATIVE_DOCS = [
    "The camera is terrible. Awful pictures and a flimsy lens. I hate it.",
    "Dreadful zoom and blurry colors. The battery life is awful. Disappointing.",
    "Terrible camera. Mediocre flash, shoddy screen, poor value.",
    "I hate this camera. Grainy pictures, sluggish menu, defective build.",
]


@pytest.fixture(scope="module")
def trained():
    classifier = ReviewSeerClassifier(neutral_margin=1.0)
    classifier.train(POSITIVE_DOCS, NEGATIVE_DOCS)
    return classifier


class TestFeatureExtraction:
    def test_unigrams_lowercased_and_stopword_filtered(self):
        features = extract_features("The Camera is Excellent")
        assert "camera" in features
        assert "excellent" in features
        assert "the" not in features

    def test_bigrams_included(self):
        features = extract_features("battery life")
        assert "battery_life" in features

    def test_punctuation_dropped(self):
        features = extract_features("great!")
        assert "!" not in features


class TestTraining:
    def test_untrained_raises(self):
        with pytest.raises(RuntimeError):
            ReviewSeerClassifier().scores("anything")

    def test_one_sided_training_rejected(self):
        classifier = ReviewSeerClassifier()
        with pytest.raises(ValueError):
            classifier.train(POSITIVE_DOCS, [])

    def test_is_trained(self, trained):
        assert trained.is_trained
        assert trained.vocabulary_size > 20

    def test_bad_hyperparameters(self):
        with pytest.raises(ValueError):
            ReviewSeerClassifier(neutral_margin=-1)
        with pytest.raises(ValueError):
            ReviewSeerClassifier(smoothing=0)


class TestClassification:
    def test_positive_document(self, trained):
        text = "Excellent camera with superb pictures and a wonderful zoom."
        assert trained.classify_document(text) is Polarity.POSITIVE

    def test_negative_document(self, trained):
        text = "Terrible camera with awful pictures and a dreadful zoom."
        assert trained.classify_document(text) is Polarity.NEGATIVE

    def test_neutral_band_abstains_without_evidence(self, trained):
        assert trained.classify("It arrived on a weekday.") is Polarity.NEUTRAL

    def test_sentence_with_sentiment_fires(self, trained):
        assert trained.classify_sentence("A superb excellent lens.") is Polarity.POSITIVE

    def test_no_target_awareness(self, trained):
        # Sentiment about a *different* target still colours the decision —
        # the failure mode the paper demonstrates on general web text.
        text = "A friend with an excellent wonderful job bought the camera."
        assert trained.classify_sentence(text) is Polarity.POSITIVE

    def test_margin_sign_matches_decision(self, trained):
        scores = trained.scores("excellent superb wonderful")
        assert scores.margin > 0

    def test_document_accuracy_on_training_distribution(self, trained):
        correct = sum(
            1 for d in POSITIVE_DOCS if trained.classify_document(d) is Polarity.POSITIVE
        )
        correct += sum(
            1 for d in NEGATIVE_DOCS if trained.classify_document(d) is Polarity.NEGATIVE
        )
        assert correct == len(POSITIVE_DOCS) + len(NEGATIVE_DOCS)
