"""Cross-validation of our from-scratch numerics against scipy/networkx.

The library itself has zero third-party dependencies; these tests use the
scientific stack available in the test environment to independently
verify the statistics implementations.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.features import likelihood_ratio
from repro.platform.indexer import haversine_km
from repro.platform.ranking import pagerank


class TestLikelihoodRatioAgainstScipy:
    @staticmethod
    def _scipy_g_statistic(c11, c12, c21, c22):
        """G-test statistic on the 2x2 table (independence expected)."""
        observed = np.array([[c11, c12], [c21, c22]], dtype=float)
        total = observed.sum()
        row = observed.sum(axis=1, keepdims=True)
        col = observed.sum(axis=0, keepdims=True)
        expected = row @ col / total
        mask = observed > 0
        return float(2.0 * (observed[mask] * np.log(observed[mask] / expected[mask])).sum())

    @settings(max_examples=100, deadline=None)
    @given(
        st.integers(1, 500), st.integers(0, 500), st.integers(1, 500), st.integers(1, 500)
    )
    def test_matches_g_test_when_positively_associated(self, c11, c12, c21, c22):
        containing = c11 + c12
        missing = c21 + c22
        r1 = c11 / containing
        r2 = c21 / missing
        ours = likelihood_ratio(c11, c12, c21, c22)
        if r2 >= r1:
            assert ours == 0.0  # the paper's guard
        else:
            expected = self._scipy_g_statistic(c11, c12, c21, c22)
            assert ours == pytest.approx(expected, rel=1e-9, abs=1e-9)

    def test_chi2_critical_values_match_scipy(self):
        from scipy.stats import chi2

        from repro.core.features import CHI2_CRITICAL

        for confidence, critical in CHI2_CRITICAL.items():
            assert critical == pytest.approx(chi2.ppf(confidence, df=1), abs=5e-3)


class TestPageRankAgainstNetworkx:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7)), min_size=1, max_size=25
        )
    )
    def test_matches_networkx(self, edges):
        import networkx as nx

        nodes = sorted({n for e in edges for n in e})
        graph = {str(n): [] for n in nodes}
        nx_graph = nx.DiGraph()
        nx_graph.add_nodes_from(str(n) for n in nodes)
        for src, dst in edges:
            if str(dst) not in graph[str(src)]:
                graph[str(src)].append(str(dst))
                nx_graph.add_edge(str(src), str(dst))
        ours = pagerank(graph, damping=0.85, max_iterations=200, tolerance=1e-12)
        reference = nx.pagerank(nx_graph, alpha=0.85, tol=1e-12, max_iter=500)
        for node in graph:
            assert ours[node] == pytest.approx(reference[node], abs=1e-6)


class TestHaversineAgainstNumpy:
    @settings(max_examples=50, deadline=None)
    @given(
        st.floats(-89, 89), st.floats(-179, 179), st.floats(-89, 89), st.floats(-179, 179)
    )
    def test_matches_vectorised_formula(self, lat1, lon1, lat2, lon2):
        phi1, phi2 = np.radians([lat1, lat2])
        dphi = np.radians(lat2 - lat1)
        dlam = np.radians(lon2 - lon1)
        a = np.sin(dphi / 2) ** 2 + np.cos(phi1) * np.cos(phi2) * np.sin(dlam / 2) ** 2
        reference = float(2 * 6371.0 * np.arcsin(np.sqrt(a)))
        assert haversine_km(lat1, lon1, lat2, lon2) == pytest.approx(reference, abs=1e-6)

    @settings(max_examples=50, deadline=None)
    @given(st.floats(-89, 89), st.floats(-179, 179))
    def test_triangle_inequality_through_origin(self, lat, lon):
        direct = haversine_km(lat, lon, 0.0, 0.0)
        assert direct <= math.pi * 6371.0 + 1e-6
