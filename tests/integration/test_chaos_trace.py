"""Acceptance: a traced chaos run explains every retry and failover.

The issue's contract: running the simulated cluster under a seeded fault
plan with tracing enabled must produce a span tree in which every retry
and failover counted by :class:`ClusterRunReport` is matched by a span
carrying node / partition / service / attempt / fault-kind attributes,
and the JSONL dump renders back to a readable tree.
"""

import pytest

from repro.corpora import DIGITAL_CAMERA, ReviewGenerator
from repro.core import Subject
from repro.miners import SentimentEntityMiner, SpotterMiner, TokenizerMiner
from repro.obs import Obs, read_trace, render_span_tree
from repro.platform import DataStore, Entity, MinerPipeline, chaos

pytestmark = pytest.mark.chaos

NODES = 4
PARTITIONS = 8
DOCS = 24
REPLICATION = 2

#: Seeds chosen because their fault schedules produce both retries and
#: failovers at the test topology (scanned once; deterministic forever).
SEEDS = (4, 8, 18)


def make_store() -> DataStore:
    docs = ReviewGenerator(DIGITAL_CAMERA, seed=2005).generate_dplus(DOCS)
    store = DataStore(num_partitions=PARTITIONS)
    store.store_all(Entity(entity_id=d.doc_id, content=d.text) for d in docs)
    return store


def make_pipeline(obs: Obs) -> MinerPipeline:
    subjects = [Subject(p) for p in DIGITAL_CAMERA.products] + [
        Subject(f) for f in DIGITAL_CAMERA.features
    ]
    return MinerPipeline(
        [TokenizerMiner(), SpotterMiner(subjects), SentimentEntityMiner(obs=obs)]
    )


def run_traced(seed: int) -> tuple:
    obs = Obs.enabled()
    outcome = chaos.run_pipeline_chaos(
        make_store,
        lambda: make_pipeline(obs),
        seed=seed,
        num_nodes=NODES,
        replication=REPLICATION,
        obs=obs,
    )
    return outcome, obs


class TestChaosTraceAcceptance:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_retry_has_a_matching_attempt_span(self, seed):
        outcome, obs = run_traced(seed)
        assert outcome.ok, outcome.violations
        retry_spans = [
            s
            for s in obs.tracer.find("vinci.attempt")
            if s.attributes["attempt"] > 1
        ]
        # One attempt span per retry, each naming service + attempt, and
        # each retried attempt follows a failed one with a fault kind.
        assert len(retry_spans) == outcome.report.retries
        first_tries_failed = [
            s
            for s in obs.tracer.find("vinci.attempt")
            if s.status == "error"
        ]
        assert len(first_tries_failed) >= min(1, outcome.report.retries)
        for span in first_tries_failed:
            assert span.attributes["service"]
            assert span.attributes["fault"] in ("error", "timeout")

    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_failover_has_a_matching_partition_span(self, seed):
        outcome, obs = run_traced(seed)
        failover_spans = [
            s
            for s in obs.tracer.find("cluster.partition")
            if s.attributes["failover"]
        ]
        assert len(failover_spans) == outcome.report.failovers
        for span in failover_spans:
            assert span.attributes["node"] not in outcome.report.dead_nodes
            assert 0 <= span.attributes["partition"] < PARTITIONS

    @pytest.mark.parametrize("seed", SEEDS)
    def test_seeds_actually_exercise_retries_and_failovers(self, seed):
        outcome, _ = run_traced(seed)
        assert outcome.report.retries > 0
        assert outcome.report.failovers > 0

    def test_run_span_carries_report_summary(self):
        outcome, obs = run_traced(SEEDS[0])
        (run_span,) = obs.tracer.find("cluster.run")
        assert run_span.attributes["retries"] == outcome.report.retries
        assert run_span.attributes["failovers"] == outcome.report.failovers
        assert run_span.attributes["coverage"] == outcome.report.coverage
        assert run_span.parent_id is None

    def test_dump_roundtrips_and_renders(self, tmp_path):
        outcome, obs = run_traced(SEEDS[1])
        path = str(tmp_path / "chaos.jsonl")
        obs.write(path)
        dump = read_trace(path)
        assert len(dump.spans) == len(obs.tracer.spans())
        text = render_span_tree(dump.spans)
        assert "cluster.run" in text
        assert "failover=True" in text
        assert "attempt=2" in text
        # Registry mirrors agree with the report.
        assert obs.metrics.value("cluster.retries") == outcome.report.retries
        assert obs.metrics.value("cluster.failovers") == outcome.report.failovers
