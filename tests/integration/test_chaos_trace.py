"""Acceptance: a traced chaos run explains every retry and failover.

The issue's contract: running the simulated cluster under a seeded fault
plan with tracing enabled must produce a span tree in which every retry
and failover counted by :class:`ClusterRunReport` is matched by a span
carrying node / partition / service / attempt / fault-kind attributes,
and the JSONL dump renders back to a readable tree.

The serving-path gate extends this to the front door: under chaos
seeds, every router response and every bus attempt — retry, hedge,
failover, breaker fast-fail — appears as exactly one attributed span in
a single connected trace per request, and the JSONL export round-trips
the whole forest.
"""

import pytest

from repro.corpora import DIGITAL_CAMERA, ReviewGenerator
from repro.core import Subject
from repro.miners import SentimentEntityMiner, SpotterMiner, TokenizerMiner
from repro.obs import Obs, SLOMonitor, default_serving_slos, read_trace, render_span_tree
from repro.platform import DataStore, Entity, MinerPipeline, chaos

pytestmark = pytest.mark.chaos

NODES = 4
PARTITIONS = 8
DOCS = 24
REPLICATION = 2

#: Seeds chosen because their fault schedules produce both retries and
#: failovers at the test topology (scanned once; deterministic forever).
SEEDS = (4, 8, 18)


def make_store() -> DataStore:
    docs = ReviewGenerator(DIGITAL_CAMERA, seed=2005).generate_dplus(DOCS)
    store = DataStore(num_partitions=PARTITIONS)
    store.store_all(Entity(entity_id=d.doc_id, content=d.text) for d in docs)
    return store


def make_pipeline(obs: Obs) -> MinerPipeline:
    subjects = [Subject(p) for p in DIGITAL_CAMERA.products] + [
        Subject(f) for f in DIGITAL_CAMERA.features
    ]
    return MinerPipeline(
        [TokenizerMiner(), SpotterMiner(subjects), SentimentEntityMiner(obs=obs)]
    )


def run_traced(seed: int) -> tuple:
    obs = Obs.enabled()
    outcome = chaos.run_pipeline_chaos(
        make_store,
        lambda: make_pipeline(obs),
        seed=seed,
        num_nodes=NODES,
        replication=REPLICATION,
        obs=obs,
    )
    return outcome, obs


class TestChaosTraceAcceptance:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_retry_has_a_matching_attempt_span(self, seed):
        outcome, obs = run_traced(seed)
        assert outcome.ok, outcome.violations
        retry_spans = [
            s
            for s in obs.tracer.find("vinci.attempt")
            if s.attributes["attempt"] > 1
        ]
        # One attempt span per retry, each naming service + attempt, and
        # each retried attempt follows a failed one with a fault kind.
        assert len(retry_spans) == outcome.report.retries
        first_tries_failed = [
            s
            for s in obs.tracer.find("vinci.attempt")
            if s.status == "error"
        ]
        assert len(first_tries_failed) >= min(1, outcome.report.retries)
        for span in first_tries_failed:
            assert span.attributes["service"]
            assert span.attributes["fault"] in ("error", "timeout")

    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_failover_has_a_matching_partition_span(self, seed):
        outcome, obs = run_traced(seed)
        failover_spans = [
            s
            for s in obs.tracer.find("cluster.partition")
            if s.attributes["failover"]
        ]
        assert len(failover_spans) == outcome.report.failovers
        for span in failover_spans:
            assert span.attributes["node"] not in outcome.report.dead_nodes
            assert 0 <= span.attributes["partition"] < PARTITIONS

    @pytest.mark.parametrize("seed", SEEDS)
    def test_seeds_actually_exercise_retries_and_failovers(self, seed):
        outcome, _ = run_traced(seed)
        assert outcome.report.retries > 0
        assert outcome.report.failovers > 0

    def test_run_span_carries_report_summary(self):
        outcome, obs = run_traced(SEEDS[0])
        (run_span,) = obs.tracer.find("cluster.run")
        assert run_span.attributes["retries"] == outcome.report.retries
        assert run_span.attributes["failovers"] == outcome.report.failovers
        assert run_span.attributes["coverage"] == outcome.report.coverage
        assert run_span.parent_id is None

    def test_dump_roundtrips_and_renders(self, tmp_path):
        outcome, obs = run_traced(SEEDS[1])
        path = str(tmp_path / "chaos.jsonl")
        obs.write(path)
        dump = read_trace(path)
        assert len(dump.spans) == len(obs.tracer.spans())
        text = render_span_tree(dump.spans)
        assert "cluster.run" in text
        assert "failover=True" in text
        assert "attempt=2" in text
        # Registry mirrors agree with the report.
        assert obs.metrics.value("cluster.retries") == outcome.report.retries
        assert obs.metrics.value("cluster.failovers") == outcome.report.failovers


# -- serving-path completeness gate -----------------------------------------

#: Chaos seeds for the front door, chosen (by a one-off scan) so the
#: fault schedules exercise failovers AND breaker fast-fails AND hedges.
SERVING_SEEDS = (7, 23)
BATCHES = 3

_serving_cache: dict[int, tuple] = {}


def run_serving_traced(chaos_seed: int) -> tuple:
    """Build, run, and memoise one traced serving scenario per seed."""
    if chaos_seed not in _serving_cache:
        from repro.platform.serving import LoadProfile, build_scenario

        obs = Obs.enabled()
        slo = SLOMonitor(obs, default_serving_slos())
        scenario = build_scenario(
            obs=obs,
            docs=12,
            batches=BATCHES,
            chaos_seed=chaos_seed,
            profile=LoadProfile(requests=120),
            slo=slo,
        )
        report = scenario.run()
        _serving_cache[chaos_seed] = (scenario, report, obs)
    return _serving_cache[chaos_seed]


def spans_by_trace(obs: Obs) -> dict[int, list]:
    grouped: dict[int, list] = {}
    for span in obs.tracer.spans():
        grouped.setdefault(span.trace_id, []).append(span)
    return grouped


class TestServingTraceAcceptance:
    """Every router response is one complete, connected trace."""

    @pytest.mark.parametrize("seed", SERVING_SEEDS)
    def test_every_response_names_its_own_trace(self, seed):
        scenario, _, obs = run_serving_traced(seed)
        outcomes = scenario.generator.last_outcomes
        assert len(outcomes) == 120
        envelope_traces = [env["meta"]["trace_id"] for _, env in outcomes]
        # Every response — ok, degraded, shed, expired, error — carries a
        # real trace id, and no two requests share one.
        assert all(tid > 0 for tid in envelope_traces)
        assert len(set(envelope_traces)) == len(envelope_traces)
        roots = obs.tracer.find("serving.request")
        assert all(s.parent_id is None for s in roots)
        assert sorted(s.trace_id for s in roots) == sorted(envelope_traces)

    @pytest.mark.parametrize("seed", SERVING_SEEDS)
    def test_every_trace_is_connected(self, seed):
        scenario, _, obs = run_serving_traced(seed)
        grouped = spans_by_trace(obs)
        for _, envelope in scenario.generator.last_outcomes:
            spans = grouped[envelope["meta"]["trace_id"]]
            ids = {s.span_id for s in spans}
            roots = [s for s in spans if s.parent_id is None]
            assert len(roots) == 1 and roots[0].name == "serving.request"
            for span in spans:
                if span.parent_id is not None:
                    assert span.parent_id in ids, span.name

    @pytest.mark.parametrize("seed", SERVING_SEEDS)
    def test_every_bus_attempt_is_exactly_one_span(self, seed):
        scenario, _, obs = run_serving_traced(seed)
        attempts = obs.tracer.find("vinci.attempt")
        # bus.trace() records one envelope per attempt (success or
        # fault); the span forest must match it one for one.
        assert len(attempts) == len(scenario.router.bus.trace())
        for span in attempts:
            assert span.attributes["service"].startswith("serving.node")
            assert span.attributes["attempt"] == 1  # no bus-level retries

    @pytest.mark.parametrize("seed", SERVING_SEEDS)
    def test_hedges_failovers_fastfails_each_one_span(self, seed):
        _, report, obs = run_serving_traced(seed)
        assert len(obs.tracer.find("serving.hedge")) == report["hedges"]
        fastfails = sum(b["fastfails"] for b in report["breakers"])
        assert len(obs.tracer.find("serving.fastfail")) == fastfails
        errored = [
            s for s in obs.tracer.find("vinci.request") if s.status == "error"
        ]
        assert len(errored) == report["failovers"]

    @pytest.mark.parametrize("seed", SERVING_SEEDS)
    def test_seeds_actually_exercise_the_failure_paths(self, seed):
        _, report, _ = run_serving_traced(seed)
        assert report["failovers"] > 0
        assert report["hedges"] > 0
        assert sum(b["fastfails"] for b in report["breakers"]) > 0

    @pytest.mark.parametrize("seed", SERVING_SEEDS)
    def test_background_batches_are_separate_roots(self, seed):
        scenario, _, obs = run_serving_traced(seed)
        batches = obs.tracer.find("ingest.batch")
        assert len(batches) == BATCHES
        assert all(s.parent_id is None for s in batches)
        serving_traces = {
            env["meta"]["trace_id"]
            for _, env in scenario.generator.last_outcomes
        }
        # Background index maintenance never rides a request trace.
        assert {s.trace_id for s in batches}.isdisjoint(serving_traces)

    def test_serving_dump_roundtrips(self, tmp_path):
        _, _, obs = run_serving_traced(SERVING_SEEDS[0])
        path = str(tmp_path / "serving.jsonl")
        obs.write(path)
        dump = read_trace(path)

        def identity(spans):
            return sorted(
                (s.trace_id, s.span_id, s.parent_id, s.name) for s in spans
            )

        assert identity(dump.spans) == identity(obs.tracer.spans())
