"""Cross-module property-based tests: invariants that span subsystems."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SentimentAnalyzer, Subject, SubjectSpotter
from repro.core.model import Polarity
from repro.nlp.sentences import split_sentences
from repro.platform import DataStore, Entity, InvertedIndex

ANALYZER = SentimentAnalyzer()

# Sentence fragments mixing subjects, sentiment and junk.
_WORDS = st.lists(
    st.sampled_from(
        "the a camera zoom flash is was takes excellent terrible not and "
        "but I it pictures never really arrived Monday with by".split()
    ),
    min_size=1,
    max_size=14,
)


class TestAnalyzerProperties:
    @settings(max_examples=60, deadline=None)
    @given(_WORDS)
    def test_analyzer_never_crashes_and_judges_every_spot(self, words):
        text = " ".join(words) + "."
        subjects = [Subject("camera"), Subject("zoom"), Subject("flash")]
        judgments = ANALYZER.analyze_text(text, subjects)
        spotter = SubjectSpotter(subjects)
        spots = []
        for sentence in split_sentences(text):
            spots.extend(spotter.spot_sentence(sentence))
        assert len(judgments) == len(spots)

    @settings(max_examples=60, deadline=None)
    @given(_WORDS)
    def test_polar_judgment_implies_sentiment_evidence(self, words):
        text = " ".join(words) + "."
        judgments = ANALYZER.analyze_text(text, [Subject("camera")])
        for judgment in judgments:
            if judgment.polarity.is_polar:
                assert judgment.provenance.pattern  # never polar without a rule

    @settings(max_examples=40, deadline=None)
    @given(_WORDS)
    def test_analysis_deterministic(self, words):
        text = " ".join(words) + "."
        subjects = [Subject("camera")]
        a = [j.as_pair() for j in ANALYZER.analyze_text(text, subjects)]
        b = [j.as_pair() for j in ANALYZER.analyze_text(text, subjects)]
        assert a == b


class TestSpotterIndexAgreement:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.sampled_from(
                [
                    "The camera works.",
                    "I love the zoom here.",
                    "Nothing relevant.",
                    "The flash and the camera arrived.",
                ]
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_index_term_search_matches_spotter(self, sentences):
        """A document matches Term("camera") iff the spotter finds a spot."""
        store = DataStore(num_partitions=2)
        index = InvertedIndex()
        spotter = SubjectSpotter([Subject("camera")])
        expected = set()
        for i, text in enumerate(sentences):
            entity = Entity(entity_id=f"d{i}", content=text)
            store.store(entity)
            index.add_entity(entity)
            if spotter.spot_document(split_sentences(text)):
                expected.add(f"d{i}")
        assert index.search("camera") == expected


class TestNegationInvolution:
    @settings(max_examples=50, deadline=None)
    @given(st.sampled_from(["excellent", "terrible", "superb", "awful", "reliable", "flimsy"]))
    def test_negating_a_copular_sentence_inverts_judgment(self, adjective):
        base = ANALYZER.analyze_text(f"The camera is {adjective}.", [Subject("camera")])
        negated = ANALYZER.analyze_text(
            f"The camera is not {adjective}.", [Subject("camera")]
        )
        assert base[0].polarity is negated[0].polarity.invert()
