"""Robustness fuzzing: no input text may crash any pipeline."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SentimentMiner, Subject
from repro.miners import (
    NamedEntityMiner,
    PosTaggerMiner,
    SentimentEntityMiner,
    SpotterMiner,
    TokenizerMiner,
)
from repro.platform import Entity, MinerPipeline

_text = st.text(alphabet=st.characters(blacklist_categories=("Cs",)), max_size=300)
_messy = st.one_of(
    _text,
    st.sampled_from(
        [
            "",
            "....!!!???",
            "ALL CAPS SHOUTING ABOUT NOTHING",
            "mixed 日本語 and English text here",
            "a" * 500,
            "The the the the the.",
            "( [ { unbalanced",
            "tabs\tand\nnewlines\r\neverywhere",
            "emoji ☃ snowman ® symbols ™",
            "'''quotes‘’“”everywhere'''",
        ]
    ),
)


class TestMinerNeverCrashes:
    @settings(max_examples=80, deadline=None)
    @given(_messy)
    def test_mode_a(self, text):
        miner = SentimentMiner(subjects=[Subject("camera"), Subject("battery life")])
        result = miner.mine_document(text, "fuzz")
        assert result.stats.documents == 1

    @settings(max_examples=80, deadline=None)
    @given(_messy)
    def test_mode_b(self, text):
        result = SentimentMiner().mine_open_document(text, "fuzz")
        assert result.stats.documents == 1

    @settings(max_examples=40, deadline=None)
    @given(_messy)
    def test_full_platform_pipeline(self, text):
        entity = Entity(entity_id="fuzz", content=text)
        pipeline = MinerPipeline(
            [
                TokenizerMiner(),
                PosTaggerMiner(),
                SpotterMiner([Subject("camera")]),
                NamedEntityMiner(),
                SentimentEntityMiner(),
            ]
        )
        pipeline.process_entity(entity)


class TestAnnotationFaithfulness:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.sampled_from(
                [
                    "The camera takes excellent pictures.",
                    "I hate the camera.",
                    "Nothing here.",
                    "The battery life is superb!",
                ]
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_sentiment_annotations_cover_subject_text(self, sentences):
        """Every sentiment annotation's span contains its subject term."""
        text = " ".join(sentences)
        entity = Entity(entity_id="d", content=text)
        pipeline = MinerPipeline(
            [
                TokenizerMiner(),
                PosTaggerMiner(),
                SpotterMiner([Subject("camera"), Subject("battery life")]),
                SentimentEntityMiner(),
            ]
        )
        pipeline.process_entity(entity)
        for annotation in entity.layer("sentiment"):
            covered = entity.text_of(annotation).lower()
            assert annotation.attribute("subject").lower() == covered

    @settings(max_examples=40, deadline=None)
    @given(_text)
    def test_all_annotations_within_content(self, text):
        entity = Entity(entity_id="d", content=text)
        pipeline = MinerPipeline([TokenizerMiner(), PosTaggerMiner()])
        pipeline.process_entity(entity)
        for layer in entity.layers():
            for annotation in entity.layer(layer):
                assert annotation.span.end <= len(text)
