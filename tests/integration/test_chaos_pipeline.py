"""Chaos integration tests: full sentiment pipelines under injected faults.

The acceptance contract for the failure model (ISSUE 2):

* replication 2 + any single seeded node death → ``run_corpus_miner``
  reports ``coverage == 1.0`` and a reduce result byte-identical to the
  fault-free run;
* replication 1 + node death → ``degraded=True`` with the correct
  surviving-partition coverage fraction, and *no exception*.

Everything here is seeded and deterministic; total runtime is kept well
under the 30-second chaos budget.
"""

import json

import pytest

from repro.core import Subject
from repro.core.disambiguation import Disambiguator, TopicTermSet
from repro.corpora import DIGITAL_CAMERA, ReviewGenerator
from repro.miners import (
    AggregateStatisticsMiner,
    DisambiguatorMiner,
    SentimentEntityMiner,
    SpotterMiner,
    TokenizerMiner,
)
from repro.miners.base import SENTIMENT_LAYER
from repro.platform import (
    Cluster,
    DataStore,
    Entity,
    FaultPlan,
    MinerPipeline,
    RetryPolicy,
    chaos,
)

pytestmark = pytest.mark.chaos

NODES = 4
PARTITIONS = 8
DOCS = 24


def make_store() -> DataStore:
    docs = ReviewGenerator(DIGITAL_CAMERA, seed=2005).generate_dplus(DOCS)
    store = DataStore(num_partitions=PARTITIONS)
    store.store_all(Entity(entity_id=d.doc_id, content=d.text) for d in docs)
    return store


def sentiment_pipeline() -> MinerPipeline:
    """The paper's flow: tokenize → spot → disambiguate → sentiment."""
    subjects = [Subject(p) for p in DIGITAL_CAMERA.products] + [
        Subject(f) for f in DIGITAL_CAMERA.features
    ]
    terms = TopicTermSet.build(
        on_topic=list(DIGITAL_CAMERA.features) + ["camera", "photo", "picture"]
    )
    return MinerPipeline(
        [
            TokenizerMiner(),
            SpotterMiner(subjects),
            DisambiguatorMiner(Disambiguator(terms)),
            SentimentEntityMiner(),
        ]
    )


def sentiment_totals(store: DataStore) -> dict[str, dict[str, int]]:
    """Aggregate per-subject polarity counts from stored annotations."""
    totals: dict[str, dict[str, int]] = {}
    for entity in store.scan():
        for annotation in entity.layer(SENTIMENT_LAYER):
            subject = annotation.attribute("subject", "")
            bucket = totals.setdefault(subject, {"+": 0, "-": 0, "0": 0})
            bucket[annotation.label] += 1
    return totals


def stats_fingerprint(stats) -> str:
    """A byte-comparable rendering of an AggregateStatisticsMiner result."""
    return json.dumps(
        {
            "documents": stats.documents,
            "tokens": stats.tokens,
            "per_source": sorted(stats.per_source.items()),
            "term_frequency": sorted(stats.term_frequency.items()),
        },
        sort_keys=True,
    )


class TestCorpusMinerAcceptance:
    """The ISSUE acceptance criteria, asserted literally."""

    @pytest.mark.parametrize("dead_node", range(NODES))
    @pytest.mark.parametrize("death_point", [0, 1])
    def test_replication_two_single_death_exact(self, dead_node, death_point):
        baseline, base_report = Cluster(
            make_store(), num_nodes=NODES, replication=2
        ).run_corpus_miner(AggregateStatisticsMiner())
        assert base_report.coverage == 1.0

        plan = FaultPlan(seed=dead_node).kill_node(dead_node, after_partitions=death_point)
        cluster = Cluster(
            make_store(), num_nodes=NODES, replication=2, fault_plan=plan
        )
        result, report = cluster.run_corpus_miner(AggregateStatisticsMiner())

        assert report.coverage == 1.0
        assert not report.degraded
        assert report.dead_nodes == (dead_node,)
        assert report.lost_partitions == ()
        # Byte-identical reduce result, per the acceptance criterion.
        assert stats_fingerprint(result) == stats_fingerprint(baseline)
        # Each orphaned partition was re-run on a replica owner.
        expected_orphans = 2 - death_point  # each node owns 2 partitions
        assert report.failovers == expected_orphans

    @pytest.mark.parametrize("dead_node", range(NODES))
    def test_replication_one_death_degrades_with_exact_fraction(self, dead_node):
        store = make_store()
        surviving = sum(
            len(store.partition(pid))
            for pid in range(PARTITIONS)
            if pid % NODES != dead_node
        )
        total = len(store)

        plan = FaultPlan(seed=0).kill_node(dead_node, after_partitions=0)
        cluster = Cluster(store, num_nodes=NODES, replication=1, fault_plan=plan)
        result, report = cluster.run_corpus_miner(AggregateStatisticsMiner())

        assert report.degraded
        assert report.coverage == pytest.approx(surviving / total)
        assert set(report.lost_partitions) == {
            pid for pid in range(PARTITIONS) if pid % NODES == dead_node
        }
        # reduce() ran over the surviving partials — no exception, and
        # the partial totals match the surviving entity count.
        assert result.documents == surviving


class TestSentimentPipelineUnderChaos:
    def test_replicated_pipeline_matches_fault_free_aggregates(self):
        clean_store = make_store()
        Cluster(clean_store, num_nodes=NODES, replication=2).run_pipeline(
            sentiment_pipeline()
        )
        expected = sentiment_totals(clean_store)
        assert expected  # the corpus must actually produce judgments

        plan = FaultPlan(seed=11).kill_node(1, after_partitions=1)
        chaotic_store = make_store()
        report = Cluster(
            chaotic_store,
            num_nodes=NODES,
            replication=2,
            fault_plan=plan,
            retry_policy=RetryPolicy(max_attempts=4, base_backoff=0.1),
        ).run_pipeline(sentiment_pipeline())

        assert report.coverage == 1.0
        assert not report.degraded
        assert sentiment_totals(chaotic_store) == expected

    def test_unreplicated_pipeline_flags_degraded_not_crash(self):
        plan = FaultPlan(seed=5).kill_node(2, after_partitions=0)
        store = make_store()
        report = Cluster(
            store, num_nodes=NODES, replication=1, fault_plan=plan
        ).run_pipeline(sentiment_pipeline())

        assert report.degraded
        assert 0.0 < report.coverage < 1.0
        # Entities on lost partitions were never annotated.
        for pid in report.lost_partitions:
            for entity in store.partition(pid).scan():
                assert not entity.has_layer(SENTIMENT_LAYER)

    def test_corrupted_writes_do_not_crash_the_pipeline(self):
        plan = FaultPlan(seed=3)
        for pid in range(PARTITIONS):
            plan.corrupt_write(pid, count=1)
        store = make_store()
        report = Cluster(
            store, num_nodes=NODES, replication=2, fault_plan=plan
        ).run_pipeline(sentiment_pipeline())
        assert report.coverage == 1.0
        corrupted = [e for e in store.scan() if e.metadata.get("corrupted")]
        assert corrupted  # the faults actually landed
        # A follow-up run over the damaged store must also survive.
        rerun = Cluster(store, num_nodes=NODES, replication=2).run_pipeline(
            sentiment_pipeline()
        )
        assert rerun.pipeline.entities_processed == len(store)


class TestChaosHarnessSweep:
    def test_invariants_hold_across_seeded_schedules(self):
        outcomes = chaos.sweep(
            lambda seed: chaos.run_corpus_chaos(
                make_store,
                AggregateStatisticsMiner,
                seed=seed,
                num_nodes=NODES,
                replication=2,
            ),
            range(20, 32),
        )
        failing = [(o.seed, o.violations) for o in outcomes if not o.ok]
        assert failing == []

    def test_pipeline_harness_invariants(self):
        outcomes = chaos.sweep(
            lambda seed: chaos.run_pipeline_chaos(
                make_store,
                sentiment_pipeline,
                seed=seed,
                num_nodes=NODES,
                replication=2,
            ),
            range(40, 46),
        )
        failing = [(o.seed, o.violations) for o in outcomes if not o.ok]
        assert failing == []

    def test_coverage_monotone_in_replication(self):
        """More replication never lowers coverage, for a fixed schedule."""
        coverages = []
        for replication in (1, 2, 3):
            plan = FaultPlan(seed=9).kill_node(0, after_partitions=0).kill_node(
                1, after_partitions=1
            )
            cluster = Cluster(
                make_store(), num_nodes=NODES, replication=replication, fault_plan=plan
            )
            _, report = cluster.run_corpus_miner(AggregateStatisticsMiner())
            coverages.append(report.coverage)
        assert coverages == sorted(coverages)
        assert coverages[-1] == 1.0  # R=3 survives two dead nodes

    def test_report_totals_consistent_with_per_node_work(self):
        plan = FaultPlan(seed=13).kill_node(3, after_partitions=1)
        cluster = Cluster(
            make_store(), num_nodes=NODES, replication=2, fault_plan=plan
        )
        _, report = cluster.run_corpus_miner(AggregateStatisticsMiner())
        assert report.total_work >= sum(report.per_node_work) - 1e-9
        assert report.makespan >= max(report.per_node_work) - 1e-9
        assert report.per_node_work[3] < max(report.per_node_work)  # died early
