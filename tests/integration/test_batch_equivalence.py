"""Batched stage loops must be invisible: same bytes out, fewer passes.

Every batched entry point added for the hot path — the analyzer's
``analyze_batch``, the miner's ``mine_batch``, and the platform
pipeline's ``process_batch`` — is asserted byte-identical to its
unbatched counterpart, document by document and annotation by
annotation.  The chaos-marked test goes further: a replicated cluster
running the *batched* pipeline under a seeded node death must leave
exactly the same per-entity sentiment annotations as a fault-free,
entity-at-a-time baseline.
"""

import pytest

from repro.core import Subject
from repro.core.analyzer import SentimentAnalyzer
from repro.core.disambiguation import Disambiguator, TopicTermSet
from repro.core.miner import SentimentMiner
from repro.corpora import DIGITAL_CAMERA, ReviewGenerator
from repro.miners import (
    DisambiguatorMiner,
    SentimentEntityMiner,
    SpotterMiner,
    TokenizerMiner,
)
from repro.miners.base import SENTIMENT_LAYER
from repro.obs import Obs
from repro.platform import Cluster, DataStore, Entity, FaultPlan, MinerPipeline

NODES = 4
PARTITIONS = 8
DOCS = 20


def camera_documents(count: int = DOCS, seed: int = 2026) -> list[tuple[str, str]]:
    docs = ReviewGenerator(DIGITAL_CAMERA, seed=seed).generate_dplus(count)
    return [(d.doc_id, d.text) for d in docs]


def camera_subjects() -> list[Subject]:
    return [Subject(p) for p in DIGITAL_CAMERA.products] + [
        Subject(f) for f in DIGITAL_CAMERA.features
    ]


def camera_miner(obs: Obs | None = None) -> SentimentMiner:
    terms = TopicTermSet.build(
        on_topic=list(DIGITAL_CAMERA.features) + ["camera", "photo", "picture"]
    )
    return SentimentMiner(
        subjects=camera_subjects(),
        disambiguator=Disambiguator(terms),
        obs=obs if obs is not None else Obs.default(),
    )


class TestAnalyzeBatch:
    def test_matches_per_document_analyze_text(self):
        documents = camera_documents(8)
        subjects = camera_subjects()
        batched = SentimentAnalyzer().analyze_batch(documents, subjects)
        single = SentimentAnalyzer()
        unbatched = [
            single.analyze_text(text, subjects, document_id)
            for document_id, text in documents
        ]
        assert batched == unbatched

    def test_empty_batch(self):
        assert SentimentAnalyzer().analyze_batch([], camera_subjects()) == []


class TestMineBatch:
    def test_matches_mine_corpus(self):
        documents = camera_documents()
        batched = camera_miner(Obs.enabled()).mine_batch(documents)
        unbatched = camera_miner(Obs.enabled()).mine_corpus(documents)

        assert batched.judgments == unbatched.judgments
        assert batched.stats == unbatched.stats
        assert [e.to_record() for e in batched.audit] == [
            e.to_record() for e in unbatched.audit
        ]

    def test_batch_charges_one_stage_cost_per_stage(self):
        # Batching's simulated win: stage cost is paid per *batch*, not
        # per document, so the sim clock advances far less.
        documents = camera_documents(10)
        batched_obs, unbatched_obs = Obs.enabled(), Obs.enabled()
        camera_miner(batched_obs).mine_batch(documents)
        camera_miner(unbatched_obs).mine_corpus(documents)
        assert batched_obs.clock.now < unbatched_obs.clock.now

    def test_empty_batch(self):
        result = camera_miner().mine_batch([])
        assert result.judgments == []
        assert result.stats.documents == 0


def sentiment_pipeline() -> MinerPipeline:
    terms = TopicTermSet.build(
        on_topic=list(DIGITAL_CAMERA.features) + ["camera", "photo", "picture"]
    )
    return MinerPipeline(
        [
            TokenizerMiner(),
            SpotterMiner(camera_subjects()),
            DisambiguatorMiner(Disambiguator(terms)),
            SentimentEntityMiner(),
        ]
    )


def make_store() -> DataStore:
    store = DataStore(num_partitions=PARTITIONS)
    store.store_all(
        Entity(entity_id=doc_id, content=text) for doc_id, text in camera_documents()
    )
    return store


def annotations_by_entity(store: DataStore) -> dict[str, list]:
    return {
        entity.entity_id: entity.layer(SENTIMENT_LAYER) for entity in store.scan()
    }


class TestProcessBatch:
    def test_matches_process_entity(self):
        batched_store, unbatched_store = make_store(), make_store()

        sentiment_pipeline().process_batch(list(batched_store.scan()))
        pipeline = sentiment_pipeline()
        for entity in unbatched_store.scan():
            pipeline.process_entity(entity)

        batched = annotations_by_entity(batched_store)
        unbatched = annotations_by_entity(unbatched_store)
        assert batched == unbatched
        assert any(batched.values())  # the corpus must actually yield sentiment

    def test_report_counts_whole_batch(self):
        store = make_store()
        pipeline = sentiment_pipeline()
        report = pipeline.process_batch(list(store.scan()))
        assert report.entities_processed == len(store)


@pytest.mark.chaos
class TestBatchedClusterUnderChaos:
    def test_failover_batches_byte_identical_to_unbatched_baseline(self):
        # Fault-free, entity-at-a-time baseline.
        baseline_store = make_store()
        pipeline = sentiment_pipeline()
        for entity in baseline_store.scan():
            pipeline.process_entity(entity)
        expected = annotations_by_entity(baseline_store)
        assert any(expected.values())

        # Replicated cluster on the batched path, one seeded node death:
        # orphaned partitions fail over and are re-batched on replicas.
        plan = FaultPlan(seed=17).kill_node(2, after_partitions=1)
        chaotic_store = make_store()
        report = Cluster(
            chaotic_store,
            num_nodes=NODES,
            replication=2,
            fault_plan=plan,
        ).run_pipeline(sentiment_pipeline())

        assert report.coverage == 1.0
        assert not report.degraded
        assert report.failovers > 0  # the death actually rerouted work
        assert annotations_by_entity(chaotic_store) == expected

    @pytest.mark.parametrize("dead_node", range(NODES))
    def test_every_single_death_preserves_annotations(self, dead_node):
        baseline_store = make_store()
        pipeline = sentiment_pipeline()
        for entity in baseline_store.scan():
            pipeline.process_entity(entity)
        expected = annotations_by_entity(baseline_store)

        plan = FaultPlan(seed=dead_node).kill_node(dead_node, after_partitions=0)
        store = make_store()
        report = Cluster(
            store, num_nodes=NODES, replication=2, fault_plan=plan
        ).run_pipeline(sentiment_pipeline())
        assert report.coverage == 1.0
        assert annotations_by_entity(store) == expected
