"""End-to-end integration tests: the full platform flow of Figure 1.

ingest (multi-source) → data store → cluster miner pipeline → inverted +
sentiment indices → hosted services → application views.
"""

import pytest

from repro.core import Polarity, Subject
from repro.corpora import DIGITAL_CAMERA, ReviewGenerator
from repro.miners import (
    NamedEntityMiner,
    OpenSentimentEntityMiner,
    PosTaggerMiner,
    SentimentEntityMiner,
    SpotterMiner,
    TokenizerMiner,
    judgments_from,
)
from repro.platform import (
    Cluster,
    CustomerDataIngestor,
    DataStore,
    IngestionManager,
    InvertedIndex,
    MinerPipeline,
    NewsFeedIngestor,
    SentimentIndex,
    VinciBus,
    register_services,
)


@pytest.fixture(scope="module")
def platform_stack():
    """A fully-built platform over a small synthetic corpus."""
    reviews = ReviewGenerator(DIGITAL_CAMERA, seed=77).generate_dplus(12)
    store = DataStore(num_partitions=8)
    manager = IngestionManager(store)
    manager.add_source(
        NewsFeedIngestor([(d.doc_id, d.text, "2004-06-01") for d in reviews[:6]])
    )
    manager.add_source(
        CustomerDataIngestor(
            [{"account": i, "comment": d.text} for i, d in enumerate(reviews[6:])]
        )
    )
    ingestion = manager.ingest()

    subjects = [Subject(p) for p in DIGITAL_CAMERA.products]
    pipeline = MinerPipeline(
        [TokenizerMiner(), PosTaggerMiner(), SpotterMiner(subjects), SentimentEntityMiner()]
    )
    cluster = Cluster(store, num_nodes=4)
    run = cluster.run_pipeline(pipeline)

    index = InvertedIndex()
    sentiment_index = SentimentIndex()
    for entity in store.scan():
        index.add_entity(entity)
        sentiment_index.add_all(judgments_from(entity))
    bus = VinciBus()
    register_services(bus, store, index, sentiment_index)
    return {
        "store": store,
        "ingestion": ingestion,
        "run": run,
        "index": index,
        "sentiment_index": sentiment_index,
        "bus": bus,
    }


class TestIngestToStore:
    def test_all_sources_loaded(self, platform_stack):
        assert platform_stack["ingestion"].per_source == {"newsfeed": 6, "customer": 6}
        assert len(platform_stack["store"]) == 12

    def test_every_entity_annotated(self, platform_stack):
        for entity in platform_stack["store"].scan():
            assert entity.has_layer("token")
            assert entity.has_layer("sentence")
            assert entity.has_layer("pos")

    def test_pipeline_ran_every_miner_on_every_entity(self, platform_stack):
        runs = platform_stack["run"].pipeline.miner_runs
        assert all(count == 12 for count in runs.values())


class TestIndices:
    def test_text_index_covers_corpus(self, platform_stack):
        assert platform_stack["index"].document_count == 12

    def test_sentiment_index_populated(self, platform_stack):
        assert len(platform_stack["sentiment_index"]) > 0

    def test_concept_query_finds_sentiment_pages(self, platform_stack):
        positives = platform_stack["index"].search("sentiment:+")
        assert positives  # at least one page carries positive sentiment

    def test_boolean_and_concept_combined(self, platform_stack):
        index = platform_stack["index"]
        combined = index.search("sentiment:+ AND camera")
        assert combined <= index.search("camera")


class TestServices:
    def test_counts_service_consistent_with_index(self, platform_stack):
        bus = platform_stack["bus"]
        sentiment_index = platform_stack["sentiment_index"]
        for subject in sentiment_index.subjects()[:3]:
            via_service = bus.request("sentiment.counts", {"subject": subject})
            direct = sentiment_index.counts(subject)
            assert via_service["ok"] is True
            assert via_service["data"]["positive"] == direct[Polarity.POSITIVE]
            assert via_service["data"]["negative"] == direct[Polarity.NEGATIVE]

    def test_sentence_listing_returns_real_sentences(self, platform_stack):
        bus = platform_stack["bus"]
        subject = platform_stack["sentiment_index"].subjects()[0]
        rows = bus.request("sentiment.sentences", {"subject": subject})["data"]["rows"]
        assert rows
        for row in rows:
            assert subject.lower() in row["sentence"].lower()
            assert row["sentence"].endswith((".", "!", "?"))


class TestModeBEndToEnd:
    def test_open_pipeline_on_cluster(self):
        reviews = ReviewGenerator(DIGITAL_CAMERA, seed=78).generate_dplus(6)
        store = DataStore(num_partitions=4)
        for d in reviews:
            from repro.platform import Entity

            store.store(Entity(entity_id=d.doc_id, content=d.text))
        pipeline = MinerPipeline(
            [TokenizerMiner(), PosTaggerMiner(), NamedEntityMiner(), OpenSentimentEntityMiner()]
        )
        Cluster(store, num_nodes=2).run_pipeline(pipeline)
        sentiment_index = SentimentIndex()
        for entity in store.scan():
            sentiment_index.add_all(judgments_from(entity))
        # Product names are discovered as named entities without a list.
        discovered = set(sentiment_index.subjects())
        assert any(p.lower() in discovered for p in DIGITAL_CAMERA.products)


class TestDeterminism:
    def test_same_seed_same_judgments(self):
        def run():
            reviews = ReviewGenerator(DIGITAL_CAMERA, seed=99).generate_dplus(4)
            from repro.core import SentimentMiner

            miner = SentimentMiner(subjects=[Subject(p) for p in DIGITAL_CAMERA.products])
            out = []
            for d in reviews:
                result = miner.mine_document(d.text, d.doc_id)
                out.extend(j.as_pair() for j in result.judgments)
            return out

        assert run() == run()
