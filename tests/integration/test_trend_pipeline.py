"""Integration: trend tracking over a drifting synthetic news stream."""

import pytest

from repro.apps.trends import TrendTracker
from repro.core import SentimentMiner, Subject
from repro.corpora.trending import TrendingNewsGenerator, TrendScenario, default_scenario
from repro.corpora.vocab import PETROLEUM


@pytest.fixture(scope="module")
def tracked():
    scenario = default_scenario()
    stream = TrendingNewsGenerator(seed=11).generate(scenario)
    miner = SentimentMiner(subjects=[Subject(p) for p in PETROLEUM.products])
    tracker = TrendTracker()
    for document, date in stream:
        result = miner.mine_document(document.text, document.doc_id)
        for judgment in result.polar_judgments():
            tracker.add(judgment, date)
    return scenario, tracker


class TestTrendPipeline:
    def test_declining_company_detected(self, tracked):
        scenario, tracker = tracked
        assert tracker.series(scenario.declining).direction == "declining"

    def test_improving_company_detected(self, tracked):
        scenario, tracker = tracked
        assert tracker.series(scenario.improving).direction == "improving"

    def test_movers_report(self, tracked):
        scenario, tracker = tracked
        movers = dict(tracker.movers())
        assert movers.get(scenario.declining) == "declining"
        assert movers.get(scenario.improving) == "improving"

    def test_series_spans_all_months(self, tracked):
        scenario, tracker = tracked
        series = tracker.series(scenario.declining)
        assert len(series.points) >= scenario.months - 1

    def test_render(self, tracked):
        scenario, tracker = tracked
        out = tracker.series(scenario.declining).render()
        assert "declining" in out


class TestScenarioValidation:
    def test_bad_months(self):
        with pytest.raises(ValueError):
            TrendScenario(declining="A", improving="B", months=1)

    def test_bad_docs_per_month(self):
        with pytest.raises(ValueError):
            TrendScenario(declining="A", improving="B", documents_per_month=0)

    def test_generator_deterministic(self):
        a = TrendingNewsGenerator(seed=5).generate()
        b = TrendingNewsGenerator(seed=5).generate()
        assert [(d.text, date) for d, date in a] == [(d.text, date) for d, date in b]
