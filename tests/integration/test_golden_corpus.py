"""Golden-corpus regression gate for the hot path (tier-1).

Two seeded corpora have their full mining output — spots, polarities,
provenance, and audit decisions — frozen under ``tests/fixtures/golden/``.
Re-mining must reproduce the fixtures byte-for-byte on *both* the
unbatched and the batched optimized paths, and on the naive reference
path.  Any change to spotting, tagging, parsing, pattern matching, or
batching that shifts semantics fails here loudly.

After an intentional semantics change, regenerate with::

    PYTHONPATH=src python -m tests.support.golden
"""

import json

from repro.obs import Obs

from tests.support import golden
from tests.support.reference import ReferenceSubjectSpotter, reference_analyzer
from repro.core.miner import SentimentMiner
from repro.core.disambiguation import Disambiguator, TopicTermSet
from repro.corpora import DIGITAL_CAMERA


class TestGoldenCameraModeA:
    def test_unbatched_matches_fixture(self):
        fixture = golden.load_fixture("camera_modeA.json")
        report = golden.mining_report(golden.mine_camera(batched=False))
        assert report == fixture

    def test_batched_matches_fixture(self):
        fixture = golden.load_fixture("camera_modeA.json")
        report = golden.mining_report(golden.mine_camera(batched=True))
        assert report == fixture

    def test_reference_path_matches_fixture(self):
        # The naive n-gram spotter + memo-free analyzer must agree with
        # the frozen output too: the fixture pins the *semantics*, not
        # one implementation.
        terms = TopicTermSet.build(
            on_topic=list(DIGITAL_CAMERA.features) + ["camera", "photo", "picture"]
        )
        obs = Obs.enabled()
        subjects = golden.camera_subjects()
        miner = SentimentMiner(
            subjects=subjects,
            analyzer=reference_analyzer(obs=obs),
            disambiguator=Disambiguator(terms),
            obs=obs,
            spotter=ReferenceSubjectSpotter(subjects),
        )
        report = golden.mining_report(miner.mine_corpus(golden.camera_documents()))
        assert report == golden.load_fixture("camera_modeA.json")

    def test_fixture_round_trips_as_canonical_json(self):
        # The frozen file must already be in canonical form (sorted keys),
        # so diffs stay reviewable.
        raw = open(golden.fixture_path("camera_modeA.json"), encoding="utf-8").read()
        assert raw == json.dumps(json.loads(raw), indent=1, sort_keys=True) + "\n"


class TestGoldenMusicModeB:
    def test_open_mining_matches_fixture(self):
        fixture = golden.load_fixture("music_modeB.json")
        report = golden.mining_report(golden.mine_music_open())
        assert report == fixture

    def test_open_mining_memo_free_matches_fixture(self):
        # Mode B with parse memoisation disabled must agree as well.
        obs = Obs.enabled()
        miner = SentimentMiner(analyzer=reference_analyzer(obs=obs), obs=obs)
        report = golden.mining_report(miner.mine_open_corpus(golden.music_documents()))
        assert report == golden.load_fixture("music_modeB.json")
