"""Durability: a mined store survives save/load with results intact."""

import pytest

from repro.core import Subject
from repro.corpora import DIGITAL_CAMERA, ReviewGenerator
from repro.miners import (
    PosTaggerMiner,
    SentimentEntityMiner,
    SpotterMiner,
    TokenizerMiner,
    judgments_from,
)
from repro.platform import DataStore, Entity, InvertedIndex, MinerPipeline, SentimentIndex


@pytest.fixture(scope="module")
def mined_store():
    reviews = ReviewGenerator(DIGITAL_CAMERA, seed=123).generate_dplus(8)
    store = DataStore(num_partitions=4)
    for document in reviews:
        store.store(Entity(entity_id=document.doc_id, content=document.text))
    pipeline = MinerPipeline(
        [
            TokenizerMiner(),
            PosTaggerMiner(),
            SpotterMiner([Subject(p) for p in DIGITAL_CAMERA.products]),
            SentimentEntityMiner(),
        ]
    )
    pipeline.run(store)
    return store


def _sentiment_pairs(store):
    pairs = []
    for entity in store.scan():
        for judgment in judgments_from(entity):
            pairs.append((entity.entity_id, judgment.as_pair()))
    return sorted(pairs)


class TestMinedStoreRoundtrip:
    def test_judgments_survive_save_load(self, mined_store, tmp_path):
        mined_store.save(tmp_path / "db")
        loaded = DataStore.load(tmp_path / "db")
        assert _sentiment_pairs(loaded) == _sentiment_pairs(mined_store)

    def test_sentiment_index_rebuilds_identically(self, mined_store, tmp_path):
        mined_store.save(tmp_path / "db")
        loaded = DataStore.load(tmp_path / "db")

        def build_index(store):
            index = SentimentIndex()
            for entity in store.scan():
                index.add_all(judgments_from(entity))
            return index

        original = build_index(mined_store)
        rebuilt = build_index(loaded)
        assert len(original) == len(rebuilt)
        for subject in original.subjects():
            assert original.counts(subject) == rebuilt.counts(subject)

    def test_text_index_rebuilds_identically(self, mined_store, tmp_path):
        mined_store.save(tmp_path / "db")
        loaded = DataStore.load(tmp_path / "db")
        a, b = InvertedIndex(), InvertedIndex()
        a.add_all(mined_store.scan())
        b.add_all(loaded.scan())
        assert a.document_count == b.document_count
        for term in ("camera", "excellent", "battery"):
            assert a.search(term) == b.search(term)

    def test_no_reprocessing_needed_after_load(self, mined_store, tmp_path):
        """Loaded entities keep their layers; miners need not re-run."""
        mined_store.save(tmp_path / "db")
        loaded = DataStore.load(tmp_path / "db")
        for entity in loaded.scan():
            assert entity.has_layer("token")
            assert entity.has_layer("pos")
