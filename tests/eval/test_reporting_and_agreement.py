"""Unit tests for reporting helpers and the two-judge simulation."""

import pytest

from repro.corpora.vocab import DIGITAL_CAMERA
from repro.eval.agreement import FeatureJudgePanel
from repro.eval.reporting import ascii_bar_chart, format_percent, format_table


class TestFormatPercent:
    def test_basic(self):
        assert format_percent(0.856) == "85.6%"

    def test_digits(self):
        assert format_percent(0.5, digits=0) == "50%"


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["name", "n"], [["alpha", 1], ["b", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "-" in lines[1]
        assert len({len(l) for l in lines if l.strip()}) <= 2  # consistent width

    def test_title(self):
        out = format_table(["a"], [["x"]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_numeric_right_alignment(self):
        out = format_table(["label", "count"], [["x", 5], ["yyyy", 123]])
        rows = out.splitlines()[-2:]
        assert rows[0].endswith("  5") or rows[0].endswith("5")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out


class TestAsciiBarChart:
    def test_bars_scale(self):
        out = ascii_bar_chart([("x", 1.0), ("y", 2.0)], width=10)
        x_line, y_line = out.splitlines()
        assert y_line.count("#") == 10
        assert x_line.count("#") == 5

    def test_max_value_override(self):
        out = ascii_bar_chart([("x", 50.0)], width=10, max_value=100.0)
        assert out.count("#") == 5

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            ascii_bar_chart([("x", 1.0)], width=0)

    def test_title_line(self):
        out = ascii_bar_chart([("x", 1.0)], title="Chart")
        assert out.splitlines()[0] == "Chart"


class TestFeatureJudgePanel:
    def test_true_features_mostly_accepted(self):
        panel = FeatureJudgePanel(DIGITAL_CAMERA, seed=1)
        terms = list(DIGITAL_CAMERA.features[:30])
        assert panel.precision(terms) >= 0.9

    def test_non_features_mostly_rejected(self):
        panel = FeatureJudgePanel(DIGITAL_CAMERA, seed=1)
        terms = ["asparagus", "sidewalk", "parliament", "teacup"] * 5
        assert panel.precision(terms) <= 0.05

    def test_plural_folding_accepted(self):
        panel = FeatureJudgePanel(DIGITAL_CAMERA, seed=1, miss_rate=0.0)
        assert panel.is_true_feature("batteries") or panel.is_true_feature("battery")

    def test_empty_terms(self):
        panel = FeatureJudgePanel(DIGITAL_CAMERA)
        assert panel.precision([]) == 0.0
        assert panel.agreement_rate([]) == 1.0

    def test_agreement_high_with_low_error(self):
        panel = FeatureJudgePanel(DIGITAL_CAMERA, seed=1)
        terms = list(DIGITAL_CAMERA.features) + ["asparagus", "sidewalk"]
        assert panel.agreement_rate(terms) >= 0.9

    def test_bad_rates_rejected(self):
        with pytest.raises(ValueError):
            FeatureJudgePanel(DIGITAL_CAMERA, miss_rate=1.5)

    def test_deterministic(self):
        terms = list(DIGITAL_CAMERA.features[:10])
        a = FeatureJudgePanel(DIGITAL_CAMERA, seed=9).judge(terms)
        b = FeatureJudgePanel(DIGITAL_CAMERA, seed=9).judge(terms)
        assert a == b
