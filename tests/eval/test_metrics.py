"""Unit tests for the paper's metric definitions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.model import Polarity
from repro.corpora.gold import GoldMention
from repro.eval.metrics import EvaluationCounts, document_accuracy, evaluate_cases

P, N, O = Polarity.POSITIVE, Polarity.NEGATIVE, Polarity.NEUTRAL


class TestEvaluationCounts:
    def test_correct_polar(self):
        c = EvaluationCounts()
        c.record(P, P)
        assert c.precision == 1.0 and c.recall == 1.0 and c.accuracy == 1.0

    def test_wrong_sign_counts_against_both(self):
        c = EvaluationCounts()
        c.record(P, N)
        assert c.precision == 0.0
        assert c.recall == 0.0
        assert c.gold_polar == 1
        assert c.predicted_polar == 1

    def test_false_positive_on_neutral_gold(self):
        c = EvaluationCounts()
        c.record(O, P)
        assert c.precision == 0.0
        assert c.gold_polar == 0  # not a recall case
        assert c.accuracy == 0.0

    def test_missed_polar(self):
        c = EvaluationCounts()
        c.record(P, O)
        assert c.recall == 0.0
        assert c.predicted_polar == 0
        assert c.precision == 0.0  # vacuous

    def test_correct_neutral_counts_in_accuracy_only(self):
        c = EvaluationCounts()
        c.record(O, O)
        assert c.accuracy == 1.0
        assert c.predicted_polar == 0
        assert c.gold_polar == 0

    def test_accuracy_exceeds_precision_with_many_neutrals(self):
        # The paper's phenomenon: "the sentiment miner's accuracy is
        # higher than the precision, because the majority of the test
        # cases have neutral sentiment."
        c = EvaluationCounts()
        for _ in range(6):
            c.record(P, P)
        c.record(P, N)  # one polar error
        for _ in range(20):
            c.record(O, O)
        assert c.accuracy > c.precision

    def test_f1(self):
        c = EvaluationCounts()
        c.record(P, P)
        c.record(P, O)
        assert c.f1 == pytest.approx(2 * 1.0 * 0.5 / 1.5)

    def test_merge(self):
        a = EvaluationCounts()
        a.record(P, P)
        b = EvaluationCounts()
        b.record(N, P)
        a.merge(b)
        assert a.predicted_polar == 2
        assert a.gold_polar == 2
        assert a.precision == 0.5

    def test_empty_metrics_zero(self):
        c = EvaluationCounts()
        assert c.precision == 0.0 and c.recall == 0.0 and c.accuracy == 0.0 and c.f1 == 0.0

    @given(st.lists(st.tuples(st.sampled_from([P, N, O]), st.sampled_from([P, N, O])), max_size=50))
    def test_invariants(self, cases):
        c = EvaluationCounts()
        for gold, predicted in cases:
            c.record(gold, predicted)
        assert c.total == len(cases)
        assert 0.0 <= c.precision <= 1.0
        assert 0.0 <= c.recall <= 1.0
        assert 0.0 <= c.accuracy <= 1.0
        assert c.correct_polar <= c.predicted_polar
        assert c.correct_polar <= c.gold_polar


def mention(subject, polarity, kind="direct", index=0):
    return GoldMention(subject=subject, polarity=polarity, kind=kind, sentence_index=index)


class TestEvaluateCases:
    def test_matching_prediction(self):
        gold = [mention("zoom", P)]
        counts = evaluate_cases(gold, {("zoom", 0): P})
        assert counts.correct_polar == 1

    def test_missing_prediction_counts_as_neutral(self):
        gold = [mention("zoom", P)]
        counts = evaluate_cases(gold, {})
        assert counts.missed_polar == 1

    def test_case_key_is_lowercased(self):
        gold = [mention("Zoom", P)]
        counts = evaluate_cases(gold, {("zoom", 0): P})
        assert counts.correct_polar == 1

    def test_exclude_kinds(self):
        gold = [mention("zoom", P, kind="slang"), mention("flash", N, kind="direct")]
        counts = evaluate_cases(gold, {("flash", 0): N}, exclude_kinds={"slang"})
        assert counts.total == 1
        assert counts.correct_polar == 1

    def test_sentence_index_distinguishes_cases(self):
        gold = [mention("zoom", P, index=0), mention("zoom", N, index=1)]
        counts = evaluate_cases(gold, {("zoom", 0): P, ("zoom", 1): N})
        assert counts.correct_polar == 2


class TestDocumentAccuracy:
    def test_basic(self):
        assert document_accuracy([P, N, P], [P, N, N]) == pytest.approx(2 / 3)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            document_accuracy([P], [])

    def test_empty(self):
        assert document_accuracy([], []) == 0.0
