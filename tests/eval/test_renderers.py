"""Rendering contracts for every experiment result object."""

import pytest

from repro.eval import (
    error_analysis,
    feature_precision,
    figure1_scaling,
    figure2_satisfaction,
    figure3_open_subjects,
    subjects_for,
    table2,
    table3,
    table4,
    table5,
)

SCALE = 0.03
SEED = 2005


class TestEveryResultRenders:
    @pytest.mark.parametrize(
        "runner",
        [
            lambda: feature_precision("digital_camera", seed=SEED, scale=SCALE),
            lambda: table2(seed=SEED, scale=SCALE),
            lambda: table3(seed=SEED, scale=SCALE),
            lambda: table4(seed=SEED, scale=SCALE),
            lambda: table5(seed=SEED, scale=SCALE),
            lambda: figure1_scaling(seed=SEED, scale=SCALE),
            lambda: figure2_satisfaction(seed=SEED, scale=SCALE),
            lambda: figure3_open_subjects(seed=SEED, scale=SCALE),
            lambda: error_analysis(seed=SEED, scale=SCALE),
        ],
        ids=[
            "feature_precision",
            "table2",
            "table3",
            "table4",
            "table5",
            "figure1",
            "figure2",
            "figure3",
            "error_analysis",
        ],
    )
    def test_render_returns_nonempty_multiline_text(self, runner):
        output = runner().render()
        assert isinstance(output, str)
        assert len(output.splitlines()) >= 2
        assert output == output.rstrip("\n")


class TestSubjectsFor:
    def test_covers_every_gold_subject(self):
        from repro.corpora import camera_reviews

        dataset = camera_reviews(seed=SEED, scale=0.01)
        names = {s.canonical for s in subjects_for(dataset)}
        gold = {m.subject for d in dataset.dplus for m in d.mentions}
        assert gold <= names

    def test_sorted_and_unique(self):
        from repro.corpora import camera_reviews

        dataset = camera_reviews(seed=SEED, scale=0.01)
        names = [s.canonical for s in subjects_for(dataset)]
        assert names == sorted(set(names))
