"""Integration-level tests for the experiment harness (small scales).

These pin the *shape* of the paper's results — who wins, by roughly what
factor — on miniature corpora, so a regression in any subsystem surfaces
here before the full benchmark run.
"""

import pytest

from repro.eval import (
    feature_precision,
    figure1_scaling,
    figure2_satisfaction,
    figure3_open_subjects,
    table2,
    table3,
    table4,
    table5,
)

SCALE = 0.08
SEED = 2005


@pytest.fixture(scope="module")
def t4():
    return table4(seed=SEED, scale=SCALE)


@pytest.fixture(scope="module")
def t5():
    return table5(seed=SEED, scale=SCALE)


class TestFeaturePrecision:
    def test_camera_precision_high(self):
        result = feature_precision("digital_camera", seed=SEED, scale=0.06)
        assert result.precision >= 0.85
        assert len(result.extracted) >= 10

    def test_music_precision_high(self):
        result = feature_precision("music", seed=SEED, scale=0.06)
        assert result.precision >= 0.85

    def test_render_mentions_paper_numbers(self):
        result = feature_precision("digital_camera", seed=SEED, scale=0.06)
        assert "97%" in result.render()


class TestTable2:
    def test_top20_overlap_with_paper(self):
        result = table2(seed=SEED, scale=0.06)
        assert result.camera_overlap >= 0.6
        assert result.music_overlap >= 0.5

    def test_render_has_20_ranks(self):
        result = table2(seed=SEED, scale=0.06)
        assert "20" in result.render().splitlines()[-2]


class TestTable3:
    def test_features_dominate_products(self):
        result = table3(seed=SEED, scale=SCALE)
        # Paper: ~12.4x more feature references than product references.
        assert result.ratio > 5

    def test_product_counts_positive(self):
        result = table3(seed=SEED, scale=SCALE)
        assert result.total_product_refs > 0
        assert all(c > 0 for _, c in result.product_counts)


class TestTable4:
    def test_sm_precision_beats_collocation_by_wide_margin(self, t4):
        assert t4.sm.precision > 2 * t4.collocation.precision

    def test_collocation_recall_beats_sm(self, t4):
        assert t4.collocation.recall > t4.sm.recall

    def test_sm_shape_near_paper(self, t4):
        assert 0.80 <= t4.sm.precision <= 0.97
        assert 0.45 <= t4.sm.recall <= 0.70
        assert 0.75 <= t4.sm.accuracy <= 0.95

    def test_sm_accuracy_exceeds_nothing_weird(self, t4):
        assert t4.sm.accuracy >= t4.sm.recall

    def test_reviewseer_competitive_on_reviews(self, t4):
        # Paper: ReviewSeer 88.4% vs SM 85.6% — comparable on reviews.
        assert t4.reviewseer_accuracy >= 0.7

    def test_render(self, t4):
        out = t4.render()
        assert "SM" in out and "Collocation" in out and "ReviewSeer" in out


class TestTable5:
    def test_sm_holds_up_on_general_web(self, t5):
        for row in t5.rows:
            assert row.sm_precision >= 0.75
            assert row.sm_accuracy >= 0.80

    def test_reviewseer_collapses_on_web(self, t5):
        # Paper: 38% vs SM's 90-93%.
        assert t5.reviewseer_accuracy < 0.6
        for row in t5.rows:
            assert row.sm_accuracy > t5.reviewseer_accuracy + 0.25

    def test_removing_i_class_helps_reviewseer(self, t5):
        assert t5.reviewseer_accuracy_no_i > t5.reviewseer_accuracy

    def test_i_class_majority(self, t5):
        assert 0.6 <= t5.i_class_fraction <= 0.9

    def test_three_rows(self, t5):
        assert [r.label for r in t5.rows] == [
            "SM (Petroleum, Web)",
            "SM (Pharmaceutical, Web)",
            "SM (Petroleum, News)",
        ]


class TestFigures:
    def test_figure1_speedup_monotone(self):
        result = figure1_scaling(seed=SEED, scale=0.05)
        speedups = [s for _, _, s in result.scaling]
        assert speedups == sorted(speedups)
        assert speedups[-1] > 2.0

    def test_figure1_ingestion_multi_source(self):
        result = figure1_scaling(seed=SEED, scale=0.05)
        assert set(result.ingestion_per_source) == {"newsfeed", "bboard", "customer"}

    def test_figure2_satisfaction_table(self):
        result = figure2_satisfaction(seed=SEED, scale=0.08)
        assert result.satisfaction
        for by_feature in result.satisfaction.values():
            for value in by_feature.values():
                assert 0.0 <= value <= 1.0
        assert "%" in result.render()

    def test_figure3_index_populated(self):
        result = figure3_open_subjects(seed=SEED, scale=0.08)
        assert result.indexed_judgments > 0
        assert result.subjects_discovered >= 3
        assert result.top_subjects


class TestErrorAnalysis:
    def test_kinds_fail_for_designed_reasons(self):
        from repro.eval import error_analysis

        result = error_analysis(seed=SEED, scale=0.04)
        assert result.rate("direct", "correct") >= 0.9
        assert result.rate("trap", "wrong_polar") >= 0.8
        assert result.rate("slang", "missed") >= 0.9
        assert result.rate("neutral", "neutral_ok") >= 0.95

    def test_render_lists_all_kinds(self):
        from repro.eval import error_analysis

        out = error_analysis(seed=SEED, scale=0.04).render()
        for kind in ("direct", "mixed", "slang", "trap", "neutral", "stray"):
            assert kind in out
