"""Additional CLI coverage: remaining subcommand paths."""

import io

from repro.cli import main


def run_cli(*argv, stdin_text=""):
    out = io.StringIO()
    code = main(list(argv), out=out, stdin=io.StringIO(stdin_text))
    return code, out.getvalue()


class TestMineDomains:
    def test_petroleum(self):
        code, out = run_cli("mine", "--domain", "petroleum", "--docs", "2")
        assert code == 0
        assert "polar judgments" in out

    def test_pharmaceutical(self):
        code, out = run_cli("mine", "--domain", "pharmaceutical", "--docs", "2")
        assert code == 0

    def test_seed_changes_output(self):
        _, a = run_cli("mine", "--docs", "2", "--seed", "1")
        _, b = run_cli("mine", "--docs", "2", "--seed", "2")
        assert a != b


class TestExperimentCoverage:
    def test_feature_precision(self):
        code, out = run_cli("experiment", "feature_precision", "--scale", "0.04")
        assert code == 0
        assert "precision" in out

    def test_table2(self):
        code, out = run_cli("experiment", "table2", "--scale", "0.04")
        assert code == 0
        assert "Table 2" in out

    def test_table5(self):
        code, out = run_cli("experiment", "table5", "--scale", "0.03")
        assert code == 0
        assert "ReviewSeer" in out

    def test_figure1(self):
        code, out = run_cli("experiment", "figure1", "--scale", "0.03")
        assert code == 0
        assert "nodes" in out

    def test_figure3(self):
        code, out = run_cli("experiment", "figure3", "--scale", "0.04")
        assert code == 0
        assert "sentiment index" in out


class TestLexiconFilters:
    def test_verb_filter(self):
        code, out = run_cli("lexicon", "--pos", "VB")
        assert code == 0
        assert '"impress" VB +' in out

    def test_adverb_filter(self):
        code, out = run_cli("lexicon", "--pos", "RB")
        assert code == 0
        assert all(" RB " in line for line in out.splitlines())
