"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``analyze``     target-level sentiment analysis of text from the
                command line or stdin;
``experiment``  run one of the paper's table/figure reproductions;
``lexicon``     dump the sentiment lexicon in the paper's file format;
``patterns``    list the sentiment pattern database;
``mine``        mine a synthetic domain corpus and print a summary;
``platform``    run the simulated cluster over a synthetic corpus,
                optionally under a seeded chaos fault plan
                (``--chaos-seed``); ``--json`` for machine-readable
                output;
``health``      drive the serving layer and render one ops health
                snapshot: shards, breakers, segments, compaction
                backlog, memo hit rates, stage latency histograms with
                exemplar traces, and SLO burn rates (``--json`` for a
                machine-readable v1 envelope);
``trace``       render a JSONL observability dump written by
                ``--trace-out``;
``lint``        run the static-analysis rule set (determinism, import
                layering, observability discipline, pattern-DB and
                lexicon invariants) over the source tree; the exit code
                is the maximum unsuppressed severity (0 clean,
                1 warnings, 2 errors).

``analyze``, ``mine`` and ``platform`` accept ``--metrics`` (print the
metrics registry after the run) and ``--trace-out PATH`` (write the
span/metric/audit JSONL dump); either flag turns full tracing on.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import IO

from . import __version__
from .core import SentimentAnalyzer, Subject, default_lexicon, default_pattern_db
from .obs import Obs

#: Experiment name -> callable(seed, scale) (resolved lazily to keep
#: ``--help`` fast).
EXPERIMENTS = (
    "feature_precision",
    "table2",
    "table3",
    "table4",
    "table5",
    "figure1",
    "figure2",
    "figure3",
)


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the metrics registry after the run",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write the span/metric/audit JSONL dump to PATH (enables tracing)",
    )


def _obs_from_args(args: argparse.Namespace) -> Obs:
    """Full tracing when any observability flag asks for output."""
    if getattr(args, "metrics", False) or getattr(args, "trace_out", None):
        return Obs.enabled()
    return Obs.default()


def _emit_obs(args: argparse.Namespace, obs: Obs, out: IO[str]) -> None:
    if args.trace_out:
        count = obs.write(args.trace_out)
        out.write(f"wrote {count} trace records to {args.trace_out}\n")
    if args.metrics:
        out.write("\nmetrics:\n" + obs.metrics.render() + "\n")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Sentiment Mining in WebFountain' (ICDE 2005)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="target-level sentiment analysis")
    analyze.add_argument("text", nargs="?", help="text to analyze (default: stdin)")
    analyze.add_argument(
        "--subject",
        "-s",
        action="append",
        default=[],
        required=False,
        help="subject term to track (repeatable); synonyms with 'name=syn1,syn2'",
    )
    _add_obs_flags(analyze)

    experiment = sub.add_parser("experiment", help="run a paper experiment")
    experiment.add_argument("name", choices=EXPERIMENTS)
    experiment.add_argument("--scale", type=float, default=0.15)
    experiment.add_argument("--seed", type=int, default=2005)

    full_report = sub.add_parser("report", help="run every experiment, write a markdown report")
    full_report.add_argument("--scale", type=float, default=0.15)
    full_report.add_argument("--seed", type=int, default=2005)
    full_report.add_argument("--out", default=None, help="output file (default: stdout)")

    lexicon = sub.add_parser("lexicon", help="dump the sentiment lexicon")
    lexicon.add_argument("--pos", choices=["JJ", "NN", "VB", "RB"], default=None)

    sub.add_parser("patterns", help="list the sentiment pattern database")

    mine = sub.add_parser("mine", help="mine a synthetic domain corpus")
    mine.add_argument(
        "--domain",
        choices=["digital_camera", "music", "petroleum", "pharmaceutical"],
        default="digital_camera",
    )
    mine.add_argument("--docs", type=int, default=10)
    mine.add_argument("--seed", type=int, default=2005)
    _add_obs_flags(mine)

    platform = sub.add_parser(
        "platform", help="run the simulated cluster (optionally under chaos)"
    )
    platform.add_argument(
        "--domain",
        choices=["digital_camera", "music", "petroleum", "pharmaceutical"],
        default="digital_camera",
    )
    platform.add_argument("--docs", type=int, default=24)
    platform.add_argument("--seed", type=int, default=2005)
    platform.add_argument("--nodes", type=int, default=4)
    platform.add_argument("--partitions", type=int, default=8)
    platform.add_argument("--replication", type=int, default=2)
    platform.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        help="inject a deterministic fault schedule derived from this seed",
    )
    platform.add_argument(
        "--failure-rate",
        type=float,
        default=0.25,
        help="per-node/per-service fault probability for the chaos schedule",
    )
    platform.add_argument(
        "--json",
        action="store_true",
        help="emit the run report (and metrics) as JSON instead of a table",
    )
    _add_obs_flags(platform)

    serve = sub.add_parser(
        "serve", help="drive the resilient serving layer (optionally under chaos)"
    )
    serve.add_argument(
        "--domain",
        choices=["digital_camera", "music", "petroleum", "pharmaceutical"],
        default="digital_camera",
    )
    serve.add_argument("--docs", type=int, default=24)
    serve.add_argument("--seed", type=int, default=2005)
    serve.add_argument("--requests", type=int, default=300)
    serve.add_argument("--shards", type=int, default=8)
    serve.add_argument("--nodes", type=int, default=4)
    serve.add_argument("--replication", type=int, default=2)
    serve.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        help="kill one index node and inject service faults from this seed",
    )
    serve.add_argument(
        "--fault-fraction",
        type=float,
        default=0.08,
        help="service faults scheduled as a fraction of generated requests",
    )
    serve.add_argument(
        "--batches",
        type=int,
        default=None,
        metavar="N",
        help="index the corpus incrementally as N delta batches (segment "
        "path) instead of one offline pass; same seed must serve a "
        "byte-identical report either way",
    )
    serve.add_argument(
        "--restarts",
        action="store_true",
        help="with --chaos-seed: the killed node rejoins at a seeded time; "
        "ingest goes through a WAL and the recovery manager re-replicates, "
        "catches the node up, and re-admits it via breaker probes",
    )
    serve.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable serving report as a v1 envelope",
    )
    _add_obs_flags(serve)

    health = sub.add_parser(
        "health", help="drive the serving layer and render an ops health snapshot"
    )
    health.add_argument(
        "--domain",
        choices=["digital_camera", "music", "petroleum", "pharmaceutical"],
        default="digital_camera",
    )
    health.add_argument("--docs", type=int, default=24)
    health.add_argument("--seed", type=int, default=2005)
    health.add_argument("--requests", type=int, default=120)
    health.add_argument("--shards", type=int, default=8)
    health.add_argument("--nodes", type=int, default=4)
    health.add_argument("--replication", type=int, default=2)
    health.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        help="kill one index node and inject service faults from this seed",
    )
    health.add_argument(
        "--batches",
        type=int,
        default=3,
        metavar="N",
        help="index the corpus incrementally as N delta batches so the "
        "ingest/compaction sections reflect the live path (default 3)",
    )
    health.add_argument(
        "--restarts",
        action="store_true",
        help="with --chaos-seed: enable crash-restart recovery and report "
        "the recovery and WAL health sections",
    )
    health.add_argument(
        "--json",
        action="store_true",
        help="emit the health snapshot as a v1 envelope",
    )
    _add_obs_flags(health)

    trace = sub.add_parser("trace", help="render a JSONL observability dump")
    trace.add_argument("path", help="JSONL file written by --trace-out")
    trace.add_argument(
        "--spans-only",
        action="store_true",
        help="render only the span tree",
    )

    lint = sub.add_parser("lint", help="run the static-analysis rule set")
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the installed repro package)",
    )
    lint.add_argument(
        "--config",
        default=None,
        metavar="PATH",
        help="suppression config (default: nearest lint-suppressions.json upward from cwd)",
    )
    lint.add_argument(
        "--severity",
        choices=["info", "warning", "error"],
        default="info",
        help="minimum severity to report and count toward the exit code",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        help="emit the full report as JSON instead of text",
    )
    lint.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the report to PATH instead of stdout",
    )
    lint.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list suppressed findings with their justifications",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="list every rule with the invariant it protects, then exit",
    )
    lint.add_argument(
        "--changed-only",
        action="store_true",
        help="only report findings for files changed per git, widened to "
        "every file that transitively imports them",
    )
    lint.add_argument(
        "--prune-suppressions",
        action="store_true",
        help="rewrite the suppression config without entries that matched "
        "nothing or point at missing files, then exit",
    )
    lint.add_argument(
        "--graph-out",
        default=None,
        metavar="PATH",
        help="write the whole-program call/import graph as deterministic JSON",
    )
    lint.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the incremental analysis cache",
    )
    return parser


def _parse_subject(spec: str) -> Subject:
    if "=" in spec:
        name, synonyms = spec.split("=", 1)
        return Subject(name, tuple(s for s in synonyms.split(",") if s))
    return Subject(spec)


def cmd_analyze(args: argparse.Namespace, out: IO[str], stdin: IO[str]) -> int:
    text = args.text if args.text is not None else stdin.read()
    if not text.strip():
        print("no input text", file=sys.stderr)
        return 2
    subjects = [_parse_subject(s) for s in args.subject]
    obs = _obs_from_args(args)
    analyzer = SentimentAnalyzer(obs=obs)
    if not subjects:
        # No subjects: run mode B over the text.
        from .core import SentimentMiner

        result = SentimentMiner(analyzer=analyzer, obs=obs).mine_open_document(text)
        judgments = result.judgments
    else:
        judgments = analyzer.analyze_text(text, subjects)
    if not judgments:
        out.write("(no subject mentions found)\n")
        _emit_obs(args, obs, out)
        return 0
    width = max(len(j.subject_name) for j in judgments)
    for judgment in judgments:
        subject, polarity = judgment.as_pair()
        out.write(f"{subject:<{width}}  {polarity}  {judgment.provenance.describe()}\n")
    _emit_obs(args, obs, out)
    return 0


def cmd_experiment(args: argparse.Namespace, out: IO[str]) -> int:
    from .eval import experiments

    runners = {
        "feature_precision": lambda: experiments.feature_precision(seed=args.seed, scale=args.scale),
        "table2": lambda: experiments.table2(seed=args.seed, scale=args.scale),
        "table3": lambda: experiments.table3(seed=args.seed, scale=args.scale),
        "table4": lambda: experiments.table4(seed=args.seed, scale=args.scale),
        "table5": lambda: experiments.table5(seed=args.seed, scale=args.scale),
        "figure1": lambda: experiments.figure1_scaling(seed=args.seed, scale=args.scale),
        "figure2": lambda: experiments.figure2_satisfaction(seed=args.seed, scale=args.scale),
        "figure3": lambda: experiments.figure3_open_subjects(seed=args.seed, scale=args.scale),
    }
    result = runners[args.name]()
    out.write(result.render() + "\n")
    return 0


def cmd_report(args: argparse.Namespace, out: IO[str]) -> int:
    """Run the full experiment suite and emit a markdown report."""
    from .eval import experiments

    sections = [
        ("Feature extraction precision (camera)", lambda: experiments.feature_precision("digital_camera", seed=args.seed, scale=args.scale)),
        ("Feature extraction precision (music)", lambda: experiments.feature_precision("music", seed=args.seed, scale=args.scale)),
        ("Table 2", lambda: experiments.table2(seed=args.seed, scale=args.scale)),
        ("Table 3", lambda: experiments.table3(seed=args.seed, scale=args.scale)),
        ("Table 4", lambda: experiments.table4(seed=args.seed, scale=args.scale)),
        ("Table 5", lambda: experiments.table5(seed=args.seed, scale=args.scale)),
        ("Figure 1", lambda: experiments.figure1_scaling(seed=args.seed, scale=args.scale)),
        ("Figure 2", lambda: experiments.figure2_satisfaction(seed=args.seed, scale=args.scale)),
        ("Figure 3", lambda: experiments.figure3_open_subjects(seed=args.seed, scale=args.scale)),
    ]
    lines = [
        "# Sentiment Mining in WebFountain — experiment report",
        "",
        f"seed {args.seed}, scale {args.scale}",
        "",
    ]
    for title, runner in sections:
        lines.append(f"## {title}")
        lines.append("")
        lines.append("```")
        lines.append(runner().render())
        lines.append("```")
        lines.append("")
    text = "\n".join(lines)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as stream:
            stream.write(text)
        out.write(f"wrote {args.out}\n")
    else:
        out.write(text)
    return 0


def cmd_lexicon(args: argparse.Namespace, out: IO[str]) -> int:
    for entry in default_lexicon():
        if args.pos is None or entry.pos == args.pos:
            out.write(entry.format() + "\n")
    return 0


def cmd_patterns(out: IO[str]) -> int:
    for pattern in default_pattern_db():
        out.write(pattern.format() + "\n")
    return 0


def cmd_mine(args: argparse.Namespace, out: IO[str]) -> int:
    from .core import SentimentMiner
    from .corpora import DOMAINS, ReviewGenerator
    from .eval.reporting import format_table

    vocab = DOMAINS[args.domain]
    documents = ReviewGenerator(vocab, seed=args.seed).generate_dplus(args.docs)
    subjects = [Subject(p) for p in vocab.products] + [Subject(f) for f in vocab.features]
    obs = _obs_from_args(args)
    miner = SentimentMiner(subjects=subjects, obs=obs)
    result = miner.mine_corpus((d.doc_id, d.text) for d in documents)
    by_subject: dict[str, list[int]] = {}
    for judgment in result.polar_judgments():
        bucket = by_subject.setdefault(judgment.subject_name, [0, 0])
        bucket[0 if judgment.polarity.value == "+" else 1] += 1
    rows = [
        [name, pos, neg]
        for name, (pos, neg) in sorted(by_subject.items(), key=lambda kv: -sum(kv[1]))
    ][:15]
    out.write(
        format_table(
            ["subject", "positive", "negative"],
            rows,
            title=f"mined {result.stats.documents} documents, "
            f"{result.stats.judgments_polar} polar judgments",
        )
        + "\n"
    )
    _emit_obs(args, obs, out)
    return 0


def cmd_platform(args: argparse.Namespace, out: IO[str]) -> int:
    """Run the simulated cluster end-to-end, optionally under chaos."""
    from .corpora import DOMAINS, ReviewGenerator
    from .eval.reporting import format_table
    from .miners import (
        PosTaggerMiner,
        SentimentEntityMiner,
        SpotterMiner,
        TokenizerMiner,
    )
    from .platform import (
        Cluster,
        DataStore,
        Entity,
        FaultPlan,
        MinerPipeline,
        RetryPolicy,
    )

    vocab = DOMAINS[args.domain]
    documents = ReviewGenerator(vocab, seed=args.seed).generate_dplus(args.docs)
    store = DataStore(num_partitions=args.partitions)
    store.store_all(Entity(entity_id=d.doc_id, content=d.text) for d in documents)

    plan = None
    retry_policy = None
    if args.chaos_seed is not None:
        plan = FaultPlan.scheduled(
            args.chaos_seed,
            services=("cluster.coordinator",),
            num_nodes=args.nodes,
            num_partitions=args.partitions,
            service_failure_rate=args.failure_rate,
            node_death_rate=args.failure_rate,
        )
        retry_policy = RetryPolicy(max_attempts=4, base_backoff=0.1)

    obs = _obs_from_args(args)
    subjects = [Subject(p) for p in vocab.products] + [Subject(f) for f in vocab.features]
    pipeline = MinerPipeline(
        [
            TokenizerMiner(),
            PosTaggerMiner(),
            SpotterMiner(subjects),
            SentimentEntityMiner(obs=obs),
        ]
    )
    cluster = Cluster(
        store,
        num_nodes=args.nodes,
        replication=min(args.replication, args.nodes),
        fault_plan=plan,
        retry_policy=retry_policy,
        obs=obs,
    )
    report = cluster.run_pipeline(pipeline)

    if args.json:
        payload = {
            "report": report.to_dict(),
            "entities": len(store),
            "nodes": args.nodes,
            "replication": cluster.replication,
            "chaos_seed": args.chaos_seed,
            "metrics": obs.metrics.snapshot(),
        }
        out.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        _emit_obs(args, obs, out)
        return 0

    rows = [
        ["entities", len(store)],
        ["nodes", args.nodes],
        ["replication", cluster.replication],
        ["coverage", f"{report.coverage:.3f}"],
        ["degraded", report.degraded],
        ["dead nodes", ",".join(map(str, report.dead_nodes)) or "-"],
        ["lost partitions", ",".join(map(str, report.lost_partitions)) or "-"],
        ["failovers", report.failovers],
        ["retries", report.retries],
        ["messages", report.messages],
        ["makespan", f"{report.makespan:.2f}"],
        ["total work", f"{report.total_work:.2f}"],
    ]
    title = "platform run"
    if plan is not None:
        title += f" under chaos seed {args.chaos_seed} (rate {args.failure_rate})"
    out.write(format_table(["metric", "value"], rows, title=title) + "\n")
    _emit_obs(args, obs, out)
    return 0


def cmd_serve(args: argparse.Namespace, out: IO[str]) -> int:
    """Drive the resilient mode-B serving layer, optionally under chaos."""
    from .eval.reporting import format_table
    from .platform.serving import LoadProfile, build_scenario

    obs = _obs_from_args(args)
    scenario = build_scenario(
        seed=args.seed,
        docs=args.docs,
        domain=args.domain,
        num_shards=args.shards,
        num_nodes=args.nodes,
        replication=min(args.replication, args.nodes),
        chaos_seed=args.chaos_seed,
        fault_fraction=args.fault_fraction,
        profile=LoadProfile(requests=args.requests),
        obs=obs,
        batches=args.batches,
        restarts=args.restarts,
    )
    report = scenario.run()

    if args.json:
        from .platform.api import ok_envelope

        out.write(
            json.dumps(ok_envelope(report), indent=2, sort_keys=True) + "\n"
        )
        _emit_obs(args, obs, out)
        return 0

    rows = [
        ["requests", report["requests"]],
        ["availability", f"{report['availability']:.4f}"],
        ["p50 latency", f"{report['p50_latency']:.3f}"],
        ["p99 latency", f"{report['p99_latency']:.3f}"],
        ["shed rate", f"{report['shed_rate']:.4f}"],
        ["degraded", report["degraded"]],
        ["expired", report["expired"]],
        ["late responses", report["late_responses"]],
        ["hedges", report["hedges"]],
        ["hedge wins", report["hedge_wins"]],
        ["faults injected", report["faults_injected"]],
        ["dead nodes", ",".join(map(str, report["dead_nodes"])) or "-"],
    ]
    recovery = report.get("recovery")
    if recovery is not None:
        rows.extend(
            [
                ["recovery transfers", recovery["transfers"]],
                ["docs shipped", recovery["docs_shipped"]],
                ["nodes re-admitted", recovery["probes_admitted"]],
                ["cluster settled", str(recovery["settled"]).lower()],
            ]
        )
    title = "serving run"
    if args.chaos_seed is not None:
        title += f" under chaos seed {args.chaos_seed}"
        if args.restarts:
            title += " with restarts"
    out.write(format_table(["metric", "value"], rows, title=title) + "\n")
    _emit_obs(args, obs, out)
    return 0


def cmd_health(args: argparse.Namespace, out: IO[str]) -> int:
    """Drive the serving layer and render one ops health snapshot."""
    from .obs import SLOMonitor, default_serving_slos, health_snapshot, render_health
    from .platform.serving import LoadProfile, build_scenario

    # Health always runs fully instrumented: exemplar trace ids in the
    # stage-latency histograms only exist when tracing is on.
    obs = Obs.enabled()
    slo = SLOMonitor(obs, default_serving_slos())
    scenario = build_scenario(
        seed=args.seed,
        docs=args.docs,
        domain=args.domain,
        num_shards=args.shards,
        num_nodes=args.nodes,
        replication=min(args.replication, args.nodes),
        chaos_seed=args.chaos_seed,
        profile=LoadProfile(requests=args.requests),
        obs=obs,
        batches=args.batches,
        slo=slo,
        restarts=args.restarts,
    )
    scenario.run()
    snapshot = health_snapshot(
        obs,
        router=scenario.router,
        live_indexer=scenario.live_indexer,
        slo=slo,
        recovery=scenario.recovery,
        wal=scenario.wal,
    )
    if args.json:
        from .platform.api import ok_envelope

        out.write(json.dumps(ok_envelope(snapshot), indent=2, sort_keys=True) + "\n")
    else:
        out.write(render_health(snapshot) + "\n")
    _emit_obs(args, obs, out)
    return 0


def cmd_trace(args: argparse.Namespace, out: IO[str]) -> int:
    """Re-render a JSONL observability dump on the console."""
    from .obs import read_trace, render_dump, render_span_tree

    try:
        dump = read_trace(args.path)
    except OSError as exc:
        print(f"cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    if args.spans_only:
        out.write(render_span_tree(dump.spans) + "\n")
    else:
        out.write(render_dump(dump) + "\n")
    return 0


def _git_changed_files() -> "set | None":
    """Absolute paths git considers changed vs HEAD, plus untracked files.

    Returns None when not in a usable git checkout.
    """
    import subprocess
    from pathlib import Path

    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
        )
    except OSError:
        return None
    if proc.returncode != 0:
        return None
    top = proc.stdout.strip()
    names: set[str] = set()
    for cmd in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        proc = subprocess.run(cmd, capture_output=True, text=True, cwd=top)
        if proc.returncode != 0:
            return None
        names.update(line.strip() for line in proc.stdout.splitlines() if line.strip())
    return {Path(top) / name for name in names}


def _restrict_to_changed(report, program, changed) -> None:
    """Drop findings outside the changed files' reverse-dependency cone.

    Pseudo-path findings (``<lexicon>``, ``<suppressions>``, ...) are
    global and always kept.
    """
    from pathlib import Path

    changed_resolved = {path.resolve() for path in changed}
    changed_modpaths = [
        modpath
        for modpath, summary in program.modules.items()
        if Path(summary.path).resolve() in changed_resolved
    ]
    keep_displays = {
        program.modules[m].path for m in program.dependency_cone(changed_modpaths)
    }
    report.findings = [
        finding
        for finding in report.findings
        if finding.path.startswith("<") or finding.path in keep_displays
    ]


def cmd_lint(args: argparse.Namespace, out: IO[str]) -> int:
    """Run the static-analysis rule set; exit code = max severity."""
    import json
    from pathlib import Path

    from .analysis import Severity, all_rules, build_linter, find_suppression_config

    if args.list_rules:
        for rule in all_rules():
            out.write(f"{rule.rule_id}  {rule.name} ({rule.severity})\n")
            out.write(f"        {rule.invariant}\n")
        return 0

    paths = args.paths or [str(Path(__file__).resolve().parent)]
    config = args.config
    if config is None:
        # Search upward from the cwd first, then from the linted tree, so
        # the repo config is found no matter where the CLI is invoked.
        config = find_suppression_config() or find_suppression_config(
            Path(paths[0]).resolve().parent
        )
    try:
        linter = build_linter(config, use_cache=not args.no_cache)
    except (OSError, ValueError) as exc:
        print(f"cannot load suppression config: {exc}", file=sys.stderr)
        return 2
    report = linter.lint(paths)
    if args.graph_out:
        with open(args.graph_out, "w", encoding="utf-8") as stream:
            json.dump(linter.last_program.graph_dict(), stream, indent=2, sort_keys=True)
            stream.write("\n")
        out.write(f"wrote {args.graph_out}\n")
    if args.prune_suppressions:
        if config is None:
            print("no suppression config found to prune", file=sys.stderr)
            return 2
        before = len(linter.suppressions)
        pruned = linter.suppressions.pruned()
        pruned.save(config)
        out.write(
            f"pruned {before - len(pruned)} of {before} suppression entries "
            f"in {config}\n"
        )
        return 0
    if args.changed_only:
        changed = _git_changed_files()
        if changed is None:
            print("--changed-only requires a git checkout", file=sys.stderr)
            return 2
        _restrict_to_changed(report, linter.last_program, changed)
    threshold = Severity.parse(args.severity)
    if args.json:
        text = report.to_json() + "\n"
    else:
        text = report.render(threshold, show_suppressed=args.show_suppressed) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as stream:
            stream.write(text)
        out.write(f"wrote {args.out}\n")
    else:
        out.write(text)
    return report.exit_code(threshold)


def main(argv: list[str] | None = None, out: IO[str] | None = None, stdin: IO[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out or sys.stdout
    stdin = stdin or sys.stdin
    args = build_parser().parse_args(argv)
    if args.command == "analyze":
        return cmd_analyze(args, out, stdin)
    if args.command == "experiment":
        return cmd_experiment(args, out)
    if args.command == "report":
        return cmd_report(args, out)
    if args.command == "lexicon":
        return cmd_lexicon(args, out)
    if args.command == "patterns":
        return cmd_patterns(out)
    if args.command == "mine":
        return cmd_mine(args, out)
    if args.command == "platform":
        return cmd_platform(args, out)
    if args.command == "serve":
        return cmd_serve(args, out)
    if args.command == "health":
        return cmd_health(args, out)
    if args.command == "trace":
        return cmd_trace(args, out)
    if args.command == "lint":
        return cmd_lint(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")
