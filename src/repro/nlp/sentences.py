"""Sentence boundary detection over token streams.

The sentiment miner works on "sentiment contexts" which generally consist of
"the full sentence that contains a subject spot" (paper Section 3), so the
splitter must be reliable on review-style prose: abbreviations, decimal
numbers and quoted sentences must not create spurious boundaries.
"""

from __future__ import annotations

from collections import OrderedDict

from .tokenizer import Tokenizer
from .tokens import Sentence, Token

#: Tokens that terminate a sentence.
_TERMINATORS = frozenset({".", "!", "?"})

#: Tokens that may trail a terminator and still belong to the sentence.
_CLOSERS = frozenset({'"', "'", ")", "]", "''"})


class SentenceSplitter:
    """Split a token stream into sentences.

    The splitter is purely token-based: a sentence ends at ``.``, ``!`` or
    ``?`` (plus any trailing close-quotes/brackets) unless the period
    belongs to a known abbreviation token (the tokenizer keeps those
    attached, e.g. ``Prof.``) or the next token starts with a lowercase
    letter or digit (mid-sentence ellipsis / enumeration).

    ``memo_size`` bounds a document-level memo on :meth:`split_text`:
    token spans and sentence boundaries are a pure function of the text,
    so syndicated copies of a document tokenize once.  Cached sentences
    are materialised as fresh :class:`Sentence` objects per call (the
    frozen tokens are shared; the lists are not).  ``0`` disables the
    memo — the differential harness's reference configuration.
    """

    def __init__(self, tokenizer: Tokenizer | None = None, memo_size: int = 64):
        self._tokenizer = tokenizer or Tokenizer()
        self._memo_size = memo_size
        self._memo: OrderedDict[str, list[Sentence]] = OrderedDict()
        self.memo_hits = 0
        self.memo_misses = 0
        self.memo_evictions = 0

    def memo_stats(self) -> dict[str, int]:
        """Plain counters for registry mirroring (nlp stays obs-free)."""
        return {
            "hits": self.memo_hits,
            "misses": self.memo_misses,
            "evictions": self.memo_evictions,
            "size": len(self._memo),
            "maxsize": self._memo_size,
        }

    def split(self, tokens: list[Token]) -> list[Sentence]:
        """Group *tokens* into :class:`Sentence` objects."""
        sentences: list[Sentence] = []
        current: list[Token] = []
        i = 0
        n = len(tokens)
        while i < n:
            token = tokens[i]
            current.append(token)
            if self._ends_sentence(tokens, i):
                # Absorb trailing closers (quotes, brackets).
                while i + 1 < n and tokens[i + 1].text in _CLOSERS:
                    i += 1
                    current.append(tokens[i])
                sentences.append(Sentence(current, index=len(sentences)))
                current = []
            i += 1
        if current:
            sentences.append(Sentence(current, index=len(sentences)))
        return sentences

    def split_text(self, text: str) -> list[Sentence]:
        """Tokenize *text* and split into sentences in one call."""
        if self._memo_size <= 0:
            return self.split(self._tokenizer.tokenize(text))
        cached = self._memo.get(text)
        if cached is None:
            self.memo_misses += 1
            cached = self.split(self._tokenizer.tokenize(text))
            self._memo[text] = cached
            if len(self._memo) > self._memo_size:
                self._memo.popitem(last=False)
                self.memo_evictions += 1
        else:
            self.memo_hits += 1
            self._memo.move_to_end(text)
        return [Sentence(list(s.tokens), index=s.index) for s in cached]

    # -- internals ----------------------------------------------------------

    def _ends_sentence(self, tokens: list[Token], i: int) -> bool:
        token = tokens[i]
        if token.text in _TERMINATORS:
            nxt = tokens[i + 1] if i + 1 < len(tokens) else None
            if nxt is not None and (nxt.text[0].islower() or nxt.text[0].isdigit()):
                # "etc. and so on" / enumerations do not end the sentence.
                return False
            return True
        # Abbreviation-final tokens like "Inc." end a sentence only when
        # followed by a capitalised token that looks like a fresh start.
        if token.text.endswith(".") and self._tokenizer.is_abbreviation(token.text):
            return False
        return False


_DEFAULT = SentenceSplitter()


def split_sentences(text: str) -> list[Sentence]:
    """Split *text* into sentences with the default splitter."""
    return _DEFAULT.split_text(text)
