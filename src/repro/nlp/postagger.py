"""Part-of-speech tagger: lexicon + morphology + contextual repair rules.

The paper used the Ratnaparkhi maximum-entropy tagger; we substitute a
deterministic three-stage tagger that is exact on the controlled vocabulary
of our corpora and degrades gracefully on unknown words:

1. **Lexical stage** — closed-class lookup, then the user-extensible
   open-class lexicon (domain vocabularies and the sentiment lexicon
   register their words here), then regular-inflection analysis against
   known verb bases.
2. **Morphological stage** — suffix rules for words the lexicon has never
   seen (``-ly`` → RB, ``-ness`` → NN, capitalised → NNP, ...).
3. **Contextual stage** — Brill-style repair rules that fix the classic
   ambiguities (noun/verb after a determiner, base verb after ``to`` or a
   modal, VBD/VBN after auxiliaries, possessive ``her``).

The tagger is a pure function of its lexicons: no training, no global
state, fully deterministic.
"""

from __future__ import annotations

from collections import OrderedDict

from . import lexicon_pos, penn
from .tokens import Sentence, TaggedSentence, TaggedToken, Token

_PUNCT_TAGS = {
    ".": ".",
    "!": ".",
    "?": ".",
    ",": ",",
    ";": ":",
    ":": ":",
    "-": "HYPH",
    "--": ":",
    "(": "-LRB-",
    ")": "-RRB-",
    "[": "-LRB-",
    "]": "-RRB-",
    '"': "``",
    "'": "''",
    "`": "``",
    "``": "``",
    "''": "''",
    "$": "$",
    "#": "#",
    "%": "NN",
    "&": "CC",
    "/": "SYM",
}

#: JJ-forming suffixes, checked longest-first.
_ADJ_SUFFIXES = (
    "able",
    "ible",
    "ful",
    "ous",
    "ive",
    "ish",
    "less",
    "ical",
    "ary",
    "al",
    "ic",
)

#: NN-forming suffixes, checked longest-first.
_NOUN_SUFFIXES = (
    "ness",
    "ment",
    "tion",
    "sion",
    "ance",
    "ence",
    "ship",
    "ity",
    "ism",
    "ist",
    "ure",
    "age",
    "dom",
)

_AUXILIARIES = frozenset({"have", "has", "had", "having", "be", "been", "being", "is", "are", "was", "were", "am", "'ve", "'s"})


class PosTagger:
    """Deterministic POS tagger over the Penn Treebank tagset.

    Parameters
    ----------
    extra_lexicon:
        Additional lowercase word -> tag entries.  Entries here take
        precedence over the built-in open-class lexicon but not over the
        closed class.  Multi-word keys are ignored (the tagger works one
        token at a time).
    memo_size:
        Bound of the sentence-level tag memo.  Tags are a pure function
        of the sentence's token texts (offsets never influence a tag),
        so repeated sentences — template spam, syndicated reviews — are
        tagged once and materialised per call.  ``0`` disables the memo;
        the differential harness runs the reference configuration that
        way.
    """

    def __init__(self, extra_lexicon: dict[str, str] | None = None, memo_size: int = 256):
        self._closed = lexicon_pos.closed_class_lexicon()
        self._open = lexicon_pos.open_class_lexicon()
        if extra_lexicon:
            for word, tag in extra_lexicon.items():
                if " " in word:
                    continue
                if not penn.is_valid_tag(tag):
                    raise ValueError(f"unknown POS tag {tag!r} for word {word!r}")
                key = word.lower()
                if key in self._closed:
                    continue
                # Extra entries may override base-class readings ("support"
                # VB → NN for a sentiment noun) but never the inflected or
                # graded forms the built-in lexicon knows ("better" JJR).
                existing = self._open.get(key)
                if existing is None or existing in {"NN", "NNS", "JJ", "VB", "RB"}:
                    self._open[key] = tag
        # Words with a known verb reading, used by contextual rules.
        self._verbal = {w for w, t in self._open.items() if t in penn.VERB_TAGS}
        self._verbal |= set(lexicon_pos.VERB_FORMS)
        # Base forms usable as stems by the inflection analyzer: the
        # built-in regular verbs plus every VB entry (including ones the
        # caller registered through extra_lexicon).
        self._verb_bases = set(lexicon_pos.REGULAR_VERB_BASES)
        self._verb_bases.update(w for w, t in self._open.items() if t == "VB")
        self._memo_size = memo_size
        self._tag_memo: OrderedDict[tuple[str, ...], tuple[str, ...]] = OrderedDict()
        self.memo_hits = 0
        self.memo_misses = 0
        self.memo_evictions = 0

    # -- public API ---------------------------------------------------------

    def memo_stats(self) -> dict[str, int]:
        """Plain counters for registry mirroring (nlp stays obs-free)."""
        return {
            "hits": self.memo_hits,
            "misses": self.memo_misses,
            "evictions": self.memo_evictions,
            "size": len(self._tag_memo),
            "maxsize": self._memo_size,
        }

    def tag(self, sentence: Sentence) -> TaggedSentence:
        """Tag one sentence."""
        tags = self._sentence_tags(sentence.tokens)
        tagged = [TaggedToken(tok, tag) for tok, tag in zip(sentence.tokens, tags)]
        return TaggedSentence(tagged, index=sentence.index)

    def _sentence_tags(self, tokens: list[Token]) -> tuple[str, ...]:
        """The sentence's tag sequence, served from the bounded memo.

        The memo key is the token-text tuple: tags depend on the words
        and their order, never on character offsets, sentence index, or
        document identity, so one cache slot serves every recurrence of
        a sentence.  Only the immutable tag strings are cached — the
        :class:`TaggedToken` wrappers are rebuilt around the caller's
        own tokens on every call.
        """
        if self._memo_size <= 0:
            return self._compute_tags(tokens)
        key = tuple(t.text for t in tokens)
        tags = self._tag_memo.get(key)
        if tags is not None:
            self.memo_hits += 1
            self._tag_memo.move_to_end(key)
            return tags
        self.memo_misses += 1
        tags = self._compute_tags(tokens)
        self._tag_memo[key] = tags
        if len(self._tag_memo) > self._memo_size:
            self._tag_memo.popitem(last=False)
            self.memo_evictions += 1
        return tags

    def _compute_tags(self, tokens: list[Token]) -> tuple[str, ...]:
        tags = [self._lexical_tag(tok, i) for i, tok in enumerate(tokens)]
        return tuple(self._apply_context_rules(tokens, tags))

    def tag_tokens(self, tokens: list[Token]) -> list[TaggedToken]:
        """Tag a raw token list (treated as one sentence)."""
        if not tokens:
            return []
        return self.tag(Sentence(tokens)).tokens

    def has_verb_reading(self, word: str) -> bool:
        """True when *word* can be a verb according to the lexicons."""
        return word.lower() in self._verbal or self._verb_inflection(word.lower()) is not None

    # -- stage 1: lexical ---------------------------------------------------

    def _lexical_tag(self, token: Token, position: int) -> str:
        text = token.text
        lower = token.lower

        if text in _PUNCT_TAGS:
            return _PUNCT_TAGS[text]
        if not any(ch.isalnum() for ch in text):
            return "SYM"
        if text[0].isdigit():
            return "CD"

        if lower in self._closed:
            return self._closed[lower]

        if lower in self._open:
            tag = self._open[lower]
            # Mid-sentence capitalisation promotes nouns to proper nouns;
            # this is what the named-entity spotter keys on.
            if position > 0 and token.is_capitalized and tag in penn.COMMON_NOUN_TAGS:
                return "NNP" if tag == "NN" else "NNPS"
            return tag

        inflected = self._verb_inflection(lower)
        if inflected is not None:
            return inflected

        if token.is_capitalized and position > 0:
            return "NNPS" if lower.endswith("s") and not lower.endswith("ss") else "NNP"

        return self._suffix_tag(token, position)

    def _verb_inflection(self, lower: str) -> str | None:
        """Resolve regular inflections of known verb bases."""
        bases = self._verb_bases
        for suffix, tag in (("ing", "VBG"), ("ed", "VBD"), ("es", "VBZ"), ("s", "VBZ")):
            if not lower.endswith(suffix) or len(lower) <= len(suffix) + 1:
                continue
            stem = lower[: -len(suffix)]
            candidates = [stem, stem + "e"]
            if len(stem) >= 2 and stem[-1] == stem[-2]:
                candidates.append(stem[:-1])  # stopped -> stop
            if stem.endswith("i"):
                candidates.append(stem[:-1] + "y")  # tried -> try
            if any(c in bases for c in candidates):
                return tag
        return None

    def _suffix_tag(self, token: Token, position: int) -> str:
        lower = token.lower
        graded = self._graded_tag(lower)
        if graded is not None:
            return graded
        if lower.endswith("ly") and len(lower) > 4:
            return "RB"
        if lower.endswith("ing") and len(lower) > 5:
            return "VBG"
        if lower.endswith("ed") and len(lower) > 4:
            return "VBD"
        for suffix in _ADJ_SUFFIXES:
            if lower.endswith(suffix) and len(lower) > len(suffix) + 2:
                return "JJ"
        for suffix in _NOUN_SUFFIXES:
            if lower.endswith(suffix) and len(lower) > len(suffix) + 1:
                return "NN"
        if lower.endswith("s") and not lower.endswith("ss") and len(lower) > 3:
            return "NNS"
        if token.is_capitalized and position == 0:
            # Unknown sentence-initial capitalised word: most likely a name.
            return "NNP"
        return "NN"

    def _graded_tag(self, lower: str) -> str | None:
        """Comparative/superlative of a known adjective: "sharper" → JJR."""
        for suffix, tag in (("est", "JJS"), ("er", "JJR")):
            if not lower.endswith(suffix) or len(lower) <= len(suffix) + 2:
                continue
            stem = lower[: -len(suffix)]
            candidates = [stem, stem + "e"]
            if len(stem) >= 2 and stem[-1] == stem[-2]:
                candidates.append(stem[:-1])  # bigger -> big
            if stem.endswith("i"):
                candidates.append(stem[:-1] + "y")  # happier -> happy
            for candidate in candidates:
                if self._open.get(candidate) == "JJ":
                    return tag
        return None

    # -- stage 3: contextual repair -----------------------------------------

    def _apply_context_rules(self, tokens: list[Token], tags: list[str]) -> list[str]:
        tags = list(tags)
        n = len(tags)
        for i in range(n):
            lower = tokens[i].lower
            prev_tag = tags[i - 1] if i > 0 else None
            prev_lower = tokens[i - 1].lower if i > 0 else None
            next_tag = tags[i + 1] if i + 1 < n else None

            # DT/PRP$/JJ + verb-tagged word -> nominal reading.  Includes
            # the irregular-past reading right after a determiner ("the
            # beat", "the cut").
            if (
                tags[i] in {"VB", "VBP"}
                and prev_tag in {"DT", "PRP$", "JJ", "PDT", "CD", "POS"}
            ) or (
                # Irregular-past form right after an *article* is a noun
                # ("the beat"); other determiners ("that sold ...") keep
                # the verb reading.
                tags[i] == "VBD"
                and (prev_lower in {"the", "a", "an"} or prev_tag in {"PRP$", "POS"})
            ):
                tags[i] = "NN"
            # DT + VBZ ("the takes") -> plural noun is unlikely here, but a
            # VBZ directly after a determiner is always wrong.
            elif tags[i] == "VBZ" and prev_tag == "DT":
                tags[i] = "NNS"

            # Noun-noun compound head mistaken for a base verb: "the
            # expansion plan disappointed" — a bare VB after a noun and
            # before the real (finite or "-ed") predicate is the head noun.
            if (
                tags[i] == "VB"
                and prev_tag in penn.COMMON_NOUN_TAGS
                and i + 1 < n
                and (
                    tags[i + 1] in penn.FINITE_VERB_TAGS | {"MD"}
                    or (
                        tokens[i + 1].lower.endswith("ed")
                        and self._verb_inflection(tokens[i + 1].lower) is not None
                    )
                )
            ):
                tags[i] = "NN"

            # TO/MD + noun-or-past word with a verb reading -> base verb.
            if prev_tag in {"TO", "MD"} and tags[i] in {"NN", "VBD", "VBZ", "VBP", "JJ"}:
                if lower in self._verbal or self._verb_inflection(lower):
                    tags[i] = "VB"

            # VBD after an auxiliary is a past participle.
            if tags[i] == "VBD" and prev_lower in _AUXILIARIES:
                tags[i] = "VBN"

            # Passive: an "-ed" word after a be-form is a participle when
            # followed by an agent PP ("impressed by X") or nothing at all
            # ("The camera was praised."), even when the lexicon lists it
            # as an adjective.
            if (
                tags[i] == "JJ"
                and lower.endswith("ed")
                and prev_lower in _AUXILIARIES
                and (
                    i + 1 >= n
                    or tokens[i + 1].lower in {"by", "with"}
                    or tokens[i + 1].text in {".", "!", "?", ",", ";"}
                )
                and self.has_verb_reading(lower)
            ):
                tags[i] = "VBN"

            # "her" before a nominal is possessive.
            if lower == "her" and next_tag in penn.NOUN_TAGS | penn.ADJECTIVE_TAGS:
                tags[i] = "PRP$"

            # A lexicon adjective that is also an "-ed" verb inflection is
            # the predicate when it directly follows a nominal: "Reviewers
            # praised the camera.", "Zorblax failed badly."  (Predicative
            # adjectives need a copula, so a bare noun + -ed word is a verb.)
            if (
                tags[i] == "JJ"
                and lower.endswith("ed")
                and self._verb_inflection(lower) is not None
            ):
                if prev_tag in penn.NOUN_TAGS | {"PRP"}:
                    tags[i] = "VBD"
                elif (
                    prev_tag == "JJ"
                    and i >= 2
                    and tags[i - 2] in {"DT", "PRP$"}
                ):
                    # "the manual impressed everyone": the adjective after
                    # the determiner is really the NP head noun.
                    tags[i - 1] = "NN"
                    tags[i] = "VBD"

            # Determiner + adjective directly before a finite verb: the
            # adjective is the NP head ("the manual is flimsy").
            if (
                tags[i] == "JJ"
                and prev_tag in {"DT", "PRP$"}
                and next_tag in penn.FINITE_VERB_TAGS | {"MD"}
            ):
                tags[i] = "NN"

            # "like" is IN by the closed-class table, but after a pronoun,
            # negator, modal, "to" or a do-form it is the verb ("I like it",
            # "does n't like", "would like", "to like").
            if tags[i] == "IN" and lower == "like":
                do_forms = {"do", "does", "did", "n't", "not"}
                if prev_tag in {"PRP", "NNP", "NNPS", "MD", "TO", "RB", "NNS"} or prev_lower in do_forms:
                    tags[i] = "VB" if prev_tag in {"MD", "TO", "RB"} or prev_lower in do_forms else "VBP"

            # "that" introducing a clause after a verb is IN, not DT.
            if lower == "that" and prev_tag in penn.VERB_TAGS and next_tag in {"DT", "PRP", "NNP", "EX"}:
                tags[i] = "IN"

            # Predeterminer "all"/"such" directly before a noun acts as DT.
            if tags[i] == "PDT" and next_tag in penn.NOUN_TAGS:
                tags[i] = "DT"

            # Gerund after a determiner is nominal ("the pricing").
            if tags[i] == "VBG" and prev_tag == "DT":
                tags[i] = "NN"

            # Comparative / superlative adjectives.
            if tags[i] == "JJ":
                if lower.endswith("est") and len(lower) > 5:
                    tags[i] = "JJS"
                elif lower.endswith("er") and len(lower) > 4 and prev_tag in {"DT", "RB", None}:
                    # keep JJ: too noisy to promote blindly ("other", "proper")
                    pass
        return tags


_DEFAULT: PosTagger | None = None


def default_tagger() -> PosTagger:
    """A shared tagger instance with only the built-in lexicons."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = PosTagger()
    return _DEFAULT
