"""Phrase chunking: base noun phrases and verb groups.

Two consumers drive the design:

* the **feature extractor** (paper Section 4.1) needs *base noun phrases*
  (bNP) and, specifically, *definite* bNPs — the patterns ``NN``, ``NN NN``,
  ``JJ NN``, ``NN NN NN``, ``JJ NN NN``, ``JJ JJ NN`` preceded by the
  definite article ``the``;
* the **shallow parser** needs NP chunks and verb groups to assign the
  SP/OP/CP/PP roles the sentiment patterns refer to.
"""

from __future__ import annotations

from . import penn
from .tokens import Chunk, TaggedSentence, TaggedToken

#: The six definite-bNP tag patterns from the paper, longest first so the
#: greedy matcher prefers maximal phrases.
DEFINITE_BNP_PATTERNS: tuple[tuple[str, ...], ...] = (
    ("NN", "NN", "NN"),
    ("JJ", "NN", "NN"),
    ("JJ", "JJ", "NN"),
    ("NN", "NN"),
    ("JJ", "NN"),
    ("NN",),
)

_NP_START_TAGS = frozenset({"DT", "PRP$", "PDT", "CD"}) | penn.ADJECTIVE_TAGS | penn.NOUN_TAGS
_NP_MID_TAGS = frozenset({"CD", "POS"}) | penn.ADJECTIVE_TAGS | penn.NOUN_TAGS | {"VBG", "VBN"}
_VG_TAGS = penn.VERB_TAGS | {"MD", "TO"}


class Chunker:
    """Greedy longest-match chunker over tagged sentences."""

    # -- noun phrases --------------------------------------------------------

    def noun_phrases(self, sentence: TaggedSentence) -> list[Chunk]:
        """All maximal base noun phrases, left to right.

        A base NP is an optional determiner/possessive, premodifiers
        (adjectives, nouns, cardinals, participles), and a noun head.  It
        contains no embedded clauses or postmodifiers — "base" in the
        CoNLL-2000 sense.
        """
        chunks: list[Chunk] = []
        tokens = sentence.tokens
        i = 0
        n = len(tokens)
        while i < n:
            if tokens[i].tag in {"PRP", "EX"}:
                chunks.append(Chunk("NP", (tokens[i],)))
                i += 1
                continue
            if tokens[i].tag in _NP_START_TAGS:
                j = self._np_end(tokens, i)
                if j is not None:
                    chunks.append(Chunk("NP", tuple(tokens[i:j])))
                    i = j
                    continue
            i += 1
        return chunks

    def _np_end(self, tokens: list[TaggedToken], start: int) -> int | None:
        """End index (exclusive) of an NP starting at *start*, or None."""
        i = start
        n = len(tokens)
        if tokens[i].tag in {"DT", "PRP$", "PDT"}:
            i += 1
        last_noun = None
        while i < n and tokens[i].tag in _NP_MID_TAGS:
            if penn.is_noun(tokens[i].tag):
                last_noun = i
            i += 1
        if last_noun is None:
            return None
        return last_noun + 1

    def base_noun_phrases(self, sentence: TaggedSentence) -> list[Chunk]:
        """NPs stripped of their leading determiner/possessive."""
        stripped = []
        for chunk in self.noun_phrases(sentence):
            tokens = chunk.tokens
            while tokens and tokens[0].tag in {"DT", "PRP$", "PDT"}:
                tokens = tokens[1:]
            if tokens:
                stripped.append(Chunk("NP", tokens))
        return stripped

    # -- definite bNPs for the feature extractor ------------------------------

    def definite_bnps(self, sentence: TaggedSentence) -> list[Chunk]:
        """Definite base noun phrases: ``the`` + one of the six patterns.

        Returns the pattern part only (without ``the``), matching the
        paper's presentation where the extracted feature term is the bare
        phrase ("battery life", not "the battery life").
        """
        out: list[Chunk] = []
        tokens = sentence.tokens
        n = len(tokens)
        for i, tok in enumerate(tokens):
            if tok.lower != "the" or tok.tag != "DT":
                continue
            match = self._match_bnp_pattern(tokens, i + 1)
            if match is not None:
                out.append(Chunk("BNP", tuple(tokens[i + 1 : i + 1 + match])))
        return out

    @staticmethod
    def _match_bnp_pattern(tokens: list[TaggedToken], start: int) -> int | None:
        """Length of the longest definite-bNP pattern at *start*, or None.

        A match must be maximal: if the token after the pattern is itself a
        noun or adjective, a longer phrase is present and the shorter
        pattern match would truncate it.
        """
        n = len(tokens)
        for pattern in DEFINITE_BNP_PATTERNS:
            end = start + len(pattern)
            if end > n:
                continue
            # Plural common nouns fold into NN for pattern purposes
            # ("The batteries drain" is still a definite bNP).
            window = tuple(
                "NN" if tokens[k].tag == "NNS" else tokens[k].tag
                for k in range(start, end)
            )
            if window != pattern:
                continue
            if end < n and tokens[end].tag in penn.NOUN_TAGS | penn.ADJECTIVE_TAGS:
                continue  # not maximal; try nothing shorter either
            return len(pattern)
        return None

    def beginning_definite_bnps(self, sentence: TaggedSentence) -> list[Chunk]:
        """The paper's **bBNP heuristic**: definite bNPs at the *beginning*
        of a sentence, followed by a verb phrase.

        "When the focus shifts from one feature to another, the new feature
        is often expressed using a definite noun phrase at the beginning of
        the next sentence." (Section 4.1)
        """
        tokens = sentence.tokens
        if not tokens or tokens[0].lower != "the" or tokens[0].tag != "DT":
            return []
        match = self._match_bnp_pattern(tokens, 1)
        if match is None:
            return []
        after = 1 + match
        # Skip interleaving adverbs ("The battery really lasts ...").
        while after < len(tokens) and penn.is_adverb(tokens[after].tag):
            after += 1
        if after >= len(tokens) or tokens[after].tag not in _VG_TAGS:
            return []
        return [Chunk("BNP", tuple(tokens[1 : 1 + match]))]

    # -- verb groups ----------------------------------------------------------

    def verb_groups(self, sentence: TaggedSentence) -> list[Chunk]:
        """Maximal verb groups: modal/auxiliary chains plus adverbs.

        ``will not be``, ``has been improved``, ``does n't work`` each form
        one group.  Interleaved adverbs (including negators) are kept inside
        the group so the analyzer can detect verb-phrase negation.
        """
        chunks: list[Chunk] = []
        tokens = sentence.tokens
        i = 0
        n = len(tokens)
        while i < n:
            if tokens[i].tag in _VG_TAGS and tokens[i].tag != "TO":
                j = i + 1
                last_verb = i
                while j < n:
                    tag = tokens[j].tag
                    if tag in _VG_TAGS:
                        if tag != "TO":
                            last_verb = j
                        j += 1
                    elif penn.is_adverb(tag) and j + 1 < n and tokens[j + 1].tag in _VG_TAGS:
                        j += 1  # adverb inside the group: "has really improved"
                    else:
                        break
                chunks.append(Chunk("VG", tuple(tokens[i : last_verb + 1])))
                i = last_verb + 1
            else:
                i += 1
        return chunks


_DEFAULT = Chunker()


def noun_phrases(sentence: TaggedSentence) -> list[Chunk]:
    """Module-level convenience wrapper."""
    return _DEFAULT.noun_phrases(sentence)


def verb_groups(sentence: TaggedSentence) -> list[Chunk]:
    """Module-level convenience wrapper."""
    return _DEFAULT.verb_groups(sentence)
