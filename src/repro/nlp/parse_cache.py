"""Bounded memoisation of shallow parses, keyed on sentence signatures.

Template spam and syndicated reviews repeat the same sentences across
thousands of documents; parsing each occurrence from scratch is pure
waste.  :class:`ParseMemo` wraps a :class:`~repro.nlp.parser.ShallowParser`
with a bounded LRU keyed on the *tagged-sentence signature* — the token
texts, tags, and offsets normalised to the sentence start — so a
repeated sentence parses once no matter which document, sentence index,
or character position it reappears at.

Correctness hinges on two properties, both locked in by the
differential test harness (``tests/core/test_parse_memo.py``):

* **Shift invariance.**  The parser's logic depends only on token
  texts, tags, and *relative* offsets (negation windows are start
  deltas; chunking is index-based), so a parse computed at one document
  position is valid at any other position with the same signature.
* **No state leaks.**  The cache stores an offset-free *skeleton* —
  clause structure as token indices into the sentence — and
  materialises a fresh :class:`~repro.nlp.parser.SentenceParse` against
  the caller's actual tokens on every hit.  Nothing cached carries a
  ``document_id``, a sentence index, or a mutable object shared between
  two hits.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from .parser import Clause, PrepPhrase, SentenceParse, ShallowParser
from .tokens import Chunk, TaggedSentence

#: Signature of one tagged sentence: (text, tag, start − sentence start)
#: per token.  Token ``end`` is implied by ``start + len(text)``.
Signature = tuple[tuple[str, str, int], ...]


def sentence_signature(tagged: TaggedSentence) -> Signature:
    """Offset-normalised identity of a tagged sentence."""
    base = tagged.tokens[0].start
    return tuple((t.text, t.tag, t.start - base) for t in tagged.tokens)


@dataclass(frozen=True)
class _ChunkSkeleton:
    """A chunk as indices into the sentence's token list."""

    label: str
    indices: tuple[int, ...]

    def materialize(self, tagged: TaggedSentence) -> Chunk:
        tokens = tagged.tokens
        return Chunk(self.label, tuple(tokens[i] for i in self.indices))


@dataclass(frozen=True)
class _ClauseSkeleton:
    """One clause with every chunk reduced to token indices."""

    predicate: _ChunkSkeleton
    predicate_lemma: str
    subject: _ChunkSkeleton | None
    objects: tuple[_ChunkSkeleton, ...]
    complement: _ChunkSkeleton | None
    prep_phrases: tuple[tuple[str, _ChunkSkeleton], ...]
    negated: bool
    hypothetical: bool

    def materialize(self, tagged: TaggedSentence) -> Clause:
        return Clause(
            predicate=self.predicate.materialize(tagged),
            predicate_lemma=self.predicate_lemma,
            subject=self.subject.materialize(tagged) if self.subject else None,
            objects=[o.materialize(tagged) for o in self.objects],
            complement=self.complement.materialize(tagged) if self.complement else None,
            prep_phrases=[
                PrepPhrase(prep, np.materialize(tagged))
                for prep, np in self.prep_phrases
            ],
            negated=self.negated,
            hypothetical=self.hypothetical,
        )


def _chunk_skeleton(chunk: Chunk, index_by_start: dict[int, int]) -> _ChunkSkeleton:
    return _ChunkSkeleton(
        label=chunk.label,
        indices=tuple(index_by_start[t.start] for t in chunk.tokens),
    )


def _clause_skeleton(clause: Clause, index_by_start: dict[int, int]) -> _ClauseSkeleton:
    return _ClauseSkeleton(
        predicate=_chunk_skeleton(clause.predicate, index_by_start),
        predicate_lemma=clause.predicate_lemma,
        subject=(
            _chunk_skeleton(clause.subject, index_by_start) if clause.subject else None
        ),
        objects=tuple(_chunk_skeleton(o, index_by_start) for o in clause.objects),
        complement=(
            _chunk_skeleton(clause.complement, index_by_start)
            if clause.complement
            else None
        ),
        prep_phrases=tuple(
            (pp.preposition, _chunk_skeleton(pp.noun_phrase, index_by_start))
            for pp in clause.prep_phrases
        ),
        negated=clause.negated,
        hypothetical=clause.hypothetical,
    )


class ParseMemo:
    """LRU-bounded, signature-keyed parse cache around a shallow parser.

    ``maxsize <= 0`` disables caching entirely (every call parses) —
    the reference configuration for the differential harness and the
    throughput benchmark's baseline.
    """

    def __init__(self, parser: ShallowParser, maxsize: int = 128):
        self._parser = parser
        self._maxsize = maxsize
        self._cache: OrderedDict[Signature, tuple[_ClauseSkeleton, ...]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def maxsize(self) -> int:
        return self._maxsize

    def memo_stats(self) -> dict[str, int]:
        """Plain counters for registry mirroring (nlp stays obs-free)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._cache),
            "maxsize": self._maxsize,
        }

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        self._cache.clear()

    def parse(self, tagged: TaggedSentence) -> SentenceParse:
        parse, _ = self.parse_with_status(tagged)
        return parse

    def parse_with_status(self, tagged: TaggedSentence) -> tuple[SentenceParse, bool]:
        """Parse *tagged*; the flag reports whether the cache served it."""
        if self._maxsize <= 0:
            return self._parser.parse(tagged), False
        key = sentence_signature(tagged)
        skeletons = self._cache.get(key)
        if skeletons is not None:
            self.hits += 1
            self._cache.move_to_end(key)
            clauses = [s.materialize(tagged) for s in skeletons]
            # Coordinated-subject inheritance is part of the parse and is
            # already baked into each skeleton's subject indices.
            return SentenceParse(tagged, clauses), True
        self.misses += 1
        parse = self._parser.parse(tagged)
        index_by_start = {t.start: i for i, t in enumerate(tagged.tokens)}
        self._cache[key] = tuple(
            _clause_skeleton(clause, index_by_start) for clause in parse.clauses
        )
        if len(self._cache) > self._maxsize:
            self._cache.popitem(last=False)
            self.evictions += 1
        return parse, False
