"""Shallow clause parser: predicate identification and phrase roles.

The paper parses each sentiment context with the Talent shallow parser and
then runs "semantic relationship analysis" over the parse.  The sentiment
pattern database refers to exactly four sentence components:

* ``SP`` — subject phrase,
* ``OP`` — object phrase,
* ``CP`` — complement (predicate adjective or predicate nominal),
* ``PP`` — prepositional phrase, addressed by its preposition.

This parser reproduces that contract.  It chunks the tagged sentence into
noun phrases and verb groups, segments it into clauses at coordination and
subordination boundaries, and assigns the roles positionally:

* the subject is the last NP before the clause's verb group;
* post-verbal NPs become the object — or the complement when the verb is
  copular ("be", "seem", "look", ...);
* a post-verbal adjective (with optional adverb premodifiers) is the
  complement;
* ``IN`` + NP forms a prepositional phrase attached to the clause.

Verb-group negation ("does not work", "never fails") is detected here and
surfaced on the clause, because the analyzer reverses pattern-assigned
sentiment "if an adverb with negative meaning appears in a verb phrase"
(Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import penn
from .chunker import Chunker
from .lemmatizer import Lemmatizer
from .tokens import Chunk, TaggedSentence, TaggedToken

#: Copular verbs whose post-verbal material is a complement, not an object.
COPULAR_VERBS = frozenset(
    "be seem look appear remain stay sound feel smell taste prove become get turn".split()
)

#: Adverbs with negative meaning (paper Section 4.2 lists not, no, never,
#: hardly, seldom, little); "no" and "little" act at determiner positions.
NEGATIVE_ADVERBS = frozenset("not n't never hardly seldom rarely scarcely barely".split())
NEGATIVE_DETERMINERS = frozenset({"no"})

#: Tokens that open a new clause.
_CLAUSE_BREAK_WORDS = frozenset(
    "because although though while whereas unless if since when after before "
    "which who whom that whether".split()
)


@dataclass(frozen=True)
class PrepPhrase:
    """A prepositional phrase: the preposition token plus its NP."""

    preposition: str
    noun_phrase: Chunk

    @property
    def text(self) -> str:
        return f"{self.preposition} {self.noun_phrase.text}"


@dataclass
class Clause:
    """One clause: a predicate verb group with its role-labelled phrases."""

    predicate: Chunk
    predicate_lemma: str
    subject: Chunk | None = None
    objects: list[Chunk] = field(default_factory=list)
    complement: Chunk | None = None
    prep_phrases: list[PrepPhrase] = field(default_factory=list)
    negated: bool = False
    #: True for clauses opened by "if"/"unless"/"whether": hypothetical
    #: content asserts no sentiment ("If the zoom were better ...").
    hypothetical: bool = False

    @property
    def object(self) -> Chunk | None:
        """The first (direct) object, if any."""
        return self.objects[0] if self.objects else None

    def prep_phrase(self, *prepositions: str) -> PrepPhrase | None:
        """First PP whose preposition is one of *prepositions*."""
        wanted = {p.lower() for p in prepositions}
        for pp in self.prep_phrases:
            if pp.preposition.lower() in wanted:
                return pp
        return None

    @property
    def is_copular(self) -> bool:
        return self.predicate_lemma in COPULAR_VERBS


@dataclass
class SentenceParse:
    """Parse of one sentence: its clauses in textual order."""

    sentence: TaggedSentence
    clauses: list[Clause]

    @property
    def main_clause(self) -> Clause | None:
        """The first clause — the main predicate in almost all our inputs."""
        return self.clauses[0] if self.clauses else None

    def clause_covering(self, start: int, end: int) -> Clause | None:
        """The clause whose phrases overlap the character range, if any."""
        for clause in self.clauses:
            chunks: list[Chunk] = [clause.predicate]
            chunks.extend(c for c in (clause.subject, clause.complement) if c)
            chunks.extend(clause.objects)
            chunks.extend(pp.noun_phrase for pp in clause.prep_phrases)
            for chunk in chunks:
                if chunk.span.start < end and start < chunk.span.end:
                    return clause
        return None


class ShallowParser:
    """Chunk-and-assign shallow parser (Talent substitute)."""

    def __init__(self, chunker: Chunker | None = None, lemmatizer: Lemmatizer | None = None):
        self._chunker = chunker or Chunker()
        self._lemmatizer = lemmatizer or Lemmatizer()

    def parse(self, sentence: TaggedSentence) -> SentenceParse:
        """Parse *sentence* into clauses with phrase roles."""
        segments = self._segment(sentence)
        clauses: list[Clause] = []
        pending_pps: list[PrepPhrase] = []
        for segment in segments:
            clause = self._parse_segment(segment)
            if clause is None:
                # Verbless segment ("Unlike the T series CLIEs, ..."):
                # its PPs attach to the clause that follows.
                pending_pps.extend(self._orphan_pps(segment))
                continue
            if pending_pps:
                clause.prep_phrases = pending_pps + clause.prep_phrases
                pending_pps = []
            clauses.append(clause)
        # A coordinated clause with no subject of its own inherits the
        # previous clause's subject ("The zoom is fast and works well").
        for prev, cur in zip(clauses, clauses[1:]):
            if cur.subject is None:
                cur.subject = prev.subject
        return SentenceParse(sentence, clauses)

    # -- clause segmentation ---------------------------------------------------

    def _segment(self, sentence: TaggedSentence) -> list[list[TaggedToken]]:
        """Split the token stream into clause segments.

        A boundary opens before a subordinator/relativizer, and at a
        coordinating conjunction or comma/semicolon *only if* the remainder
        contains its own verb group (otherwise "fast and light" would be
        split apart).
        """
        tokens = sentence.tokens
        segments: list[list[TaggedToken]] = []
        current: list[TaggedToken] = []
        i = 0
        n = len(tokens)
        while i < n:
            tok = tokens[i]
            is_break = False
            if tok.lower in _CLAUSE_BREAK_WORDS and (
                tok.tag in {"IN", "DT"} or tok.tag in penn.WH_TAGS
            ):
                is_break = self._has_verb_ahead(tokens, i + 1)
            elif tok.tag == "CC" or tok.text in {",", ";", ":"}:
                is_break = self._starts_new_clause(tokens, i + 1)
            if is_break and current:
                segments.append(current)
                current = []
                if tok.tag == "CC" or tok.text in {",", ";", ":"}:
                    i += 1  # drop the conjunction/punctuation itself
                    continue
            current.append(tok)
            i += 1
        if current:
            segments.append(current)
        return segments

    @staticmethod
    def _has_verb_ahead(tokens: list[TaggedToken], start: int) -> bool:
        return any(t.tag in penn.VERB_TAGS or t.tag == "MD" for t in tokens[start:])

    def _starts_new_clause(self, tokens: list[TaggedToken], start: int) -> bool:
        """After a CC/comma, does a new clause start?

        Either a fresh subject followed by a verb ("..., but the flash is
        weak") or an immediate coordinated verb phrase ("... and works
        well", subject inherited).  "fast and sharp" has neither and stays
        in the current clause.
        """
        i = start
        n = len(tokens)
        if i < n and tokens[i].tag == "CC":
            i += 1
        saw_nominal = False
        saw_adjective = False
        while i < n:
            tag = tokens[i].tag
            if tag in penn.NOUN_TAGS or tag in {"PRP", "DT", "PRP$", "EX"}:
                saw_nominal = True
            elif tag in penn.VERB_TAGS or tag == "MD":
                # Finite verb right after the conjunction = VP coordination.
                return saw_nominal or not saw_adjective
            elif penn.is_adverb(tag) or tag == "CD":
                pass  # premodifiers
            elif tag in penn.ADJECTIVE_TAGS:
                saw_adjective = True
            else:
                return False
            i += 1
        return False

    # -- per-segment role assignment --------------------------------------------

    def _parse_segment(self, tokens: list[TaggedToken]) -> Clause | None:
        sub = TaggedSentence(tokens) if tokens else None
        if sub is None:
            return None
        verb_groups = self._chunker.verb_groups(sub)
        if not verb_groups:
            return None
        predicate = verb_groups[0]
        lemma = self._predicate_lemma(predicate)
        clause = Clause(predicate=predicate, predicate_lemma=lemma)
        clause.negated = self._is_negated(tokens, predicate)
        clause.hypothetical = tokens[0].lower in {"if", "unless", "whether"}

        noun_phrases = self._chunker.noun_phrases(sub)
        pre = [np for np in noun_phrases if np.span.end <= predicate.span.start]
        post = [np for np in noun_phrases if np.span.start >= predicate.span.end]

        if pre:
            clause.subject = self._subject_from(tokens, pre)
            # Pre-verbal PPs ("The support in the NR70 series is ...")
            # still matter for target association: record them.
            for np in pre:
                if np is clause.subject:
                    continue
                prep = self._preceding_preposition(tokens, np)
                if prep is not None:
                    clause.prep_phrases.append(PrepPhrase(prep, np))

        # Walk post-verbal material in order: adjectival complement,
        # object/complement NPs, and PPs.
        self._assign_postverbal(sub, clause, predicate, post)
        return clause

    def _orphan_pps(self, tokens: list[TaggedToken]) -> list[PrepPhrase]:
        """Prepositional phrases in a verbless segment."""
        if not tokens:
            return []
        sub = TaggedSentence(tokens)
        nps = self._chunker.noun_phrases(sub)
        out: list[PrepPhrase] = []
        for np in nps:
            prep = self._preceding_preposition(tokens, np)
            if prep is not None:
                out.append(PrepPhrase(prep, np))
        return out

    def _subject_from(self, tokens: list[TaggedToken], pre: list[Chunk]) -> Chunk:
        """Pick the subject among pre-verbal NPs.

        The last NP not attached to a preposition is the subject; this keeps
        "Prof. Wilson of American University" headed at "Prof. Wilson".
        """
        for np in reversed(pre):
            if self._preceding_preposition(tokens, np) is None:
                return np
        return pre[-1]

    @staticmethod
    def _preceding_preposition(tokens: list[TaggedToken], np: Chunk) -> str | None:
        """The preposition immediately before *np*, if any."""
        prev = None
        for tok in tokens:
            if tok.start >= np.span.start:
                break
            prev = tok
        if prev is not None and prev.tag in {"IN", "TO"}:
            return prev.lower
        return None

    def _predicate_lemma(self, predicate: Chunk) -> str:
        """Lemma of the semantic head verb of the group.

        For auxiliary chains the head is the last verb ("has been
        improved" → improve); a bare copula chain keeps "be".  A passive
        participle after a copula is the semantic predicate ("am
        impressed" → impress).
        """
        verbs = [t for t in predicate.tokens if t.tag in penn.VERB_TAGS]
        if not verbs:  # modal-only group, e.g. "can"
            return predicate.tokens[-1].lower
        head = verbs[-1]
        return self._lemmatizer.lemmatize(head.text, head.tag)

    @staticmethod
    def _is_negated(tokens: list[TaggedToken], predicate: Chunk) -> bool:
        """Negative adverb in/around the verb group, or a negative
        determiner at a determiner position beside it.

        Paper Section 4.2 lists "no" and "little" among the negatives
        but notes they act at determiner positions — "has no flaws"
        negates the predicate through its object, which the
        adverb-only scan used to miss.
        """
        for tok in predicate.tokens:
            if tok.lower in NEGATIVE_ADVERBS:
                return True
        for tok in tokens:
            negative = tok.lower in NEGATIVE_ADVERBS or (
                tok.lower in NEGATIVE_DETERMINERS and tok.tag == "DT"
            )
            if negative and (
                predicate.span.start - 24 <= tok.start < predicate.span.start
                or predicate.span.end <= tok.start <= predicate.span.end + 1
            ):
                # "never once failed", "not" split from the group by the
                # chunker, "has no flaws"
                return True
        return False

    def _assign_postverbal(
        self,
        sub: TaggedSentence,
        clause: Clause,
        predicate: Chunk,
        post_nps: list[Chunk],
    ) -> None:
        tokens = sub.tokens
        np_by_start = {np.span.start: np for np in post_nps}
        consumed_np_spans: set[int] = set()
        adverb_run: Chunk | None = None
        i = 0
        # Advance to just past the predicate.
        while i < len(tokens) and tokens[i].start < predicate.span.end:
            i += 1
        n = len(tokens)
        while i < n:
            tok = tokens[i]
            if tok.tag == "IN" or (tok.tag == "TO" and clause.predicate_lemma not in COPULAR_VERBS):
                pp_np, consumed = self._pp_at(tokens, i, np_by_start)
                if pp_np is not None:
                    clause.prep_phrases.append(PrepPhrase(tok.lower, pp_np))
                    consumed_np_spans.add(pp_np.span.start)
                    i = consumed
                    continue
            if tok.start in np_by_start and tok.start not in consumed_np_spans:
                np = np_by_start[tok.start]
                if clause.is_copular and clause.complement is None:
                    clause.complement = np
                else:
                    clause.objects.append(np)
                consumed_np_spans.add(tok.start)
                # skip past the NP
                while i < n and tokens[i].start < np.span.end:
                    i += 1
                continue
            if tok.tag in penn.ADJECTIVE_TAGS and clause.complement is None:
                # Adjectival complement, absorbing adverb premodifiers and
                # coordinated adjectives: "is well implemented and functional".
                j = i
                phrase = [tokens[j]]
                k = j + 1
                while k < n and (
                    tokens[k].tag in penn.ADJECTIVE_TAGS
                    or penn.is_adverb(tokens[k].tag)
                    or (tokens[k].tag == "CC" and k + 1 < n and tokens[k + 1].tag in penn.ADJECTIVE_TAGS)
                ):
                    phrase.append(tokens[k])
                    k += 1
                clause.complement = Chunk("ADJP", tuple(phrase))
                i = k
                continue
            if penn.is_adverb(tok.tag) and tok.lower not in NEGATIVE_ADVERBS:
                # Candidate adverbial complement ("performs poorly",
                # "works really well") — only adopted after the loop if
                # no adjective/NP complement claims the slot, so copular
                # premodifiers ("is certainly a welcome change") are safe.
                j = i
                phrase = []
                while j < n and penn.is_adverb(tokens[j].tag) and tokens[j].lower not in NEGATIVE_ADVERBS:
                    phrase.append(tokens[j])
                    j += 1
                if adverb_run is None:
                    adverb_run = Chunk("ADVP", tuple(phrase))
                i = j
                continue
            i += 1
        if clause.complement is None and adverb_run is not None:
            clause.complement = adverb_run

    @staticmethod
    def _pp_at(
        tokens: list[TaggedToken],
        i: int,
        np_by_start: dict[int, Chunk],
    ) -> tuple[Chunk | None, int]:
        """NP object of the preposition at index *i*, plus resume index."""
        n = len(tokens)
        j = i + 1
        while j < n:
            if tokens[j].start in np_by_start:
                np = np_by_start[tokens[j].start]
                k = j
                while k < n and tokens[k].start < np.span.end:
                    k += 1
                return np, k
            if tokens[j].tag in {"DT", "PRP$", "CD"} or tokens[j].tag in penn.ADJECTIVE_TAGS:
                j += 1  # determiner/premodifier before the NP start token
                continue
            return None, i + 1
        return None, i + 1


_DEFAULT = ShallowParser()


def parse(sentence: TaggedSentence) -> SentenceParse:
    """Parse with the shared default :class:`ShallowParser`."""
    return _DEFAULT.parse(sentence)
