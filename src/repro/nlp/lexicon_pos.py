"""Part-of-speech word lists backing the tagger.

The tagger resolves a token by, in order: closed-class lookup, open-class
lexicon lookup, morphological suffix rules, then contextual repair rules.
This module holds the static word lists.  Domain vocabularies and the
sentiment lexicon extend the open-class lexicon at pipeline construction
time (they are overwhelmingly nouns and adjectives).
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Closed-class words (exhaustive for our purposes)
# ---------------------------------------------------------------------------

DETERMINERS = {
    "the": "DT",
    "a": "DT",
    "an": "DT",
    "this": "DT",
    "that": "DT",
    "these": "DT",
    "those": "DT",
    "each": "DT",
    "every": "DT",
    "some": "DT",
    "any": "DT",
    "no": "DT",
    "either": "DT",
    "neither": "DT",
    "another": "DT",
    "both": "DT",
}

PREDETERMINERS = {"all": "PDT", "such": "PDT", "half": "PDT", "quite": "PDT"}

PREPOSITIONS = {
    word: "IN"
    for word in (
        "about against along among around as at before behind below beneath "
        "beside besides between beyond by despite down during except for from "
        "in inside into like near of off on onto out outside over past per "
        "since through throughout toward towards under underneath until unto "
        "up upon via with within without although because if unless whereas "
        "while after whether though unlike amid amidst atop concerning "
        "regarding versus than"
    ).split()
}

PRONOUNS = {
    word: "PRP"
    for word in (
        "i you he she it we they me him her us them myself yourself himself "
        "herself itself ourselves yourselves themselves mine yours hers ours "
        "theirs one oneself everyone everybody everything anyone anybody "
        "anything someone somebody something nobody"
    ).split()
}

POSSESSIVE_PRONOUNS = {word: "PRP$" for word in "my your his its our their".split()}
# "her" is PRP above; contextual rules promote it to PRP$ before a noun.

CONJUNCTIONS = {word: "CC" for word in "and or but nor yet so plus".split()}

MODALS = {word: "MD" for word in "can could may might must shall should will would".split()}

WH_WORDS = {
    "which": "WDT",
    "what": "WDT",
    "whatever": "WDT",
    "who": "WP",
    "whom": "WP",
    "whoever": "WP",
    "whose": "WP$",
    "where": "WRB",
    "when": "WRB",
    "why": "WRB",
    "how": "WRB",
}

EXISTENTIAL = {"there": "EX"}

TO = {"to": "TO"}

PARTICLES = {word: "RP" for word in "aboard apart aside away back".split()}

NEGATORS = {"not": "RB", "n't": "RB", "never": "RB"}

CLITICS = {"'s": "POS", "'ll": "MD", "'re": "VBP", "'ve": "VBP", "'d": "MD", "'m": "VBP"}

CARDINALS = {
    word: "CD"
    for word in (
        "zero one two three four five six seven eight nine ten eleven twelve "
        "thirteen fourteen fifteen sixteen seventeen eighteen nineteen twenty "
        "thirty forty fifty sixty seventy eighty ninety hundred thousand "
        "million billion dozen"
    ).split()
}

# ---------------------------------------------------------------------------
# Irregular and high-frequency verbs, fully inflected
# ---------------------------------------------------------------------------

#: word -> tag for verb forms that suffix rules would mis-tag.
VERB_FORMS: dict[str, str] = {}


def _verb(base: str, vbz: str, vbg: str, vbd: str, vbn: str | None = None) -> None:
    VERB_FORMS[base] = "VB"
    VERB_FORMS[vbz] = "VBZ"
    VERB_FORMS[vbg] = "VBG"
    VERB_FORMS[vbd] = "VBD"
    VERB_FORMS[vbn or vbd] = "VBN" if vbn else VERB_FORMS[vbd]


# "be" is special-cased: its forms get distinct tags.
VERB_FORMS.update(
    {
        "be": "VB",
        "am": "VBP",
        "are": "VBP",
        "is": "VBZ",
        "was": "VBD",
        "were": "VBD",
        "been": "VBN",
        "being": "VBG",
    }
)

_verb("have", "has", "having", "had")
_verb("do", "does", "doing", "did", "done")
_verb("go", "goes", "going", "went", "gone")
_verb("get", "gets", "getting", "got", "gotten")
_verb("make", "makes", "making", "made")
_verb("take", "takes", "taking", "took", "taken")
_verb("come", "comes", "coming", "came", "come")
_verb("give", "gives", "giving", "gave", "given")
_verb("find", "finds", "finding", "found")
_verb("think", "thinks", "thinking", "thought")
_verb("know", "knows", "knowing", "knew", "known")
_verb("feel", "feels", "feeling", "felt")
_verb("keep", "keeps", "keeping", "kept")
_verb("hold", "holds", "holding", "held")
_verb("buy", "buys", "buying", "bought")
_verb("sell", "sells", "selling", "sold")
_verb("say", "says", "saying", "said")
_verb("tell", "tells", "telling", "told")
_verb("see", "sees", "seeing", "saw", "seen")
_verb("run", "runs", "running", "ran", "run")
_verb("put", "puts", "putting", "put")
_verb("let", "lets", "letting", "let")
_verb("set", "sets", "setting", "set")
_verb("cost", "costs", "costing", "cost")
_verb("break", "breaks", "breaking", "broke", "broken")
_verb("lose", "loses", "losing", "lost")
_verb("win", "wins", "winning", "won")
_verb("meet", "meets", "meeting", "met")
_verb("leave", "leaves", "leaving", "left")
_verb("write", "writes", "writing", "wrote", "written")
_verb("read", "reads", "reading", "read")
_verb("send", "sends", "sending", "sent")
_verb("spend", "spends", "spending", "spent")
_verb("build", "builds", "building", "built")
_verb("bring", "brings", "bringing", "brought")
_verb("fall", "falls", "falling", "fell", "fallen")
_verb("rise", "rises", "rising", "rose", "risen")
_verb("grow", "grows", "growing", "grew", "grown")
_verb("become", "becomes", "becoming", "became", "become")
_verb("seem", "seems", "seeming", "seemed")
_verb("appear", "appears", "appearing", "appeared")
_verb("remain", "remains", "remaining", "remained")
_verb("stay", "stays", "staying", "stayed")
_verb("look", "looks", "looking", "looked")
_verb("sound", "sounds", "sounding", "sounded")
_verb("prove", "proves", "proving", "proved", "proven")
_verb("beat", "beats", "beating", "beat", "beaten")
_verb("shoot", "shoots", "shooting", "shot")
_verb("pay", "pays", "paying", "paid")
_verb("mean", "means", "meaning", "meant")
_verb("deal", "deals", "dealing", "dealt")
_verb("hear", "hears", "hearing", "heard")
_verb("wear", "wears", "wearing", "wore", "worn")
_verb("stand", "stands", "standing", "stood")
_verb("understand", "understands", "understanding", "understood")

#: Regular verbs frequent in reviews whose base form could look nominal.
REGULAR_VERB_BASES = frozenset(
    (
        "use work want need like love hate enjoy prefer recommend suggest "
        "trust mistrust "
        "offer provide deliver produce perform handle support include lack "
        "fail miss disappoint impress satisfy please annoy bother improve "
        "upgrade return replace refund ship arrive charge drain last fit "
        "focus zoom capture record store save transfer download upload "
        "install operate release announce report claim state expect plan "
        "try start stop continue help avoid consider compare review rate "
        "test check notice mention complain praise criticize struggle "
        "shine excel suffer crash freeze hang respond react turn press "
        "click carry pack travel sync connect pair match cause require "
        "allow enable ensure reduce increase boost cut drop exceed "
        "surpass outperform underperform deteriorate degrade overheat"
    ).split()
)

# ---------------------------------------------------------------------------
# Common open-class words
# ---------------------------------------------------------------------------

COMMON_ADVERBS = frozenset(
    (
        "very really quite extremely incredibly remarkably exceptionally "
        "particularly especially fairly rather pretty somewhat slightly "
        "barely hardly scarcely seldom rarely often frequently usually "
        "always sometimes occasionally again soon already still yet even "
        "just only also too well badly poorly nicely quickly slowly easily "
        "clearly simply truly highly deeply fully completely totally "
        "absolutely definitely certainly probably perhaps maybe however "
        "therefore moreover furthermore meanwhile instead otherwise "
        "here now then once twice almost nearly exactly roughly "
        "surprisingly unfortunately fortunately sadly happily honestly "
        "frankly overall together apart forever ago away"
    ).split()
)

COMMON_ADJECTIVES = frozenset(
    (
        "new old big small large little long short high low good bad great "
        "poor fine early late young full empty hard soft easy difficult "
        "heavy light fast slow hot cold warm cool cheap expensive free "
        "major minor main primary secondary overall several many few much "
        "more most less least own same other different similar various "
        "digital optical electronic manual automatic compact portable "
        "wireless rechargeable corporate financial industrial medical "
        "pharmaceutical chemical technical global local national annual "
        "quarterly monthly daily recent previous current next last first "
        "second third final whole entire certain particular general "
        "specific available standard professional commercial residential"
    ).split()
)

COMMON_NOUNS = frozenset(
    (
        "time year day week month hour minute people person man woman "
        "company business market industry product brand model series "
        "device unit item part piece thing way place area world country "
        "city state price cost value money dollar percent share stock "
        "sales revenue profit loss growth report news article page site "
        "review customer consumer user owner buyer seller maker "
        "manufacturer analyst expert problem issue question answer "
        "result effect impact change difference level rate amount number "
        "size weight length width height range limit end start beginning "
        "case example kind type sort group set list line point side "
        "hand eye head face body life home family friend service quality "
        "feature function design performance experience opinion view "
        "idea plan decision choice option reason purpose goal need use "
        "test study research development technology system process "
        "information data detail fact story word name term sentence "
        "camera phone computer software hardware screen display button "
        "battery lens flash zoom memory card picture photo image video "
        "movie music song album track sound audio band guitar piano "
        "drum beat lyric orchestra chorus movement production mix "
        "oil gas fuel energy petroleum refinery barrel drug medicine "
        "treatment therapy patient trial dose tablet vaccine"
    ).split()
)

# ---------------------------------------------------------------------------
# Assembly
# ---------------------------------------------------------------------------


def closed_class_lexicon() -> dict[str, str]:
    """The full closed-class word -> tag mapping (lowercased keys)."""
    lexicon: dict[str, str] = {}
    for table in (
        PREPOSITIONS,
        DETERMINERS,
        PREDETERMINERS,
        PRONOUNS,
        POSSESSIVE_PRONOUNS,
        CONJUNCTIONS,
        MODALS,
        WH_WORDS,
        EXISTENTIAL,
        TO,
        PARTICLES,
        NEGATORS,
        CLITICS,
        CARDINALS,
    ):
        lexicon.update(table)
    return lexicon


#: Irregular graded adjective forms.
GRADED_FORMS = {"better": "JJR", "best": "JJS", "worse": "JJR", "worst": "JJS"}


def open_class_lexicon() -> dict[str, str]:
    """Built-in open-class word -> tag mapping (lowercased keys).

    Verb forms take precedence over noun/adjective readings because the
    contextual rules can demote a verb reading after a determiner, while
    recovering a missed verb is harder.
    """
    lexicon: dict[str, str] = {}
    for word in COMMON_NOUNS:
        lexicon[word] = "NN"
    for word in COMMON_ADJECTIVES:
        lexicon[word] = "JJ"
    for word in COMMON_ADVERBS:
        lexicon[word] = "RB"
    for word in REGULAR_VERB_BASES:
        lexicon[word] = "VB"
    lexicon.update(VERB_FORMS)
    lexicon.update(GRADED_FORMS)
    return lexicon
