"""Dependency-free Aho–Corasick automaton over token streams.

The subject spotter has to find every occurrence of every subject term
(and synonym) in every document.  The naive approach probes a dict with
an n-gram key tuple for each (position, length) pair — ``O(tokens ×
max_term_len)`` tuple constructions per sentence, which is the
throughput ceiling of the whole pipeline.  This module provides the
standard fix: one trie over *all* patterns with failure links, so a
single left-to-right pass over the token stream reports every match.

The automaton works on sequences of already-lowercased token strings
(one symbol per token), not characters: subject terms are whitespace-
split into token tuples exactly like the historical spotter's keys, so
token-boundary semantics ("camera" never matches inside "cameraman")
are inherited from the tokenizer rather than re-implemented here.

Match semantics are chosen to be byte-identical to the historical
n-gram spotter (see ``tests/support/reference.py``):

* at each start position only the *longest* pattern counts
  ("Sony PDA" beats "Sony");
* matches are selected greedily left to right and never overlap — after
  emitting a match of length L at position i, scanning resumes at i+L.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator


class TokenAutomaton:
    """Multi-pattern matcher over token sequences (Aho–Corasick).

    Patterns are tuples of lowercase token strings; each carries an
    opaque payload returned with its matches.  Duplicate patterns keep
    the *first* payload registered (deterministic first-wins), mirroring
    the spotter's collision policy.
    """

    __slots__ = ("_goto", "_fail", "_out", "_olink", "_compiled", "_num_patterns")

    def __init__(self) -> None:
        # Node 0 is the root.  _out[s] is (pattern_length, payload) when
        # state s is terminal, else None.  _olink[s] points at the
        # nearest terminal proper-suffix state (the "output link").
        self._goto: list[dict[str, int]] = [{}]
        self._fail: list[int] = [0]
        self._out: list[tuple[int, Any] | None] = [None]
        self._olink: list[int] = [0]
        self._compiled = False
        self._num_patterns = 0

    # -- construction -------------------------------------------------------

    def add(self, pattern: tuple[str, ...], payload: Any) -> bool:
        """Register *pattern*; returns False when it was already present."""
        if self._compiled:
            raise RuntimeError("cannot add patterns after compile()")
        if not pattern:
            return False
        state = 0
        for symbol in pattern:
            nxt = self._goto[state].get(symbol)
            if nxt is None:
                nxt = len(self._goto)
                self._goto.append({})
                self._fail.append(0)
                self._out.append(None)
                self._olink.append(0)
                self._goto[state][symbol] = nxt
            state = nxt
        if self._out[state] is not None:
            return False
        self._out[state] = (len(pattern), payload)
        self._num_patterns += 1
        return True

    def compile(self) -> "TokenAutomaton":
        """Compute failure and output links (BFS over the trie)."""
        if self._compiled:
            return self
        queue: list[int] = []
        for state in self._goto[0].values():
            self._fail[state] = 0
            queue.append(state)
        head = 0
        while head < len(queue):
            state = queue[head]
            head += 1
            fail = self._fail[state]
            self._olink[state] = (
                fail if self._out[fail] is not None else self._olink[fail]
            )
            for symbol, child in self._goto[state].items():
                queue.append(child)
                # Follow failure links until a state with a transition on
                # this symbol exists (the root accepts everything).
                f = fail
                while f and symbol not in self._goto[f]:
                    f = self._fail[f]
                self._fail[child] = self._goto[f].get(symbol, 0)
                if self._fail[child] == child:
                    self._fail[child] = 0
        self._compiled = True
        return self

    def __len__(self) -> int:
        return self._num_patterns

    @property
    def num_states(self) -> int:
        return len(self._goto)

    # -- matching -----------------------------------------------------------

    def iter_matches(self, symbols: Iterable[str]) -> Iterator[tuple[int, int, Any]]:
        """Yield every match as ``(start, length, payload)``.

        Matches are produced in order of their *end* position; at a given
        end position longer matches come first.  All overlaps are
        reported — filtering is the caller's policy.
        """
        if not self._compiled:
            raise RuntimeError("compile() must run before matching")
        goto = self._goto
        fail = self._fail
        out = self._out
        olink = self._olink
        state = 0
        for position, symbol in enumerate(symbols):
            while state and symbol not in goto[state]:
                state = fail[state]
            state = goto[state].get(symbol, 0)
            s = state if out[state] is not None else olink[state]
            while s:
                length, payload = out[s]  # type: ignore[misc]
                yield position - length + 1, length, payload
                s = olink[s]

    def longest_starts(self, symbols: list[str]) -> dict[int, tuple[int, Any]]:
        """Longest match per start position: ``{start: (length, payload)}``."""
        best: dict[int, tuple[int, Any]] = {}
        for start, length, payload in self.iter_matches(symbols):
            known = best.get(start)
            if known is None or length > known[0]:
                best[start] = (length, payload)
        return best

    def leftmost_longest(self, symbols: list[str]) -> list[tuple[int, int, Any]]:
        """Greedy non-overlapping selection: the historical spotter's walk.

        Scan left to right; at each position take the longest match
        starting there (if any) and jump past it.  Returns
        ``[(start, length, payload), ...]`` in textual order.
        """
        best = self.longest_starts(symbols)
        selected: list[tuple[int, int, Any]] = []
        i = 0
        n = len(symbols)
        while i < n:
            hit = best.get(i)
            if hit is None:
                i += 1
                continue
            length, payload = hit
            selected.append((i, length, payload))
            i += length
        return selected


def build_automaton(
    patterns: Iterable[tuple[tuple[str, ...], Any]]
) -> TokenAutomaton:
    """Compile an automaton from ``(pattern, payload)`` pairs (first wins)."""
    automaton = TokenAutomaton()
    for pattern, payload in patterns:
        automaton.add(pattern, payload)
    return automaton.compile()
