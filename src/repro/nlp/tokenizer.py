"""Rule-based word tokenizer with exact character offsets.

WebFountain's tokenizer miner "produces a stream of tokens from the input
text".  This implementation follows Penn-Treebank-style conventions:

* punctuation is split from words (``great!`` → ``great``, ``!``);
* contractions are split at the clitic boundary (``don't`` → ``do``,
  ``n't``; ``it's`` → ``it``, ``'s``);
* common abbreviations keep their trailing period (``Prof.``, ``Mr.``);
* hyphenated compounds stay together (``add-on``, ``72-GB``);
* numbers, including decimals and comma groups, stay together.

Offsets always index into the original text, so ``text[tok.start:tok.end]
== tok.text`` for every token — a property the test suite checks with
Hypothesis.
"""

from __future__ import annotations

import re

from .tokens import Token

#: Abbreviations that end with a period which does NOT end a sentence.
ABBREVIATIONS = frozenset(
    {
        "mr.",
        "mrs.",
        "ms.",
        "dr.",
        "prof.",
        "sr.",
        "jr.",
        "st.",
        "co.",
        "corp.",
        "inc.",
        "ltd.",
        "vs.",
        "etc.",
        "e.g.",
        "i.e.",
        "u.s.",
        "u.k.",
        "no.",
        "vol.",
        "fig.",
        "approx.",
        "dept.",
        "est.",
        "jan.",
        "feb.",
        "mar.",
        "apr.",
        "jun.",
        "jul.",
        "aug.",
        "sep.",
        "sept.",
        "oct.",
        "nov.",
        "dec.",
    }
)

#: Contraction suffixes split off as their own token, longest first.
_CLITICS = ("n't", "'ll", "'re", "'ve", "'d", "'m", "'s", "'")

# A "word-ish" run: letters/digits plus internal hyphens, apostrophes,
# periods (for abbreviations and decimals), commas inside numbers.
_WORD_RE = re.compile(
    r"""
    \d[\d,]*(?:\.\d+)?[A-Za-z]*   # numbers: 1,000  3.5  72GB
    |[A-Za-z][A-Za-z\d]*(?:[.'&-][A-Za-z\d]+)*\.?   # words, model names (NR70), compounds
    |\S                           # any other single non-space char
    """,
    re.VERBOSE,
)


class Tokenizer:
    """Deterministic rule-based tokenizer.

    Parameters
    ----------
    extra_abbreviations:
        Additional lowercase abbreviation forms (ending in ``.``) that
        should keep their trailing period.
    """

    def __init__(self, extra_abbreviations: frozenset[str] | set[str] | None = None):
        self._abbreviations = ABBREVIATIONS | frozenset(extra_abbreviations or ())

    # -- public API ---------------------------------------------------------

    def tokenize(self, text: str) -> list[Token]:
        """Tokenize *text*, returning offset-faithful tokens in order."""
        tokens: list[Token] = []
        for match in _WORD_RE.finditer(text):
            raw = match.group(0)
            start = match.start()
            tokens.extend(self._split_raw(raw, start))
        return tokens

    def is_abbreviation(self, word: str) -> bool:
        """True when *word* (any case) is a known period-final abbreviation."""
        return word.lower() in self._abbreviations

    # -- internals ----------------------------------------------------------

    def _split_raw(self, raw: str, start: int) -> list[Token]:
        """Split one regex match into final tokens."""
        # Trailing period: keep for abbreviations / single initials,
        # otherwise split it off as punctuation.
        if raw.endswith(".") and not self._keeps_period(raw):
            body = raw[:-1]
            out = self._split_clitics(body, start) if body else []
            out.append(Token(".", start + len(raw) - 1, start + len(raw)))
            return out
        return self._split_clitics(raw, start)

    def _keeps_period(self, raw: str) -> bool:
        lower = raw.lower()
        if lower in self._abbreviations:
            return True
        # Single capital initial, e.g. "J." in "J. Yi".
        if len(raw) == 2 and raw[0].isupper():
            return True
        # Internal periods indicate an acronym like "U.S." or "e.g.".
        if "." in raw[:-1]:
            return True
        return False

    @staticmethod
    def _split_clitics(raw: str, start: int) -> list[Token]:
        """Split trailing contraction clitics off *raw*."""
        lower = raw.lower()
        for clitic in _CLITICS:
            if lower.endswith(clitic) and len(raw) > len(clitic):
                head = raw[: -len(clitic)]
                # "n't" requires the head to end in a consonant word like
                # "do"/"did"/"is"; a bare apostrophe split needs the head to
                # be alphabetic so "rock'n'roll" stays whole.
                if clitic == "'" and not head[-1].isalpha():
                    continue
                if "'" in head:  # only ever split the final clitic
                    continue
                split_at = start + len(head)
                return [
                    Token(head, start, split_at),
                    Token(raw[len(head) :], split_at, start + len(raw)),
                ]
        return [Token(raw, start, start + len(raw))]


_DEFAULT = Tokenizer()


def tokenize(text: str) -> list[Token]:
    """Tokenize with the default :class:`Tokenizer`."""
    return _DEFAULT.tokenize(text)
