"""Core token and span data structures shared across the NLP substrate.

Every stage of the pipeline (tokenizer, tagger, chunker, parser, and the
WebFountain-style miners) exchanges these types.  Character offsets always
refer to the *original* document text, which lets miners annotate entities
without ever mutating the raw text — the WebFountain contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence


@dataclass(frozen=True, order=True)
class Span:
    """A half-open character interval ``[start, end)`` in a document."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid span [{self.start}, {self.end})")

    def __len__(self) -> int:
        return self.end - self.start

    def contains(self, other: "Span") -> bool:
        """Return True when *other* lies entirely inside this span."""
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "Span") -> bool:
        """Return True when the two spans share at least one character."""
        return self.start < other.end and other.start < self.end

    def text_of(self, document: str) -> str:
        """Slice this span out of *document*."""
        return document[self.start : self.end]


@dataclass(frozen=True)
class Token:
    """A single token with its surface form and source offsets."""

    text: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end - self.start != len(self.text):
            raise ValueError(
                f"token text {self.text!r} does not fit span [{self.start}, {self.end})"
            )

    @property
    def span(self) -> Span:
        return Span(self.start, self.end)

    @property
    def lower(self) -> str:
        return self.text.lower()

    @property
    def is_capitalized(self) -> bool:
        """True when the first character is an uppercase letter."""
        return bool(self.text) and self.text[0].isupper()

    @property
    def is_alpha(self) -> bool:
        return self.text.isalpha()


@dataclass(frozen=True)
class TaggedToken:
    """A token paired with its Penn Treebank part-of-speech tag."""

    token: Token
    tag: str

    @property
    def text(self) -> str:
        return self.token.text

    @property
    def lower(self) -> str:
        return self.token.lower

    @property
    def start(self) -> int:
        return self.token.start

    @property
    def end(self) -> int:
        return self.token.end

    @property
    def span(self) -> Span:
        return self.token.span

    @property
    def is_capitalized(self) -> bool:
        return self.token.is_capitalized

    @property
    def is_alpha(self) -> bool:
        return self.token.is_alpha


@dataclass
class Sentence:
    """A sentence: an ordered run of tokens plus its own span.

    ``index`` is the zero-based position of the sentence in the document,
    used by the sentiment context window rules to pull in neighbouring
    sentences.
    """

    tokens: list[Token]
    index: int = 0

    def __post_init__(self) -> None:
        if not self.tokens:
            raise ValueError("a sentence must contain at least one token")

    @property
    def span(self) -> Span:
        return Span(self.tokens[0].start, self.tokens[-1].end)

    @property
    def start(self) -> int:
        return self.tokens[0].start

    @property
    def end(self) -> int:
        return self.tokens[-1].end

    def text_of(self, document: str) -> str:
        return self.span.text_of(document)

    def __len__(self) -> int:
        return len(self.tokens)

    def __iter__(self) -> Iterator[Token]:
        return iter(self.tokens)


@dataclass
class TaggedSentence:
    """A sentence whose tokens carry POS tags."""

    tokens: list[TaggedToken]
    index: int = 0

    def __post_init__(self) -> None:
        if not self.tokens:
            raise ValueError("a tagged sentence must contain at least one token")

    @property
    def span(self) -> Span:
        return Span(self.tokens[0].start, self.tokens[-1].end)

    @property
    def words(self) -> list[str]:
        return [t.text for t in self.tokens]

    @property
    def tags(self) -> list[str]:
        return [t.tag for t in self.tokens]

    def text_of(self, document: str) -> str:
        return self.span.text_of(document)

    def __len__(self) -> int:
        return len(self.tokens)

    def __iter__(self) -> Iterator[TaggedToken]:
        return iter(self.tokens)


@dataclass(frozen=True)
class Chunk:
    """A contiguous phrase chunk (e.g. a base noun phrase or verb group).

    ``label`` is a phrase category such as ``NP`` or ``VG``; ``tokens`` are
    the tagged tokens covered by the chunk, in order.
    """

    label: str
    tokens: tuple[TaggedToken, ...]

    def __post_init__(self) -> None:
        if not self.tokens:
            raise ValueError("a chunk must cover at least one token")

    @property
    def span(self) -> Span:
        return Span(self.tokens[0].start, self.tokens[-1].end)

    @property
    def text(self) -> str:
        """Surface form with single spaces (not offset-faithful)."""
        return " ".join(t.text for t in self.tokens)

    @property
    def lower(self) -> str:
        return self.text.lower()

    @property
    def tags(self) -> tuple[str, ...]:
        return tuple(t.tag for t in self.tokens)

    @property
    def head(self) -> TaggedToken:
        """Head token: the last token of the chunk (right-headed phrases)."""
        return self.tokens[-1]

    def __len__(self) -> int:
        return len(self.tokens)

    def __iter__(self) -> Iterator[TaggedToken]:
        return iter(self.tokens)


def tokens_text(tokens: Sequence[Token | TaggedToken]) -> str:
    """Join token surface forms with single spaces."""
    return " ".join(t.text for t in tokens)


def cover_span(spans: Iterable[Span]) -> Span:
    """Smallest span covering all *spans*; raises on empty input."""
    spans = list(spans)
    if not spans:
        raise ValueError("cover_span requires at least one span")
    return Span(min(s.start for s in spans), max(s.end for s in spans))
