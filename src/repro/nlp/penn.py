"""Penn Treebank part-of-speech tagset.

The paper's feature extractor (Section 4.1) defines base noun phrase
patterns in terms of Penn Treebank tags (``NN``, ``JJ``, ``DT`` ...), so the
whole NLP substrate standardises on this tagset.  This module holds the tag
inventory plus small predicate helpers used by the tagger, chunker and
parser.

Reference: Marcus, Santorini, Marcinkiewicz, "Building a Large Annotated
Corpus of English: the Penn Treebank", Computational Linguistics 19 (1993).
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Tag inventory
# ---------------------------------------------------------------------------

#: Open-class tags: categories that freely accept new words.
OPEN_CLASS_TAGS = frozenset(
    {
        "JJ",  # adjective
        "JJR",  # adjective, comparative
        "JJS",  # adjective, superlative
        "NN",  # noun, singular or mass
        "NNS",  # noun, plural
        "NNP",  # proper noun, singular
        "NNPS",  # proper noun, plural
        "RB",  # adverb
        "RBR",  # adverb, comparative
        "RBS",  # adverb, superlative
        "VB",  # verb, base form
        "VBD",  # verb, past tense
        "VBG",  # verb, gerund/present participle
        "VBN",  # verb, past participle
        "VBP",  # verb, non-3rd-person singular present
        "VBZ",  # verb, 3rd-person singular present
        "FW",  # foreign word
        "UH",  # interjection
    }
)

#: Closed-class tags: categories enumerable by word lists.
CLOSED_CLASS_TAGS = frozenset(
    {
        "CC",  # coordinating conjunction
        "CD",  # cardinal number
        "DT",  # determiner
        "EX",  # existential "there"
        "IN",  # preposition / subordinating conjunction
        "LS",  # list item marker
        "MD",  # modal
        "PDT",  # predeterminer
        "POS",  # possessive ending
        "PRP",  # personal pronoun
        "PRP$",  # possessive pronoun
        "RP",  # particle
        "SYM",  # symbol
        "TO",  # "to"
        "WDT",  # wh-determiner
        "WP",  # wh-pronoun
        "WP$",  # possessive wh-pronoun
        "WRB",  # wh-adverb
    }
)

#: Punctuation tags used by the treebank.
PUNCTUATION_TAGS = frozenset({".", ",", ":", "``", "''", "-LRB-", "-RRB-", "#", "$", "HYPH"})

#: Every tag the tagger may emit.
ALL_TAGS = OPEN_CLASS_TAGS | CLOSED_CLASS_TAGS | PUNCTUATION_TAGS

# Groupings used throughout the pipeline -----------------------------------

NOUN_TAGS = frozenset({"NN", "NNS", "NNP", "NNPS"})
PROPER_NOUN_TAGS = frozenset({"NNP", "NNPS"})
COMMON_NOUN_TAGS = frozenset({"NN", "NNS"})
ADJECTIVE_TAGS = frozenset({"JJ", "JJR", "JJS"})
ADVERB_TAGS = frozenset({"RB", "RBR", "RBS"})
VERB_TAGS = frozenset({"VB", "VBD", "VBG", "VBN", "VBP", "VBZ"})
FINITE_VERB_TAGS = frozenset({"VBD", "VBP", "VBZ"})
WH_TAGS = frozenset({"WDT", "WP", "WP$", "WRB"})


def is_noun(tag: str) -> bool:
    """Return True for any noun tag (common or proper)."""
    return tag in NOUN_TAGS


def is_proper_noun(tag: str) -> bool:
    """Return True for NNP/NNPS."""
    return tag in PROPER_NOUN_TAGS


def is_adjective(tag: str) -> bool:
    """Return True for JJ/JJR/JJS."""
    return tag in ADJECTIVE_TAGS


def is_adverb(tag: str) -> bool:
    """Return True for RB/RBR/RBS."""
    return tag in ADVERB_TAGS


def is_verb(tag: str) -> bool:
    """Return True for any verb tag."""
    return tag in VERB_TAGS


def is_valid_tag(tag: str) -> bool:
    """Return True when *tag* belongs to the tagset."""
    return tag in ALL_TAGS
