"""NLP substrate: tokenizer, sentence splitter, POS tagger, chunker, parser.

Built from scratch for this reproduction — the paper relied on the
Ratnaparkhi tagger and the Talent shallow parser, neither of which is
available.  See DESIGN.md Section 2 for the substitution rationale.
"""

from .tokens import (
    Chunk,
    Sentence,
    Span,
    TaggedSentence,
    TaggedToken,
    Token,
)
from .tokenizer import Tokenizer, tokenize
from .sentences import SentenceSplitter, split_sentences
from .postagger import PosTagger, default_tagger
from .lemmatizer import Lemmatizer, lemmatize
from .chunker import Chunker, noun_phrases, verb_groups
from .parser import (
    Clause,
    PrepPhrase,
    SentenceParse,
    ShallowParser,
    parse,
)

__all__ = [
    "Chunk",
    "Chunker",
    "Clause",
    "Lemmatizer",
    "PosTagger",
    "PrepPhrase",
    "Sentence",
    "SentenceParse",
    "SentenceSplitter",
    "ShallowParser",
    "Span",
    "TaggedSentence",
    "TaggedToken",
    "Token",
    "Tokenizer",
    "default_tagger",
    "lemmatize",
    "noun_phrases",
    "parse",
    "split_sentences",
    "tokenize",
    "verb_groups",
]
