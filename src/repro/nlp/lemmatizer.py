"""Rule-based English lemmatizer.

The sentiment pattern database keys predicates by verb lemma ("impress",
"offer", "be"), so the analyzer must map any inflected verb form back to
its base.  Nouns are lemmatized for lexicon lookups ("pictures" →
"picture").  Irregular forms come from an explicit table; regular forms go
through suffix-stripping rules with standard orthographic repairs
(doubling, ``-ies`` → ``-y``, silent ``e``).
"""

from __future__ import annotations

from . import lexicon_pos, penn

# Irregular verb form -> lemma, derived from the inflection tables.
_IRREGULAR_VERBS: dict[str, str] = {
    "am": "be",
    "are": "be",
    "is": "be",
    "was": "be",
    "were": "be",
    "been": "be",
    "being": "be",
}


def _invert_verb_table() -> None:
    forms: dict[str, list[str]] = {}
    # lexicon_pos.VERB_FORMS maps form -> tag; regroup by shared stem via
    # the _verb() calls is not recoverable, so hard-code the mapping here.
    table = {
        "have": ["has", "having", "had"],
        "do": ["does", "doing", "did", "done"],
        "go": ["goes", "going", "went", "gone"],
        "get": ["gets", "getting", "got", "gotten"],
        "make": ["makes", "making", "made"],
        "take": ["takes", "taking", "took", "taken"],
        "come": ["comes", "coming", "came"],
        "give": ["gives", "giving", "gave", "given"],
        "find": ["finds", "finding", "found"],
        "think": ["thinks", "thinking", "thought"],
        "know": ["knows", "knowing", "knew", "known"],
        "feel": ["feels", "feeling", "felt"],
        "keep": ["keeps", "keeping", "kept"],
        "hold": ["holds", "holding", "held"],
        "buy": ["buys", "buying", "bought"],
        "sell": ["sells", "selling", "sold"],
        "say": ["says", "saying", "said"],
        "tell": ["tells", "telling", "told"],
        "see": ["sees", "seeing", "saw", "seen"],
        "run": ["runs", "running", "ran"],
        "put": ["puts", "putting"],
        "let": ["lets", "letting"],
        "set": ["sets", "setting"],
        "cost": ["costs", "costing"],
        "break": ["breaks", "breaking", "broke", "broken"],
        "lose": ["loses", "losing", "lost"],
        "win": ["wins", "winning", "won"],
        "meet": ["meets", "meeting", "met"],
        "leave": ["leaves", "leaving", "left"],
        "write": ["writes", "writing", "wrote", "written"],
        "read": ["reads", "reading"],
        "send": ["sends", "sending", "sent"],
        "spend": ["spends", "spending", "spent"],
        "build": ["builds", "building", "built"],
        "bring": ["brings", "bringing", "brought"],
        "fall": ["falls", "falling", "fell", "fallen"],
        "rise": ["rises", "rising", "rose", "risen"],
        "grow": ["grows", "growing", "grew", "grown"],
        "become": ["becomes", "becoming", "became"],
        "beat": ["beats", "beating", "beaten"],
        "shoot": ["shoots", "shooting", "shot"],
        "pay": ["pays", "paying", "paid"],
        "mean": ["means", "meaning", "meant"],
        "deal": ["deals", "dealing", "dealt"],
        "hear": ["hears", "hearing", "heard"],
        "wear": ["wears", "wearing", "wore", "worn"],
        "stand": ["stands", "standing", "stood"],
        "understand": ["understands", "understanding", "understood"],
        "seem": ["seems", "seeming", "seemed"],
        "appear": ["appears", "appearing", "appeared"],
        "remain": ["remains", "remaining", "remained"],
        "stay": ["stays", "staying", "stayed"],
        "look": ["looks", "looking", "looked"],
        "sound": ["sounds", "sounding", "sounded"],
        "prove": ["proves", "proving", "proved", "proven"],
    }
    for lemma, form_list in table.items():
        for form in form_list:
            forms.setdefault(form, []).append(lemma)
    for form, lemmas in forms.items():
        _IRREGULAR_VERBS.setdefault(form, lemmas[0])


_invert_verb_table()

#: Irregular noun plural -> singular.
_IRREGULAR_NOUNS = {
    "children": "child",
    "men": "man",
    "women": "woman",
    "people": "person",
    "feet": "foot",
    "teeth": "tooth",
    "mice": "mouse",
    "geese": "goose",
    "lenses": "lens",
    "media": "medium",
    "criteria": "criterion",
    "phenomena": "phenomenon",
    "analyses": "analysis",
    "series": "series",
    "species": "species",
}

#: Words ending in "s" that are singular, not plurals.
_S_FINAL_SINGULARS = frozenset(
    "always perhaps lens gas bus plus news analysis basis os is this "
    "thus its his hers ours yours theirs".split()
)


class Lemmatizer:
    """Map inflected word forms to lemmas, guided by POS tags.

    Parameters
    ----------
    extra_verb_bases:
        Additional verb base forms the suffix-stripping rules may target
        (e.g. the sentiment pattern database's predicates).
    """

    def __init__(self, extra_verb_bases: set[str] | frozenset[str] | None = None):
        self._extra_bases = frozenset(extra_verb_bases or ())

    def lemmatize(self, word: str, tag: str) -> str:
        """Return the lemma of *word* under Penn tag *tag* (lowercased)."""
        lower = word.lower()
        if penn.is_verb(tag):
            return self._verb_lemma(lower)
        if tag in {"NNS", "NNPS"}:
            return self._noun_lemma(lower)
        if tag in {"JJR", "JJS", "RBR", "RBS"}:
            return self._graded_lemma(lower)
        return lower

    # -- verbs --------------------------------------------------------------

    def _verb_lemma(self, lower: str) -> str:
        if lower in _IRREGULAR_VERBS:
            return _IRREGULAR_VERBS[lower]
        if (
            lower in lexicon_pos.REGULAR_VERB_BASES
            or lower in self._extra_bases
            or lower.endswith("ss")
        ):
            return lower  # already a base form ("impress", "miss")
        for suffix in ("ing", "ed", "es", "s"):
            if lower.endswith(suffix) and len(lower) > len(suffix) + 1:
                stem = lower[: -len(suffix)]
                repaired = self._repair_stem(stem, suffix)
                if repaired is not None:
                    return repaired
        return lower

    def _repair_stem(self, stem: str, suffix: str) -> str | None:
        bases = lexicon_pos.REGULAR_VERB_BASES | set(lexicon_pos.VERB_FORMS) | self._extra_bases
        candidates = [stem]
        if len(stem) >= 2 and stem[-1] == stem[-2] and stem[-1] not in "aeiouls":
            candidates.append(stem[:-1])  # stopped -> stop
        if suffix in {"ed", "es", "s"} and stem.endswith("i"):
            candidates.append(stem[:-1] + "y")  # tried -> try
        candidates.append(stem + "e")  # impressed? no: loved -> love
        for cand in candidates:
            if cand in bases:
                return cand
        # Unknown verb: apply the most common orthography.
        if suffix == "ing" or suffix == "ed":
            if stem.endswith("i"):
                return stem[:-1] + "y"
            if len(stem) >= 3 and stem[-1] == stem[-2] and stem[-1] not in "aeiouls":
                return stem[:-1]
            return stem
        if suffix == "es" and stem.endswith(("sh", "ch", "ss", "x", "z", "o")):
            return stem
        return stem if suffix == "s" else None

    # -- nouns --------------------------------------------------------------

    def _noun_lemma(self, lower: str) -> str:
        if lower in _IRREGULAR_NOUNS:
            return _IRREGULAR_NOUNS[lower]
        if lower in _S_FINAL_SINGULARS or not lower.endswith("s"):
            return lower
        if lower.endswith("ies") and len(lower) > 4:
            return lower[:-3] + "y"
        if lower.endswith(("shes", "ches", "sses", "xes", "zes")):
            return lower[:-2]
        if lower.endswith("ss"):
            return lower
        if len(lower) == 1:
            return lower  # a bare "s" has nothing left to strip
        return lower[:-1]

    # -- gradable adjectives / adverbs ---------------------------------------

    def _graded_lemma(self, lower: str) -> str:
        irregular = {"better": "good", "best": "good", "worse": "bad", "worst": "bad", "more": "much", "most": "much", "less": "little", "least": "little"}
        if lower in irregular:
            return irregular[lower]
        for suffix in ("est", "er"):
            if lower.endswith(suffix) and len(lower) > len(suffix) + 2:
                stem = lower[: -len(suffix)]
                if stem.endswith("i"):
                    return stem[:-1] + "y"  # happier -> happy
                if len(stem) >= 2 and stem[-1] == stem[-2] and stem[-1] not in "aeiou":
                    return stem[:-1]  # bigger -> big
                return stem
        return lower


_DEFAULT = Lemmatizer()


def lemmatize(word: str, tag: str) -> str:
    """Lemmatize with the shared default :class:`Lemmatizer`."""
    return _DEFAULT.lemmatize(word, tag)
