"""Gold annotations for the synthetic corpora.

Every generated sentence that mentions a subject carries a gold
(subject, polarity) label plus a *kind* tag recording which template
class produced it.  The kinds encode the paper's difficulty taxonomy:

==========  ======================================================
kind        meaning
==========  ======================================================
direct      pattern-friendly sentiment about the subject
mixed       sentiment about the subject amid opposite-polarity words
slang       sentiment expressed without a usable predicate (verbless /
            exclamative) — the NLP miner's recall losses
trap        surface polarity differs from the writer's intent — any
            classifier errs here
neutral     factual mention, no sentiment words at all
stray       factual mention, but sentiment words nearby aim elsewhere —
            collocation/statistical false positives ("I class" cases)
==========  ======================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..core.model import Polarity

#: Template classes, in the order documented above, plus "anaphora":
#: the subject is named in one sentence and the sentiment lands on a
#: pronoun in the next ("I tested the zoom. It is superb.") — the
#: paper's "ambiguous when taken out of context" case, recoverable only
#: through the sentiment context window.
KINDS = ("direct", "mixed", "slang", "trap", "neutral", "stray", "anaphora")

#: Kinds the paper calls the "I class" (ambiguous / not about the
#: product / no sentiment) — the difficult majority on general web pages.
I_CLASS_KINDS = frozenset({"slang", "trap", "neutral", "stray", "anaphora"})


@dataclass(frozen=True)
class GoldMention:
    """Ground truth for one subject mention in one sentence."""

    subject: str
    polarity: Polarity
    kind: str
    sentence_index: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown gold kind {self.kind!r}")

    @property
    def is_i_class(self) -> bool:
        return self.kind in I_CLASS_KINDS


@dataclass(frozen=True)
class LabeledSentence:
    """One generated sentence plus its gold mentions (pre-placement)."""

    text: str
    mentions: tuple[GoldMention, ...] = ()

    def shifted(self, sentence_index: int) -> "LabeledSentence":
        """Re-home the mentions at a document sentence index."""
        return LabeledSentence(
            text=self.text,
            mentions=tuple(
                GoldMention(m.subject, m.polarity, m.kind, sentence_index)
                for m in self.mentions
            ),
        )


@dataclass
class LabeledDocument:
    """A generated document with its full gold annotation."""

    doc_id: str
    text: str
    mentions: list[GoldMention] = field(default_factory=list)
    domain: str = ""
    on_topic: bool = True
    doc_polarity: Polarity = Polarity.NEUTRAL

    def polar_mentions(self) -> list[GoldMention]:
        return [m for m in self.mentions if m.polarity.is_polar]

    def subjects(self) -> set[str]:
        return {m.subject for m in self.mentions}

    def gold_by_key(self) -> dict[tuple[str, int], GoldMention]:
        """Index mentions by (subject, sentence_index) for evaluation."""
        return {(m.subject.lower(), m.sentence_index): m for m in self.mentions}


@dataclass
class Dataset:
    """A D+/D− split with convenience accessors."""

    name: str
    dplus: list[LabeledDocument]
    dminus: list[LabeledDocument]

    @property
    def all_documents(self) -> list[LabeledDocument]:
        return self.dplus + self.dminus

    def dplus_texts(self) -> list[str]:
        return [d.text for d in self.dplus]

    def dminus_texts(self) -> list[str]:
        return [d.text for d in self.dminus]

    def iter_mentions(self) -> Iterator[tuple[LabeledDocument, GoldMention]]:
        for document in self.dplus:
            for mention in document.mentions:
                yield document, mention

    def mention_counts_by_kind(self) -> dict[str, int]:
        counts = {kind: 0 for kind in KINDS}
        for _, mention in self.iter_mentions():
            counts[mention.kind] += 1
        return counts
