"""Domain vocabularies for the synthetic corpora.

Four domains mirror the paper's evaluation data: digital cameras and
music albums (product reviews, Section 4.1), petroleum and pharmaceutical
companies (general web pages and news, Table 5).  Feature lists are
seeded with the paper's published Table 2 terms so the feature-extraction
experiment can be compared rank-for-rank.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DomainVocab:
    """Everything the generators need to write about one domain."""

    name: str
    #: Subjects of interest (product or company names).
    products: tuple[str, ...]
    #: Feature terms (part-of / attribute-of the products).
    features: tuple[str, ...]
    #: Positive adjectives idiomatic for the domain (all in the lexicon).
    positive_adjectives: tuple[str, ...]
    #: Negative adjectives idiomatic for the domain (all in the lexicon).
    negative_adjectives: tuple[str, ...]
    #: Plural nouns for "takes excellent pictures"-style objects.
    object_nouns: tuple[str, ...]
    #: On-topic context words (for the disambiguator / D+ texture).
    context_terms: tuple[str, ...]


# -- digital cameras -----------------------------------------------------------

#: Paper Table 2, digital camera column (top 20 extracted feature terms).
PAPER_CAMERA_FEATURES = (
    "camera", "picture", "flash", "lens", "picture quality", "battery",
    "software", "price", "battery life", "viewfinder", "color", "feature",
    "image", "menu", "manual", "photo", "movie", "resolution", "quality",
    "zoom",
)

#: Paper Table 3 product names (7 listed + "15 Products" total).
PAPER_CAMERA_PRODUCTS = ("Canon", "Nikon", "Sony", "Olympus", "Kodak", "Fuji", "Minolta")

DIGITAL_CAMERA = DomainVocab(
    name="digital_camera",
    products=PAPER_CAMERA_PRODUCTS
    + (
        "Casio", "Pentax", "Panasonic", "Leica", "Ricoh", "Sanyo",
        "Toshiba", "Epson",
    ),
    features=PAPER_CAMERA_FEATURES
    + (
        "shutter", "shutter speed", "autofocus", "memory card", "screen",
        "display", "sensor", "grip", "strap", "charger", "burst mode",
        "white balance", "exposure", "aperture", "focus", "night mode",
        "video mode", "playback", "interface", "build quality", "body",
        "size", "weight", "startup time", "shutter lag", "optical zoom",
        "digital zoom", "flash range", "red eye reduction", "timer",
        "tripod mount", "battery charger", "lens cap", "firmware",
        "image stabilization",
    ),
    positive_adjectives=(
        "excellent", "superb", "sharp", "crisp", "vibrant", "outstanding",
        "impressive", "fast", "reliable", "solid", "compact", "bright",
        "accurate", "responsive", "smooth", "great", "fantastic",
        "wonderful", "flawless", "remarkable",
    ),
    negative_adjectives=(
        "disappointing", "blurry", "grainy", "sluggish", "slow", "noisy",
        "flimsy", "terrible", "awful", "unreliable", "mediocre", "dim",
        "inaccurate", "unresponsive", "clumsy", "poor", "dreadful",
        "frustrating", "defective", "shoddy",
    ),
    object_nouns=("pictures", "photos", "images", "shots", "movies", "portraits"),
    context_terms=(
        "megapixel", "photography", "photographer", "digicam", "shooting",
        "tripod", "snapshot", "album", "print", "pixel",
    ),
)

# -- music albums -----------------------------------------------------------------

#: Paper Table 2, music albums column.
PAPER_MUSIC_FEATURES = (
    "song", "album", "track", "music", "piece", "band", "lyrics",
    "first movement", "second movement", "orchestra", "guitar",
    "final movement", "beat", "production", "chorus", "first track",
    "mix", "third movement", "piano", "work",
)

MUSIC = DomainVocab(
    name="music",
    products=(
        "Aria Nova", "Velvet Meridian", "Cobalt Sky", "Paper Lanterns",
        "The Glasshouse", "Silver Harbor", "Night Cartography",
        "Ember Chorale", "Quiet Machines", "Golden Hour",
    ),
    features=PAPER_MUSIC_FEATURES
    + (
        "melody", "harmony", "vocals", "voice", "drums", "bass",
        "arrangement", "composition", "tempo", "rhythm", "opening track",
        "closing track", "sound quality", "recording", "performance",
        "solo", "bridge", "verse", "finale", "ensemble",
    ),
    positive_adjectives=(
        "beautiful", "haunting", "melodious", "harmonious", "soulful",
        "brilliant", "captivating", "elegant", "graceful", "lyrical",
        "masterful", "memorable", "moving", "radiant", "rich",
        "stirring", "sublime", "superb", "uplifting", "wonderful",
    ),
    negative_adjectives=(
        "bland", "boring", "derivative", "dull", "flat", "forgettable",
        "grating", "harsh", "lifeless", "monotonous", "muddy",
        "pretentious", "repetitive", "shrill", "tedious", "tinny",
        "uninspired", "unlistenable", "weak", "jarring",
    ),
    object_nouns=("songs", "moments", "passages", "verses", "phrases", "textures"),
    context_terms=(
        "concert", "studio", "label", "listener", "musician", "genre",
        "soundtrack", "symphony", "quartet", "stage",
    ),
)

# -- petroleum ----------------------------------------------------------------------

PETROLEUM = DomainVocab(
    name="petroleum",
    products=(
        "PetroMax", "Orion Energy", "Gulf Crest", "Meridian Oil",
        "Atlas Petroleum", "NorthStar Fuels", "Crown Refining",
        "Delta Hydrocarbons",
    ),
    features=(
        "refinery", "pipeline", "drilling program", "production",
        "exploration", "output", "safety record", "earnings", "dividend",
        "reserves", "crude output", "refining margin", "fuel quality",
        "environmental record", "management", "stock", "expansion plan",
        "maintenance program", "supply chain", "service station",
    ),
    positive_adjectives=(
        "profitable", "efficient", "reliable", "strong", "robust",
        "impressive", "successful", "solid", "excellent", "prosperous",
        "thriving", "stable", "outstanding", "productive", "secure",
    ),
    negative_adjectives=(
        "unprofitable", "inefficient", "troubled", "weak", "declining",
        "disappointing", "hazardous", "unsafe", "polluted", "struggling",
        "unstable", "wasteful", "problematic", "risky", "dismal",
    ),
    object_nouns=("margins", "results", "barrels", "volumes", "forecasts", "figures"),
    context_terms=(
        "oil", "gas", "energy", "barrel", "crude", "offshore", "rig",
        "refining", "petroleum", "fuel",
    ),
)

# -- pharmaceuticals -----------------------------------------------------------------

PHARMACEUTICAL = DomainVocab(
    name="pharmaceutical",
    products=(
        "Novaretix", "Cardexa", "Luminal Pharma", "Veritas Biotech",
        "Solace Therapeutics", "Arcadia Labs", "Helix Remedies",
        "Pinnacle Biosciences",
    ),
    features=(
        "clinical trial", "drug pipeline", "treatment", "vaccine",
        "research program", "side effects", "efficacy", "safety profile",
        "approval process", "earnings", "patent portfolio", "dosage",
        "formulation", "manufacturing", "distribution", "pricing",
        "study results", "lab", "therapy", "stock",
    ),
    positive_adjectives=(
        "effective", "promising", "safe", "successful", "innovative",
        "groundbreaking", "impressive", "reliable", "beneficial",
        "excellent", "remarkable", "strong", "encouraging", "robust",
        "outstanding",
    ),
    negative_adjectives=(
        "ineffective", "dangerous", "harmful", "disappointing", "risky",
        "toxic", "troubling", "unsafe", "questionable", "weak",
        "alarming", "problematic", "inadequate", "controversial",
        "worrisome",
    ),
    object_nouns=("results", "outcomes", "treatments", "findings", "readings", "responses"),
    context_terms=(
        "patient", "doctor", "hospital", "medicine", "therapy", "dose",
        "fda", "clinic", "prescription", "biotech",
    ),
)

DOMAINS = {
    vocab.name: vocab
    for vocab in (DIGITAL_CAMERA, MUSIC, PETROLEUM, PHARMACEUTICAL)
}

#: Topics for off-topic (D−) documents: everyday web page subjects.
OFF_TOPIC_SUBJECTS = (
    "the city council", "the local museum", "the weekend market",
    "the highway project", "the school board", "the weather service",
    "the public library", "the history society", "the garden club",
    "the transit authority", "the volunteer group", "the art festival",
)

OFF_TOPIC_NOUNS = (
    "meeting", "schedule", "budget", "exhibition", "route", "program",
    "season", "report", "election", "renovation", "ceremony", "workshop",
    "lecture", "parade", "survey", "census", "ordinance", "hearing",
)

#: Names for people appearing in filler sentences.
PERSON_NAMES = (
    "Alice Morgan", "Brian Chen", "Carla Diaz", "David Okafor",
    "Elena Petrova", "Frank Nakamura", "Grace Lindqvist", "Hassan Ali",
)

WEEKDAYS = ("Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday")
