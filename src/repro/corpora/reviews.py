"""Product review generators (digital cameras, music albums).

A review document mirrors the paper's D+ material: sentiment-dense prose
about one product and many of its features.  The sentence-class mix is
the experimental control — DESIGN.md explains how each class maps onto
the behaviours of the sentiment miner and the baselines, and the mix
defaults below were tuned so the Table 4 result *shape* emerges:

* the miner's precision ≈ direct+mixed / (direct+mixed+trap);
* the miner's recall   ≈ direct+mixed / all-polar;
* collocation's precision collapses because every ``stray`` sentence is
  a polar false positive and every ``mixed`` sentence votes wrong;
* feature terms open sentences ("The battery ...") so the bBNP
  heuristic sees them, with Zipf-weighted sampling to induce the
  paper's Table 2 rank order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.model import Polarity
from .gold import LabeledDocument, LabeledSentence
from .templates import SentenceFactory
from .vocab import DomainVocab


@dataclass(frozen=True)
class SentenceMix:
    """Expected sentences per review, by template kind."""

    direct: int = 4
    mixed: int = 2
    slang: int = 4
    trap: int = 1
    neutral: int = 5
    stray: int = 16
    anaphora: int = 1

    def as_dict(self) -> dict[str, int]:
        return {
            "direct": self.direct,
            "mixed": self.mixed,
            "slang": self.slang,
            "trap": self.trap,
            "neutral": self.neutral,
            "stray": self.stray,
            "anaphora": self.anaphora,
        }

    @property
    def total(self) -> int:
        return sum(self.as_dict().values())


def zipf_choice(rng: random.Random, items: tuple[str, ...]) -> str:
    """Pick an item with weight 1/(rank+1): early items dominate."""
    weights = [1.0 / (i + 1) for i in range(len(items))]
    return rng.choices(items, weights=weights, k=1)[0]


@dataclass
class ReviewGenerator:
    """Deterministic review-corpus generator for one domain."""

    vocab: DomainVocab
    seed: int = 2005
    mix: SentenceMix = field(default_factory=SentenceMix)
    positive_review_bias: float = 0.6  # fraction of reviews that are positive

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._factory = SentenceFactory(self.vocab, self._rng)

    # -- D+ -------------------------------------------------------------------------

    def generate_review(self, doc_id: str) -> LabeledDocument:
        rng = self._rng
        product = zipf_choice(rng, self.vocab.products)
        doc_polarity = (
            Polarity.POSITIVE
            if rng.random() < self.positive_review_bias
            else Polarity.NEGATIVE
        )
        sentences: list[LabeledSentence] = []

        # Opening: a neutral product mention plus one product-level
        # sentiment sentence carrying the review's overall orientation.
        sentences.append(self._factory.neutral(product))
        sentences.append(self._factory.direct(product, doc_polarity))

        # Body sentences are shuffled as *groups* so multi-sentence
        # constructions (anaphora pairs) stay adjacent.
        groups: list[list[LabeledSentence]] = []
        for kind, count in self.mix.as_dict().items():
            jittered = max(0, count + rng.choice((-1, 0, 0, 1)))
            for _ in range(jittered):
                feature = zipf_choice(rng, self.vocab.features)
                polarity = self._sentence_polarity(rng, doc_polarity, kind)
                if kind == "anaphora":
                    groups.append(list(self._factory.anaphora(feature, polarity)))
                else:
                    groups.append([self._factory.of_kind(kind, feature, polarity)])
        if rng.random() < 0.55:
            groups.append([self._factory.common_opener()])
        rng.shuffle(groups)
        for group in groups:
            sentences.extend(group)

        return _assemble(doc_id, sentences, self.vocab.name, True, doc_polarity)

    def generate_dplus(self, count: int) -> list[LabeledDocument]:
        return [self.generate_review(f"{self.vocab.name}:review:{i:05d}") for i in range(count)]

    # -- D− --------------------------------------------------------------------------

    def generate_offtopic(self, doc_id: str) -> LabeledDocument:
        rng = self._rng
        sentences = [self._factory.filler() for _ in range(rng.randint(5, 9))]
        if rng.random() < 0.7:
            sentences.append(self._factory.common_opener())
        # A sprinkling of feature words in off-topic pages keeps the
        # likelihood-ratio denominators honest (C12 > 0 sometimes).
        if rng.random() < 0.08:
            feature = rng.choice(self.vocab.features)
            sentences.append(
                LabeledSentence(f"A note about the {feature} of the old clock tower followed.")
            )
        return _assemble(doc_id, sentences, "offtopic", False, Polarity.NEUTRAL)

    def generate_dminus(self, count: int) -> list[LabeledDocument]:
        return [
            self.generate_offtopic(f"{self.vocab.name}:offtopic:{i:05d}")
            for i in range(count)
        ]

    # -- internals -----------------------------------------------------------------------

    @staticmethod
    def _sentence_polarity(
        rng: random.Random, doc_polarity: Polarity, kind: str
    ) -> Polarity:
        if kind in ("neutral", "stray"):
            return Polarity.NEUTRAL
        if rng.random() < 0.8:
            return doc_polarity
        return doc_polarity.invert()


def _assemble(
    doc_id: str,
    sentences: list[LabeledSentence],
    domain: str,
    on_topic: bool,
    doc_polarity: Polarity,
) -> LabeledDocument:
    placed = [s.shifted(i) for i, s in enumerate(sentences)]
    document = LabeledDocument(
        doc_id=doc_id,
        text=" ".join(s.text for s in placed),
        domain=domain,
        on_topic=on_topic,
        doc_polarity=doc_polarity,
    )
    for sentence in placed:
        document.mentions.extend(sentence.mentions)
    return document
