"""Trending corpora: dated documents with drifting sentiment.

Supports the paper's "tracking of market trends" use case: a news stream
over several months in which one company's sentiment deteriorates, one
improves, and the rest hold steady.  Each document carries an ISO date
so the :class:`repro.apps.trends.TrendTracker` has something to bucket.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.model import Polarity
from .gold import LabeledDocument, LabeledSentence
from .reviews import _assemble
from .templates import SentenceFactory
from .vocab import DomainVocab, PETROLEUM


@dataclass(frozen=True)
class TrendScenario:
    """Which companies move, and how fast."""

    declining: str
    improving: str
    months: int = 6
    documents_per_month: int = 10

    def __post_init__(self) -> None:
        if self.months < 2:
            raise ValueError("a trend needs at least two months")
        if self.documents_per_month < 1:
            raise ValueError("documents_per_month must be positive")


def default_scenario(vocab: DomainVocab = PETROLEUM) -> TrendScenario:
    return TrendScenario(declining=vocab.products[0], improving=vocab.products[1])


class TrendingNewsGenerator:
    """Dated news stream with engineered sentiment drift."""

    def __init__(self, vocab: DomainVocab = PETROLEUM, seed: int = 2005):
        self._vocab = vocab
        self._rng = random.Random(seed)
        self._factory = SentenceFactory(vocab, self._rng)

    def generate(self, scenario: TrendScenario | None = None) -> list[tuple[LabeledDocument, str]]:
        """``(document, iso_date)`` pairs in chronological order."""
        scenario = scenario or default_scenario(self._vocab)
        rng = self._rng
        out: list[tuple[LabeledDocument, str]] = []
        for month in range(scenario.months):
            progress = month / (scenario.months - 1)
            date = f"2004-{month + 1:02d}-15"
            for i in range(scenario.documents_per_month):
                company = rng.choice(self._vocab.products[:4])
                polarity = self._polarity_for(rng, company, scenario, progress)
                sentences: list[LabeledSentence] = [
                    self._factory.direct(company, polarity),
                    self._factory.filler(),
                ]
                if rng.random() < 0.5:
                    sentences.append(self._factory.neutral(company))
                document = _assemble(
                    f"{self._vocab.name}:trend:{month:02d}:{i:03d}",
                    sentences,
                    self._vocab.name,
                    True,
                    polarity,
                )
                out.append((document, date))
        return out

    @staticmethod
    def _polarity_for(
        rng: random.Random, company: str, scenario: TrendScenario, progress: float
    ) -> Polarity:
        """Positive probability as a function of time and company."""
        if company == scenario.declining:
            positive_probability = 0.9 - 0.8 * progress
        elif company == scenario.improving:
            positive_probability = 0.1 + 0.8 * progress
        else:
            positive_probability = 0.5
        return Polarity.POSITIVE if rng.random() < positive_probability else Polarity.NEGATIVE
