"""Paper-sized dataset assembly.

One builder per evaluation corpus, with the paper's document counts as
defaults (Section 4.1: digital camera D+=485 / D−=1838, music D+=250 /
D−=2389; Table 5 domains get 300 pages each).  ``scale`` shrinks
everything proportionally for tests and quick benchmark rounds.
"""

from __future__ import annotations

from ..core.model import Polarity
from .gold import Dataset
from .reviews import ReviewGenerator, SentenceMix
from .vocab import DIGITAL_CAMERA, MUSIC, PETROLEUM, PHARMACEUTICAL
from .webpages import WebPageGenerator

#: Paper dataset sizes (Section 4.1).
CAMERA_DPLUS, CAMERA_DMINUS = 485, 1838
MUSIC_DPLUS, MUSIC_DMINUS = 250, 2389
WEB_PAGES_DEFAULT = 300


def _scaled(count: int, scale: float) -> int:
    return max(1, round(count * scale))


def camera_reviews(seed: int = 2005, scale: float = 1.0) -> Dataset:
    """The digital-camera review dataset (D+=485, D−=1838 at scale 1)."""
    generator = ReviewGenerator(DIGITAL_CAMERA, seed=seed)
    return Dataset(
        name="digital_camera_reviews",
        dplus=generator.generate_dplus(_scaled(CAMERA_DPLUS, scale)),
        dminus=generator.generate_dminus(_scaled(CAMERA_DMINUS, scale)),
    )


def music_reviews(seed: int = 2005, scale: float = 1.0) -> Dataset:
    """The music-album review dataset (D+=250, D−=2389 at scale 1)."""
    generator = ReviewGenerator(MUSIC, seed=seed)
    return Dataset(
        name="music_reviews",
        dplus=generator.generate_dplus(_scaled(MUSIC_DPLUS, scale)),
        dminus=generator.generate_dminus(_scaled(MUSIC_DMINUS, scale)),
    )


def petroleum_web(seed: int = 2005, scale: float = 1.0) -> Dataset:
    """General web pages, petroleum domain (Table 5 row 1)."""
    generator = WebPageGenerator(PETROLEUM, seed=seed)
    return Dataset(
        name="petroleum_web",
        dplus=generator.generate_pages(_scaled(WEB_PAGES_DEFAULT, scale)),
        dminus=[],
    )


def pharmaceutical_web(seed: int = 2005, scale: float = 1.0) -> Dataset:
    """General web pages, pharmaceutical domain (Table 5 row 2)."""
    generator = WebPageGenerator(PHARMACEUTICAL, seed=seed)
    return Dataset(
        name="pharmaceutical_web",
        dplus=generator.generate_pages(_scaled(WEB_PAGES_DEFAULT, scale)),
        dminus=[],
    )


def petroleum_news(seed: int = 2005, scale: float = 1.0) -> Dataset:
    """News articles, petroleum domain (Table 5 row 3)."""
    generator = WebPageGenerator(PETROLEUM, seed=seed, news_style=True)
    return Dataset(
        name="petroleum_news",
        dplus=generator.generate_pages(_scaled(WEB_PAGES_DEFAULT, scale)),
        dminus=[],
    )


def review_dataset_for(domain_name: str, seed: int = 2005, scale: float = 1.0) -> Dataset:
    """Review dataset lookup by domain name."""
    if domain_name == DIGITAL_CAMERA.name:
        return camera_reviews(seed, scale)
    if domain_name == MUSIC.name:
        return music_reviews(seed, scale)
    raise ValueError(f"no review dataset for domain {domain_name!r}")


def document_polarity_split(dataset: Dataset) -> tuple[list, list]:
    """Review documents split by overall polarity (ReviewSeer training)."""
    positive = [d for d in dataset.dplus if d.doc_polarity is Polarity.POSITIVE]
    negative = [d for d in dataset.dplus if d.doc_polarity is Polarity.NEGATIVE]
    return positive, negative
