"""General web page and news article generators (Table 5 material).

"Document level classifiers do not work as well on general Web pages in
which sentiment expressions are typically very sparse."  These pages are
multi-subject and dominated by the paper's **I class** (ambiguous / not
describing the product / no sentiment at all — "60%–90% depending on the
domain"), which is exactly what breaks sentence-level statistical
classification while the NLP miner keeps abstaining correctly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.model import Polarity
from .gold import LabeledDocument, LabeledSentence
from .reviews import _assemble, zipf_choice
from .templates import SentenceFactory
from .vocab import DomainVocab


@dataclass(frozen=True)
class WebPageMix:
    """Sentence mix for one general web page: I-class dominated."""

    direct: int = 4
    mixed: int = 1
    slang: int = 1
    trap: int = 1
    neutral: int = 5
    stray: int = 9
    filler: int = 4

    def kind_counts(self) -> dict[str, int]:
        return {
            "direct": self.direct,
            "mixed": self.mixed,
            "slang": self.slang,
            "trap": self.trap,
            "neutral": self.neutral,
            "stray": self.stray,
        }


@dataclass
class WebPageGenerator:
    """Deterministic general-web / news generator for one domain."""

    vocab: DomainVocab
    seed: int = 2005
    mix: WebPageMix = field(default_factory=WebPageMix)
    news_style: bool = False

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed + (1 if self.news_style else 0))
        self._factory = SentenceFactory(self.vocab, self._rng)

    def generate_page(self, doc_id: str) -> LabeledDocument:
        rng = self._rng
        # General pages discuss several subjects: companies and their
        # aspects interleave.
        companies = rng.sample(self.vocab.products, k=min(3, len(self.vocab.products)))
        sentences: list[LabeledSentence] = []
        if self.news_style:
            company = companies[0]
            headline_verb = rng.choice(("reports", "reviews", "updates"))
            sentences.append(
                LabeledSentence(f"{company} {headline_verb} its quarterly outlook.")
            )
        body: list[LabeledSentence] = []
        for kind, count in self.mix.kind_counts().items():
            jittered = max(0, count + rng.choice((-1, 0, 0, 1)))
            for _ in range(jittered):
                subject = self._pick_subject(rng, companies)
                polarity = (
                    Polarity.NEUTRAL
                    if kind in ("neutral", "stray")
                    else rng.choice((Polarity.POSITIVE, Polarity.NEGATIVE))
                )
                body.append(self._factory.of_kind(kind, subject, polarity))
        for _ in range(self.mix.filler):
            body.append(self._factory.filler())
        rng.shuffle(body)
        sentences.extend(body)
        document = _assemble(
            doc_id,
            sentences,
            self.vocab.name,
            True,
            Polarity.NEUTRAL,
        )
        document.doc_polarity = Polarity.NEUTRAL
        return document

    def generate_pages(self, count: int) -> list[LabeledDocument]:
        style = "news" if self.news_style else "web"
        return [
            self.generate_page(f"{self.vocab.name}:{style}:{i:05d}")
            for i in range(count)
        ]

    def _pick_subject(self, rng: random.Random, companies: list[str]) -> str:
        # Half the mentions name a company, half an aspect/feature.
        if rng.random() < 0.5:
            return rng.choice(companies)
        return zipf_choice(rng, self.vocab.features)
