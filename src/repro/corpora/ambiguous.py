"""Ambiguous-subject corpus for the disambiguator experiments.

The paper's example: the subject term "SUN" may refer to SUN Microsystems
(on topic) or to the sun/Sunday (off topic).  This generator produces a
mixed corpus around one deliberately ambiguous brand name — by default
"Apex", a camera-accessory maker that shares its name with a mountain
trail — together with the on/off-topic term sets a user would configure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.disambiguation import TopicTermSet
from .gold import LabeledDocument

#: Context words for the on-topic (company) reading.
ON_TOPIC_TERMS = (
    "camera", "lens", "tripod", "photography", "accessory", "firmware",
    "shipping", "warranty", "retailer", "product",
)

#: Context words for the off-topic (trail) reading.
OFF_TOPIC_TERMS = (
    "trail", "summit", "hikers", "ridge", "valley", "weather", "snow",
    "climb", "elevation", "wilderness",
)

_ON_TOPIC_SENTENCES = (
    "{name} shipped a new tripod accessory for every camera.",
    "The {ctx} retailer stocked {name} products all month.",
    "{name} updated the firmware for its lens lineup.",
    "Reviewers tested the {name} warranty and shipping process.",
    "A photography blog compared {name} to other accessory makers.",
)

_OFF_TOPIC_SENTENCES = (
    "The {name} trail climbs toward the snowy summit.",
    "Hikers crossed the {ctx} below the {name} ridge.",
    "Snow closed the {name} valley route for the weather season.",
    "The wilderness around {name} draws climbers every elevation season.",
    "A guide described the {ctx} near the {name} summit.",
)


@dataclass
class AmbiguousCorpus:
    """Mixed corpus plus the configured term sets."""

    subject: str
    documents: list[LabeledDocument]
    term_set: TopicTermSet

    def on_topic_documents(self) -> list[LabeledDocument]:
        return [d for d in self.documents if d.on_topic]

    def off_topic_documents(self) -> list[LabeledDocument]:
        return [d for d in self.documents if not d.on_topic]


def generate_ambiguous_corpus(
    subject: str = "Apex",
    on_topic_docs: int = 20,
    off_topic_docs: int = 20,
    seed: int = 2005,
) -> AmbiguousCorpus:
    """A corpus where *subject* appears in two unrelated senses."""
    rng = random.Random(seed)
    documents: list[LabeledDocument] = []
    for kind, count, sentences in (
        ("on", on_topic_docs, _ON_TOPIC_SENTENCES),
        ("off", off_topic_docs, _OFF_TOPIC_SENTENCES),
    ):
        terms = ON_TOPIC_TERMS if kind == "on" else OFF_TOPIC_TERMS
        for i in range(count):
            chosen = rng.sample(sentences, k=3)
            text = " ".join(
                s.format(name=subject, ctx=rng.choice(terms)) for s in chosen
            )
            documents.append(
                LabeledDocument(
                    doc_id=f"ambiguous:{kind}:{i:04d}",
                    text=text,
                    domain="ambiguous",
                    on_topic=(kind == "on"),
                )
            )
    rng.shuffle(documents)
    term_set = TopicTermSet.build(on_topic=ON_TOPIC_TERMS, off_topic=OFF_TOPIC_TERMS)
    return AmbiguousCorpus(subject=subject, documents=documents, term_set=term_set)
