"""Synthetic corpora with ground truth (DESIGN.md Section 2 substitution).

Deterministic generators replace the paper's proprietary datasets while
preserving the statistical properties the evaluation depends on: review
pages are sentiment-dense and single-product; general web pages are
sparse, multi-subject, and I-class dominated.
"""

from .datasets import (
    camera_reviews,
    document_polarity_split,
    music_reviews,
    petroleum_news,
    petroleum_web,
    pharmaceutical_web,
    review_dataset_for,
)
from .gold import (
    Dataset,
    GoldMention,
    I_CLASS_KINDS,
    KINDS,
    LabeledDocument,
    LabeledSentence,
)
from .reviews import ReviewGenerator, SentenceMix, zipf_choice
from .templates import SentenceFactory
from .trending import TrendScenario, TrendingNewsGenerator, default_scenario
from .vocab import (
    DIGITAL_CAMERA,
    DOMAINS,
    MUSIC,
    PAPER_CAMERA_FEATURES,
    PAPER_CAMERA_PRODUCTS,
    PAPER_MUSIC_FEATURES,
    PETROLEUM,
    PHARMACEUTICAL,
    DomainVocab,
)
from .webpages import WebPageGenerator, WebPageMix

__all__ = [
    "DIGITAL_CAMERA",
    "DOMAINS",
    "Dataset",
    "DomainVocab",
    "GoldMention",
    "I_CLASS_KINDS",
    "KINDS",
    "LabeledDocument",
    "LabeledSentence",
    "MUSIC",
    "PAPER_CAMERA_FEATURES",
    "PAPER_CAMERA_PRODUCTS",
    "PAPER_MUSIC_FEATURES",
    "PETROLEUM",
    "PHARMACEUTICAL",
    "ReviewGenerator",
    "SentenceFactory",
    "TrendScenario",
    "TrendingNewsGenerator",
    "SentenceMix",
    "WebPageGenerator",
    "WebPageMix",
    "camera_reviews",
    "default_scenario",
    "document_polarity_split",
    "music_reviews",
    "petroleum_news",
    "petroleum_web",
    "pharmaceutical_web",
    "review_dataset_for",
    "zipf_choice",
]
