"""Sentence templates with gold labels.

Each factory method renders one sentence about a subject and returns a
:class:`~repro.corpora.gold.LabeledSentence` whose mentions carry the
intended gold polarity and template kind.  The template classes are
engineered against the analyzer's *documented* behaviour (and pinned by
tests in ``tests/corpora/test_templates.py``):

* ``direct``  — the sentiment miner associates the right polarity;
* ``mixed``   — the miner is right, nearest-word collocation is wrong;
* ``slang``   — verbless/exclamative: the miner abstains (recall loss)
  while collocation still fires;
* ``trap``    — surface polarity contradicts the gold label; everything
  that reads surface polarity errs;
* ``neutral`` — factual, no sentiment vocabulary at all;
* ``stray``   — factual about the subject, but sentiment words nearby
  target something else (the statistical baselines' false positives).
"""

from __future__ import annotations

import random

from ..core.model import Polarity
from . import vocab as vocab_module
from .gold import GoldMention, LabeledSentence
from .vocab import DomainVocab

_POSITIVE_DIRECT = (
    "The {subject} is {adj}.",
    "The {subject} is {adj} and {adj2}.",
    "The {subject} is really {adj}.",
    "I am impressed by the {subject}.",
    "I was impressed with the {subject}.",
    "The {subject} works really well.",
    "The {subject} performs beautifully.",
    "Reviewers recommend the {subject}.",
    "I love the {subject}.",
    "The {subject} impressed everyone.",
    "The {subject} never disappoints.",
    "The {subject} takes {adj} {objects}.",
    "The {subject} delivers {adj} {objects}.",
)

_NEGATIVE_DIRECT = (
    "The {subject} is {adj}.",
    "The {subject} is {adj} and {adj2}.",
    "The {subject} is really {adj}.",
    "I was disappointed with the {subject}.",
    "The {subject} does not work.",
    "The {subject} performs poorly.",
    "The {subject} fails to impress.",
    "I hate the {subject}.",
    "The {subject} disappointed everyone.",
    "The {subject} stopped working.",
    "The {subject} is not {posadj}.",
    "The {subject} takes {adj} {objects}.",
    "The {subject} frustrated us.",
)

_POSITIVE_MIXED = (
    "Although the {other} is {neg} and {neg2}, the {subject} is {adj}.",
    "Unlike the {neg} and {neg2} {other}, the {subject} is {adj}.",
    "While the {other} seems {neg} and {neg2}, the {subject} impressed everyone.",
)

_NEGATIVE_MIXED = (
    "Although the {other} is {pos} and {pos2}, the {subject} is {adj}.",
    "Unlike the {pos} and {pos2} {other}, the {subject} is {adj}.",
    "While the {other} seems {pos} and {pos2}, the {subject} disappointed everyone.",
)

_POSITIVE_SLANG = (
    "What a {adj} {subject}!",
    "The {subject}: simply {adj}.",
    "A truly {adj} {subject}, through and through.",
    "Such a {adj}, {adj2} {subject}.",
)

_NEGATIVE_SLANG = (
    "What a {adj} {subject}!",
    "The {subject}: simply {adj}.",
    "A thoroughly {adj} {subject}, sadly.",
    "Such a {adj}, {adj2} {subject}.",
)

# Trap sentences: gold is the opposite of the surface reading.
_TRAP_GOLD_NEGATIVE = (
    "The {subject} was supposed to be {pos}.",
    "The {subject} is {pos} only in the brochure.",
)

# Retuned when the parser learned determiner negation ("No part of the
# X is {neg}." stopped fooling the analyzer): counterfactuals keep the
# surface reading negative while the writer's verdict is positive.
_TRAP_GOLD_POSITIVE = (
    "The {subject} could have been {neg}.",
    "The {subject} would be {neg} in lesser hands.",
)

# Neutral/stray sentences avoid opening with "The <non-feature noun>" so
# the bBNP heuristic never harvests template props ("box", "salesman").
_NEUTRAL = (
    "I bought the {subject} last {weekday}.",
    "The {subject} arrived on {weekday}.",
    "Chapter {number} covers the {subject} in detail.",
    "The {subject} comes in three versions.",
    "Each box includes the {subject} and a cable.",
    "The {subject} weighs about {number} ounces.",
    "We compared the {subject} across {number} settings.",
    "The {subject} shipped in early spring.",
)

_STRAY = (
    "A friend with a {pos} job bought the {subject}.",
    "My neighbor, who had a {neg} week, returned the {subject}.",
    "A store that sold me the {subject} had {pos} service.",
    "Our salesman was {pos} while wrapping the {subject}.",
    "A {neg} storm delayed the {subject} shipment.",
    "Their courier, {pos} as always, delivered the {subject}.",
)


class SentenceFactory:
    """Render labeled sentences for one domain with one RNG."""

    def __init__(self, vocab: DomainVocab, rng: random.Random):
        self._vocab = vocab
        self._rng = rng

    # -- public factories ---------------------------------------------------------

    def direct(self, subject: str, polarity: Polarity) -> LabeledSentence:
        templates = _POSITIVE_DIRECT if polarity is Polarity.POSITIVE else _NEGATIVE_DIRECT
        return self._render(self._rng.choice(templates), subject, polarity, "direct")

    def mixed(self, subject: str, polarity: Polarity) -> LabeledSentence:
        """Contrastive sentence: the *other* feature carries the opposite
        polarity, and gets its own gold mention."""
        templates = _POSITIVE_MIXED if polarity is Polarity.POSITIVE else _NEGATIVE_MIXED
        # The contrasted feature must not contain (or be contained by)
        # the subject, or the spotter would find the subject inside it.
        candidates = [
            f
            for f in self._vocab.features
            if subject not in f and f not in subject
        ] or ["competition"]
        other = self._rng.choice(candidates)
        text = self._fill(self._rng.choice(templates), subject=subject, polarity=polarity, other=other)
        return LabeledSentence(
            text=text,
            mentions=(
                GoldMention(subject=subject, polarity=polarity, kind="mixed"),
                GoldMention(subject=other, polarity=polarity.invert(), kind="mixed"),
            ),
        )

    def slang(self, subject: str, polarity: Polarity) -> LabeledSentence:
        templates = _POSITIVE_SLANG if polarity is Polarity.POSITIVE else _NEGATIVE_SLANG
        return self._render(self._rng.choice(templates), subject, polarity, "slang")

    def trap(self, subject: str, polarity: Polarity) -> LabeledSentence:
        templates = _TRAP_GOLD_POSITIVE if polarity is Polarity.POSITIVE else _TRAP_GOLD_NEGATIVE
        return self._render(self._rng.choice(templates), subject, polarity, "trap")

    def neutral(self, subject: str) -> LabeledSentence:
        return self._render(self._rng.choice(_NEUTRAL), subject, Polarity.NEUTRAL, "neutral")

    def stray(self, subject: str) -> LabeledSentence:
        return self._render(self._rng.choice(_STRAY), subject, Polarity.NEUTRAL, "stray")

    def of_kind(self, kind: str, subject: str, polarity: Polarity) -> LabeledSentence:
        """Dispatch by kind name (used by the document generators)."""
        if kind == "direct":
            return self.direct(subject, polarity)
        if kind == "mixed":
            return self.mixed(subject, polarity)
        if kind == "slang":
            return self.slang(subject, polarity)
        if kind == "trap":
            return self.trap(subject, polarity)
        if kind == "neutral":
            return self.neutral(subject)
        if kind == "stray":
            return self.stray(subject)
        raise ValueError(f"unknown template kind {kind!r}")

    def anaphora(self, subject: str, polarity: Polarity) -> tuple[LabeledSentence, LabeledSentence]:
        """A two-sentence pair: the subject is named first, the sentiment
        lands on a pronoun in the follow-up sentence.

        Gold polarity attaches to the *first* sentence's mention; a miner
        confined to single-sentence contexts must abstain, while one with
        a one-sentence-after context window can attribute the pronoun
        assignment back to the spot.
        """
        intro_template = self._rng.choice(
            (
                "I tested the {subject} for a week.",
                "Let me say a word about the {subject}.",
                "We also examined the {subject} closely.",
            )
        )
        adj = self._rng.choice(
            self._vocab.positive_adjectives
            if polarity is Polarity.POSITIVE
            else self._vocab.negative_adjectives
        )
        followup_template = self._rng.choice(
            ("It is truly {adj}.", "It is {adj}.", "It seems {adj} overall.")
        )
        intro = LabeledSentence(
            text=self._fill(intro_template, subject=subject),
            mentions=(GoldMention(subject=subject, polarity=polarity, kind="anaphora"),),
        )
        followup = LabeledSentence(text=followup_template.format(adj=adj), mentions=())
        return intro, followup

    def common_opener(self) -> LabeledSentence:
        """A sentiment-free sentence opening with a definite non-feature NP.

        These appear in *both* D+ and D− (more often in D−), giving the
        likelihood-ratio test something real to filter: a raw-frequency
        ranker promotes "weather"/"morning" into the feature list, the
        LR guard (r2 ≥ r1) zeroes them.
        """
        template = self._rng.choice(
            (
                "The weather stayed dry that afternoon.",
                "The weather turned colder overnight.",
                "The weather cleared up before noon.",
                "The morning went by without incident.",
                "The afternoon passed slowly downtown.",
            )
        )
        return LabeledSentence(template, ())

    def filler(self) -> LabeledSentence:
        """An off-topic sentence mentioning no subject at all."""
        template = self._rng.choice(
            (
                "The {off_subject} announced a new {off_noun} on {weekday}.",
                "A {off_noun} about the {off_noun2} is planned for {weekday}.",
                "{person} attended the {off_noun} downtown.",
                "The {off_subject} published its {off_noun} this week.",
                "Minutes from the {off_noun} were posted online.",
            )
        )
        return LabeledSentence(self._fill(template, subject=""), ())

    # -- internals ---------------------------------------------------------------------

    def _render(
        self, template: str, subject: str, polarity: Polarity, kind: str
    ) -> LabeledSentence:
        text = self._fill(template, subject=subject, polarity=polarity)
        mention = GoldMention(subject=subject, polarity=polarity, kind=kind)
        return LabeledSentence(text=text, mentions=(mention,))

    def _fill(
        self,
        template: str,
        subject: str,
        polarity: Polarity = Polarity.NEUTRAL,
        other: str | None = None,
    ) -> str:
        rng = self._rng
        v = self._vocab
        pos = rng.sample(v.positive_adjectives, 2)
        neg = rng.sample(v.negative_adjectives, 2)
        adjectives = pos if polarity is Polarity.POSITIVE else neg
        other_candidates = [f for f in v.features if f != subject] or ["competition"]
        values = {
            "subject": subject,
            "adj": adjectives[0],
            "adj2": adjectives[1],
            "pos": pos[0],
            "pos2": pos[1],
            "neg": neg[0],
            "neg2": neg[1],
            "posadj": pos[0],
            "objects": rng.choice(v.object_nouns),
            "other": other if other is not None else rng.choice(other_candidates),
            "weekday": rng.choice(vocab_module.WEEKDAYS),
            "number": rng.randint(2, 9),
            "person": rng.choice(vocab_module.PERSON_NAMES),
            "off_subject": rng.choice(vocab_module.OFF_TOPIC_SUBJECTS).removeprefix("the "),
            "off_noun": rng.choice(vocab_module.OFF_TOPIC_NOUNS),
            "off_noun2": rng.choice(vocab_module.OFF_TOPIC_NOUNS),
        }
        return template.format(**values)
