"""Sentiment verbs and trans verbs.

"Some verbs have positive or negative sentiment by themselves, but some
verbs (we call them trans verb), such as *be* or *offer*, do not.  The
sentiment of a subject in a sentence with a trans verb is determined by
another component of the sentence." (paper Section 4.2)

Sentiment verbs carry polarity ("love", "fail"); trans verbs transfer the
polarity of a source phrase to a target phrase and are enumerated here so
the pattern database (``lexicons.patterns``) can cover all of them.
"""

from __future__ import annotations

POSITIVE_VERBS: tuple[str, ...] = tuple(
    sorted(
        set(
            (
                "admire adore amaze applaud appreciate approve astonish "
                "astound awe benefit boost brighten captivate celebrate "
                "charm cherish commend compliment congratulate dazzle "
                "delight eclipse empower enchant encourage endorse energize "
                "enhance enjoy enrich entertain enthrall excel excite "
                "fascinate flourish gain glow grace gratify help honor "
                "impress improve inspire invigorate love like laud "
                "outperform outshine overdeliver please praise prefer "
                "prosper protect recommend refine refresh rejoice relish "
                "reassure revitalize reward satisfy shine soothe succeed "
                "surpass thrill thrive treasure triumph trust uplift value "
                "welcome win wow strengthen streamline simplify perfect "
                "polish optimize stabilize secure save exceed"
            ).split()
        )
    )
)

NEGATIVE_VERBS: tuple[str, ...] = tuple(
    sorted(
        set(
            (
                "abandon abuse aggravate alarm anger annoy appall "
                "backfire betray blame bore bother break bungle burden "
                "cheapen cheat collapse complain condemn confuse corrode "
                "corrupt crack crash cripple criticize crumble damage "
                "deceive decline decay defraud degrade demean demolish "
                "denounce deplete deplore despise destroy deteriorate "
                "disappoint discourage disgust dishearten dislike dismay "
                "displease disrupt dissatisfy distort distress disturb "
                "drain dread endanger enrage exasperate exaggerate fail "
                "falter fear flounder freeze frighten frustrate fumble "
                "grumble hamper harm hate hinder humiliate hurt impair "
                "infest infuriate irritate jam jeopardize lack lag lament "
                "languish leak lie lose malfunction mar mislead miss mistrust "
                "mistreat nag neglect offend overcharge overheat overhype "
                "overprice panic plague pollute protest provoke rant "
                "regret reject repel resent ridicule ruin rust sabotage "
                "scare scratch shatter shortchange shrink sicken sink "
                "slump smear spoil stagnate stain stall struggle stumble "
                "suffer sue tarnish threaten torment trouble undermine "
                "underdeliver underperform underwhelm upset vex violate "
                "wane warp waste weaken wear worry worsen wreck"
            ).split()
        )
    )
)

#: Verbs with no sentiment of their own that *transfer* sentiment between
#: sentence components.  The pattern database defines source/target roles
#: for each.  (Paper's examples: "be", "offer".)
TRANS_VERBS: tuple[str, ...] = tuple(
    sorted(
        set(
            (
                "be seem look appear sound feel smell taste remain stay "
                "become get turn prove offer provide deliver give bring "
                "produce make take have show display exhibit demonstrate "
                "feature include contain carry come hold keep supply yield "
                "present boast sport pack report describe call consider "
                "find rate deem judge regard view see know mean say "
                "declare label use run work perform handle operate "
                "function respond behave ship arrive fix solve eliminate "
                "resolve avoid prevent reduce cure correct remove repair "
                "mitigate cause create introduce generate"
            ).split()
        )
    )
)


def entries() -> list[tuple[str, str, str]]:
    """All verb lexicon entries as ``(term, POS, polarity)`` tuples."""
    out = [(word, "VB", "+") for word in POSITIVE_VERBS]
    out.extend((word, "VB", "-") for word in NEGATIVE_VERBS)
    return out
