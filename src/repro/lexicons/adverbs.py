"""Sentiment adverbs, intensifiers and diminishers.

Sentiment adverbs carry polarity themselves ("beautifully", "poorly").
Intensifiers and diminishers do not; they modulate the strength of an
adjacent sentiment word.  The paper's polarity model is binary, so
intensity only matters for tie-breaking in the collocation baseline and
for the extension scoring mode of :class:`repro.core.phrase`.
"""

from __future__ import annotations

POSITIVE_ADVERBS: tuple[str, ...] = tuple(
    sorted(
        set(
            (
                "admirably amazingly beautifully brilliantly capably "
                "cleanly cleverly comfortably commendably conveniently "
                "correctly dependably effectively efficiently effortlessly "
                "elegantly excellently exceptionally expertly faithfully "
                "famously fantastically fast favorably flawlessly fluidly "
                "gracefully handsomely happily harmoniously ideally "
                "immaculately impeccably impressively intelligently "
                "intuitively magnificently marvelously masterfully neatly "
                "nicely perfectly pleasantly precisely professionally "
                "promptly properly quickly quietly reliably remarkably "
                "responsively richly robustly seamlessly securely sharply "
                "smartly smoothly solidly splendidly successfully superbly "
                "swiftly vividly warmly wonderfully well"
            ).split()
        )
    )
)

NEGATIVE_ADVERBS: tuple[str, ...] = tuple(
    sorted(
        set(
            (
                "abysmally annoyingly awfully awkwardly badly carelessly "
                "cheaply clumsily crudely disappointingly dishonestly "
                "dismally dreadfully erratically excessively expensively "
                "frustratingly horribly improperly inaccurately "
                "inadequately incompetently inconsistently inconveniently "
                "incorrectly ineffectively inefficiently infuriatingly "
                "insufferably intolerably lamentably loudly miserably "
                "noisily painfully pathetically poorly recklessly "
                "regrettably roughly shabbily shamefully shoddily sloppily "
                "sluggishly terribly unacceptably unbearably unevenly "
                "unfairly unfortunately unpredictably unreliably weakly "
                "woefully wretchedly wrongly"
            ).split()
        )
    )
)

#: Degree adverbs that strengthen an adjacent sentiment word.
INTENSIFIERS: tuple[str, ...] = tuple(
    sorted(
        set(
            (
                "absolutely amazingly awfully completely considerably "
                "decidedly deeply distinctly downright enormously "
                "especially exceedingly exceptionally extraordinarily "
                "extremely genuinely highly hugely immensely incredibly "
                "intensely outright particularly perfectly phenomenally "
                "profoundly quite really remarkably seriously severely "
                "significantly so strikingly strongly substantially "
                "supremely terribly thoroughly totally truly utterly very "
                "wildly"
            ).split()
        )
    )
)

#: Degree adverbs that weaken an adjacent sentiment word.
DIMINISHERS: tuple[str, ...] = tuple(
    sorted(
        set(
            (
                "somewhat slightly mildly marginally moderately fairly "
                "reasonably relatively partially partly nominally vaguely "
                "faintly barely scarcely hardly"
            ).split()
        )
    )
)


def entries() -> list[tuple[str, str, str]]:
    """All adverb lexicon entries as ``(term, POS, polarity)`` tuples."""
    out = [(word, "RB", "+") for word in POSITIVE_ADVERBS]
    out.extend((word, "RB", "-") for word in NEGATIVE_ADVERBS)
    return out
