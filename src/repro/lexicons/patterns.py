"""Sentiment pattern database entries (predicate rules).

The paper (Section 4.2) defines each entry as::

    <predicate> <sent_category> <target>

* ``predicate`` — a verb lemma;
* ``sent_category`` — ``+`` or ``-`` for verbs with inherent polarity, or a
  sentence component (``SP``/``OP``/``CP``/``PP(prep;...)``) whose phrase
  polarity is transferred; a ``~`` prefix inverts the transferred polarity;
* ``target`` — the component (``SP``/``OP``/``PP(prep;...)``) that receives
  the sentiment.

Entries for one predicate are ordered: the analyzer uses the first entry
whose source and target components are present in the parsed clause
("the best matching sentiment pattern").

Paper examples reproduced verbatim below: ``impress + PP(by;with)``,
``be CP SP``, ``offer OP SP``.

Two verb classes generate families of entries:

* **psych (stimulus-subject) verbs** — "The camera impressed me" assigns
  the verb's polarity to its *subject*; in the passive, to the ``by``/
  ``with`` phrase ("I am impressed by the flash").
* **experiencer-subject verbs** — "I love the zoom" assigns the polarity
  to the *object*; in the passive, to the subject.
"""

from __future__ import annotations

from .verbs import NEGATIVE_VERBS, POSITIVE_VERBS

#: Stimulus-subject psychological verbs: polarity lands on SP (active) or
#: the by/with-PP (passive).
PSYCH_VERBS_POSITIVE = (
    "amaze astonish astound awe captivate charm dazzle delight enchant "
    "energize enthrall entertain excite fascinate gratify impress inspire "
    "invigorate please reassure refresh revitalize satisfy soothe thrill "
    "uplift wow"
).split()

PSYCH_VERBS_NEGATIVE = (
    "aggravate alarm anger annoy appall bore bother confuse disappoint "
    "discourage disgust dishearten dismay displease dissatisfy distress "
    "disturb dread enrage exasperate frighten frustrate humiliate "
    "infuriate irritate offend panic provoke repel scare sicken torment "
    "trouble underwhelm upset vex worry"
).split()

#: Experiencer-subject verbs: polarity lands on OP (active) or SP (passive).
EXPERIENCER_VERBS_POSITIVE = (
    "admire adore appreciate applaud approve celebrate cherish commend "
    "compliment congratulate endorse enjoy honor laud like love praise "
    "prefer recommend relish treasure trust value welcome"
).split()

EXPERIENCER_VERBS_NEGATIVE = (
    "blame condemn criticize deplore despise dislike denounce fear hate "
    "lament mistrust protest regret reject resent ridicule"
).split()

#: Copular verbs: complement polarity transfers to the subject.
COPULAR_PATTERN_VERBS = (
    "be seem look appear sound feel smell taste remain stay become get "
    "turn prove"
).split()

#: Transfer verbs whose object polarity lands on the subject:
#: "The company offers mediocre services" → company −.
OBJECT_TO_SUBJECT_VERBS = (
    "offer provide deliver give bring produce make take have show display "
    "exhibit demonstrate feature include contain carry hold keep supply "
    "yield present boast sport pack"
).split()

#: Function verbs: an adverbial complement transfers to the subject
#: ("The zoom performs poorly"); a bare positive reading covers
#: "it (just) works" and lets verb-phrase negation produce
#: "does not work" → −.
FUNCTION_VERBS = ("work perform operate function respond behave run handle").split()

#: Transfer verbs whose with/from-PP polarity lands on the subject:
#: "It comes with a generous warranty" → it +.
PP_TO_SUBJECT_VERBS = {"come": ("with",), "ship": ("with",), "arrive": ("with",)}

#: Inverting transfer verbs: fixing something bad is good.
#: "The update fixes the annoying bug" → update +.
INVERTING_VERBS = (
    "fix solve eliminate resolve avoid prevent reduce cure correct remove "
    "repair mitigate"
).split()

#: Plain transfer: causing something bad is bad.  ("bring-about" is not
#: listed: hyphenated tokens can never match a single parsed verb lemma,
#: and "bring OP SP" already covers the lemma the tagger produces.)
CAUSATIVE_VERBS = ("cause create introduce generate").split()

#: Report verbs: the polarity of the object/complement clause reflects on
#: the *object* itself, not the subject ("Analysts call the merger a
#: disaster" → merger −).  Treated as OP←CP transfer.
JUDGMENT_VERBS = ("call consider deem judge rate regard view find declare label").split()


def pattern_lines() -> list[str]:
    """All pattern DB entries, in priority order per predicate."""
    lines: list[str] = []

    # Copulas: complement → subject (paper: "be CP SP").
    for verb in COPULAR_PATTERN_VERBS:
        lines.append(f"{verb} CP SP")

    # Object-polarity transfer (paper: "offer OP SP", "take OP SP").
    for verb in OBJECT_TO_SUBJECT_VERBS:
        lines.append(f"{verb} OP SP")

    # Function verbs: adverbial complement first, then the bare reading.
    for verb in FUNCTION_VERBS:
        lines.append(f"{verb} CP SP")
        lines.append(f"{verb} OP SP")
        if verb in {"work", "function"}:
            lines.append(f"{verb} + SP")

    # PP transfer ("come with X").
    for verb, preps in PP_TO_SUBJECT_VERBS.items():
        plist = ";".join(preps)
        lines.append(f"{verb} PP({plist}) SP")

    # Inverting transfer.
    for verb in INVERTING_VERBS:
        lines.append(f"{verb} ~OP SP")

    # Plain causative transfer.
    for verb in CAUSATIVE_VERBS:
        lines.append(f"{verb} OP SP")

    # Judgment verbs: complement polarity lands on the object.
    for verb in JUDGMENT_VERBS:
        lines.append(f"{verb} CP OP")

    # Psych verbs: passive first (paper: "impress + PP(by;with)"), then
    # the active reading targeting the subject.
    for verb in PSYCH_VERBS_POSITIVE:
        lines.append(f"{verb} + PP(by;with)")
        lines.append(f"{verb} + SP")
    for verb in PSYCH_VERBS_NEGATIVE:
        lines.append(f"{verb} - PP(by;with)")
        lines.append(f"{verb} - SP")

    # Experiencer verbs: active object first, passive subject second.
    for verb in EXPERIENCER_VERBS_POSITIVE:
        lines.append(f"{verb} + OP")
        lines.append(f"{verb} + SP")
    for verb in EXPERIENCER_VERBS_NEGATIVE:
        lines.append(f"{verb} - OP")
        lines.append(f"{verb} - SP")

    # Remaining sentiment verbs default to subject-directed polarity:
    # "The flash fails" → flash −; "The stock soared" → stock +.
    covered = set(
        PSYCH_VERBS_POSITIVE
        + PSYCH_VERBS_NEGATIVE
        + EXPERIENCER_VERBS_POSITIVE
        + EXPERIENCER_VERBS_NEGATIVE
    )
    for verb in POSITIVE_VERBS:
        if verb not in covered:
            lines.append(f"{verb} + SP")
    for verb in NEGATIVE_VERBS:
        if verb not in covered:
            lines.append(f"{verb} - SP")

    return lines
