"""Negation vocabulary.

"For a sentiment phrase with an adverb with negative meaning, such as not,
no, never, hardly, seldom, or little the sentiment polarity of the phrase
is reversed." (paper Section 4.2)

Negators are partitioned by syntactic position: adverbs appear in verb
groups and before adjectives; determiners appear at NP starts ("no
problems"); "little"/"few" negate as quantifiers ("little support").
"""

from __future__ import annotations

#: Negative adverbs: reverse the polarity of the phrase/clause they scope.
NEGATION_ADVERBS: frozenset[str] = frozenset(
    "not n't never hardly seldom rarely scarcely barely neither nor".split()
)

#: Negative determiners at noun-phrase starts.
NEGATION_DETERMINERS: frozenset[str] = frozenset({"no", "none", "nothing", "nobody"})

#: Negative quantifiers ("little support", "few merits").
NEGATION_QUANTIFIERS: frozenset[str] = frozenset({"little", "few"})

#: Verbs acting as negators of their complement ("fails to impress",
#: "lacks a viewfinder", "stopped working").
NEGATION_VERBS: frozenset[str] = frozenset({"fail", "lack", "stop", "cease", "refuse"})

#: Everything that reverses polarity, for quick membership checks.
ALL_NEGATORS: frozenset[str] = (
    NEGATION_ADVERBS | NEGATION_DETERMINERS | NEGATION_QUANTIFIERS
)


def is_negator(word: str) -> bool:
    """True when *word* (any case) reverses the polarity of its scope."""
    return word.lower() in ALL_NEGATORS
