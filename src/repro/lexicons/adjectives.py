"""Sentiment adjectives.

The paper's lexicon held "about 3000 sentiment term entries including about
2500 adjectives" collected from the General Inquirer, the Dictionary of
Affect in Language and WordNet, then manually validated.  Those resources
are not redistributable here, so this module carries a curated replacement
list assembled for this reproduction.  Entries are grouped thematically
purely for maintainability; the loader flattens them.

Participial adjectives ("impressive", "disappointing", "disappointed") are
listed explicitly when they are common in product reviews — they are
distinct lexical entries in the paper's format, which keys on (term, POS).
"""

from __future__ import annotations

# -- positive adjectives -----------------------------------------------------

_POSITIVE_QUALITY = (
    "excellent outstanding superb exceptional magnificent marvelous "
    "wonderful fantastic terrific fabulous phenomenal stellar superior "
    "supreme premium first-rate first-class top-notch world-class "
    "high-end upscale deluxe exquisite immaculate impeccable flawless "
    "perfect ideal optimal prime choice select vintage classic iconic "
    "legendary masterful masterly virtuoso polished refined elegant "
    "graceful stylish chic sleek classy tasteful sophisticated luxurious "
    "lavish plush opulent sumptuous splendid glorious grand majestic "
    "stately noble dignified distinguished prestigious renowned famed "
    "celebrated acclaimed esteemed admired respected revered honored "
    "exemplary admirable commendable laudable praiseworthy meritorious "
    "worthy deserving creditable estimable reputable trustworthy "
    "dependable reliable solid sturdy robust durable rugged tough "
    "resilient lasting enduring stable steady consistent uniform "
    "faithful loyal devoted dedicated committed conscientious diligent "
    "meticulous thorough careful precise accurate exact correct proper "
    "sound valid legitimate authentic genuine real true honest sincere "
    "truthful candid frank forthright straightforward transparent open "
    "fair just impartial unbiased objective balanced reasonable sensible "
    "rational logical coherent lucid clear crisp sharp vivid bright "
    "brilliant radiant luminous glowing gleaming shining sparkling "
    "dazzling striking stunning breathtaking magnificent-looking "
    "beautiful gorgeous lovely pretty attractive appealing alluring "
    "charming enchanting captivating fascinating mesmerizing riveting "
    "engrossing absorbing engaging compelling gripping intriguing "
    "interesting entertaining amusing enjoyable delightful pleasant "
    "pleasing pleasurable satisfying gratifying fulfilling rewarding "
    "refreshing invigorating energizing stimulating exciting thrilling "
    "exhilarating electrifying rousing stirring inspiring uplifting "
    "heartening encouraging promising hopeful optimistic upbeat cheerful "
    "happy joyful joyous jubilant elated ecstatic euphoric blissful "
    "content contented pleased glad delighted thrilled overjoyed "
    "grateful thankful appreciative impressed amazed astonished awed "
    "impressive remarkable extraordinary incredible amazing astounding "
    "astonishing awesome wondrous miraculous sensational spectacular "
    "haunting soulful moving sublime evocative-sounding "
    "eye-catching memorable unforgettable noteworthy notable significant "
)

_POSITIVE_FUNCTION = (
    "useful helpful handy practical functional versatile flexible "
    "adaptable convenient accessible available affordable economical "
    "inexpensive cheap budget-friendly cost-effective valuable invaluable "
    "worthwhile beneficial advantageous favorable productive effective "
    "efficient capable competent proficient skilled skillful adept "
    "expert professional qualified experienced seasoned accomplished "
    "talented gifted able powerful potent strong mighty forceful "
    "vigorous dynamic energetic lively spirited vibrant vivacious "
    "brisk quick fast rapid swift speedy prompt punctual timely "
    "responsive agile nimble smooth seamless effortless easy simple "
    "straightforward intuitive user-friendly ergonomic comfortable cozy "
    "snug compact portable lightweight slim trim streamlined neat tidy "
    "organized orderly systematic methodical structured clean hygienic "
    "spotless pristine fresh new novel innovative inventive creative "
    "original imaginative ingenious clever smart intelligent brainy "
    "wise sage insightful perceptive astute shrewd savvy discerning "
    "thoughtful considerate kind kindly gentle tender warm warmhearted "
    "friendly amiable affable cordial genial gracious courteous polite "
    "respectful civil hospitable welcoming generous charitable "
    "benevolent magnanimous compassionate sympathetic empathetic caring "
    "supportive nurturing protective safe secure protected guarded "
    "harmless benign gentle-handed painless trouble-free carefree "
    "quiet silent noiseless peaceful calm tranquil serene placid "
    "relaxed restful soothing calming comforting reassuring "
    "crisp-sounding full-bodied rich deep resonant melodious harmonious "
    "tuneful musical lyrical poetic artistic aesthetic scenic "
    "picturesque idyllic charming-looking quaint delicate dainty fine "
    "subtle nuanced layered textured detailed intricate elaborate "
    "thoughtfully-made well-made well-built well-designed well-crafted "
    "well-engineered well-balanced well-rounded well-executed "
    "well-implemented well-documented well-supported well-priced "
    "well-received well-regarded best better finest greatest nicest "
    "good great nice fine decent solid-performing dependable-feeling "
    "responsive-feeling snappy zippy peppy punchy slick "
)

_POSITIVE_DOMAIN = (
    "sharp-focused high-resolution widescreen expandable upgradable "
    "rechargeable long-lasting energy-efficient power-efficient "
    "quick-charging fast-focusing waterproof weatherproof shockproof "
    "dustproof scratch-resistant fingerprint-resistant glare-free "
    "lag-free noise-free distortion-free blur-free grain-free "
    "feature-rich full-featured fully-functional plug-and-play wireless "
    "cordless cable-free hands-free intuitive-feeling customizable "
    "configurable programmable extensible interoperable compatible "
    "backward-compatible standards-compliant certified award-winning "
    "best-selling top-selling top-rated highly-rated five-star "
    "market-leading industry-leading cutting-edge state-of-the-art "
    "next-generation advanced modern contemporary current up-to-date "
    "future-proof scalable maintainable sustainable eco-friendly green "
    "recyclable ethical responsible accountable profitable lucrative "
    "thriving prosperous flourishing booming growing expanding "
    "successful victorious triumphant winning unbeaten unrivaled "
    "unmatched unparalleled unsurpassed peerless matchless incomparable "
    "definitive authoritative seminal groundbreaking revolutionary "
    "transformative game-changing pioneering trailblazing visionary "
    "forward-looking ambitious bold daring courageous brave fearless "
    "confident assured self-assured poised composed collected "
    "articulate eloquent persuasive convincing credible believable "
    "plausible defensible justified warranted merited earned honest-run "
    "law-abiding compliant safe-to-use child-safe family-friendly "
    "beginner-friendly travel-friendly pocket-sized featherweight "
    "whisper-quiet ultra-fast ultra-sharp ultra-compact ultra-reliable "
    "razor-sharp crystal-clear pin-sharp tack-sharp true-to-life "
    "lifelike natural-looking accurate-sounding faithful-sounding "
    "balanced-sounding detailed-sounding airy spacious roomy generous-sized "
    "ample abundant plentiful bountiful copious sufficient adequate "
)

_POSITIVE_EMOTION = (
    "affectionate amiable-natured amused animated appreciated beloved "
    "blessed buoyant calm-minded carefree celebratory charmed cheery "
    "comfy congenial consoling contagious-joyful cordial-hearted "
    "ebullient effervescent elating empathic enamored endearing "
    "enthused exultant festive fond fulfilled genial-spirited giddy "
    "gleeful good-humored good-natured gratified heartfelt heartwarming "
    "hope-filled idolized jolly jovial jubilant-hearted lighthearted "
    "likable lovable loving merry mirthful optimistic-minded overjoyous "
    "passionate peace-loving playful proud radiant-hearted rapturous "
    "rejuvenated relieved rosy sanguine satisfied-feeling smiley "
    "spirited sunny tender-hearted thrilled-feeling tickled touched "
    "tranquil-minded treasured unburdened unflappable upbeat-feeling "
    "victorious-feeling vivified warm-fuzzy welcoming-hearted winsome "
    "zestful zippy-spirited adored amazing-feeling beatific blithe "
    "breezy bubbly chipper companionable convivial delighted-feeling "
    "dreamy ecstatic-feeling exuberant gracious-hearted grateful-minded "
    "halcyon inspired-feeling intoxicating invigorated jaunty keen "
    "mellow nurtured pampered perky pleased-feeling plucky quickened "
    "refreshed-feeling renewed rhapsodic roused sated savoring secure-feeling "
    "self-confident serene-minded smitten snug-feeling soothing-feeling "
    "sprightly starry-eyed stoked sweet-tempered thankful-hearted "
    "unruffled uplifted-feeling vibrant-feeling whimsical wholehearted "
    "wonder-struck youthful zealous"
)

_POSITIVE_AESTHETIC = (
    "adorable angelic artful balanced beauteous becoming bonny "
    "breathtakingly-composed burnished chiseled colorful comely "
    "crystalline cultured dainty-looking dapper dashing dazzlingly-lit "
    "debonair decorative dignified-looking dreamlike effulgent "
    "embellished enchanted ethereal evocative exalted expressive "
    "eye-pleasing fetching filigreed flattering flourishing-looking "
    "fragrant fresh-faced gilded glamorous glistening glossy golden "
    "grandiose-beautiful handcrafted harmonized heavenly honeyed "
    "illustrious imaginative-looking incandescent iridescent jewel-like "
    "lavishly-made limpid lustrous luxuriant magnetic majestic-looking "
    "manicured marbled mellifluous mesmeric moonlit opaline ornate "
    "pastel pearly photogenic picture-perfect poised-looking pristine-looking "
    "regal resplendent rhythmic rosy-hued satiny scintillating sculpted "
    "shimmering silken silvery sleek-lined snowy sparkly spellbinding "
    "splashy statuesque stately-looking stylish-looking sumptuously-made "
    "sun-drenched svelte swanky tasteful-looking tuneful-sounding "
    "twinkling unblemished velvety verdant vivid-looking well-groomed "
    "well-proportioned willowy winning wistful-beautiful"
)

_NEGATIVE_AESTHETIC = (
    "bedraggled bleached-out blotchy boxy brackish bristly bulbous "
    "cacophonous careworn charmless chintzy clashing clownish "
    "colorless cramped-looking crumpled dank dilapidated-looking "
    "disfigured disheveled dowdy drab-looking dreary-looking dusty "
    "festering fetid flaky frayed frumpy garish gaudy ghoulish "
    "graceless grating-sounding grim-looking grotesque gruesome-looking "
    "haggard ham-fisted homely ill-fitting inelegant inharmonious "
    "jarring-looking lurid mangy matted mildewed misshapen moth-eaten "
    "mottled muddled-looking murky-sounding musty-smelling nondescript "
    "off-key off-putting overgrown oversaturated-looking pallid patchy "
    "pockmarked repainted-badly rumpled rusty sallow scraggly scuffed "
    "shapeless shopworn shrill-sounding smudged soggy splotchy stained "
    "stodgy stuffy sun-bleached tacky tarnished-looking tatty tinny-sounding "
    "top-heavy ugly unbecoming uncouth ungraceful unkempt unpolished "
    "unsightly warped washed-out-looking weather-beaten wilted wrinkled"
)

_NEGATIVE_EMOTION = (
    "abandoned-feeling abashed aggrieved agitated alienated anguished "
    "antsy apathetic apprehensive ashamed bereaved bereft betrayed-feeling "
    "bewildered-feeling bitter-hearted blue brokenhearted browbeaten "
    "bummed burdened chagrined cheerless crestfallen crushed-feeling "
    "dejected demeaned-feeling demoralized-feeling despairing despondent "
    "devastated-feeling disconsolate disenchanted disgruntled disheartened-feeling "
    "disillusioned dismal-feeling dispirited-feeling distraught doleful "
    "downcast downhearted downtrodden dreading embarrassed embittered "
    "enervated estranged exasperated-feeling exhausted fatigued fearful "
    "flustered forlorn forsaken fraught fretful friendless frightened "
    "frustrated-feeling glum grief-stricken grieving guilt-ridden "
    "harassed heartbroken heartsick helpless humiliated-feeling hurt "
    "inconsolable indignant insecure-feeling irate irked isolated "
    "jaded jittery joyless lonely lonesome melancholic melancholy "
    "miffed miserable moody mortified mournful nervous numb offended-feeling "
    "oppressed-feeling overwhelmed panicked paranoid peeved perturbed "
    "pessimistic petrified powerless rattled regretful remorseful "
    "repulsed-feeling resentful-feeling restless rueful scared shaken "
    "shamed sheepish sorrowful spiteful-feeling stressed stricken "
    "sulky sullen-feeling tearful tense terrified tormented-feeling "
    "traumatized troubled-feeling unappreciated uneasy unhappy unloved "
    "unnerved unsettled-feeling unwanted upset-feeling vexed-feeling "
    "weary woebegone worried-sick wounded wretched-feeling"
)

POSITIVE_ADJECTIVES: tuple[str, ...] = tuple(
    sorted(
        set(
            (
                _POSITIVE_QUALITY
                + _POSITIVE_FUNCTION
                + _POSITIVE_DOMAIN
                + _POSITIVE_EMOTION
                + _POSITIVE_AESTHETIC
            ).split()
        )
    )
)

# -- negative adjectives -----------------------------------------------------

_NEGATIVE_QUALITY = (
    "bad terrible horrible awful dreadful atrocious abysmal appalling "
    "horrendous horrid hideous ghastly gruesome grim dire woeful "
    "lamentable deplorable disgraceful shameful scandalous outrageous "
    "egregious inexcusable unforgivable unacceptable intolerable "
    "insufferable unbearable unendurable poor inferior substandard "
    "second-rate third-rate low-end low-grade low-quality shoddy "
    "cheaply-made flimsy fragile frail brittle rickety wobbly shaky "
    "unstable unsteady insecure unsafe dangerous hazardous risky "
    "perilous treacherous harmful damaging destructive ruinous "
    "detrimental injurious toxic poisonous noxious foul rank rancid "
    "rotten putrid stale moldy musty dingy dirty filthy grimy grubby "
    "squalid sordid seedy shabby scruffy tattered worn worn-out "
    "threadbare dilapidated decrepit run-down broken broken-down "
    "defective faulty flawed damaged impaired malfunctioning "
    "nonfunctional inoperative unusable unworkable useless worthless "
    "valueless pointless futile vain fruitless ineffective inefficient "
    "incompetent inept unskilled amateurish unprofessional careless "
    "negligent sloppy slipshod slapdash hasty rushed half-baked "
    "half-hearted lazy idle slothful lax slack remiss derelict "
    "irresponsible unreliable undependable untrustworthy dishonest "
    "deceitful deceptive fraudulent bogus fake counterfeit phony sham "
    "spurious false untrue untruthful misleading manipulative sneaky "
    "sly devious cunning crafty underhanded crooked corrupt venal "
    "unscrupulous unethical immoral amoral wicked evil vile vicious "
    "malicious malevolent spiteful vindictive cruel brutal savage "
    "ruthless merciless heartless callous cold cold-hearted unfeeling "
    "insensitive inconsiderate thoughtless rude impolite discourteous "
    "disrespectful insolent impertinent impudent arrogant haughty "
    "conceited vain-glorious pompous pretentious smug condescending "
    "patronizing dismissive contemptuous scornful disdainful mocking "
    "derisive sarcastic snide catty petty mean mean-spirited nasty "
    "hostile antagonistic belligerent aggressive combative quarrelsome "
    "argumentative cantankerous irritable irascible grumpy grouchy "
    "cranky crabby surly sullen morose sour bitter resentful envious "
    "jealous covetous greedy avaricious selfish self-centered egotistic "
)

_NEGATIVE_FUNCTION = (
    "disappointing dissatisfying unsatisfying unsatisfactory mediocre "
    "flat repetitive weak questionable controversial "
    "lackluster uninspired uninspiring unimpressive forgettable bland "
    "dull boring tedious monotonous dreary drab humdrum mundane banal "
    "trite hackneyed stale-feeling clichéd derivative unoriginal "
    "predictable uneventful lifeless listless sluggish slow laggy "
    "unresponsive balky glitchy buggy crash-prone error-prone unstable "
    "erratic inconsistent unpredictable temperamental finicky fussy "
    "fiddly awkward clumsy cumbersome unwieldy bulky heavy oversized "
    "overweight ungainly inconvenient impractical unusable-feeling "
    "confusing perplexing puzzling baffling bewildering convoluted "
    "complicated overcomplicated byzantine labyrinthine opaque murky "
    "unclear vague ambiguous equivocal cryptic obscure muddled garbled "
    "incoherent disorganized chaotic messy cluttered haphazard random "
    "arbitrary inaccurate imprecise inexact erroneous wrong incorrect "
    "mistaken invalid unsound illogical irrational absurd ridiculous "
    "ludicrous laughable preposterous nonsensical senseless foolish "
    "silly stupid idiotic moronic asinine dumb dim-witted obtuse dense "
    "ignorant uninformed misinformed clueless naive gullible credulous "
    "noisy loud deafening grating jarring harsh shrill screechy tinny "
    "muffled muddy distorted fuzzy blurry blurred grainy pixelated "
    "washed-out faded dim dark murky-looking overexposed underexposed "
    "oversaturated discolored off-color lopsided crooked-looking "
    "misaligned uneven rough coarse jagged scratchy sticky greasy "
    "slimy slippery leaky drafty creaky squeaky rattling loose "
    "expensive overpriced costly exorbitant extortionate unaffordable "
    "uneconomical wasteful extravagant inflated steep pricey "
    "underpowered underwhelming overhyped overrated oversold overblown "
    "exaggerated inflated-sounding hollow empty vacuous shallow "
    "superficial insubstantial thin meager scanty sparse insufficient "
    "inadequate deficient lacking wanting incomplete unfinished partial "
    "limited restricted constrained cramped tight narrow short-lived "
    "fleeting ephemeral transient temporary stopgap makeshift "
)

_NEGATIVE_DOMAIN = (
    "slow-focusing slow-charging battery-hungry power-hungry "
    "short-battery glitch-ridden virus-prone insecure-feeling hackable "
    "vulnerable exploitable outdated obsolete antiquated archaic "
    "old-fashioned dated legacy-bound deprecated unsupported abandoned "
    "discontinued orphaned incompatible nonstandard proprietary-locked "
    "locked-down restrictive burdensome onerous oppressive draconian "
    "punitive unfair unjust inequitable discriminatory biased partial "
    "prejudiced one-sided slanted skewed distorted-sounding "
    "troublesome problematic vexing annoying irritating exasperating "
    "infuriating maddening aggravating frustrating irksome bothersome "
    "tiresome wearisome taxing trying burdensome-feeling stressful "
    "nerve-wracking worrying worrisome alarming disturbing distressing "
    "upsetting unsettling disconcerting disquieting troubling ominous "
    "menacing threatening sinister foreboding bleak dismal gloomy "
    "depressing dispiriting disheartening discouraging demoralizing "
    "hopeless desperate dismaying crushing devastating catastrophic "
    "disastrous calamitous cataclysmic apocalyptic fatal deadly lethal "
    "sick sickly ill unhealthy unwell ailing diseased infected "
    "contaminated polluted tainted adulterated impure unsanitary "
    "unhygienic germ-ridden pest-ridden infested defect-ridden "
    "failure-prone fault-ridden recall-prone lawsuit-ridden scandal-hit "
    "loss-making unprofitable insolvent bankrupt indebted cash-strapped "
    "struggling failing floundering faltering declining shrinking "
    "collapsing crumbling disintegrating imploding sinking doomed "
    "troubled embattled beleaguered besieged criticized condemned "
    "denounced censured blamed faulted accused indicted convicted "
    "guilty culpable liable negligent-seeming reckless rash imprudent "
    "ill-advised ill-conceived ill-considered misguided wrongheaded "
    "counterproductive self-defeating short-sighted myopic blinkered "
    "disgusting revolting repulsive repugnant repellent loathsome "
    "odious abhorrent detestable despicable contemptible beneath-contempt "
    "nauseating sickening stomach-turning distasteful unsavory "
    "unpalatable unappetizing inedible undrinkable unwatchable "
    "unlistenable unreadable unplayable regrettable unfortunate "
    "unlucky hapless ill-fated star-crossed jinxed cursed "
)

NEGATIVE_ADJECTIVES: tuple[str, ...] = tuple(
    sorted(
        set(
            (
                _NEGATIVE_QUALITY
                + _NEGATIVE_FUNCTION
                + _NEGATIVE_DOMAIN
                + _NEGATIVE_EMOTION
                + _NEGATIVE_AESTHETIC
            ).split()
        )
    )
)


def entries() -> list[tuple[str, str, str]]:
    """All adjective lexicon entries as ``(term, POS, polarity)`` tuples."""
    out = [(word, "JJ", "+") for word in POSITIVE_ADJECTIVES]
    out.extend((word, "JJ", "-") for word in NEGATIVE_ADJECTIVES)
    return out
