"""Linguistic resources: sentiment lexicon word lists, negators, patterns.

These modules are *data*, curated for this reproduction in place of the
paper's General Inquirer / DAL / WordNet-derived lexicon (see DESIGN.md).
The :mod:`repro.core.lexicon` and :mod:`repro.core.patterns` modules turn
them into queryable objects.
"""

from . import adjectives, adverbs, negation, nouns, patterns, verbs

__all__ = ["adjectives", "adverbs", "negation", "nouns", "patterns", "verbs"]
