"""Sentiment nouns.

The paper's lexicon contained "less than 500 nouns" alongside the
adjectives.  A sentiment noun carries polarity by itself ("bargain",
"defect") and contributes to phrase polarity exactly like an adjective
("a total failure" is negative because "failure" is).
"""

from __future__ import annotations

POSITIVE_NOUNS: tuple[str, ...] = tuple(
    sorted(
        set(
            (
                "advantage asset bargain benefit bliss blessing bonus boon "
                "breakthrough brilliance charm comfort confidence courage "
                "craftsmanship creativity delight dependability durability "
                "ease efficiency elegance excellence expertise finesse "
                "flexibility fortune gain gem genius glory grace gratitude "
                "happiness harmony honesty honor hope improvement ingenuity "
                "innovation inspiration integrity joy luxury marvel mastery "
                "masterpiece merit miracle optimism paradise passion "
                "patience peace perfection pleasure polish praise precision "
                "pride profit progress promise prosperity quality "
                "refinement reliability relief resilience reward richness "
                "robustness satisfaction savings security sharpness "
                "simplicity sincerity skill smoothness speed splendor "
                "stability standout steal strength success sturdiness "
                "support sweetness talent thrill treasure triumph trust "
                "upgrade usability value versatility victory virtue warmth "
                "wealth winner wonder workmanship accolade applause "
                "admiration affection appreciation approval endorsement "
                "enthusiasm acclaim plus upside highlight strongpoint "
                "goodwill kindness generosity loyalty dedication devotion "
                "commitment accuracy clarity brightness vibrancy crispness "
                "responsiveness convenience portability affordability "
                "longevity endurance freshness purity authenticity "
                "credibility reputation prestige distinction renown fame "
                "favorite classic keeper must-have godsend lifesaver "
                "powerhouse juggernaut champion champ ace standout-value "
                "growth expansion recovery rebound rally surge boom upturn "
                "windfall dividend surplus abundance plenty bounty"
            ).split()
        )
    )
)

NEGATIVE_NOUNS: tuple[str, ...] = tuple(
    sorted(
        set(
            (
                "abuse accident agony annoyance anxiety atrocity betrayal "
                "blame blemish blight blunder breakdown bug burden calamity "
                "catastrophe chaos cheat complaint concern confusion "
                "corruption cost-overrun crack crash crime crisis critic "
                "criticism curse damage danger deadlock dearth debacle debt "
                "decay deceit deception decline defeat defect deficiency "
                "deficit delay demise despair destruction deterioration "
                "detriment disadvantage disappointment disaster discomfort "
                "disgrace disgust dishonesty dismay disorder dispute "
                "disruption dissatisfaction distortion distress doubt "
                "downfall downgrade downside downturn drag drain drawback "
                "dread dud failing failure fatigue fault fear fiasco flaw "
                "fraud frustration garbage glitch gloom grief grievance "
                "grudge guilt handicap harm hassle hatred havoc hazard "
                "headache horror hostility humiliation ignorance illness "
                "imperfection inability inaccuracy inadequacy incompetence "
                "inconsistency inconvenience indifference inefficiency "
                "inferiority injury injustice insecurity instability insult "
                "interference intrusion irritation jam jeopardy junk lag "
                "lawsuit leak lemon letdown liability lie limitation loss "
                "malfunction menace mess misconduct misery misfortune "
                "mishap mistake mistrust misunderstanding negligence "
                "nightmare noise nuisance objection obstacle obstruction "
                "outage outrage overcharge overkill oversight panic penalty "
                "peril pest pitfall plague poison pollution poverty problem "
                "rant recall recession regret rejection rip-off risk ruin "
                "rust scam scandal scar scarcity scratch setback shame "
                "shortage shortcoming shortfall slowdown slump smear snag "
                "sorrow stain stress struggle stumble suffering suspicion "
                "threat trap trash trouble turmoil uncertainty unrest "
                "vandalism vice victim violation vulnerability waste "
                "weakness woe worry wreck wrongdoing eyesore deal-breaker "
                "showstopper time-sink money-pit boondoggle quagmire "
                "bottleneck chokepoint backlog bloat clutter cruft "
                "contamination infestation erosion corrosion depletion "
                "collapse implosion meltdown freefall bankruptcy insolvency "
                "layoff downsizing shutdown closure default foreclosure"
            ).split()
        )
    )
)


def entries() -> list[tuple[str, str, str]]:
    """All noun lexicon entries as ``(term, POS, polarity)`` tuples."""
    out = [(word, "NN", "+") for word in POSITIVE_NOUNS]
    out.extend((word, "NN", "-") for word in NEGATIVE_NOUNS)
    return out
