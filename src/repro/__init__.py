"""repro: a reproduction of "Sentiment Mining in WebFountain" (ICDE 2005).

Subpackages
-----------
``repro.nlp``       — tokenizer, POS tagger, chunker, shallow parser
``repro.lexicons``  — sentiment word lists, negators, predicate patterns
``repro.core``      — the sentiment miner (analysis, features, spotting)
``repro.miners``    — WebFountain adapter miners
``repro.platform``  — data store, indexer, cluster, Vinci bus, services
``repro.baselines`` — collocation and ReviewSeer-like comparators
``repro.corpora``   — synthetic datasets with ground truth
``repro.eval``      — metrics and the per-table/figure experiment harness
``repro.apps``      — the reputation-management application
"""

__version__ = "1.0.0"

from .core import (
    Polarity,
    SentimentAnalyzer,
    SentimentJudgment,
    SentimentLexicon,
    SentimentMiner,
    SentimentPatternDB,
    Subject,
    default_lexicon,
    default_pattern_db,
)

__all__ = [
    "Polarity",
    "SentimentAnalyzer",
    "SentimentJudgment",
    "SentimentLexicon",
    "SentimentMiner",
    "SentimentPatternDB",
    "Subject",
    "__version__",
    "default_lexicon",
    "default_pattern_db",
]
