"""Shared-nothing cluster simulation.

"The system is designed as a loosely coupled, shared-nothing parallel
cluster of Intel-based Linux servers ... The WebFountain system achieves
scalability of up to billions of documents by full parallelism."

The simulation keeps WebFountain's decomposition at laptop scale: a
cluster owns N nodes, the store's partitions are assigned round-robin,
entity miners run per-node over the node's own partitions, and corpus
miners map per node then reduce at the coordinator.

Execution is sequential, but each node tracks *simulated work* (one cost
unit per processed entity plus a per-message Vinci overhead), so the
Figure-1 benchmark can report the cluster-scaling series —
``makespan(N) = max over nodes of node work + reduce cost`` — and show
the near-linear regime the paper claims, without pretending wall-clock
parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TypeVar

from .datastore import DataStore
from .miners import CorpusMiner, MinerPipeline, PipelineReport
from .vinci import VinciBus

T = TypeVar("T")

#: Simulated cost constants (arbitrary units).
ENTITY_COST = 1.0
MESSAGE_COST = 0.05
REDUCE_COST_PER_PARTIAL = 0.5


@dataclass
class Node:
    """One cluster node: owns partitions, accumulates simulated work."""

    node_id: int
    partition_ids: list[int] = field(default_factory=list)
    work_units: float = 0.0
    entities_processed: int = 0

    def charge(self, entities: int) -> None:
        self.entities_processed += entities
        self.work_units += entities * ENTITY_COST


@dataclass
class ClusterRunReport:
    """Outcome of one distributed run."""

    pipeline: PipelineReport
    makespan: float
    total_work: float
    messages: int
    per_node_work: list[float]

    @property
    def speedup(self) -> float:
        """Ideal-sequential work divided by simulated makespan."""
        if self.makespan == 0:
            return 1.0
        return self.total_work / self.makespan


class Cluster:
    """A simulated WebFountain cluster around one partitioned store."""

    def __init__(self, store: DataStore, num_nodes: int, bus: VinciBus | None = None):
        if num_nodes < 1:
            raise ValueError("a cluster needs at least one node")
        if num_nodes > store.num_partitions:
            raise ValueError(
                f"cannot spread {store.num_partitions} partitions over {num_nodes} nodes"
            )
        self._store = store
        self._bus = bus or VinciBus()
        self._nodes = [Node(node_id=i) for i in range(num_nodes)]
        for partition_id in range(store.num_partitions):
            self._nodes[partition_id % num_nodes].partition_ids.append(partition_id)
        self._messages = 0
        self._bus.register("cluster.status", lambda _payload: self.status())

    # -- introspection ----------------------------------------------------------------

    @property
    def nodes(self) -> list[Node]:
        return list(self._nodes)

    @property
    def bus(self) -> VinciBus:
        return self._bus

    def status(self) -> dict:
        return {
            "nodes": len(self._nodes),
            "partitions": self._store.num_partitions,
            "entities": len(self._store),
            "messages": self._messages,
        }

    # -- distributed entity mining ---------------------------------------------------------

    def run_pipeline(self, pipeline: MinerPipeline) -> ClusterRunReport:
        """Run an entity-miner pipeline on every node's partitions."""
        total_report = PipelineReport()
        for node in self._nodes:
            node_report = PipelineReport()
            for partition_id in node.partition_ids:
                partition = self._store.partition(partition_id)
                entities = list(partition.scan())
                for entity in entities:
                    pipeline.process_entity(entity, node_report)
                    partition.put(entity)
                node.charge(len(entities))
            self._send_coordinator_message(node)
            total_report.merge(node_report)
        return self._report(total_report, reduce_partials=0)

    # -- distributed corpus mining -----------------------------------------------------------

    def run_corpus_miner(self, miner: CorpusMiner[T]) -> tuple[T, ClusterRunReport]:
        """Map per node, reduce at the coordinator."""
        partials: list[T] = []
        total_report = PipelineReport()
        for node in self._nodes:
            entities = [
                entity
                for partition_id in node.partition_ids
                for entity in self._store.partition(partition_id).scan()
            ]
            partials.append(miner.map_partition(entities))
            node.charge(len(entities))
            total_report.entities_processed += len(entities)
            self._send_coordinator_message(node)
        result = miner.reduce(partials)
        return result, self._report(total_report, reduce_partials=len(partials))

    # -- internals -------------------------------------------------------------------------------

    def _send_coordinator_message(self, node: Node) -> None:
        self._messages += 1
        node.work_units += MESSAGE_COST

    def _report(self, pipeline: PipelineReport, reduce_partials: int) -> ClusterRunReport:
        per_node = [node.work_units for node in self._nodes]
        makespan = max(per_node, default=0.0) + reduce_partials * REDUCE_COST_PER_PARTIAL
        total = sum(per_node) + reduce_partials * REDUCE_COST_PER_PARTIAL
        report = ClusterRunReport(
            pipeline=pipeline,
            makespan=makespan,
            total_work=total,
            messages=self._messages,
            per_node_work=per_node,
        )
        # Work counters are per-run: reset after reporting.
        for node in self._nodes:
            node.work_units = 0.0
        return report
