"""Shared-nothing cluster simulation.

"The system is designed as a loosely coupled, shared-nothing parallel
cluster of Intel-based Linux servers ... The WebFountain system achieves
scalability of up to billions of documents by full parallelism."

The simulation keeps WebFountain's decomposition at laptop scale: a
cluster owns N nodes, the store's partitions are assigned round-robin,
entity miners run per-node over the node's own partitions, and corpus
miners map per partition then reduce at the coordinator.

Execution is sequential, but each node tracks *simulated work* (one cost
unit per processed entity plus a per-message Vinci overhead), so the
Figure-1 benchmark can report the cluster-scaling series —
``makespan(N) = max over nodes of node work + reduce cost`` — and show
the near-linear regime the paper claims, without pretending wall-clock
parallelism.

Failure model (DESIGN.md "Failure model")
-----------------------------------------
A cluster may carry a seeded :class:`~repro.platform.faults.FaultPlan`:
nodes can die mid-run (after completing K of their partitions), Vinci
services can fail or time out, and partition writes can be dropped or
corrupted.  With ``replication`` R ≥ 2 each partition has R owners
(primary round-robin, replicas on the following nodes); partitions
orphaned by a node death *fail over* to their first live replica owner
and the extra work is charged to that node.  When every owner is dead
the partition is lost: instead of raising, runs return a **degraded**
report — ``coverage`` is the fraction of entities actually processed,
``degraded`` flags any loss, and corpus miners reduce over the
surviving per-partition partials.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TypeVar

from ..obs import Obs
from ..obs.context import with_trace
from .datastore import DataStore
from .faults import FaultPlan
from .miners import CorpusMiner, MinerPipeline, PipelineReport
from .retry import RetryPolicy
from .vinci import VinciBus, VinciError

T = TypeVar("T")

#: Simulated cost constants (arbitrary units).
ENTITY_COST = 1.0
MESSAGE_COST = 0.05
REDUCE_COST_PER_PARTIAL = 0.5

#: The coordinator-ack service every node calls at end of run.
COORDINATOR_SERVICE = "cluster.coordinator"


@dataclass
class Node:
    """One cluster node: owns partitions, accumulates simulated work."""

    node_id: int
    partition_ids: list[int] = field(default_factory=list)
    work_units: float = 0.0
    entities_processed: int = 0

    def charge(self, entities: int) -> None:
        self.entities_processed += entities
        self.work_units += entities * ENTITY_COST


@dataclass
class ClusterRunReport:
    """Outcome of one distributed run.

    ``messages`` counts this run's coordinator messages (not bus
    lifetime totals); the degradation fields describe what the fault
    plan did to the run: ``retries`` is Vinci retry attempts, each
    ``failover`` is one partition re-run on a replica owner,
    ``dead_nodes`` lists nodes that died, ``coverage`` is the fraction
    of stored entities actually processed, and ``degraded`` is true
    exactly when coverage fell short of 1.0.
    """

    pipeline: PipelineReport
    makespan: float
    total_work: float
    messages: int
    per_node_work: list[float]
    retries: int = 0
    failovers: int = 0
    dead_nodes: tuple[int, ...] = ()
    restarted_nodes: tuple[int, ...] = ()
    recovered_partitions: tuple[int, ...] = ()
    lost_partitions: tuple[int, ...] = ()
    coverage: float = 1.0
    degraded: bool = False

    @property
    def speedup(self) -> float:
        """Ideal-sequential work divided by simulated makespan."""
        if self.makespan == 0:
            return 1.0
        return self.total_work / self.makespan

    def to_dict(self) -> dict:
        """JSON-ready view of the report (``repro platform --json``)."""
        return {
            "makespan": self.makespan,
            "total_work": self.total_work,
            "speedup": self.speedup,
            "messages": self.messages,
            "per_node_work": list(self.per_node_work),
            "retries": self.retries,
            "failovers": self.failovers,
            "dead_nodes": list(self.dead_nodes),
            "restarted_nodes": list(self.restarted_nodes),
            "recovered_partitions": list(self.recovered_partitions),
            "lost_partitions": list(self.lost_partitions),
            "coverage": self.coverage,
            "degraded": self.degraded,
            "pipeline": {
                "entities_processed": self.pipeline.entities_processed,
                "miner_runs": dict(self.pipeline.miner_runs),
                "errors": [list(e) for e in self.pipeline.errors],
            },
        }


@dataclass
class _RunPlan:
    """Partition→node assignments for one run, after applying faults."""

    #: (node, partition_id, is_failover) in processing order.
    assignments: list[tuple[Node, int, bool]]
    dead_nodes: tuple[int, ...]
    restarted_nodes: tuple[int, ...]
    recovered_partitions: tuple[int, ...]
    lost_partitions: tuple[int, ...]
    failovers: int


class Cluster:
    """A simulated WebFountain cluster around one partitioned store."""

    def __init__(
        self,
        store: DataStore,
        num_nodes: int,
        bus: VinciBus | None = None,
        replication: int = 1,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        obs: Obs | None = None,
    ):
        if num_nodes < 1:
            raise ValueError("a cluster needs at least one node")
        if num_nodes > store.num_partitions:
            raise ValueError(
                f"cannot spread {store.num_partitions} partitions over {num_nodes} nodes"
            )
        if not 1 <= replication <= num_nodes:
            raise ValueError(
                f"replication must lie in [1, {num_nodes}], got {replication}"
            )
        self._store = store
        self._fault_plan = fault_plan
        # The cluster, its bus, and every instrumented component below
        # share one Obs context (tracer + metrics + simulated clock).
        if bus is not None:
            self._obs = obs if obs is not None else bus.obs
            self._bus = bus
        else:
            self._obs = obs if obs is not None else Obs.default()
            self._bus = VinciBus(
                retry_policy=retry_policy, fault_plan=fault_plan, obs=self._obs
            )
        self._nodes = [Node(node_id=i) for i in range(num_nodes)]
        self._replication = replication
        # Primary assignment stays round-robin; replica owners are the
        # next R-1 nodes, so losing any single node leaves R-1 owners.
        self._owners: dict[int, list[int]] = {}
        for partition_id in range(store.num_partitions):
            primary = partition_id % num_nodes
            self._nodes[primary].partition_ids.append(partition_id)
            self._owners[partition_id] = [
                (primary + offset) % num_nodes for offset in range(replication)
            ]
        if fault_plan is not None:
            store.attach_fault_plan(fault_plan)
        self._messages = 0  # bus-lifetime total (status())
        self._run_messages = 0  # reset per run (reports)
        self._lost_acks = 0
        self._bus.register("cluster.status", lambda _payload: self.status())
        self._bus.register(COORDINATOR_SERVICE, lambda payload: {"ack": payload.get("node")})

    # -- introspection ----------------------------------------------------------------

    @property
    def nodes(self) -> list[Node]:
        return list(self._nodes)

    @property
    def bus(self) -> VinciBus:
        return self._bus

    @property
    def obs(self) -> Obs:
        return self._obs

    @property
    def replication(self) -> int:
        return self._replication

    @property
    def fault_plan(self) -> FaultPlan | None:
        return self._fault_plan

    def owners(self, partition_id: int) -> list[int]:
        """Node ids owning a partition (primary first, then replicas)."""
        return list(self._owners[partition_id])

    def status(self) -> dict:
        return {
            "nodes": len(self._nodes),
            "partitions": self._store.num_partitions,
            "entities": len(self._store),
            "messages": self._messages,
            "replication": self._replication,
        }

    # -- distributed entity mining ---------------------------------------------------------

    def run_pipeline(self, pipeline: MinerPipeline) -> ClusterRunReport:
        """Run an entity-miner pipeline on every node's partitions.

        Under a fault plan, partitions owned by dead nodes fail over to
        live replica owners; partitions with no surviving owner are left
        unprocessed and reported as lost (degraded coverage), never
        raised.
        """
        run_plan = self._plan_run()
        total_entities = len(self._store)
        retries_before = self._bus.retry_stats.retries
        backoff_before = self._bus.retry_stats.backoff_cost
        total_report = PipelineReport()
        processed_entities = 0
        senders: list[Node] = []
        with self._obs.tracer.span(
            "cluster.run",
            kind="pipeline",
            nodes=len(self._nodes),
            partitions=self._store.num_partitions,
            entities=total_entities,
        ) as run_span:
            for node, partition_id, failover in run_plan.assignments:
                partition = self._store.partition(partition_id)
                entities = list(partition.scan())
                with self._obs.tracer.span(
                    "cluster.partition",
                    node=node.node_id,
                    partition=partition_id,
                    failover=failover,
                    entities=len(entities),
                ):
                    # Stage-batched map: every miner sweeps the whole
                    # partition slice before the next one starts.
                    pipeline.process_batch(entities, total_report)
                    for entity in entities:
                        partition.put(entity)
                    node.charge(len(entities))
                    self._obs.clock.advance(len(entities) * ENTITY_COST)
                processed_entities += len(entities)
                if node not in senders:
                    senders.append(node)
            for node in senders:
                self._send_coordinator_message(node)
            return self._report(
                total_report,
                reduce_partials=0,
                run_plan=run_plan,
                processed_entities=processed_entities,
                total_entities=total_entities,
                retries=self._bus.retry_stats.retries - retries_before,
                backoff_cost=self._bus.retry_stats.backoff_cost - backoff_before,
                run_span=run_span,
            )

    # -- distributed corpus mining -----------------------------------------------------------

    def run_corpus_miner(self, miner: CorpusMiner[T]) -> tuple[T, ClusterRunReport]:
        """Map per partition, reduce at the coordinator.

        Partials are keyed by partition and reduced in partition order,
        so the reduce result is byte-identical no matter *which* node
        ran a partition — a failover changes work accounting, never the
        answer.  Lost partitions are simply absent from the reduce, and
        the report's ``coverage`` says how much of the corpus survived.
        """
        run_plan = self._plan_run()
        total_entities = len(self._store)
        retries_before = self._bus.retry_stats.retries
        backoff_before = self._bus.retry_stats.backoff_cost
        partials_by_partition: dict[int, T] = {}
        total_report = PipelineReport()
        processed_entities = 0
        senders: list[Node] = []
        with self._obs.tracer.span(
            "cluster.run",
            kind="corpus",
            miner=miner.name,
            nodes=len(self._nodes),
            partitions=self._store.num_partitions,
            entities=total_entities,
        ) as run_span:
            for node, partition_id, failover in run_plan.assignments:
                entities = list(self._store.partition(partition_id).scan())
                with self._obs.tracer.span(
                    "cluster.partition",
                    node=node.node_id,
                    partition=partition_id,
                    failover=failover,
                    entities=len(entities),
                ):
                    partials_by_partition[partition_id] = miner.map_partition(entities)
                    node.charge(len(entities))
                    self._obs.clock.advance(len(entities) * ENTITY_COST)
                processed_entities += len(entities)
                total_report.entities_processed += len(entities)
                if node not in senders:
                    senders.append(node)
            for node in senders:
                self._send_coordinator_message(node)
            partials = [partials_by_partition[pid] for pid in sorted(partials_by_partition)]
            with self._obs.tracer.span("cluster.reduce", partials=len(partials)):
                self._obs.clock.advance(len(partials) * REDUCE_COST_PER_PARTIAL)
                result = miner.reduce(partials)
            report = self._report(
                total_report,
                reduce_partials=len(partials),
                run_plan=run_plan,
                processed_entities=processed_entities,
                total_entities=total_entities,
                retries=self._bus.retry_stats.retries - retries_before,
                backoff_cost=self._bus.retry_stats.backoff_cost - backoff_before,
                run_span=run_span,
            )
        return result, report

    # -- internals -------------------------------------------------------------------------------

    def _plan_run(self) -> _RunPlan:
        """Apply the fault plan's node deaths to this run's assignments.

        A dead node with a scheduled *restart* rejoins within the run:
        the partitions its crash orphaned are re-assigned back to the
        node itself (restart catch-up), so only restart-less deaths
        trigger replica failover or partition loss.
        """
        deaths: dict[int, int] = {}
        restarted: list[int] = []
        if self._fault_plan is not None:
            for node in self._nodes:
                death = self._fault_plan.node_death(node.node_id)
                if death is not None:
                    deaths[node.node_id] = death
                    if self._fault_plan.node_restart(node.node_id) is not None:
                        restarted.append(node.node_id)
        assignments: list[tuple[Node, int, bool]] = []
        orphaned: list[tuple[int, int]] = []  # (partition_id, crashed owner)
        for node in self._nodes:
            completed_before_death = deaths.get(node.node_id)
            for position, partition_id in enumerate(node.partition_ids):
                if completed_before_death is not None and position >= completed_before_death:
                    orphaned.append((partition_id, node.node_id))
                else:
                    assignments.append((node, partition_id, False))
        lost: list[int] = []
        recovered: list[int] = []
        failovers = 0
        for partition_id, crashed_owner in sorted(orphaned):
            if crashed_owner in restarted:
                # The owner comes back mid-run and finishes its own
                # backlog; the work is charged to the restarted node.
                assignments.append((self._nodes[crashed_owner], partition_id, True))
                recovered.append(partition_id)
                continue
            survivor = next(
                (
                    self._nodes[owner]
                    for owner in self._owners[partition_id]
                    if owner not in deaths
                ),
                None,
            )
            if survivor is None:
                lost.append(partition_id)
            else:
                assignments.append((survivor, partition_id, True))
                failovers += 1
        return _RunPlan(
            assignments=assignments,
            dead_nodes=tuple(sorted(deaths)),
            restarted_nodes=tuple(sorted(restarted)),
            recovered_partitions=tuple(recovered),
            lost_partitions=tuple(lost),
            failovers=failovers,
        )

    def _send_coordinator_message(self, node: Node) -> None:
        self._messages += 1
        self._run_messages += 1
        node.work_units += MESSAGE_COST
        with self._obs.tracer.span("cluster.ack", node=node.node_id) as span:
            self._obs.clock.advance(MESSAGE_COST)
            try:
                self._bus.request(
                    COORDINATOR_SERVICE,
                    with_trace(
                        {"node": node.node_id}, self._obs.tracer.current_context
                    ),
                )
            except VinciError as exc:
                # The ack is bookkeeping; the node's results already live in
                # the store, so a lost ack degrades nothing.
                self._lost_acks += 1
                span.set_attribute("lost_ack", str(exc))

    def _report(
        self,
        pipeline: PipelineReport,
        reduce_partials: int,
        run_plan: _RunPlan | None = None,
        processed_entities: int | None = None,
        total_entities: int | None = None,
        retries: int = 0,
        backoff_cost: float = 0.0,
        run_span=None,
    ) -> ClusterRunReport:
        per_node = [node.work_units for node in self._nodes]
        reduce_cost = reduce_partials * REDUCE_COST_PER_PARTIAL
        # Retry backoff serialises at the coordinator, so it stretches
        # the critical path as well as the total.
        makespan = max(per_node, default=0.0) + reduce_cost + backoff_cost
        total = sum(per_node) + reduce_cost + backoff_cost
        if total_entities:
            coverage = (processed_entities or 0) / total_entities
        else:
            coverage = 1.0
        report = ClusterRunReport(
            pipeline=pipeline,
            makespan=makespan,
            total_work=total,
            messages=self._run_messages,
            per_node_work=per_node,
            retries=retries,
            failovers=run_plan.failovers if run_plan else 0,
            dead_nodes=run_plan.dead_nodes if run_plan else (),
            restarted_nodes=run_plan.restarted_nodes if run_plan else (),
            recovered_partitions=run_plan.recovered_partitions if run_plan else (),
            lost_partitions=run_plan.lost_partitions if run_plan else (),
            coverage=coverage,
            degraded=coverage < 1.0,
        )
        self._publish_report(report)
        if run_span is not None:
            run_span.set_attribute("makespan", report.makespan)
            run_span.set_attribute("coverage", report.coverage)
            run_span.set_attribute("degraded", report.degraded)
            run_span.set_attribute("retries", report.retries)
            run_span.set_attribute("failovers", report.failovers)
            run_span.set_attribute("dead_nodes", list(report.dead_nodes))
            run_span.set_attribute("lost_partitions", list(report.lost_partitions))
        # Work and message counters are per-run: reset after reporting.
        for node in self._nodes:
            node.work_units = 0.0
        self._run_messages = 0
        return report

    def _publish_report(self, report: ClusterRunReport) -> None:
        """Mirror the run report into the shared metrics registry."""
        metrics = self._obs.metrics
        metrics.counter("cluster.runs").inc()
        metrics.counter("cluster.entities_processed").inc(
            report.pipeline.entities_processed
        )
        metrics.counter("cluster.messages").inc(report.messages)
        metrics.counter("cluster.retries").inc(report.retries)
        metrics.counter("cluster.failovers").inc(report.failovers)
        metrics.counter("cluster.restarted_nodes").inc(len(report.restarted_nodes))
        metrics.counter("cluster.recovered_partitions").inc(
            len(report.recovered_partitions)
        )
        metrics.counter("cluster.lost_partitions").inc(len(report.lost_partitions))
        metrics.counter("cluster.degraded_runs").inc(1 if report.degraded else 0)
        metrics.gauge("cluster.makespan").set(report.makespan)
        metrics.gauge("cluster.total_work").set(report.total_work)
        metrics.gauge("cluster.coverage").set(report.coverage)
        metrics.gauge("cluster.dead_nodes").set(len(report.dead_nodes))
        metrics.histogram("cluster.node_work").observe(
            max(report.per_node_work, default=0.0)
        )
