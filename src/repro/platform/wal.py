"""Simulated write-ahead log for the ingest path.

WebFountain's ingestors accepted documents continuously; on real
hardware a crash between "accepted" and "indexed" must not lose data.
This module supplies the durability half of that contract for the
simulation: :class:`WriteAheadLog` records every accepted
:class:`~repro.platform.ingestion.DocumentDelta` batch *before* any
store or index mutation happens (the PLAT004 lint rule enforces the
ordering statically), and after a simulated crash
:meth:`WriteAheadLog.replay` yields exactly the batches whose segments
were never sealed.

Exactly-once comes from two properties downstream of the log:

* mining is deterministic, so re-running
  :meth:`~repro.platform.segments.DeltaIndexer.index_batch` on a
  replayed batch builds a byte-identical segment; and
* every delta id in a batch is tombstoned by its segment, so absorbing
  a replayed segment *again* masks any earlier copy — replay after a
  crash that landed on either side of the absorb converges to the same
  observable index state.

The log is purely simulated: records live in memory and "durability"
means surviving the loss of the *indexer* object, not the process.
Costs are charged to the shared :class:`~repro.obs.clock.SimClock` so
benchmarks see the price of durability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Sequence

from ..obs import Obs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .ingestion import DocumentDelta

#: Simulated cost of appending one delta to the log (fsync amortised).
WAL_APPEND_COST_PER_DELTA = 0.001


@dataclass(frozen=True)
class WalRecord:
    """One appended batch: a log sequence number and its deltas."""

    lsn: int
    deltas: tuple["DocumentDelta", ...]


class WriteAheadLog:
    """An append-only, seal-acknowledged batch log.

    ``append`` assigns the next LSN; ``seal`` acknowledges that the
    batch's segment is durable in the replicated index, advancing the
    checkpoint over any contiguous sealed prefix.  ``replay`` yields
    the unsealed records in LSN order — the exact work a restarted
    indexer must redo.
    """

    def __init__(
        self,
        obs: Obs | None = None,
        *,
        append_cost_per_delta: float = WAL_APPEND_COST_PER_DELTA,
    ):
        self._obs = obs if obs is not None else Obs.default()
        self._append_cost = append_cost_per_delta
        self._records: list[WalRecord] = []
        self._sealed: set[int] = set()
        self._next_lsn = 1
        self._checkpoint = 0

    def append(self, deltas: Sequence["DocumentDelta"]) -> int:
        """Durably record a batch; returns its log sequence number."""
        if not deltas:
            raise ValueError("cannot append an empty batch to the WAL")
        lsn = self._next_lsn
        self._next_lsn += 1
        self._records.append(WalRecord(lsn=lsn, deltas=tuple(deltas)))
        self._obs.clock.advance(self._append_cost * len(deltas))
        metrics = self._obs.metrics
        metrics.counter("wal.appends").inc()
        metrics.counter("wal.deltas_logged").inc(len(deltas))
        metrics.gauge("wal.depth").set(self.depth)
        return lsn

    def seal(self, lsn: int) -> None:
        """Acknowledge that the segment for *lsn* is durable.

        Sealing is idempotent; unknown LSNs are rejected so a bug in
        the replay path cannot silently acknowledge work never logged.
        """
        if not 1 <= lsn < self._next_lsn:
            raise ValueError(f"unknown WAL lsn {lsn}")
        self._sealed.add(lsn)
        while self._checkpoint + 1 in self._sealed:
            self._checkpoint += 1
        self._obs.metrics.gauge("wal.depth").set(self.depth)
        self._obs.metrics.gauge("wal.checkpoint").set(self._checkpoint)

    def replay(self) -> Iterator[WalRecord]:
        """Unsealed records in LSN order — the redo work after a crash."""
        for record in self._records:
            if record.lsn not in self._sealed:
                yield record

    @property
    def depth(self) -> int:
        """Accepted-but-unsealed batches (0 = fully checkpointed)."""
        return len(self._records) - len(self._sealed)

    @property
    def last_lsn(self) -> int:
        """Highest LSN handed out so far (0 = empty log)."""
        return self._next_lsn - 1

    @property
    def checkpoint_lsn(self) -> int:
        """Largest LSN below which every record is sealed."""
        return self._checkpoint

    def snapshot(self) -> dict:
        """JSON-ready view for the health surface."""
        return {
            "depth": self.depth,
            "last_lsn": self.last_lsn,
            "checkpoint_lsn": self._checkpoint,
            "unsealed": [r.lsn for r in self.replay()],
        }


class NullWriteAheadLog(WriteAheadLog):
    """A no-op log for ingest paths that opt out of durability.

    It keeps the ingest code shape identical — the append still
    lexically dominates every store mutation, which is what PLAT004
    checks — while recording nothing and charging nothing.
    """

    def __init__(self):
        super().__init__(obs=Obs.default(), append_cost_per_delta=0.0)

    def append(self, deltas: Sequence["DocumentDelta"]) -> int:
        return 0

    def seal(self, lsn: int) -> None:
        return None

    def replay(self) -> Iterator[WalRecord]:
        return iter(())

    @property
    def depth(self) -> int:
        return 0
