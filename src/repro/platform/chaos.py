"""Deterministic chaos-test harness for the simulated cluster.

Chaos testing here is *enumerated*, not random: a seed expands into a
:class:`~repro.platform.faults.FaultPlan`, the same pipeline or corpus
miner runs under that plan, and a fixed set of invariants is checked
against the run report.  Because every fault comes from the seed, a
violated invariant is a reproducible test failure — rerun with the same
seed and watch it happen again.

The invariants (ROADMAP: graceful degradation must never silently
corrupt aggregate counts):

* **no lost entities under replication** — with R ≥ 2 and at most one
  dead node, ``coverage == 1.0`` and ``degraded`` is False;
* **coverage is honest** — ``coverage`` equals processed entities over
  stored entities, lies in [0, 1], and ``degraded`` is set exactly when
  it falls short of 1.0;
* **report totals are consistent** — ``total_work`` covers the summed
  per-node work, ``makespan`` at least the busiest node, and per-node
  work is non-negative;
* **failover accounting** — every failover partition appears in some
  node's charged work, and lost partitions only occur when every owner
  died.

Use from pytest::

    from repro.platform import chaos

    outcome = chaos.run_corpus_chaos(make_store, miner_factory, seed=7,
                                     num_nodes=4, replication=2)
    assert outcome.violations == []
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, TypeVar

from ..obs import Obs
from .cluster import Cluster, ClusterRunReport
from .datastore import DataStore
from .faults import FaultPlan
from .miners import CorpusMiner, MinerPipeline
from .retry import RetryPolicy

T = TypeVar("T")

_EPS = 1e-9

#: Default retry policy for chaos runs: deterministic (no jitter) so
#: work accounting is reproducible across identical seeds.
DEFAULT_CHAOS_RETRY = RetryPolicy(max_attempts=4, base_backoff=0.1, multiplier=2.0)

#: Default simulated-time window in which a killed node rejoins.
DEFAULT_RESTART_WINDOW = (4.0, 12.0)

#: Seed salt so restart draws are independent of however many draws the
#: plan's own RNG made while scheduling deaths and service faults.
_RESTART_SALT = 0x5BD1E995


def schedule_restarts(
    plan: FaultPlan,
    *,
    window: tuple[float, float] = DEFAULT_RESTART_WINDOW,
    node_ids: Iterable[int] | None = None,
) -> dict[int, float]:
    """Attach seeded rejoin times to a plan's scheduled node deaths.

    Every dead node (or just *node_ids*) gets a restart drawn uniformly
    from *window* using ``random.Random(plan.seed ^ salt)`` — a fresh
    generator, so the rejoin times depend only on the seed and the
    sorted node order, never on how many draws built the rest of the
    plan.  Returns ``{node_id: rejoin_time}`` for reports and tests.
    """
    lo, hi = window
    if not 0.0 <= lo <= hi:
        raise ValueError(f"restart window must satisfy 0 <= lo <= hi, got {window}")
    rng = random.Random(plan.seed ^ _RESTART_SALT)
    targets = sorted(plan.dead_nodes) if node_ids is None else sorted(node_ids)
    times: dict[int, float] = {}
    for node_id in targets:
        at = lo + (hi - lo) * rng.random()
        plan.restart_node(node_id, after_cost=at)
        times[node_id] = at
    return times


@dataclass
class ChaosOutcome:
    """One chaos run: what happened and which invariants broke."""

    seed: int
    report: ClusterRunReport
    result: object = None
    fault_summary: dict[str, int] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def check_invariants(
    report: ClusterRunReport,
    *,
    replication: int,
    total_entities: int,
) -> list[str]:
    """All invariant violations in a run report (empty list = healthy)."""
    violations: list[str] = []
    if not 0.0 <= report.coverage <= 1.0 + _EPS:
        violations.append(f"coverage {report.coverage} outside [0, 1]")
    if report.degraded != (report.coverage < 1.0 - _EPS):
        violations.append(
            f"degraded flag {report.degraded} inconsistent with coverage {report.coverage}"
        )
    if replication >= 2 and len(report.dead_nodes) <= replication - 1:
        if report.lost_partitions:
            violations.append(
                f"lost partitions {report.lost_partitions} despite replication {replication} "
                f"and only {len(report.dead_nodes)} dead node(s)"
            )
        if report.coverage < 1.0 - _EPS:
            violations.append(
                f"coverage {report.coverage} < 1.0 despite replication {replication}"
            )
    if total_entities:
        expected = report.pipeline.entities_processed / total_entities
        if abs(report.coverage - expected) > 1e-6:
            violations.append(
                f"coverage {report.coverage} disagrees with processed fraction {expected}"
            )
    if any(work < -_EPS for work in report.per_node_work):
        violations.append("negative per-node work")
    if report.total_work + _EPS < sum(report.per_node_work):
        violations.append("total_work smaller than summed node work")
    if report.makespan + _EPS < max(report.per_node_work, default=0.0):
        violations.append("makespan smaller than busiest node")
    if report.lost_partitions and not report.dead_nodes:
        violations.append("partitions lost without any dead node")
    if report.failovers and not report.dead_nodes:
        violations.append("failovers reported without any dead node")
    return violations


def run_pipeline_chaos(
    store_factory: Callable[[], DataStore],
    pipeline_factory: Callable[[], MinerPipeline],
    *,
    seed: int,
    num_nodes: int,
    replication: int = 2,
    retry_policy: RetryPolicy | None = DEFAULT_CHAOS_RETRY,
    plan: FaultPlan | None = None,
    node_death_rate: float = 0.25,
    service_failure_rate: float = 0.3,
    obs: Obs | None = None,
) -> ChaosOutcome:
    """One seeded chaos run of an entity-miner pipeline."""
    store = store_factory()
    plan = plan or FaultPlan.scheduled(
        seed,
        services=("cluster.coordinator",),
        num_nodes=num_nodes,
        num_partitions=store.num_partitions,
        service_failure_rate=service_failure_rate,
        node_death_rate=node_death_rate,
    )
    cluster = Cluster(
        store,
        num_nodes=num_nodes,
        replication=replication,
        fault_plan=plan,
        retry_policy=retry_policy,
        obs=obs,
    )
    total = len(store)
    report = cluster.run_pipeline(pipeline_factory())
    return ChaosOutcome(
        seed=seed,
        report=report,
        fault_summary=plan.summary(),
        violations=check_invariants(report, replication=replication, total_entities=total),
    )


def run_corpus_chaos(
    store_factory: Callable[[], DataStore],
    miner_factory: Callable[[], CorpusMiner[T]],
    *,
    seed: int,
    num_nodes: int,
    replication: int = 2,
    retry_policy: RetryPolicy | None = DEFAULT_CHAOS_RETRY,
    plan: FaultPlan | None = None,
    node_death_rate: float = 0.25,
    service_failure_rate: float = 0.3,
    obs: Obs | None = None,
) -> ChaosOutcome:
    """One seeded chaos run of a corpus miner (map per partition, reduce)."""
    store = store_factory()
    plan = plan or FaultPlan.scheduled(
        seed,
        services=("cluster.coordinator",),
        num_nodes=num_nodes,
        num_partitions=store.num_partitions,
        service_failure_rate=service_failure_rate,
        node_death_rate=node_death_rate,
    )
    cluster = Cluster(
        store,
        num_nodes=num_nodes,
        replication=replication,
        fault_plan=plan,
        retry_policy=retry_policy,
        obs=obs,
    )
    total = len(store)
    result, report = cluster.run_corpus_miner(miner_factory())
    return ChaosOutcome(
        seed=seed,
        report=report,
        result=result,
        fault_summary=plan.summary(),
        violations=check_invariants(report, replication=replication, total_entities=total),
    )


def sweep(
    runner: Callable[[int], ChaosOutcome],
    seeds: Iterator[int] | range,
) -> list[ChaosOutcome]:
    """Run a chaos runner across seeds; returns every outcome.

    Convenience for ``assert all(o.ok for o in chaos.sweep(...))`` —
    failures carry their seed so the exact run can be replayed.
    """
    return [runner(seed) for seed in seeds]
