"""Ingestion: crawler and source-specific ingestors.

"Large-scale Web content acquisition is done by Web crawlers.
Acquisition of other sources, such as traditional news feeds,
preprocessed bulletin boards, NNTP, and a variety of both structured and
unstructured customer data is done by a set of ingestors that handle the
unique delivery method and format of each source."

Sources here are synthetic (DESIGN.md Section 2) but each ingestor still
owns a distinct wire format, so the ingestion → datastore path is real:

* :class:`WebCrawler` — follows links within a seeded synthetic site map;
* :class:`NewsFeedIngestor` — headline/body records;
* :class:`BulletinBoardIngestor` — threaded posts, flattened per thread;
* :class:`CustomerDataIngestor` — structured ``field=value`` records.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from ..obs import Obs
from ..obs.context import ROOT
from .datastore import DataStore
from .entity import Entity
from .wal import NullWriteAheadLog, WriteAheadLog


class Source(abc.ABC):
    """A document source feeding the ingestion manager."""

    name: str = "source"

    @abc.abstractmethod
    def fetch(self) -> Iterator[Entity]:
        """Yield entities in delivery order."""


@dataclass
class CrawlPage:
    """One synthetic web page with outgoing links."""

    url: str
    content: str
    links: tuple[str, ...] = ()
    metadata: dict[str, Any] = field(default_factory=dict)


class WebCrawler(Source):
    """Breadth-first crawler over an in-memory site graph.

    Honors per-host page budgets the way a polite crawler would; the
    graph is a dict url → :class:`CrawlPage`.
    """

    name = "webcrawl"

    def __init__(self, site: dict[str, CrawlPage], seeds: Iterable[str], max_pages: int = 10000):
        if max_pages < 1:
            raise ValueError("max_pages must be positive")
        self._site = dict(site)
        self._seeds = list(seeds)
        self._max_pages = max_pages

    def fetch(self) -> Iterator[Entity]:
        visited: set[str] = set()
        frontier = list(self._seeds)
        count = 0
        while frontier and count < self._max_pages:
            url = frontier.pop(0)
            if url in visited or url not in self._site:
                continue
            visited.add(url)
            page = self._site[url]
            metadata = {"url": url, "links": list(page.links), **page.metadata}
            yield Entity(
                entity_id=f"web:{url}",
                content=page.content,
                source=self.name,
                metadata=metadata,
            )
            count += 1
            frontier.extend(link for link in page.links if link not in visited)

    @property
    def site_size(self) -> int:
        return len(self._site)


class NewsFeedIngestor(Source):
    """Traditional news feed: (headline, body, date) records."""

    name = "newsfeed"

    def __init__(self, articles: Iterable[tuple[str, str, str]]):
        self._articles = list(articles)

    def fetch(self) -> Iterator[Entity]:
        for index, (headline, body, date) in enumerate(self._articles):
            yield Entity(
                entity_id=f"news:{index:06d}",
                content=f"{headline}. {body}",
                source=self.name,
                metadata={"headline": headline, "date": date},
            )


class BulletinBoardIngestor(Source):
    """Preprocessed bulletin board threads: one entity per thread."""

    name = "bboard"

    def __init__(self, threads: Iterable[tuple[str, list[str]]]):
        self._threads = list(threads)

    def fetch(self) -> Iterator[Entity]:
        for index, (topic, posts) in enumerate(self._threads):
            yield Entity(
                entity_id=f"bboard:{index:06d}",
                content=" ".join(posts),
                source=self.name,
                metadata={"topic": topic, "posts": len(posts)},
            )


class CustomerDataIngestor(Source):
    """Structured customer records with one free-text field."""

    name = "customer"

    def __init__(self, records: Iterable[dict[str, Any]], text_field: str = "comment"):
        self._records = list(records)
        self._text_field = text_field

    def fetch(self) -> Iterator[Entity]:
        for index, record in enumerate(self._records):
            text = str(record.get(self._text_field, ""))
            metadata = {k: v for k, v in record.items() if k != self._text_field}
            yield Entity(
                entity_id=f"customer:{index:06d}",
                content=text,
                source=self.name,
                metadata=metadata,
            )


#: Document delta kinds flowing from sources to the incremental indexer.
DELTA_ADD = "add"
DELTA_UPDATE = "update"
DELTA_DELETE = "delete"
DELTA_KINDS = (DELTA_ADD, DELTA_UPDATE, DELTA_DELETE)


@dataclass(frozen=True)
class DocumentDelta:
    """One document-level change emitted by a source.

    ``add`` and ``update`` carry the full new entity version (documents
    are indexed atomically, never patched); ``delete`` carries only the
    id.  Deltas are totally ordered by delivery: a later delta for the
    same id supersedes an earlier one.
    """

    kind: str
    entity_id: str
    entity: Entity | None = None
    source: str = ""

    def __post_init__(self) -> None:
        if self.kind not in DELTA_KINDS:
            raise ValueError(f"unknown delta kind {self.kind!r}")
        if not self.entity_id:
            raise ValueError("delta requires an entity_id")
        if self.kind == DELTA_DELETE:
            if self.entity is not None:
                raise ValueError("delete deltas carry no entity body")
        else:
            if self.entity is None:
                raise ValueError(f"{self.kind} delta requires an entity body")
            if self.entity.entity_id != self.entity_id:
                raise ValueError(
                    f"delta id {self.entity_id!r} disagrees with entity id "
                    f"{self.entity.entity_id!r}"
                )


class DeltaSource(abc.ABC):
    """A source that delivers document changes incrementally.

    Unlike :class:`Source` (one whole-corpus ``fetch``), a delta source
    is *polled*: each :meth:`poll` returns the next batch of changes in
    delivery order, and an empty batch means the source is (currently)
    drained.  The live crawl→analyze→index→serve loop is built on this.
    """

    name: str = "deltas"

    @abc.abstractmethod
    def poll(self, max_deltas: int | None = None) -> list[DocumentDelta]:
        """Next deltas in delivery order (empty list = drained for now)."""


class SnapshotDeltaSource(DeltaSource):
    """Adapts a whole-corpus :class:`Source` into an add-only delta stream."""

    def __init__(self, source: Source, batch_size: int = 8):
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.name = source.name
        self._iterator = source.fetch()
        self._batch_size = batch_size

    def poll(self, max_deltas: int | None = None) -> list[DocumentDelta]:
        limit = self._batch_size if max_deltas is None else min(self._batch_size, max_deltas)
        out: list[DocumentDelta] = []
        for entity in self._iterator:
            out.append(
                DocumentDelta(
                    kind=DELTA_ADD,
                    entity_id=entity.entity_id,
                    entity=entity,
                    source=self.name,
                )
            )
            if len(out) >= limit:
                break
        return out


class ScriptedDeltaSource(DeltaSource):
    """A pre-scripted delta stream — updates and deletes included.

    The freshness bench and the segment-lifecycle tests use this to
    replay an exact add/update/delete schedule deterministically.
    """

    def __init__(self, deltas: Iterable[DocumentDelta], name: str = "scripted", batch_size: int = 8):
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.name = name
        self._pending = list(deltas)
        self._cursor = 0
        self._batch_size = batch_size

    @property
    def remaining(self) -> int:
        return len(self._pending) - self._cursor

    def poll(self, max_deltas: int | None = None) -> list[DocumentDelta]:
        limit = self._batch_size if max_deltas is None else min(self._batch_size, max_deltas)
        batch = self._pending[self._cursor : self._cursor + limit]
        self._cursor += len(batch)
        return batch


@dataclass
class IngestionReport:
    """Per-source ingestion counts.

    ``lsn`` is the write-ahead-log sequence number the increment's batch
    was appended under (0 when the manager runs without a durable log);
    callers seal it once the batch's segment is safely absorbed.
    """

    per_source: dict[str, int] = field(default_factory=dict)
    lsn: int = 0

    @property
    def total(self) -> int:
        return sum(self.per_source.values())


class IngestionManager:
    """Pulls every source and loads the data store.

    Two modes: :meth:`ingest` drains whole-corpus :class:`Source`\\ s in
    one offline pass; :meth:`ingest_increment` polls the registered
    :class:`DeltaSource`\\ s for the next batch of document deltas,
    applies them to the store (adds/updates as writes, deletes as
    tombstones) and hands the batch to the caller for incremental
    indexing.
    """

    def __init__(
        self,
        store: DataStore,
        obs: Obs | None = None,
        *,
        wal: WriteAheadLog | None = None,
    ):
        self._store = store
        self._obs = obs if obs is not None else Obs.default()
        # Always hold *a* log so the append unconditionally precedes
        # every store mutation on the increment path (PLAT004): callers
        # that opt out of durability get the no-op log.
        self._wal = wal if wal is not None else NullWriteAheadLog()
        self._sources: list[Source] = []
        self._delta_sources: list[DeltaSource] = []

    @property
    def wal(self) -> WriteAheadLog:
        return self._wal

    def add_source(self, source: Source) -> None:
        self._sources.append(source)

    def add_delta_source(self, source: DeltaSource) -> None:
        self._delta_sources.append(source)

    @property
    def sources(self) -> list[str]:
        return [s.name for s in self._sources]

    @property
    def delta_sources(self) -> list[str]:
        return [s.name for s in self._delta_sources]

    def ingest(self) -> IngestionReport:
        """Drain every source into the store."""
        report = IngestionReport()
        for source in self._sources:
            count = 0
            for entity in source.fetch():
                self._store.store(entity)
                count += 1
            report.per_source[source.name] = report.per_source.get(source.name, 0) + count
        self._store.flush()
        return report

    def ingest_increment(
        self, max_deltas: int | None = None
    ) -> tuple[list[DocumentDelta], IngestionReport]:
        """Poll every delta source once and apply the batch to the store.

        Returns the concatenated deltas (source registration order, each
        source's delivery order preserved) plus per-source counts.  An
        empty delta list means every source is currently drained.

        Each increment is its own root trace (``ingest.increment``), and
        the documents applied per source are counted in the
        ``ingest.docs`` series (deletes in ``ingest.deletes``).
        """
        report = IngestionReport()
        metrics = self._obs.metrics
        with self._obs.tracer.span("ingest.increment", parent=ROOT) as span:
            polled = [(source, source.poll(max_deltas)) for source in self._delta_sources]
            batch = [delta for _, deltas in polled for delta in deltas]
            for source, deltas in polled:
                report.per_source[source.name] = (
                    report.per_source.get(source.name, 0) + len(deltas)
                )
            span.set_attribute("deltas", len(batch))
            if batch:
                # Durability before visibility: the whole batch reaches
                # the log before any store mutation (PLAT004), so a
                # crash mid-apply replays the complete increment.
                report.lsn = self._wal.append(batch)
                for source, deltas in polled:
                    docs = 0
                    deletes = 0
                    for delta in deltas:
                        if delta.kind == DELTA_DELETE:
                            self._store.delete(delta.entity_id)
                            deletes += 1
                        else:
                            self._store.store(delta.entity)
                            docs += 1
                    if docs:
                        metrics.counter("ingest.docs", source=source.name).inc(docs)
                    if deletes:
                        metrics.counter("ingest.deletes", source=source.name).inc(deletes)
                self._store.flush()
        return batch, report
