"""Ingestion: crawler and source-specific ingestors.

"Large-scale Web content acquisition is done by Web crawlers.
Acquisition of other sources, such as traditional news feeds,
preprocessed bulletin boards, NNTP, and a variety of both structured and
unstructured customer data is done by a set of ingestors that handle the
unique delivery method and format of each source."

Sources here are synthetic (DESIGN.md Section 2) but each ingestor still
owns a distinct wire format, so the ingestion → datastore path is real:

* :class:`WebCrawler` — follows links within a seeded synthetic site map;
* :class:`NewsFeedIngestor` — headline/body records;
* :class:`BulletinBoardIngestor` — threaded posts, flattened per thread;
* :class:`CustomerDataIngestor` — structured ``field=value`` records.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from .datastore import DataStore
from .entity import Entity


class Source(abc.ABC):
    """A document source feeding the ingestion manager."""

    name: str = "source"

    @abc.abstractmethod
    def fetch(self) -> Iterator[Entity]:
        """Yield entities in delivery order."""


@dataclass
class CrawlPage:
    """One synthetic web page with outgoing links."""

    url: str
    content: str
    links: tuple[str, ...] = ()
    metadata: dict[str, Any] = field(default_factory=dict)


class WebCrawler(Source):
    """Breadth-first crawler over an in-memory site graph.

    Honors per-host page budgets the way a polite crawler would; the
    graph is a dict url → :class:`CrawlPage`.
    """

    name = "webcrawl"

    def __init__(self, site: dict[str, CrawlPage], seeds: Iterable[str], max_pages: int = 10000):
        if max_pages < 1:
            raise ValueError("max_pages must be positive")
        self._site = dict(site)
        self._seeds = list(seeds)
        self._max_pages = max_pages

    def fetch(self) -> Iterator[Entity]:
        visited: set[str] = set()
        frontier = list(self._seeds)
        count = 0
        while frontier and count < self._max_pages:
            url = frontier.pop(0)
            if url in visited or url not in self._site:
                continue
            visited.add(url)
            page = self._site[url]
            metadata = {"url": url, "links": list(page.links), **page.metadata}
            yield Entity(
                entity_id=f"web:{url}",
                content=page.content,
                source=self.name,
                metadata=metadata,
            )
            count += 1
            frontier.extend(link for link in page.links if link not in visited)

    @property
    def site_size(self) -> int:
        return len(self._site)


class NewsFeedIngestor(Source):
    """Traditional news feed: (headline, body, date) records."""

    name = "newsfeed"

    def __init__(self, articles: Iterable[tuple[str, str, str]]):
        self._articles = list(articles)

    def fetch(self) -> Iterator[Entity]:
        for index, (headline, body, date) in enumerate(self._articles):
            yield Entity(
                entity_id=f"news:{index:06d}",
                content=f"{headline}. {body}",
                source=self.name,
                metadata={"headline": headline, "date": date},
            )


class BulletinBoardIngestor(Source):
    """Preprocessed bulletin board threads: one entity per thread."""

    name = "bboard"

    def __init__(self, threads: Iterable[tuple[str, list[str]]]):
        self._threads = list(threads)

    def fetch(self) -> Iterator[Entity]:
        for index, (topic, posts) in enumerate(self._threads):
            yield Entity(
                entity_id=f"bboard:{index:06d}",
                content=" ".join(posts),
                source=self.name,
                metadata={"topic": topic, "posts": len(posts)},
            )


class CustomerDataIngestor(Source):
    """Structured customer records with one free-text field."""

    name = "customer"

    def __init__(self, records: Iterable[dict[str, Any]], text_field: str = "comment"):
        self._records = list(records)
        self._text_field = text_field

    def fetch(self) -> Iterator[Entity]:
        for index, record in enumerate(self._records):
            text = str(record.get(self._text_field, ""))
            metadata = {k: v for k, v in record.items() if k != self._text_field}
            yield Entity(
                entity_id=f"customer:{index:06d}",
                content=text,
                source=self.name,
                metadata=metadata,
            )


@dataclass
class IngestionReport:
    """Per-source ingestion counts."""

    per_source: dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.per_source.values())


class IngestionManager:
    """Pulls every source and loads the data store."""

    def __init__(self, store: DataStore):
        self._store = store
        self._sources: list[Source] = []

    def add_source(self, source: Source) -> None:
        self._sources.append(source)

    @property
    def sources(self) -> list[str]:
        return [s.name for s in self._sources]

    def ingest(self) -> IngestionReport:
        """Drain every source into the store."""
        report = IngestionReport()
        for source in self._sources:
            count = 0
            for entity in source.fetch():
                self._store.store(entity)
                count += 1
            report.per_source[source.name] = report.per_source.get(source.name, 0) + count
        self._store.flush()
        return report
