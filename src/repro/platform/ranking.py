"""Page ranking over the crawl graph.

The paper lists "page ranking [Tomlin 2003]" among the miners deployed on
WebFountain.  This module implements the classic damped power-iteration
rank over the link graph the crawler records in entity metadata
(``metadata["url"]`` / ``metadata["links"]``).  Dangling pages distribute
their mass uniformly; links to pages outside the corpus are ignored.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from .entity import Entity


def link_graph(entities: Iterable[Entity]) -> dict[str, list[str]]:
    """url -> outgoing in-corpus links, from crawled entity metadata."""
    pages: dict[str, list[str]] = {}
    for entity in entities:
        url = entity.metadata.get("url")
        if not url:
            continue
        links = entity.metadata.get("links", [])
        pages[url] = [link for link in links]
    known = set(pages)
    return {url: [l for l in links if l in known] for url, links in pages.items()}


def pagerank(
    graph: Mapping[str, list[str]],
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-8,
) -> dict[str, float]:
    """Damped PageRank by power iteration; scores sum to 1.

    Raises ValueError for a damping factor outside (0, 1).
    """
    if not 0.0 < damping < 1.0:
        raise ValueError("damping must lie strictly between 0 and 1")
    nodes = sorted(graph)
    n = len(nodes)
    if n == 0:
        return {}
    rank = {node: 1.0 / n for node in nodes}
    out_degree = {node: len(graph[node]) for node in nodes}
    incoming: dict[str, list[str]] = {node: [] for node in nodes}
    for node, links in graph.items():
        for target in links:
            incoming[target].append(node)
    base = (1.0 - damping) / n
    for _ in range(max_iterations):
        dangling_mass = sum(rank[node] for node in nodes if out_degree[node] == 0)
        next_rank = {}
        for node in nodes:
            inbound = sum(rank[src] / out_degree[src] for src in incoming[node])
            next_rank[node] = base + damping * (inbound + dangling_mass / n)
        delta = sum(abs(next_rank[node] - rank[node]) for node in nodes)
        rank = next_rank
        if delta < tolerance:
            break
    return rank


def rank_entities(entities: Iterable[Entity], damping: float = 0.85) -> list[tuple[str, float]]:
    """Ranked (url, score) pairs, best first, for crawled entities."""
    graph = link_graph(entities)
    scores = pagerank(graph, damping=damping)
    return sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
