"""WebFountain platform simulation.

A laptop-scale substitute for the paper's 500-node analytics platform,
preserving the contracts the sentiment miner depends on: entity storage,
annotation layers, miner scheduling, indexing, and hosted services.  See
DESIGN.md Section 2 for the substitution rationale.
"""

from . import chaos, serving
from .cluster import COORDINATOR_SERVICE, Cluster, ClusterRunReport, Node
from .datastore import DataStore, Partition, Segment, default_partitioner
from .entity import Annotation, Entity
from .faults import FaultEvent, FaultPlan
from .retry import NO_RETRY, RetryPolicy, RetryStats
from .indexer import InvertedIndex, Posting, SentimentEntry, SentimentIndex, haversine_km
from .ingestion import (
    BulletinBoardIngestor,
    CrawlPage,
    CustomerDataIngestor,
    IngestionManager,
    IngestionReport,
    NewsFeedIngestor,
    Source,
    WebCrawler,
)
from .miners import (
    CorpusMiner,
    EntityMiner,
    MinerPipeline,
    PipelineError,
    PipelineReport,
    run_corpus_miner,
)
from .ranking import link_graph, pagerank, rank_entities
from .query import (
    And,
    Concept,
    Near,
    Not,
    Or,
    Phrase,
    Query,
    QueryParseError,
    Range,
    Regex,
    Term,
    parse_query,
    render_query,
)
from .serving import (
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    LoadGenerator,
    LoadProfile,
    ReplicatedIndex,
    ServingRequest,
    ServingRouter,
)
from .services import (
    SearchService,
    SentimentQueryService,
    StoreService,
    register_services,
)
from .vinci import Envelope, VinciBus, VinciError, VinciTimeout

__all__ = [
    "And",
    "Annotation",
    "BulletinBoardIngestor",
    "COORDINATOR_SERVICE",
    "Cluster",
    "ClusterRunReport",
    "Concept",
    "CircuitBreaker",
    "CorpusMiner",
    "chaos",
    "Deadline",
    "DeadlineExceeded",
    "FaultEvent",
    "FaultPlan",
    "NO_RETRY",
    "RetryPolicy",
    "RetryStats",
    "VinciTimeout",
    "CrawlPage",
    "CustomerDataIngestor",
    "DataStore",
    "Entity",
    "EntityMiner",
    "Envelope",
    "IngestionManager",
    "IngestionReport",
    "InvertedIndex",
    "LoadGenerator",
    "LoadProfile",
    "MinerPipeline",
    "Near",
    "NewsFeedIngestor",
    "Node",
    "Not",
    "Or",
    "Partition",
    "Phrase",
    "PipelineError",
    "PipelineReport",
    "Posting",
    "Query",
    "QueryParseError",
    "Range",
    "rank_entities",
    "Regex",
    "ReplicatedIndex",
    "SearchService",
    "Segment",
    "SentimentEntry",
    "SentimentIndex",
    "SentimentQueryService",
    "ServingRequest",
    "ServingRouter",
    "Source",
    "serving",
    "StoreService",
    "Term",
    "VinciBus",
    "VinciError",
    "WebCrawler",
    "default_partitioner",
    "haversine_km",
    "link_graph",
    "pagerank",
    "parse_query",
    "register_services",
    "render_query",
    "run_corpus_miner",
]
