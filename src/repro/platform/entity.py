"""Backward-compatible re-export of the entity model.

The :class:`Entity`/:class:`Annotation` types moved to
:mod:`repro.core.entity` so the adapter miners (``repro.miners``) can
depend on them without importing the platform layer — preserving the
``lexicons/nlp → core/miners → platform → cli`` import DAG enforced by
``repro lint``.  The platform keeps this module as its public path for
the types (the data store, indexer and ingestion code all say
``platform.entity``), which is a *downward* import and therefore legal.
"""

from __future__ import annotations

from ..core.entity import Annotation, Entity

__all__ = ["Annotation", "Entity"]
