"""Backward-compatible re-export of the miner framework.

The framework (:class:`EntityMiner`, :class:`CorpusMiner`,
:class:`MinerPipeline`, :func:`run_corpus_miner`) moved to
:mod:`repro.core.mining` so adapter miners can subclass it without
importing the platform layer — preserving the
``lexicons/nlp → core/miners → platform → cli`` import DAG enforced by
``repro lint``.  The pipeline talks to any
:class:`~repro.core.mining.EntityStore`;
:class:`repro.platform.datastore.DataStore` is the production
implementation.
"""

from __future__ import annotations

from ..core.mining import (
    CorpusMiner,
    EntityMiner,
    MinerPipeline,
    PipelineError,
    PipelineReport,
    run_corpus_miner,
)

# The EntityStore/EntityPartition protocols are NOT re-exported here:
# nothing imports them through the platform shim (lint DEAD001), and new
# code should take them from repro.core.mining directly.
__all__ = [
    "CorpusMiner",
    "EntityMiner",
    "MinerPipeline",
    "PipelineError",
    "PipelineReport",
    "run_corpus_miner",
]
