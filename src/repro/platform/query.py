"""Query language for the indexer.

"The indexer supports multiple indices for various query types including
boolean, range, regular expression ... and other complex query types."

This module defines the query AST and a small recursive-descent parser
for a Lucene-ish surface syntax::

    camera AND (battery OR flash) AND NOT tripod
    "picture quality"                      # phrase
    year:[2003 TO 2005]                    # metadata range
    re:/NR\\d+/                            # regular expression over tokens

Evaluation lives in :mod:`repro.platform.indexer`; the AST nodes are plain
data so they can be built programmatically too.
"""

from __future__ import annotations

import re
from dataclasses import dataclass


class Query:
    """Marker base class for AST nodes."""


@dataclass(frozen=True)
class Term(Query):
    """Single-token match (case-folded)."""

    token: str


@dataclass(frozen=True)
class Phrase(Query):
    """Consecutive-token match."""

    tokens: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.tokens:
            raise ValueError("phrase must contain at least one token")


@dataclass(frozen=True)
class And(Query):
    left: Query
    right: Query


@dataclass(frozen=True)
class Or(Query):
    left: Query
    right: Query


@dataclass(frozen=True)
class Not(Query):
    operand: Query


@dataclass(frozen=True)
class Range(Query):
    """Numeric metadata range, inclusive on both ends."""

    field: str
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError("range low must not exceed high")


@dataclass(frozen=True)
class Regex(Query):
    """Regular-expression match against individual tokens.

    Compiled case-insensitively because the index folds tokens to
    lowercase.
    """

    pattern: str

    def compiled(self) -> re.Pattern:
        """Compiled pattern, memoised per node.

        The cache lives in ``__dict__`` (not a field), so it bypasses the
        frozen-dataclass ``__setattr__`` and never affects equality or
        hashing; evaluation over large vocabularies no longer recompiles
        the pattern once per index scan.
        """
        cached = self.__dict__.get("_compiled")
        if cached is None:
            cached = re.compile(self.pattern, re.IGNORECASE)
            self.__dict__["_compiled"] = cached
        return cached


@dataclass(frozen=True)
class Near(Query):
    """Spherical (geospatial) query: entities with a geo annotation
    within ``radius_km`` of (``lat``, ``lon``).

    Surface syntax: ``near:[48.86,2.35,500]``.
    """

    lat: float
    lon: float
    radius_km: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError("latitude must lie in [-90, 90]")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError("longitude must lie in [-180, 180]")
        if self.radius_km <= 0:
            raise ValueError("radius must be positive")


@dataclass(frozen=True)
class Concept(Query):
    """Conceptual-token match: ``layer`` + optional ``label``.

    Conceptual tokens are annotations produced by miners ("spot",
    "sentiment", ...), indexed alongside text tokens.
    """

    layer: str
    label: str = ""


class QueryParseError(ValueError):
    """Raised on malformed query strings."""


_TOKEN_RE = re.compile(
    r"""
    \s*(
        \(|\)
        |AND\b|OR\b|NOT\b
        |"[^"]*"
        |re:/(?:[^/\\]|\\.)*/
        |[A-Za-z_][\w.]*:\[[^\]]*\]
        |[A-Za-z_][\w.]*:[\w+-]+
        |[^\s()"]+
    )
    """,
    re.VERBOSE,
)


def _lex(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            if remainder.startswith('"'):
                # A bare quote means the quoted-phrase alternative failed:
                # the quote was never closed.  Refuse instead of silently
                # lexing '"abc' as a term.
                raise QueryParseError(f"unclosed quote at: {remainder!r}")
            raise QueryParseError(f"cannot lex query at: {remainder!r}")
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


class _Parser:
    """Recursive descent over: or_expr := and_expr (OR and_expr)* ..."""

    def __init__(self, tokens: list[str]):
        self._tokens = tokens
        self._pos = 0

    def parse(self) -> Query:
        if not self._tokens:
            raise QueryParseError("empty query")
        node = self._or_expr()
        if self._pos != len(self._tokens):
            raise QueryParseError(f"unexpected token {self._tokens[self._pos]!r}")
        return node

    def _peek(self) -> str | None:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _advance(self) -> str:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _or_expr(self) -> Query:
        node = self._and_expr()
        while self._peek() == "OR":
            self._advance()
            node = Or(node, self._and_expr())
        return node

    def _and_expr(self) -> Query:
        node = self._unary()
        while True:
            nxt = self._peek()
            if nxt == "AND":
                self._advance()
                node = And(node, self._unary())
            elif nxt is not None and nxt not in {")", "OR"}:
                # Implicit AND between adjacent terms.
                node = And(node, self._unary())
            else:
                return node

    def _unary(self) -> Query:
        token = self._peek()
        if token is None:
            raise QueryParseError("unexpected end of query")
        if token == "NOT":
            self._advance()
            return Not(self._unary())
        return self._atom()

    def _atom(self) -> Query:
        token = self._advance()
        if token == "(":
            node = self._or_expr()
            if self._peek() != ")":
                raise QueryParseError("missing closing parenthesis")
            self._advance()
            return node
        if token == ")":
            raise QueryParseError("unexpected ')'")
        if token.startswith('"'):
            words = token.strip('"').split()
            if not words:
                raise QueryParseError("empty phrase")
            if len(words) == 1:
                return Term(words[0].lower())
            return Phrase(tuple(w.lower() for w in words))
        if token.startswith("re:/") and token.endswith("/"):
            pattern = token[4:-1]
            if not pattern:
                raise QueryParseError("empty regex body: re://")
            try:
                re.compile(pattern)
            except re.error as exc:
                raise QueryParseError(f"bad regex: {exc}") from exc
            return Regex(pattern)
        range_match = re.match(r"^([A-Za-z_][\w.]*):\[([^\]]*)\]$", token)
        if range_match:
            field, body = range_match.groups()
            if field == "near":
                parts = [p.strip() for p in body.split(",")]
                if len(parts) != 3:
                    raise QueryParseError(f"near query needs lat,lon,radius: {body!r}")
                try:
                    lat, lon, radius = (float(p) for p in parts)
                except ValueError as exc:
                    raise QueryParseError(f"non-numeric near bounds {body!r}") from exc
                try:
                    return Near(lat, lon, radius)
                except ValueError as exc:
                    raise QueryParseError(str(exc)) from exc
            parts = re.split(r"\s+TO\s+", body.strip())
            if len(parts) != 2:
                raise QueryParseError(f"bad range body {body!r}")
            try:
                low, high = float(parts[0]), float(parts[1])
            except ValueError as exc:
                raise QueryParseError(f"non-numeric range bounds {body!r}") from exc
            return Range(field, low, high)
        concept_match = re.match(r"^([A-Za-z_][\w.]*):([\w+-]+)$", token)
        if concept_match:
            layer, label = concept_match.groups()
            return Concept(layer, label)
        return Term(token.lower())


def parse_query(text: str) -> Query:
    """Parse a query string into an AST."""
    return _Parser(_lex(text)).parse()


def render_query(query: Query) -> str:
    """Render an AST back to surface syntax.

    Boolean operators are fully parenthesised, so the output is not
    always the shortest form, but ``parse_query(render_query(q)) == q``
    holds for any AST the parser itself can produce (the property the
    round-trip tests exercise).
    """
    if isinstance(query, Term):
        return query.token
    if isinstance(query, Phrase):
        return '"' + " ".join(query.tokens) + '"'
    if isinstance(query, And):
        return f"({render_query(query.left)} AND {render_query(query.right)})"
    if isinstance(query, Or):
        return f"({render_query(query.left)} OR {render_query(query.right)})"
    if isinstance(query, Not):
        return f"(NOT {render_query(query.operand)})"
    if isinstance(query, Range):
        return f"{query.field}:[{query.low!r} TO {query.high!r}]"
    if isinstance(query, Regex):
        return f"re:/{query.pattern}/"
    if isinstance(query, Near):
        return f"near:[{query.lat!r},{query.lon!r},{query.radius_km!r}]"
    if isinstance(query, Concept):
        if not query.label:
            raise ValueError("an empty-label Concept has no surface form")
        return f"{query.layer}:{query.label}"
    raise TypeError(f"unknown query node {type(query).__name__}")
